//! The BGP speaker: sessions + RIBs + export policy.
//!
//! One speaker per emulated router. The speaker owns a [`Session`] per
//! configured peer and a [`LocRib`]; it reacts to transport events, bytes
//! and timer polls, and emits [`SpeakerOutput`]s:
//!
//! * `SendBytes` — wire bytes for a peer's transport (the Connection
//!   Manager shuttles them and counts them as control-plane activity,
//!   holding the experiment clock in FTI mode);
//! * `SessionUp` / `SessionDown` — peering state changes;
//! * `RouteChanged` — the effective (multipath) next-hop set of a prefix
//!   changed; the Connection Manager translates these into FIB updates on
//!   the simulated router ("Horse installs those routes in the respective
//!   data planes", §2 of the paper).
//!
//! Export policy is plain eBGP: advertise the best path to every peer
//! except the one it was learned from (split horizon), prepend the local
//! AS, set next-hop-self, and strip LOCAL_PREF/MED. Announcements with the
//! same attributes are batched into one UPDATE.
//!
//! ## Compact-id speaker state
//!
//! All per-peer and per-prefix bookkeeping is arena-shaped (see
//! [`crate::rib`] for the id layer). Peers are a dense index `0..n`
//! assigned in ascending peer-address order at construction — the
//! iteration order of the `BTreeMap` this replaces, which wire-byte
//! determinism depends on (peers are synced in that order). Per-peer
//! state (`sessions`, `adj_out`, `export_cache`, `mrai_*`) lives in
//! parallel `Vec`s indexed by that peer index; per-prefix state
//! (`adj_out` rows, `fib_view`) is indexed by [`PrefixId`]. UPDATE
//! handling is batched decode→intern→decide→export over id slices: the
//! RIB returns affected `PrefixId` slices sorted by prefix value, and
//! reconcile/sync walk them with array loads instead of per-NLRI tree
//! probes. Reconcile-scale scratch buffers (the pump work list, affected
//! set, announce groups) are held on the speaker and reused, so a
//! post-convergence reconcile allocates nothing.

use crate::msg::UpdateMsg;
use crate::rib::{AttrId, Decision, LocRib, RibStats};
use crate::session::{PeerConfig, Session, SessionEvent, SessionState, TimerConfig};
use bytes::Bytes;
use horse_net::addr::Ipv4Prefix;
use horse_net::intern::{IdSet, PrefixId};
use horse_sim::SimTime;
use horse_trace::{ComponentLog, TraceData, Tracer};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Sentinel in an `adj_out` row: nothing advertised for this prefix.
const NO_ATTR: u32 = u32::MAX;

/// Speaker configuration.
#[derive(Debug, Clone)]
pub struct BgpConfig {
    /// Local AS number.
    pub asn: u16,
    /// Router id (also used as the BGP identifier in OPENs).
    pub router_id: Ipv4Addr,
    /// Session timer settings.
    pub timers: TimerConfig,
    /// Peerings.
    pub peers: Vec<PeerConfig>,
    /// Networks originated at startup.
    pub networks: Vec<Ipv4Prefix>,
    /// Enable ECMP multipath in the decision process.
    pub multipath: bool,
    /// Per-peer import/export route-maps, keyed by peer address. Absent
    /// peers (the common case) have no policy: permit everything
    /// unchanged, byte-identical to the pre-policy speaker.
    pub policies: std::collections::BTreeMap<Ipv4Addr, crate::policy::PeerPolicy>,
}

/// Outputs drained with [`BgpSpeaker::take_outputs`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpeakerOutput {
    /// Bytes to deliver to a peer.
    SendBytes {
        /// Destination peer.
        peer: Ipv4Addr,
        /// Encoded message bytes.
        bytes: Bytes,
    },
    /// A session reached Established.
    SessionUp {
        /// The peer.
        peer: Ipv4Addr,
    },
    /// A session went down.
    SessionDown {
        /// The peer.
        peer: Ipv4Addr,
    },
    /// The effective next-hop set for `prefix` changed (empty = withdrawn).
    RouteChanged {
        /// The prefix.
        prefix: Ipv4Prefix,
        /// New multipath next-hop set, sorted.
        next_hops: Vec<Ipv4Addr>,
    },
}

/// A complete BGP routing daemon, sans-IO.
#[derive(Debug)]
pub struct BgpSpeaker {
    /// Static configuration.
    pub config: BgpConfig,
    /// Peer addresses in ascending order — the dense peer index. All
    /// per-peer `Vec`s below are parallel to this one.
    peer_addrs: Vec<Ipv4Addr>,
    sessions: Vec<Session>,
    rib: LocRib,
    /// Adj-RIB-Out per peer index: row indexed by prefix id holding the
    /// last advertised interned attr id ([`NO_ATTR`] = nothing). Rows grow
    /// lazily; a session drop clears the row.
    adj_out: Vec<Vec<u32>>,
    /// Memoized export transform per peer index, keyed by
    /// `(best-path attr id, prefix marker, policy epoch)`: `None` means
    /// "suppressed" (AS-loop toward that peer, or an export route-map
    /// deny). Split horizon is checked outside the cache (it depends on
    /// where the best path was learned, not on its attributes). The prefix
    /// marker is 0 unless the peer's export map matches on prefix, in
    /// which case it is the prefix id + 1 — attr-only keying would
    /// conflate prefixes such a map distinguishes. Entries are never
    /// invalidated: the transform reads only static session config and the
    /// installed policy, and a policy swap bumps `policy_epoch`, retiring
    /// every old key.
    export_cache: Vec<HashMap<(u32, u32, u32), Option<AttrId>>>,
    export_hits: u64,
    export_misses: u64,
    /// Import route-map per peer index (`None` = permit all, unchanged).
    import_policy: Vec<Option<std::sync::Arc<crate::policy::RouteMap>>>,
    /// Export route-map per peer index, applied between split horizon and
    /// the standard eBGP transform.
    export_policy: Vec<Option<std::sync::Arc<crate::policy::RouteMap>>>,
    /// Precomputed per peer index: the export map matches on prefix, so
    /// the export cache must key on the prefix id too.
    export_prefix_sensitive: Vec<bool>,
    /// Bumped by [`BgpSpeaker::set_peer_policy`]; part of every
    /// export-cache key, so a policy swap retires stale entries without a
    /// scan.
    policy_epoch: u32,
    /// Last next-hop set reported per prefix id (empty = absent).
    fib_view: Vec<Vec<Ipv4Addr>>,
    outputs: Vec<SpeakerOutput>,
    started: bool,
    /// Per peer index: earliest instant the next announcement burst may go
    /// out (MRAI hold-down); `SimTime::ZERO` = unarmed.
    mrai_ready: Vec<SimTime>,
    /// Per peer index: prefixes whose announcements are waiting out the
    /// MRAI.
    mrai_pending: Vec<IdSet>,
    /// Set whenever an entry point may have moved [`BgpSpeaker::next_deadline`];
    /// cleared by [`BgpSpeaker::take_deadline_dirty`]. Lets a scheduler
    /// re-index this speaker's deadline only when it was touched, instead
    /// of polling every speaker every step.
    deadline_dirty: bool,
    /// Structured trace sink (FSM transitions, UPDATE tx/rx, MRAI flushes,
    /// RIB work). Defaults to the null tracer: one discriminant check per
    /// site, no snapshots, no allocation.
    tracer: Tracer,
    // Reusable scratch (capacity persists across calls; contents do not).
    scratch_events: Vec<(usize, SessionEvent)>,
    scratch_affected: Vec<PrefixId>,
    scratch_newly_up: Vec<usize>,
    scratch_flush: Vec<PrefixId>,
    scratch_withdraws: Vec<Ipv4Prefix>,
    scratch_groups: Vec<(AttrId, Vec<Ipv4Prefix>)>,
    scratch_group_of: HashMap<u32, usize>,
}

/// Short FSM-state label for trace events.
fn state_name(s: SessionState) -> &'static str {
    match s {
        SessionState::Idle => "idle",
        SessionState::Connect => "connect",
        SessionState::OpenSent => "open-sent",
        SessionState::OpenConfirm => "open-confirm",
        SessionState::Established => "established",
    }
}

impl BgpSpeaker {
    /// Builds a speaker (idle until [`BgpSpeaker::start`]) with a private
    /// attribute store.
    pub fn new(config: BgpConfig) -> BgpSpeaker {
        let rib = LocRib::new(config.asn, config.multipath);
        BgpSpeaker::build(config, rib)
    }

    /// Builds a speaker whose RIB interns attributes in a shared per-run
    /// [`crate::rib::AttrPool`].
    pub fn new_with_pool(config: BgpConfig, pool: crate::rib::AttrPool) -> BgpSpeaker {
        let rib = LocRib::new_shared(config.asn, config.multipath, pool);
        BgpSpeaker::build(config, rib)
    }

    /// Builds a speaker sharing both per-run pools — attribute sets and
    /// the prefix id space — with the rest of the fleet. The shape the
    /// parallel pump drains: pools are lock-light, and the speaker itself
    /// holds no shared mutable state, so distinct speakers can be pumped
    /// from distinct workers (see the `Send` assertion below).
    pub fn new_with_pools(
        config: BgpConfig,
        pool: crate::rib::AttrPool,
        prefixes: horse_net::intern::PrefixPool,
    ) -> BgpSpeaker {
        let rib = LocRib::new_shared_pools(config.asn, config.multipath, pool, prefixes);
        BgpSpeaker::build(config, rib)
    }

    fn build(config: BgpConfig, mut rib: LocRib) -> BgpSpeaker {
        // Dense peer index in ascending address order (last config entry
        // wins on a duplicate address, matching map-insert semantics).
        let mut by_addr: Vec<PeerConfig> = Vec::with_capacity(config.peers.len());
        for p in &config.peers {
            match by_addr.binary_search_by_key(&p.peer_addr, |c| c.peer_addr) {
                Ok(i) => by_addr[i] = *p,
                Err(i) => by_addr.insert(i, *p),
            }
        }
        let peer_addrs: Vec<Ipv4Addr> = by_addr.iter().map(|p| p.peer_addr).collect();
        let sessions: Vec<Session> = by_addr
            .iter()
            .map(|p| Session::new(*p, config.asn, config.router_id, config.timers))
            .collect();
        for n in &config.networks {
            rib.originate(*n, config.router_id);
        }
        let n = sessions.len();
        // Project the per-address policy map onto the dense peer index.
        let mut import_policy = Vec::with_capacity(n);
        let mut export_policy = Vec::with_capacity(n);
        let mut export_prefix_sensitive = Vec::with_capacity(n);
        for addr in &peer_addrs {
            let policy = config.policies.get(addr);
            import_policy.push(policy.and_then(|p| p.import.clone()));
            let export = policy.and_then(|p| p.export.clone());
            export_prefix_sensitive.push(export.as_deref().is_some_and(|m| m.prefix_sensitive()));
            export_policy.push(export);
        }
        BgpSpeaker {
            config,
            peer_addrs,
            sessions,
            rib,
            adj_out: vec![Vec::new(); n],
            export_cache: vec![HashMap::new(); n],
            export_hits: 0,
            export_misses: 0,
            import_policy,
            export_policy,
            export_prefix_sensitive,
            policy_epoch: 0,
            fib_view: Vec::new(),
            outputs: Vec::new(),
            started: false,
            mrai_ready: vec![SimTime::ZERO; n],
            mrai_pending: vec![IdSet::new(); n],
            deadline_dirty: true,
            tracer: Tracer::default(),
            scratch_events: Vec::new(),
            scratch_affected: Vec::new(),
            scratch_newly_up: Vec::new(),
            scratch_flush: Vec::new(),
            scratch_withdraws: Vec::new(),
            scratch_groups: Vec::new(),
            scratch_group_of: HashMap::new(),
        }
    }

    /// The dense index of a configured peer address.
    fn peer_idx(&self, peer: Ipv4Addr) -> Option<usize> {
        self.peer_addrs.binary_search(&peer).ok()
    }

    /// Installs a trace sink (see `horse-trace`). Pass [`Tracer::Null`] to
    /// disable again.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Drains this speaker's trace buffer, if tracing is enabled.
    pub fn take_trace_log(&mut self) -> Option<ComponentLog> {
        self.tracer.take_log()
    }

    /// Per-session FSM states, captured before a multi-peer entry point
    /// (`start`, `poll_timers`) mutates them. Only called when tracing is
    /// enabled; the single-peer entry points compare one session's state
    /// inline instead, so the hot receive path never allocates.
    fn fsm_snapshot(&self) -> Vec<SessionState> {
        self.sessions.iter().map(Session::state).collect()
    }

    /// Records a `BgpFsm` event for a single peer whose state moved from
    /// `from` to `to`. FSM transitions are rare (a handful per session
    /// lifetime), so the single-peer entry points compare states inline —
    /// two field reads — and only reach this slow path on an actual change.
    #[cold]
    fn trace_fsm_one(
        &mut self,
        peer: Ipv4Addr,
        from: SessionState,
        to: SessionState,
        now: SimTime,
    ) {
        self.tracer.record(
            now,
            TraceData::BgpFsm {
                peer: u32::from(peer),
                from: state_name(from),
                to: state_name(to),
            },
        );
    }

    /// Records a `BgpFsm` event for every session whose state changed since
    /// `before` (parallel to the peer index).
    fn trace_fsm_delta(&mut self, before: &[SessionState], now: SimTime) {
        for (pi, old) in before.iter().enumerate() {
            let new = self.sessions[pi].state();
            if new != *old {
                self.tracer.record(
                    now,
                    TraceData::BgpFsm {
                        peer: u32::from(self.peer_addrs[pi]),
                        from: state_name(*old),
                        to: state_name(new),
                    },
                );
            }
        }
    }

    /// Starts every session.
    pub fn start(&mut self, now: SimTime) {
        self.deadline_dirty = true;
        self.started = true;
        let before = if self.tracer.enabled() {
            self.fsm_snapshot()
        } else {
            Vec::new()
        };
        for s in &mut self.sessions {
            s.start(now);
        }
        self.trace_fsm_delta(&before, now);
        self.pump(now);
    }

    /// The transport to `peer` is connected.
    pub fn on_transport_up(&mut self, peer: Ipv4Addr, now: SimTime) {
        self.deadline_dirty = true;
        let mut moved = None;
        if let Some(pi) = self.peer_idx(peer) {
            let s = &mut self.sessions[pi];
            let before = s.state();
            s.on_transport_up(now);
            let after = s.state();
            if after != before {
                moved = Some((before, after));
            }
        }
        if let Some((from, to)) = moved {
            self.trace_fsm_one(peer, from, to, now);
        }
        self.pump(now);
    }

    /// The transport to `peer` dropped.
    pub fn on_transport_down(&mut self, peer: Ipv4Addr, now: SimTime) {
        self.deadline_dirty = true;
        let mut moved = None;
        if let Some(pi) = self.peer_idx(peer) {
            let s = &mut self.sessions[pi];
            let before = s.state();
            s.on_transport_down(now);
            let after = s.state();
            if after != before {
                moved = Some((before, after));
            }
        }
        if let Some((from, to)) = moved {
            self.trace_fsm_one(peer, from, to, now);
        }
        self.pump(now);
    }

    /// Bytes arrived from `peer`.
    pub fn on_bytes(&mut self, peer: Ipv4Addr, now: SimTime, bytes: &[u8]) {
        self.deadline_dirty = true;
        let mut moved = None;
        if let Some(pi) = self.peer_idx(peer) {
            let s = &mut self.sessions[pi];
            let before = s.state();
            s.on_bytes(now, bytes);
            let after = s.state();
            if after != before {
                moved = Some((before, after));
            }
        }
        if let Some((from, to)) = moved {
            self.trace_fsm_one(peer, from, to, now);
        }
        self.pump(now);
    }

    /// Fires due timers on every session, and flushes announcement batches
    /// whose MRAI hold-down has expired.
    pub fn poll_timers(&mut self, now: SimTime) {
        self.deadline_dirty = true;
        let before = if self.tracer.enabled() {
            self.fsm_snapshot()
        } else {
            Vec::new()
        };
        for s in &mut self.sessions {
            s.poll_timers(now);
        }
        self.trace_fsm_delta(&before, now);
        for pi in 0..self.sessions.len() {
            if self.mrai_pending[pi].is_empty() || now < self.mrai_ready[pi] {
                continue;
            }
            let mut flush = std::mem::take(&mut self.scratch_flush);
            flush.clear();
            flush.extend(self.mrai_pending[pi].iter().map(PrefixId));
            self.mrai_pending[pi].clear();
            if self.sessions[pi].is_established() {
                self.rib.sort_ids_by_value(&mut flush);
                self.tracer.record(
                    now,
                    TraceData::MraiFlush {
                        peer: u32::from(self.peer_addrs[pi]),
                        prefixes: flush.len() as u32,
                    },
                );
                self.sync_peer(pi, &flush, now);
            }
            self.scratch_flush = flush;
        }
        self.pump(now);
    }

    /// Earliest pending timer across sessions, including MRAI flushes.
    pub fn next_deadline(&self) -> Option<SimTime> {
        let session_min = self
            .sessions
            .iter()
            .filter_map(Session::next_deadline)
            .min();
        let mrai_min = (0..self.sessions.len())
            .filter(|&pi| !self.mrai_pending[pi].is_empty())
            .map(|pi| self.mrai_ready[pi])
            .min();
        match (session_min, mrai_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Originates a new network at runtime.
    pub fn originate(&mut self, prefix: Ipv4Prefix, now: SimTime) {
        self.deadline_dirty = true;
        let id = self.rib.originate(prefix, self.config.router_id);
        self.reconcile(&[id], now);
        self.pump(now);
    }

    /// Withdraws a locally originated network at runtime.
    pub fn withdraw(&mut self, prefix: Ipv4Prefix, now: SimTime) {
        self.deadline_dirty = true;
        if let Some(id) = self.rib.withdraw_local(prefix) {
            self.reconcile(&[id], now);
            self.pump(now);
        }
    }

    /// Drains accumulated outputs.
    pub fn take_outputs(&mut self) -> Vec<SpeakerOutput> {
        std::mem::take(&mut self.outputs)
    }

    /// True when the speaker was touched since the last call and its
    /// [`BgpSpeaker::next_deadline`] may have changed (cleared on read).
    /// Timers only move through the speaker's entry points, so a scheduler
    /// that re-reads the deadline whenever this reports true always holds
    /// the current value.
    pub fn take_deadline_dirty(&mut self) -> bool {
        std::mem::replace(&mut self.deadline_dirty, false)
    }

    /// Read access to the RIB (tests, dumps).
    pub fn rib(&self) -> &LocRib {
        &self.rib
    }

    /// Snapshot of the RIB work counters with the speaker's export-cache
    /// figures merged in (observability; see [`RibStats`]).
    pub fn rib_stats(&self) -> RibStats {
        let mut s = self.rib.stats();
        s.export_cache_hits = self.export_hits;
        s.export_cache_misses = self.export_misses;
        s
    }

    /// State of the session to `peer`.
    pub fn session_state(&self, peer: Ipv4Addr) -> Option<SessionState> {
        self.peer_idx(peer).map(|pi| self.sessions[pi].state())
    }

    /// True when every configured session is Established.
    pub fn fully_converged_sessions(&self) -> bool {
        self.sessions.iter().all(Session::is_established)
    }

    /// Total messages sent across sessions (observability).
    pub fn msgs_sent(&self) -> u64 {
        self.sessions.iter().map(|s| s.msgs_sent).sum()
    }

    /// Processes queued session events until quiescent.
    fn pump(&mut self, now: SimTime) {
        loop {
            let mut work = std::mem::take(&mut self.scratch_events);
            work.clear();
            for (pi, s) in self.sessions.iter_mut().enumerate() {
                for ev in s.take_events() {
                    work.push((pi, ev));
                }
            }
            if work.is_empty() {
                self.scratch_events = work;
                return;
            }
            let mut affected = std::mem::take(&mut self.scratch_affected);
            affected.clear();
            let mut newly_up = std::mem::take(&mut self.scratch_newly_up);
            newly_up.clear();
            for (pi, ev) in work.drain(..) {
                let peer = self.peer_addrs[pi];
                match ev {
                    SessionEvent::SendBytes(bytes) => {
                        self.outputs.push(SpeakerOutput::SendBytes { peer, bytes });
                    }
                    SessionEvent::Established => {
                        newly_up.push(pi);
                        self.outputs.push(SpeakerOutput::SessionUp { peer });
                    }
                    SessionEvent::Down(_) => {
                        affected.extend(self.rib.drop_peer(peer));
                        self.adj_out[pi].clear();
                        self.mrai_pending[pi].clear();
                        self.mrai_ready[pi] = SimTime::ZERO;
                        self.outputs.push(SpeakerOutput::SessionDown { peer });
                    }
                    SessionEvent::Update(update) => {
                        self.tracer.record(
                            now,
                            TraceData::BgpRx {
                                peer: u32::from(peer),
                                announced: update.nlri.len() as u32,
                                withdrawn: update.withdrawn.len() as u32,
                            },
                        );
                        // The single import-policy choke point: the peer's
                        // route-map (if any) transforms or drops routes
                        // before they are interned into the RIB.
                        affected.extend(self.rib.update_from_peer_policed(
                            peer,
                            true,
                            &update,
                            self.import_policy[pi].as_deref(),
                        ));
                    }
                }
            }
            self.scratch_events = work;
            if !newly_up.is_empty() {
                // One read of the persistent live-prefix index serves every
                // newly established peer.
                let all = self.rib.live_prefix_ids();
                for pi in newly_up.drain(..) {
                    self.sync_peer(pi, &all, now);
                }
            }
            self.scratch_newly_up = newly_up;
            if !affected.is_empty() {
                // Per-event slices are each value-sorted; merge the
                // concatenation back into one sorted, deduped slice.
                self.rib.sort_ids_by_value(&mut affected);
                let ids = std::mem::take(&mut affected);
                self.reconcile(&ids, now);
                affected = ids;
            }
            self.scratch_affected = affected;
        }
    }

    /// Recomputes decisions for `ids` (sorted by prefix value): reports FIB
    /// changes and refreshes every established peer's advertisements.
    fn reconcile(&mut self, ids: &[PrefixId], now: SimTime) {
        // Diff only the two decision counters around the reconcile: a full
        // `rib.stats()` snapshot here costs ~4% wall on the convergence
        // replay, the counter pair is noise-level.
        let counters_before = if self.tracer.enabled() {
            Some(self.rib.decide_counters())
        } else {
            None
        };
        if let Some(&max) = ids.iter().max() {
            if max.index() >= self.fib_view.len() {
                self.fib_view.resize(max.index() + 1, Vec::new());
            }
        }
        // 1. FIB-facing next-hop sets — one decision read per prefix; the
        //    memoized result also serves every peer sync below.
        for &id in ids {
            let decision = self.rib.decide_id(id);
            let slot = &mut self.fib_view[id.index()];
            let hops: &[Ipv4Addr] = match &decision {
                Some(d) if d.best.is_local() => {
                    // Locally originated prefixes are connected routes; the
                    // data plane already knows them. Report nothing.
                    slot.clear();
                    continue;
                }
                Some(d) => &d.next_hops,
                None => &[],
            };
            // Compare before cloning: the steady-state "nothing changed"
            // case used to clone the hop set every time.
            if slot.as_slice() != hops {
                slot.clear();
                slot.extend_from_slice(hops);
                self.outputs.push(SpeakerOutput::RouteChanged {
                    prefix: self.rib.prefix_value(id),
                    next_hops: hops.to_vec(),
                });
            }
        }
        // 2. Peer advertisements, in ascending peer-address order.
        for pi in 0..self.sessions.len() {
            if self.sessions[pi].is_established() {
                self.sync_peer(pi, ids, now);
            }
        }
        if let Some((decides_before, hits_before)) = counters_before {
            let (decides, hits) = self.rib.decide_counters();
            self.tracer.record(
                now,
                TraceData::RibWork {
                    decides: (decides - decides_before) as u32,
                    cache_hits: (hits - hits_before) as u32,
                },
            );
        }
    }

    /// Brings a peer's Adj-RIB-Out in line with the current decisions for
    /// `ids` (sorted by prefix value), emitting batched UPDATEs.
    /// Withdrawals always go out immediately; announcements respect the
    /// MRAI hold-down (RFC 4271 §9.2.1.1) and are batched for the flush in
    /// [`BgpSpeaker::poll_timers`].
    fn sync_peer(&mut self, pi: usize, ids: &[PrefixId], now: SimTime) {
        let mrai = self.config.timers.mrai;
        let held = !mrai.is_zero() && now < self.mrai_ready[pi];
        let mut withdraws = std::mem::take(&mut self.scratch_withdraws);
        withdraws.clear();
        // Announcement batches grouped by interned attr id, in
        // first-occurrence order so the emitted UPDATE sequence is
        // byte-identical to the address-keyed implementation.
        let mut announces = std::mem::take(&mut self.scratch_groups);
        announces.clear();
        let mut group_of = std::mem::take(&mut self.scratch_group_of);
        group_of.clear();
        for &id in ids {
            let desired = match self.rib.decide_id(id) {
                Some(d) => self.export_route(pi, id, &d),
                None => None,
            };
            let row = &mut self.adj_out[pi];
            if id.index() >= row.len() {
                row.resize(id.index() + 1, NO_ATTR);
            }
            let current = row[id.index()];
            match desired {
                None if current != NO_ATTR => {
                    withdraws.push(self.rib.prefix_value(id));
                    row[id.index()] = NO_ATTR;
                    // A pending announcement for a now-withdrawn prefix is
                    // obsolete.
                    self.mrai_pending[pi].remove(id.0);
                }
                Some(want) if current != want.index() => {
                    if held {
                        self.mrai_pending[pi].insert(id.0);
                        continue;
                    }
                    let raw = want.index();
                    match group_of.get(&raw) {
                        Some(&g) => announces[g].1.push(self.rib.prefix_value(id)),
                        None => {
                            group_of.insert(raw, announces.len());
                            announces.push((want, vec![self.rib.prefix_value(id)]));
                        }
                    }
                    self.adj_out[pi][id.index()] = raw;
                }
                _ => {}
            }
        }
        let sent_announcements = !announces.is_empty();
        if !withdraws.is_empty() {
            self.tracer.record(
                now,
                TraceData::BgpTx {
                    peer: u32::from(self.peer_addrs[pi]),
                    announced: 0,
                    withdrawn: withdraws.len() as u32,
                },
            );
            self.sessions[pi].send_update(UpdateMsg {
                withdrawn: std::mem::take(&mut withdraws),
                attrs: None,
                nlri: vec![],
            });
        }
        for (attr, nlri) in announces.drain(..) {
            // The UPDATE shares the store's canonical allocation.
            let attrs = self.rib.attrs_of(attr);
            self.tracer.record(
                now,
                TraceData::BgpTx {
                    peer: u32::from(self.peer_addrs[pi]),
                    announced: nlri.len() as u32,
                    withdrawn: 0,
                },
            );
            self.sessions[pi].send_update(UpdateMsg {
                withdrawn: vec![],
                attrs: Some(attrs),
                nlri,
            });
        }
        if sent_announcements && !mrai.is_zero() {
            self.mrai_ready[pi] = now + mrai;
        }
        self.scratch_withdraws = withdraws;
        self.scratch_groups = announces;
        self.scratch_group_of = group_of;
    }

    /// eBGP export for the peer at index `pi`: split horizon, then the
    /// peer's export route-map (if any — the single export-policy choke
    /// point), then the standard transform: prepend own AS, next-hop-self,
    /// strip LOCAL_PREF and MED. The export set block composes with the
    /// standard transform: `add/del_communities` edit the outgoing
    /// communities, `prepend` adds extra own-AS copies, `med` survives the
    /// strip (the sender deliberately signals the neighbor), `local_pref`
    /// is ignored (never sent over eBGP). The transform (everything past
    /// split horizon) is memoized per `(peer, AttrId, prefix?, epoch)`.
    fn export_route(&mut self, pi: usize, id: PrefixId, decision: &Decision) -> Option<AttrId> {
        if decision.best.peer == self.peer_addrs[pi] {
            return None; // split horizon
        }
        let pfx_key = if self.export_prefix_sensitive[pi] {
            id.0 + 1
        } else {
            0
        };
        let key = (decision.best.attr_id.index(), pfx_key, self.policy_epoch);
        if let Some(cached) = self.export_cache[pi].get(&key) {
            self.export_hits += 1;
            return *cached;
        }
        self.export_misses += 1;
        let cfg = &self.sessions[pi].config;
        let (remote_as, local_addr) = (cfg.remote_as, cfg.local_addr);
        // Sending a path containing the peer's AS would be rejected by its
        // loop check anyway; suppress it to save messages (common policy).
        let exported = 'exp: {
            if decision.best.attrs.contains_asn(remote_as) {
                break 'exp None;
            }
            // The route-map matches against the Loc-RIB attributes
            // (pre-prepend, communities and local-pref intact).
            let set = match self.export_policy[pi].as_deref() {
                None => None,
                Some(map) => {
                    use crate::policy::PolicyAction;
                    let prefix = self.rib.prefix_value(id);
                    match map.first_match(prefix, &decision.best.attrs) {
                        Some(i) if map.clauses[i].action == PolicyAction::Permit => {
                            Some(&map.clauses[i].set)
                        }
                        // Deny clause or no match: implicit deny.
                        _ => break 'exp None,
                    }
                }
            };
            let mut out = (*decision.best.attrs).clone();
            if let Some(set) = set {
                if !set.del_communities.is_empty() {
                    out.communities.retain(|c| !set.del_communities.contains(c));
                }
                if !set.add_communities.is_empty() {
                    out.communities.extend_from_slice(&set.add_communities);
                    out.communities.sort_unstable();
                    out.communities.dedup();
                }
            }
            out = out.prepended(self.config.asn);
            for _ in 0..set.map_or(0, |s| s.prepend) {
                out = out.prepended(self.config.asn);
            }
            out.next_hop = local_addr;
            out.local_pref = None;
            out.med = set.and_then(|s| s.med);
            Some(self.rib.intern_attrs(out))
        };
        self.export_cache[pi].insert(key, exported);
        exported
    }

    /// Swaps the import/export route-maps for `peer` at runtime. Takes
    /// effect for routes received or exported from now on: already-interned
    /// candidates are not retroactively re-imported (a real router requires
    /// a route refresh for that too), and the policy epoch bump retires
    /// every memoized export transform so the next reconcile re-evaluates.
    pub fn set_peer_policy(&mut self, peer: Ipv4Addr, policy: crate::policy::PeerPolicy) {
        let Some(pi) = self.peer_idx(peer) else {
            return;
        };
        self.import_policy[pi] = policy.import.clone();
        self.export_prefix_sensitive[pi] = policy
            .export
            .as_deref()
            .is_some_and(|m| m.prefix_sensitive());
        self.export_policy[pi] = policy.export.clone();
        self.config.policies.insert(peer, policy);
        self.policy_epoch += 1;
        // Adj-RIB-Out entries were computed under the old epoch; mark every
        // peer's rows dirty by clearing nothing — the next reconcile over
        // affected ids re-runs export_route, which now misses the cache.
        self.deadline_dirty = true;
    }
}

/// The parallel pump hands disjoint `&mut BgpSpeaker`s to worker threads
/// at each round barrier, which requires `BgpSpeaker: Send`. This fails to
/// compile — not at runtime — if a non-`Send` handle (an `Rc`, a raw
/// pointer) ever sneaks into the speaker, its RIB, or its tracer.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<BgpSpeaker>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use horse_sim::SimDuration;
    use std::collections::{BTreeMap, BTreeSet};

    /// A tiny in-memory harness wiring speakers point-to-point.
    struct Harness {
        speakers: Vec<BgpSpeaker>,
        /// (speaker index, its address) pairs — addresses are unique.
        addr_of: BTreeMap<Ipv4Addr, usize>,
        /// Collected RouteChanged outputs per speaker.
        route_events: Vec<Vec<(Ipv4Prefix, Vec<Ipv4Addr>)>>,
    }

    impl Harness {
        fn new(speakers: Vec<BgpSpeaker>) -> Harness {
            let mut addr_of = BTreeMap::new();
            for (i, s) in speakers.iter().enumerate() {
                for p in &s.config.peers {
                    addr_of.insert(p.local_addr, i);
                }
            }
            let n = speakers.len();
            Harness {
                speakers,
                addr_of,
                route_events: vec![Vec::new(); n],
            }
        }

        fn start(&mut self, now: SimTime) {
            for s in &mut self.speakers {
                s.start(now);
            }
            // Bring all transports up (the CM does this in the real system).
            for i in 0..self.speakers.len() {
                let peers: Vec<Ipv4Addr> = self.speakers[i]
                    .config
                    .peers
                    .iter()
                    .map(|p| p.peer_addr)
                    .collect();
                for p in peers {
                    self.speakers[i].on_transport_up(p, now);
                }
            }
            self.run(now);
        }

        /// Shuttles bytes until every speaker is quiescent.
        fn run(&mut self, now: SimTime) {
            loop {
                let mut moved = false;
                for i in 0..self.speakers.len() {
                    for out in self.speakers[i].take_outputs() {
                        match out {
                            SpeakerOutput::SendBytes { peer, bytes } => {
                                // `peer` is the remote's address; find the
                                // speaker owning it. The remote sees the
                                // message as coming from our local address
                                // on that session.
                                let from = self.speakers[i]
                                    .config
                                    .peers
                                    .iter()
                                    .find(|p| p.peer_addr == peer)
                                    .map(|p| p.local_addr)
                                    .expect("configured peer");
                                let j = self.addr_of[&peer];
                                self.speakers[j].on_bytes(from, now, &bytes);
                                moved = true;
                            }
                            SpeakerOutput::RouteChanged { prefix, next_hops } => {
                                self.route_events[i].push((prefix, next_hops));
                            }
                            SpeakerOutput::SessionUp { .. } | SpeakerOutput::SessionDown { .. } => {
                            }
                        }
                    }
                }
                if !moved {
                    return;
                }
            }
        }

        fn fib_of(&self, i: usize) -> BTreeMap<Ipv4Prefix, Vec<Ipv4Addr>> {
            let mut fib = BTreeMap::new();
            for (p, hops) in &self.route_events[i] {
                if hops.is_empty() {
                    fib.remove(p);
                } else {
                    fib.insert(*p, hops.clone());
                }
            }
            fib
        }
    }

    fn quick_timers() -> TimerConfig {
        TimerConfig {
            hold_time: SimDuration::from_secs(9),
            connect_retry: SimDuration::from_secs(1),
            mrai: SimDuration::ZERO,
        }
    }

    fn speaker(
        asn: u16,
        id: [u8; 4],
        peers: Vec<(Ipv4Addr, Ipv4Addr, u16)>, // (peer, local, remote_as)
        networks: Vec<&str>,
    ) -> BgpSpeaker {
        BgpSpeaker::new(BgpConfig {
            asn,
            router_id: Ipv4Addr::from(id),
            timers: quick_timers(),
            peers: peers
                .into_iter()
                .map(|(peer_addr, local_addr, remote_as)| PeerConfig {
                    peer_addr,
                    local_addr,
                    remote_as,
                })
                .collect(),
            networks: networks.iter().map(|s| s.parse().unwrap()).collect(),
            policies: Default::default(),
            multipath: true,
        })
    }

    fn addr(a: u8, b: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 255, a, b)
    }

    #[test]
    fn two_routers_exchange_networks() {
        // r1 (AS 65001, net 10.1/16) <-> r2 (AS 65002, net 10.2/16)
        let r1 = speaker(
            65001,
            [1, 1, 1, 1],
            vec![(addr(0, 2), addr(0, 1), 65002)],
            vec!["10.1.0.0/16"],
        );
        let r2 = speaker(
            65002,
            [2, 2, 2, 2],
            vec![(addr(0, 1), addr(0, 2), 65001)],
            vec!["10.2.0.0/16"],
        );
        let mut h = Harness::new(vec![r1, r2]);
        h.start(SimTime::ZERO);
        let fib1 = h.fib_of(0);
        let fib2 = h.fib_of(1);
        assert_eq!(
            fib1.get(&"10.2.0.0/16".parse().unwrap()),
            Some(&vec![addr(0, 2)])
        );
        assert_eq!(
            fib2.get(&"10.1.0.0/16".parse().unwrap()),
            Some(&vec![addr(0, 1)])
        );
        assert!(h.speakers[0].fully_converged_sessions());
    }

    #[test]
    fn line_propagates_with_as_path_growth() {
        // r1 - r2 - r3; r1's network must reach r3 via r2.
        let r1 = speaker(
            65001,
            [1, 1, 1, 1],
            vec![(addr(12, 2), addr(12, 1), 65002)],
            vec!["10.1.0.0/16"],
        );
        let r2 = speaker(
            65002,
            [2, 2, 2, 2],
            vec![
                (addr(12, 1), addr(12, 2), 65001),
                (addr(23, 3), addr(23, 2), 65003),
            ],
            vec![],
        );
        let r3 = speaker(
            65003,
            [3, 3, 3, 3],
            vec![(addr(23, 2), addr(23, 3), 65002)],
            vec![],
        );
        let mut h = Harness::new(vec![r1, r2, r3]);
        h.start(SimTime::ZERO);
        let fib3 = h.fib_of(2);
        assert_eq!(
            fib3.get(&"10.1.0.0/16".parse().unwrap()),
            Some(&vec![addr(23, 2)]),
            "r3 reaches 10.1/16 via r2"
        );
        // r3's Adj-RIB-In path should be [65002, 65001].
        let d = h.speakers[2]
            .rib()
            .decide("10.1.0.0/16".parse().unwrap())
            .unwrap();
        assert_eq!(d.best.attrs.as_path_len(), 2);
    }

    #[test]
    fn diamond_yields_multipath() {
        // src - {a, b} - dst: dst sees src's net over two equal paths.
        //      a (65010)
        // src <         > dst
        //      b (65020)
        let src = speaker(
            65001,
            [1, 1, 1, 1],
            vec![
                (addr(1, 2), addr(1, 1), 65010),
                (addr(2, 2), addr(2, 1), 65020),
            ],
            vec!["10.1.0.0/16"],
        );
        let a = speaker(
            65010,
            [10, 10, 10, 10],
            vec![
                (addr(1, 1), addr(1, 2), 65001),
                (addr(3, 2), addr(3, 1), 65002),
            ],
            vec![],
        );
        let b = speaker(
            65020,
            [20, 20, 20, 20],
            vec![
                (addr(2, 1), addr(2, 2), 65001),
                (addr(4, 2), addr(4, 1), 65002),
            ],
            vec![],
        );
        let dst = speaker(
            65002,
            [2, 2, 2, 2],
            vec![
                (addr(3, 1), addr(3, 2), 65010),
                (addr(4, 1), addr(4, 2), 65020),
            ],
            vec![],
        );
        let mut h = Harness::new(vec![src, a, b, dst]);
        h.start(SimTime::ZERO);
        let fib = h.fib_of(3);
        let hops = fib.get(&"10.1.0.0/16".parse().unwrap()).unwrap();
        assert_eq!(hops.len(), 2, "ECMP over both transit ASes: {hops:?}");
    }

    #[test]
    fn session_down_withdraws_routes() {
        let r1 = speaker(
            65001,
            [1, 1, 1, 1],
            vec![(addr(0, 2), addr(0, 1), 65002)],
            vec!["10.1.0.0/16"],
        );
        let r2 = speaker(
            65002,
            [2, 2, 2, 2],
            vec![(addr(0, 1), addr(0, 2), 65001)],
            vec![],
        );
        let mut h = Harness::new(vec![r1, r2]);
        h.start(SimTime::ZERO);
        assert!(!h.fib_of(1).is_empty());
        // Kill the transport on r2's side.
        h.speakers[1].on_transport_down(addr(0, 1), SimTime::from_secs(1));
        h.run(SimTime::from_secs(1));
        assert!(
            h.fib_of(1).is_empty(),
            "routes flushed when the session drops"
        );
    }

    #[test]
    fn runtime_originate_propagates() {
        let r1 = speaker(
            65001,
            [1, 1, 1, 1],
            vec![(addr(0, 2), addr(0, 1), 65002)],
            vec![],
        );
        let r2 = speaker(
            65002,
            [2, 2, 2, 2],
            vec![(addr(0, 1), addr(0, 2), 65001)],
            vec![],
        );
        let mut h = Harness::new(vec![r1, r2]);
        h.start(SimTime::ZERO);
        assert!(h.fib_of(1).is_empty());
        h.speakers[0].originate("10.42.0.0/16".parse().unwrap(), SimTime::from_secs(1));
        h.run(SimTime::from_secs(1));
        assert!(h.fib_of(1).contains_key(&"10.42.0.0/16".parse().unwrap()));
        // And runtime withdraw.
        h.speakers[0].withdraw("10.42.0.0/16".parse().unwrap(), SimTime::from_secs(2));
        h.run(SimTime::from_secs(2));
        assert!(h.fib_of(1).is_empty());
    }

    #[test]
    fn no_redundant_updates_after_convergence() {
        let r1 = speaker(
            65001,
            [1, 1, 1, 1],
            vec![(addr(0, 2), addr(0, 1), 65002)],
            vec!["10.1.0.0/16"],
        );
        let r2 = speaker(
            65002,
            [2, 2, 2, 2],
            vec![(addr(0, 1), addr(0, 2), 65001)],
            vec!["10.2.0.0/16"],
        );
        let mut h = Harness::new(vec![r1, r2]);
        h.start(SimTime::ZERO);
        let sent_before = h.speakers[0].msgs_sent();
        // Poll timers just shy of keepalive interval: nothing should move.
        h.speakers[0].poll_timers(SimTime::from_secs(2));
        h.run(SimTime::from_secs(2));
        assert_eq!(h.speakers[0].msgs_sent(), sent_before);
    }

    /// Builds a speaker with an MRAI hold-down.
    fn speaker_mrai(
        asn: u16,
        id: [u8; 4],
        peers: Vec<(Ipv4Addr, Ipv4Addr, u16)>,
        networks: Vec<&str>,
        mrai_secs: u64,
    ) -> BgpSpeaker {
        let mut s = speaker(asn, id, peers, networks);
        s.config.timers.mrai = SimDuration::from_secs(mrai_secs);
        // Rebuild so sessions copy the timers (mrai lives on the speaker
        // side only, but keep it consistent).
        BgpSpeaker::new(s.config)
    }

    #[test]
    fn mrai_delays_and_batches_announcements() {
        // r1 -- r2 -- r3; r2 enforces a 5 s MRAI toward its peers.
        let r1 = speaker(
            65001,
            [1, 1, 1, 1],
            vec![(addr(12, 2), addr(12, 1), 65002)],
            vec!["10.1.0.0/16"],
        );
        let r2 = speaker_mrai(
            65002,
            [2, 2, 2, 2],
            vec![
                (addr(12, 1), addr(12, 2), 65001),
                (addr(23, 3), addr(23, 2), 65003),
            ],
            vec![],
            5,
        );
        let r3 = speaker(
            65003,
            [3, 3, 3, 3],
            vec![(addr(23, 2), addr(23, 3), 65002)],
            vec![],
        );
        let mut h = Harness::new(vec![r1, r2, r3]);
        h.start(SimTime::ZERO);
        // Initial convergence: r3 learned 10.1/16 (first burst is not held).
        let p1: Ipv4Prefix = "10.1.0.0/16".parse().unwrap();
        let p2: Ipv4Prefix = "10.42.0.0/16".parse().unwrap();
        assert!(h.speakers[2].rib().decide(p1).is_some());
        // r1 originates a second network at t=1: r2 learns it but must sit
        // on the announcement until its MRAI (armed at t=0) expires at t=5.
        h.speakers[0].originate(p2, SimTime::from_secs(1));
        h.run(SimTime::from_secs(1));
        assert!(
            h.speakers[1].rib().decide(p2).is_some(),
            "r2 itself learned the route"
        );
        assert!(
            h.speakers[2].rib().decide(p2).is_none(),
            "r3 must not see it during the hold-down"
        );
        // Before expiry: still nothing.
        h.speakers[1].poll_timers(SimTime::from_secs(4));
        h.run(SimTime::from_secs(4));
        assert!(h.speakers[2].rib().decide(p2).is_none());
        // After expiry the batch flushes.
        h.speakers[1].poll_timers(SimTime::from_secs(5));
        h.run(SimTime::from_secs(5));
        assert!(
            h.speakers[2].rib().decide(p2).is_some(),
            "flushed after MRAI"
        );
    }

    #[test]
    fn mrai_does_not_delay_withdrawals() {
        let r1 = speaker(
            65001,
            [1, 1, 1, 1],
            vec![(addr(12, 2), addr(12, 1), 65002)],
            vec!["10.1.0.0/16"],
        );
        let r2 = speaker_mrai(
            65002,
            [2, 2, 2, 2],
            vec![
                (addr(12, 1), addr(12, 2), 65001),
                (addr(23, 3), addr(23, 2), 65003),
            ],
            vec![],
            30,
        );
        let r3 = speaker(
            65003,
            [3, 3, 3, 3],
            vec![(addr(23, 2), addr(23, 3), 65002)],
            vec![],
        );
        let mut h = Harness::new(vec![r1, r2, r3]);
        h.start(SimTime::ZERO);
        let p1: Ipv4Prefix = "10.1.0.0/16".parse().unwrap();
        assert!(h.speakers[2].rib().decide(p1).is_some());
        // Withdraw at t=1, deep inside r2's 30 s hold-down: must propagate
        // immediately (withdrawals are exempt from MRAI).
        h.speakers[0].withdraw(p1, SimTime::from_secs(1));
        h.run(SimTime::from_secs(1));
        assert!(
            h.speakers[2].rib().decide(p1).is_none(),
            "withdrawal reached r3 without waiting"
        );
    }

    #[test]
    fn mrai_deadline_visible_to_scheduler() {
        let r1 = speaker(
            65001,
            [1, 1, 1, 1],
            vec![(addr(12, 2), addr(12, 1), 65002)],
            vec!["10.1.0.0/16"],
        );
        let r2 = speaker_mrai(
            65002,
            [2, 2, 2, 2],
            vec![
                (addr(12, 1), addr(12, 2), 65001),
                (addr(23, 3), addr(23, 2), 65003),
            ],
            vec![],
            5,
        );
        let r3 = speaker(
            65003,
            [3, 3, 3, 3],
            vec![(addr(23, 2), addr(23, 3), 65002)],
            vec![],
        );
        let mut h = Harness::new(vec![r1, r2, r3]);
        h.start(SimTime::ZERO);
        h.speakers[0].originate("10.42.0.0/16".parse().unwrap(), SimTime::from_secs(1));
        h.run(SimTime::from_secs(1));
        // With a batch pending, r2's next deadline is the MRAI flush at
        // t=5 (earlier than its 3 s keepalive? keepalive is hold/3 = 3 s,
        // so the deadline must be min(3, 5) = 3; both must be included —
        // assert the MRAI flush is not *missed*: the deadline is ≤ t=5).
        let d = h.speakers[1].next_deadline().expect("deadline exists");
        assert!(
            d <= SimTime::from_secs(5),
            "scheduler would sleep past the MRAI flush: {d}"
        );
    }

    #[test]
    fn export_cache_batches_shared_attrs_and_keeps_withdrawal_bypass() {
        // r1 -- r2 -- r3; r2 enforces a 5 s MRAI toward its peers. Two
        // prefixes that share one attribute set must flush as a SINGLE
        // UPDATE (grouping is by interned attr id now, not a deep scan),
        // withdrawals must still bypass the hold-down, and a flap +
        // re-announce must be served from r2's export cache.
        let r1 = speaker(
            65001,
            [1, 1, 1, 1],
            vec![(addr(12, 2), addr(12, 1), 65002)],
            vec!["10.1.0.0/16"],
        );
        let r2 = speaker_mrai(
            65002,
            [2, 2, 2, 2],
            vec![
                (addr(12, 1), addr(12, 2), 65001),
                (addr(23, 3), addr(23, 2), 65003),
            ],
            vec![],
            5,
        );
        let r3 = speaker(
            65003,
            [3, 3, 3, 3],
            vec![(addr(23, 2), addr(23, 3), 65002)],
            vec![],
        );
        let mut h = Harness::new(vec![r1, r2, r3]);
        h.start(SimTime::ZERO);
        let p2: Ipv4Prefix = "10.42.0.0/16".parse().unwrap();
        let p3: Ipv4Prefix = "10.43.0.0/16".parse().unwrap();
        // Two more networks at t=1; identical attributes from r1, so at r2
        // they intern to the same id.
        h.speakers[0].originate(p2, SimTime::from_secs(1));
        h.speakers[0].originate(p3, SimTime::from_secs(1));
        h.run(SimTime::from_secs(1));
        assert!(h.speakers[2].rib().decide(p2).is_none(), "held by MRAI");
        // Flush at t=5: intercept r2's wire output toward r3 before
        // delivering it, to count UPDATE messages.
        h.speakers[1].poll_timers(SimTime::from_secs(5));
        let mut updates = 0usize;
        let mut nlri: BTreeSet<Ipv4Prefix> = BTreeSet::new();
        for out in h.speakers[1].take_outputs() {
            match out {
                SpeakerOutput::SendBytes { peer, bytes } => {
                    if peer == addr(23, 3) {
                        let mut off = 0;
                        while off < bytes.len() {
                            let (m, used) = crate::msg::Message::decode(&bytes[off..])
                                .expect("valid wire bytes")
                                .expect("complete message");
                            off += used;
                            if let crate::msg::Message::Update(u) = m {
                                updates += 1;
                                nlri.extend(u.nlri.iter().copied());
                            }
                        }
                    }
                    let from = h.speakers[1]
                        .config
                        .peers
                        .iter()
                        .find(|p| p.peer_addr == peer)
                        .map(|p| p.local_addr)
                        .expect("configured peer");
                    let j = h.addr_of[&peer];
                    h.speakers[j].on_bytes(from, SimTime::from_secs(5), &bytes);
                }
                SpeakerOutput::RouteChanged { prefix, next_hops } => {
                    h.route_events[1].push((prefix, next_hops));
                }
                _ => {}
            }
        }
        h.run(SimTime::from_secs(5));
        assert_eq!(updates, 1, "shared attrs must batch into one UPDATE");
        assert_eq!(nlri, [p2, p3].into_iter().collect::<BTreeSet<_>>());
        assert!(h.speakers[2].rib().decide(p2).is_some());
        assert!(h.speakers[2].rib().decide(p3).is_some());
        // Withdraw p2 at t=6 — deep inside the re-armed hold-down; the
        // withdrawal must reach r3 immediately.
        h.speakers[0].withdraw(p2, SimTime::from_secs(6));
        h.run(SimTime::from_secs(6));
        assert!(
            h.speakers[2].rib().decide(p2).is_none(),
            "withdrawal bypasses MRAI under the export cache"
        );
        // Re-announce p2 at t=11 (MRAI idle again): identical attributes
        // re-intern to the same id, so r2 answers its export toward r3
        // from the cache — hits grow, misses do not.
        let before = h.speakers[1].rib_stats();
        assert!(before.export_cache_hits > 0, "shared attrs already hit");
        // (No poll_timers here: the harness never exchanges keepalives, so
        // polling at t=11 would expire the 9 s hold timer. The MRAI is
        // idle again by now, so the announce goes straight out.)
        h.speakers[0].originate(p2, SimTime::from_secs(11));
        h.run(SimTime::from_secs(11));
        let after = h.speakers[1].rib_stats();
        assert!(h.speakers[2].rib().decide(p2).is_some(), "re-learned");
        assert!(
            after.export_cache_hits > before.export_cache_hits,
            "re-announce must be an export-cache hit"
        );
        assert_eq!(
            after.export_cache_misses, before.export_cache_misses,
            "no new export computation on a flap + re-announce"
        );
    }

    #[test]
    fn shared_pool_speakers_converge_identically() {
        // Same two-router topology twice: private stores vs one shared
        // pool. FIBs and message counts must be identical; the pool ends
        // up with every distinct attribute set interned once.
        let build = |pool: Option<crate::rib::AttrPool>| {
            let mk = |asn, id: [u8; 4], peers: Vec<(Ipv4Addr, Ipv4Addr, u16)>, nets: Vec<&str>| {
                let config = BgpConfig {
                    asn,
                    router_id: Ipv4Addr::from(id),
                    timers: quick_timers(),
                    peers: peers
                        .into_iter()
                        .map(|(peer_addr, local_addr, remote_as)| PeerConfig {
                            peer_addr,
                            local_addr,
                            remote_as,
                        })
                        .collect(),
                    networks: nets.iter().map(|s| s.parse().unwrap()).collect(),
                    policies: Default::default(),
                    multipath: true,
                };
                match &pool {
                    Some(p) => BgpSpeaker::new_with_pool(config, p.clone()),
                    None => BgpSpeaker::new(config),
                }
            };
            let r1 = mk(
                65001,
                [1, 1, 1, 1],
                vec![(addr(0, 2), addr(0, 1), 65002)],
                vec!["10.1.0.0/16", "10.3.0.0/16"],
            );
            let r2 = mk(
                65002,
                [2, 2, 2, 2],
                vec![(addr(0, 1), addr(0, 2), 65001)],
                vec!["10.2.0.0/16"],
            );
            let mut h = Harness::new(vec![r1, r2]);
            h.start(SimTime::ZERO);
            h
        };
        let private = build(None);
        let pool = crate::rib::AttrPool::new();
        let shared = build(Some(pool.clone()));
        for i in 0..2 {
            assert_eq!(private.fib_of(i), shared.fib_of(i), "speaker {i} FIB");
            assert_eq!(
                private.speakers[i].msgs_sent(),
                shared.speakers[i].msgs_sent()
            );
        }
        // The pool holds the union of both speakers' distinct sets, and the
        // per-speaker store-size figure is zeroed so a merged report counts
        // the pool once.
        let private_total: u64 = (0..2)
            .map(|i| private.speakers[i].rib_stats().attr_store_size)
            .sum();
        assert!(pool.len() as u64 <= private_total);
        assert!(pool.len() >= 2, "both speakers interned into one pool");
        let shared_total: u64 = (0..2)
            .map(|i| shared.speakers[i].rib_stats().attr_store_size)
            .sum();
        assert_eq!(shared_total, 0);
    }

    // ---- policy choke points ---------------------------------------------

    use crate::policy::{
        gao_rexford_policy, PeerPolicy, PeerRole, PolicyAction, PrefixMatch, RouteMap,
        RouteMapClause, RouteMapMatch, RouteMapSet,
    };
    use std::sync::Arc;

    fn speaker_policed(
        asn: u16,
        id: [u8; 4],
        peers: Vec<(Ipv4Addr, Ipv4Addr, u16)>,
        networks: Vec<&str>,
        policies: Vec<(Ipv4Addr, PeerPolicy)>,
    ) -> BgpSpeaker {
        let mut s = speaker(asn, id, peers, networks);
        let config = BgpConfig {
            policies: policies.into_iter().collect(),
            ..s.config.clone()
        };
        s = BgpSpeaker::new(config);
        s
    }

    fn addr4(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    /// Three routers in a line, optionally with permit-all route-maps on
    /// every peering. The policy machinery must be engaged yet produce the
    /// exact same behavior as having no policy at all.
    fn line3(permit_all: bool) -> Harness {
        let p = |on: bool| -> Vec<(Ipv4Addr, PeerPolicy)> {
            if !on {
                return vec![];
            }
            let all = PeerPolicy {
                import: Some(Arc::new(RouteMap::permit_all())),
                export: Some(Arc::new(RouteMap::permit_all())),
            };
            // Assigned to every address we might peer with below.
            vec![
                (addr4(10, 9, 1, 1), all.clone()),
                (addr4(10, 9, 1, 2), all.clone()),
                (addr4(10, 9, 2, 1), all.clone()),
                (addr4(10, 9, 2, 2), all),
            ]
        };
        let a = speaker_policed(
            64512,
            [1, 1, 1, 1],
            vec![(addr4(10, 9, 1, 2), addr4(10, 9, 1, 1), 64513)],
            vec!["21.1.0.0/16"],
            p(permit_all),
        );
        let b = speaker_policed(
            64513,
            [2, 2, 2, 2],
            vec![
                (addr4(10, 9, 1, 1), addr4(10, 9, 1, 2), 64512),
                (addr4(10, 9, 2, 2), addr4(10, 9, 2, 1), 64514),
            ],
            vec!["21.2.0.0/16"],
            p(permit_all),
        );
        let c = speaker_policed(
            64514,
            [3, 3, 3, 3],
            vec![(addr4(10, 9, 2, 1), addr4(10, 9, 2, 2), 64513)],
            vec!["21.3.0.0/16"],
            p(permit_all),
        );
        let mut h = Harness::new(vec![a, b, c]);
        h.start(SimTime::ZERO);
        h
    }

    #[test]
    fn permit_all_policy_is_behaviorally_identical() {
        let bare = line3(false);
        let policed = line3(true);
        for i in 0..3 {
            // Same FIBs, same event order, same message counts: the policed
            // import path buckets NLRI and re-interns, but a permit-all map
            // must be indistinguishable from no map.
            assert_eq!(bare.route_events[i], policed.route_events[i], "events {i}");
            assert_eq!(bare.fib_of(i), policed.fib_of(i), "fib {i}");
            assert_eq!(
                bare.speakers[i].msgs_sent(),
                policed.speakers[i].msgs_sent(),
                "msgs {i}"
            );
        }
    }

    #[test]
    fn import_policy_filters_and_implicit_denies() {
        // A imports from B with a map that denies 21.1/16 and permits only
        // 21.2/16; B also announces 21.3/16 which matches no clause
        // (implicit deny).
        let import = RouteMap::new(vec![
            RouteMapClause {
                action: PolicyAction::Deny,
                matches: RouteMapMatch {
                    prefixes: vec![PrefixMatch::within("21.1.0.0/16".parse().unwrap())],
                    ..RouteMapMatch::default()
                },
                set: RouteMapSet::default(),
            },
            RouteMapClause {
                action: PolicyAction::Permit,
                matches: RouteMapMatch {
                    prefixes: vec![PrefixMatch::within("21.2.0.0/16".parse().unwrap())],
                    ..RouteMapMatch::default()
                },
                set: RouteMapSet::default(),
            },
        ]);
        let a = speaker_policed(
            64512,
            [1, 1, 1, 1],
            vec![(addr4(10, 9, 1, 2), addr4(10, 9, 1, 1), 64513)],
            vec![],
            vec![(
                addr4(10, 9, 1, 2),
                PeerPolicy {
                    import: Some(Arc::new(import)),
                    export: None,
                },
            )],
        );
        let b = speaker(
            64513,
            [2, 2, 2, 2],
            vec![(addr4(10, 9, 1, 1), addr4(10, 9, 1, 2), 64512)],
            vec!["21.1.0.0/16", "21.2.0.0/16", "21.3.0.0/16"],
        );
        let mut h = Harness::new(vec![a, b]);
        h.start(SimTime::ZERO);
        let fib = h.fib_of(0);
        assert!(!fib.contains_key(&"21.1.0.0/16".parse().unwrap()), "denied");
        assert!(
            fib.contains_key(&"21.2.0.0/16".parse().unwrap()),
            "permitted"
        );
        assert!(
            !fib.contains_key(&"21.3.0.0/16".parse().unwrap()),
            "implicit deny on policy miss"
        );
    }

    #[test]
    fn prefix_sensitive_export_policy_filters_per_prefix() {
        // A originates two prefixes that share one interned attribute set;
        // its export map toward B permits only one of them. Attr-id-only
        // cache keying would conflate the two — the prefix-aware key must
        // keep them apart.
        let export = RouteMap::new(vec![RouteMapClause {
            action: PolicyAction::Permit,
            matches: RouteMapMatch {
                prefixes: vec![PrefixMatch::within("21.2.0.0/16".parse().unwrap())],
                ..RouteMapMatch::default()
            },
            set: RouteMapSet::default(),
        }]);
        let a = speaker_policed(
            64512,
            [1, 1, 1, 1],
            vec![(addr4(10, 9, 1, 2), addr4(10, 9, 1, 1), 64513)],
            vec!["21.1.0.0/16", "21.2.0.0/16"],
            vec![(
                addr4(10, 9, 1, 2),
                PeerPolicy {
                    import: None,
                    export: Some(Arc::new(export)),
                },
            )],
        );
        let b = speaker(
            64513,
            [2, 2, 2, 2],
            vec![(addr4(10, 9, 1, 1), addr4(10, 9, 1, 2), 64512)],
            vec![],
        );
        let mut h = Harness::new(vec![a, b]);
        h.start(SimTime::ZERO);
        let fib = h.fib_of(1);
        assert!(!fib.contains_key(&"21.1.0.0/16".parse().unwrap()));
        assert!(fib.contains_key(&"21.2.0.0/16".parse().unwrap()));
    }

    #[test]
    fn export_set_block_reaches_the_wire() {
        // A's export map MED-stamps and prepends; B's Loc-RIB must see the
        // longer path and the MED (which survives the standard strip when
        // set by policy).
        let export = RouteMap::new(vec![RouteMapClause {
            action: PolicyAction::Permit,
            matches: RouteMapMatch::default(),
            set: RouteMapSet {
                med: Some(77),
                prepend: 2,
                add_communities: vec![0xff99_0001],
                ..RouteMapSet::default()
            },
        }]);
        let a = speaker_policed(
            64512,
            [1, 1, 1, 1],
            vec![(addr4(10, 9, 1, 2), addr4(10, 9, 1, 1), 64513)],
            vec!["21.1.0.0/16"],
            vec![(
                addr4(10, 9, 1, 2),
                PeerPolicy {
                    import: None,
                    export: Some(Arc::new(export)),
                },
            )],
        );
        let b = speaker(
            64513,
            [2, 2, 2, 2],
            vec![(addr4(10, 9, 1, 1), addr4(10, 9, 1, 2), 64512)],
            vec![],
        );
        let mut h = Harness::new(vec![a, b]);
        h.start(SimTime::ZERO);
        let prefix: Ipv4Prefix = "21.1.0.0/16".parse().unwrap();
        let decision = h.speakers[1].rib().decide(prefix).expect("route installed");
        let attrs = &decision.best.attrs;
        assert_eq!(attrs.med, Some(77));
        assert_eq!(attrs.as_path_len(), 3, "own AS + 2 prepends");
        assert!(attrs.has_community(0xff99_0001));
    }

    #[test]
    fn gao_rexford_routes_are_valley_free() {
        // Star around M (65000): X is M's customer, Y and Z are M's peers.
        // X's prefix (customer route) must reach the peers; Y's prefix
        // (peer route) must reach the customer X but NOT the other peer Z.
        let m = speaker_policed(
            65000,
            [9, 9, 9, 9],
            vec![
                (addr4(10, 9, 1, 2), addr4(10, 9, 1, 1), 65001),
                (addr4(10, 9, 2, 2), addr4(10, 9, 2, 1), 65002),
                (addr4(10, 9, 3, 2), addr4(10, 9, 3, 1), 65003),
            ],
            vec![],
            vec![
                (addr4(10, 9, 1, 2), gao_rexford_policy(PeerRole::Customer)),
                (addr4(10, 9, 2, 2), gao_rexford_policy(PeerRole::Peer)),
                (addr4(10, 9, 3, 2), gao_rexford_policy(PeerRole::Peer)),
            ],
        );
        let x = speaker_policed(
            65001,
            [1, 1, 1, 1],
            vec![(addr4(10, 9, 1, 1), addr4(10, 9, 1, 2), 65000)],
            vec!["21.1.0.0/16"],
            vec![(addr4(10, 9, 1, 1), gao_rexford_policy(PeerRole::Provider))],
        );
        let y = speaker_policed(
            65002,
            [2, 2, 2, 2],
            vec![(addr4(10, 9, 2, 1), addr4(10, 9, 2, 2), 65000)],
            vec!["21.2.0.0/16"],
            vec![(addr4(10, 9, 2, 1), gao_rexford_policy(PeerRole::Peer))],
        );
        let z = speaker_policed(
            65003,
            [3, 3, 3, 3],
            vec![(addr4(10, 9, 3, 1), addr4(10, 9, 3, 2), 65000)],
            vec!["21.3.0.0/16"],
            vec![(addr4(10, 9, 3, 1), gao_rexford_policy(PeerRole::Peer))],
        );
        let mut h = Harness::new(vec![m, x, y, z]);
        h.start(SimTime::ZERO);
        let customer_pfx: Ipv4Prefix = "21.1.0.0/16".parse().unwrap();
        let peer_pfx: Ipv4Prefix = "21.2.0.0/16".parse().unwrap();
        // Peers see the customer route...
        assert!(
            h.fib_of(2).contains_key(&customer_pfx),
            "Y gets customer route"
        );
        assert!(
            h.fib_of(3).contains_key(&customer_pfx),
            "Z gets customer route"
        );
        // ...the customer sees everything...
        assert!(h.fib_of(1).contains_key(&peer_pfx), "X gets peer route");
        // ...but a peer route never transits to another peer (no valley).
        assert!(
            !h.fib_of(3).contains_key(&peer_pfx),
            "peer route must not reach peer Z through M"
        );
        assert!(h.fib_of(0).contains_key(&peer_pfx), "M itself routes to Y");
    }

    #[test]
    fn policy_swap_bumps_epoch_and_takes_effect_on_resync() {
        let a = speaker(
            64512,
            [1, 1, 1, 1],
            vec![(addr4(10, 9, 1, 2), addr4(10, 9, 1, 1), 64513)],
            vec!["21.1.0.0/16"],
        );
        let b = speaker(
            64513,
            [2, 2, 2, 2],
            vec![(addr4(10, 9, 1, 1), addr4(10, 9, 1, 2), 64512)],
            vec![],
        );
        let mut h = Harness::new(vec![a, b]);
        h.start(SimTime::ZERO);
        let prefix: Ipv4Prefix = "21.1.0.0/16".parse().unwrap();
        assert!(h.fib_of(1).contains_key(&prefix));
        // Install a deny-all export map on A, then flap the session so the
        // full table is re-synced under the new policy. The old permit was
        // memoized under epoch 0; the epoch bump retires it.
        h.speakers[0].set_peer_policy(
            addr4(10, 9, 1, 2),
            PeerPolicy {
                import: None,
                export: Some(Arc::new(RouteMap::new(vec![RouteMapClause::deny_any()]))),
            },
        );
        let t = SimTime::from_secs_f64(0.001);
        h.speakers[0].on_transport_down(addr4(10, 9, 1, 2), t);
        h.speakers[1].on_transport_down(addr4(10, 9, 1, 1), t);
        h.run(t);
        h.speakers[0].on_transport_up(addr4(10, 9, 1, 2), t);
        h.speakers[1].on_transport_up(addr4(10, 9, 1, 1), t);
        h.run(t);
        assert!(
            !h.fib_of(1).contains_key(&prefix),
            "deny-all export must suppress the route after resync"
        );
    }
}

//! RFC 4271 message codec.
//!
//! Encodes and decodes the four BGP-4 message types with the path
//! attributes the experiments exercise (ORIGIN, AS_PATH, NEXT_HOP, MED,
//! LOCAL_PREF) and OPEN capabilities. Unknown optional attributes are
//! carried opaquely; malformed input yields typed errors, never panics —
//! the decode path is fuzzed by property tests.
//!
//! AS numbers are 16-bit on the wire (the classic RFC 4271 encoding); the
//! experiments use private 16-bit ASNs per RFC 7938-style data-center
//! designs, so 4-octet AS support is advertised as a capability but not
//! required.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use horse_net::addr::Ipv4Prefix;
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// BGP version implemented.
pub const BGP_VERSION: u8 = 4;
/// Fixed header size: 16-byte marker + 2-byte length + 1-byte type.
pub const HEADER_LEN: usize = 19;
/// Maximum message size permitted by RFC 4271.
pub const MAX_MESSAGE_LEN: usize = 4096;

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Message shorter than its declared or minimum length.
    Truncated(&'static str),
    /// The 16-byte marker was not all-ones.
    BadMarker,
    /// Declared length out of the legal range.
    BadLength(u16),
    /// Unknown message type code.
    BadType(u8),
    /// A field violated the spec.
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated(w) => write!(f, "truncated {w}"),
            CodecError::BadMarker => write!(f, "bad marker"),
            CodecError::BadLength(l) => write!(f, "bad message length {l}"),
            CodecError::BadType(t) => write!(f, "bad message type {t}"),
            CodecError::Malformed(w) => write!(f, "malformed {w}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Route origin attribute values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Origin {
    /// Interior (IGP).
    Igp,
    /// Exterior (EGP).
    Egp,
    /// Incomplete.
    Incomplete,
}

impl Origin {
    fn code(self) -> u8 {
        match self {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        }
    }

    fn from_code(c: u8) -> Result<Origin, CodecError> {
        match c {
            0 => Ok(Origin::Igp),
            1 => Ok(Origin::Egp),
            2 => Ok(Origin::Incomplete),
            _ => Err(CodecError::Malformed("origin code")),
        }
    }
}

/// One AS_PATH segment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AsPathSegment {
    /// Ordered sequence of ASNs.
    Sequence(Vec<u16>),
    /// Unordered set (from aggregation).
    Set(Vec<u16>),
}

impl AsPathSegment {
    /// How many ASNs this segment contributes to path length (a set counts
    /// as one, per RFC 4271 §9.1.2.2).
    pub fn path_len(&self) -> usize {
        match self {
            AsPathSegment::Sequence(v) => v.len(),
            AsPathSegment::Set(_) => 1,
        }
    }
}

/// The path attributes the model understands, plus opaque unknown ones.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PathAttributes {
    /// ORIGIN (well-known mandatory).
    pub origin: Origin,
    /// AS_PATH segments (well-known mandatory).
    pub as_path: Vec<AsPathSegment>,
    /// NEXT_HOP (well-known mandatory).
    pub next_hop: Ipv4Addr,
    /// MULTI_EXIT_DISC (optional).
    pub med: Option<u32>,
    /// LOCAL_PREF (well-known for iBGP).
    pub local_pref: Option<u32>,
    /// COMMUNITIES (RFC 1997, optional transitive). Kept sorted and
    /// deduplicated so equal community sets intern to one attr entry; an
    /// empty list is not encoded, keeping policy-free wire bytes identical
    /// to the pre-communities codec.
    pub communities: Vec<u32>,
    /// Unrecognized transitive attributes, carried verbatim as
    /// `(flags, type, value)`.
    pub unknown: Vec<(u8, u8, Vec<u8>)>,
}

impl PathAttributes {
    /// Attributes for a locally originated route.
    pub fn originated(next_hop: Ipv4Addr) -> PathAttributes {
        PathAttributes {
            origin: Origin::Igp,
            as_path: vec![AsPathSegment::Sequence(vec![])],
            next_hop,
            med: None,
            local_pref: None,
            communities: Vec::new(),
            unknown: Vec::new(),
        }
    }

    /// True if the RFC 1997 community `c` is attached.
    pub fn has_community(&self, c: u32) -> bool {
        // `communities` is kept sorted by every construction path.
        self.communities.binary_search(&c).is_ok()
    }

    /// Total AS-path length (sets count 1).
    pub fn as_path_len(&self) -> usize {
        self.as_path.iter().map(|s| s.path_len()).sum()
    }

    /// All ASNs appearing anywhere in the path.
    pub fn as_path_asns(&self) -> impl Iterator<Item = u16> + '_ {
        self.as_path.iter().flat_map(|s| match s {
            AsPathSegment::Sequence(v) | AsPathSegment::Set(v) => v.iter().copied(),
        })
    }

    /// True if `asn` appears in the AS path (loop detection).
    pub fn contains_asn(&self, asn: u16) -> bool {
        self.as_path_asns().any(|a| a == asn)
    }

    /// Returns a copy with `asn` prepended to the leading sequence (eBGP
    /// export).
    pub fn prepended(&self, asn: u16) -> PathAttributes {
        let mut out = self.clone();
        match out.as_path.first_mut() {
            Some(AsPathSegment::Sequence(seq)) => seq.insert(0, asn),
            _ => out.as_path.insert(0, AsPathSegment::Sequence(vec![asn])),
        }
        out
    }

    /// The neighboring (first) AS on the path, if any.
    pub fn neighbor_as(&self) -> Option<u16> {
        match self.as_path.first() {
            Some(AsPathSegment::Sequence(v)) => v.first().copied(),
            Some(AsPathSegment::Set(v)) => v.first().copied(),
            None => None,
        }
    }
}

/// OPEN-message capabilities (RFC 5492 TLVs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Capability {
    /// Multiprotocol extensions (AFI, SAFI).
    Multiprotocol {
        /// Address family identifier (1 = IPv4).
        afi: u16,
        /// Subsequent AFI (1 = unicast).
        safi: u8,
    },
    /// Four-octet AS numbers (RFC 6793).
    FourOctetAs(u32),
    /// Anything else, carried opaquely.
    Unknown(u8, Vec<u8>),
}

/// An OPEN message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenMsg {
    /// Protocol version (always 4).
    pub version: u8,
    /// Sender's AS number.
    pub my_as: u16,
    /// Proposed hold time in seconds (0 or ≥ 3).
    pub hold_time: u16,
    /// Sender's BGP identifier.
    pub bgp_id: Ipv4Addr,
    /// Capabilities advertised.
    pub capabilities: Vec<Capability>,
}

/// An UPDATE message.
///
/// Attributes ride behind an [`Arc`] so a message built from an interned
/// attribute set (see [`crate::rib::AttrStore`]) shares the canonical
/// allocation instead of deep-cloning the nested AS-path vectors; the wire
/// encoding is unchanged.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UpdateMsg {
    /// Prefixes withdrawn.
    pub withdrawn: Vec<Ipv4Prefix>,
    /// Attributes for the announced NLRI (None when only withdrawing).
    pub attrs: Option<Arc<PathAttributes>>,
    /// Prefixes announced with `attrs`.
    pub nlri: Vec<Ipv4Prefix>,
}

impl UpdateMsg {
    /// Fixed per-UPDATE overhead: header plus the withdrawn-routes-length
    /// and total-path-attribute-length fields.
    const FIXED_LEN: usize = HEADER_LEN + 4;

    /// Encoded wire length including the RFC 4271 header (exact mirror of
    /// [`Message::encode`]).
    pub fn wire_len(&self) -> usize {
        Self::FIXED_LEN
            + self.attrs.as_deref().map_or(0, attrs_wire_len)
            + self.withdrawn.iter().map(prefix_wire_len).sum::<usize>()
            + self.nlri.iter().map(prefix_wire_len).sum::<usize>()
    }

    /// Splits this UPDATE into a sequence of UPDATEs that each fit within
    /// [`MAX_MESSAGE_LEN`], preserving prefix order. An UPDATE that already
    /// fits is returned as-is, so in-range messages keep byte-identical
    /// encodings; oversized ones emit withdraw-only chunks first, then NLRI
    /// chunks that each repeat the shared attributes (RFC 4271 §9.2).
    pub fn split_to_fit(self) -> Vec<UpdateMsg> {
        if self.wire_len() <= MAX_MESSAGE_LEN {
            return vec![self];
        }
        let UpdateMsg {
            withdrawn,
            attrs,
            nlri,
        } = self;
        let mut out = Vec::new();
        // Withdrawals carry no attributes, so they pack densely.
        let mut batch = Vec::new();
        let mut used = Self::FIXED_LEN;
        for p in withdrawn {
            let w = prefix_wire_len(&p);
            if used + w > MAX_MESSAGE_LEN {
                out.push(UpdateMsg {
                    withdrawn: std::mem::take(&mut batch),
                    attrs: None,
                    nlri: vec![],
                });
                used = Self::FIXED_LEN;
            }
            used += w;
            batch.push(p);
        }
        if !batch.is_empty() {
            out.push(UpdateMsg {
                withdrawn: batch,
                attrs: None,
                nlri: vec![],
            });
        }
        if !nlri.is_empty() {
            let attrs = attrs.expect("NLRI without attributes");
            let base = Self::FIXED_LEN + attrs_wire_len(&attrs);
            assert!(
                base + 5 <= MAX_MESSAGE_LEN,
                "path attributes ({} bytes) leave no room for NLRI",
                base - Self::FIXED_LEN
            );
            let mut batch = Vec::new();
            let mut used = base;
            for p in nlri {
                let w = prefix_wire_len(&p);
                if used + w > MAX_MESSAGE_LEN {
                    out.push(UpdateMsg {
                        withdrawn: vec![],
                        attrs: Some(attrs.clone()),
                        nlri: std::mem::take(&mut batch),
                    });
                    used = base;
                }
                used += w;
                batch.push(p);
            }
            out.push(UpdateMsg {
                withdrawn: vec![],
                attrs: Some(attrs),
                nlri: batch,
            });
        }
        out
    }
}

/// A NOTIFICATION message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notification {
    /// Major error code.
    pub code: u8,
    /// Error subcode.
    pub subcode: u8,
    /// Diagnostic data.
    pub data: Vec<u8>,
}

impl Notification {
    /// Hold-timer-expired notification (code 4).
    pub fn hold_timer_expired() -> Notification {
        Notification {
            code: 4,
            subcode: 0,
            data: Vec::new(),
        }
    }

    /// Cease (code 6).
    pub fn cease() -> Notification {
        Notification {
            code: 6,
            subcode: 0,
            data: Vec::new(),
        }
    }

    /// OPEN error with subcode (code 2).
    pub fn open_error(subcode: u8) -> Notification {
        Notification {
            code: 2,
            subcode,
            data: Vec::new(),
        }
    }
}

/// A BGP message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Session establishment offer.
    Open(OpenMsg),
    /// Route announcement/withdrawal.
    Update(UpdateMsg),
    /// Error report; sender closes the session.
    Notification(Notification),
    /// Liveness.
    Keepalive,
}

impl Message {
    /// Serializes the message with its RFC 4271 header.
    pub fn encode(&self) -> Bytes {
        let mut body = BytesMut::new();
        let msg_type = match self {
            Message::Open(o) => {
                encode_open(o, &mut body);
                1
            }
            Message::Update(u) => {
                encode_update(u, &mut body);
                2
            }
            Message::Notification(n) => {
                body.put_u8(n.code);
                body.put_u8(n.subcode);
                body.put_slice(&n.data);
                3
            }
            Message::Keepalive => 4,
        };
        let mut out = BytesMut::with_capacity(HEADER_LEN + body.len());
        out.put_slice(&[0xff; 16]);
        out.put_u16((HEADER_LEN + body.len()) as u16);
        out.put_u8(msg_type);
        out.put_slice(&body);
        out.freeze()
    }

    /// Decodes one message from `buf` if a complete one is present.
    /// Returns `(message, bytes_consumed)`.
    pub fn decode(buf: &[u8]) -> Result<Option<(Message, usize)>, CodecError> {
        if buf.len() < HEADER_LEN {
            return Ok(None);
        }
        if buf[..16].iter().any(|b| *b != 0xff) {
            return Err(CodecError::BadMarker);
        }
        let len = u16::from_be_bytes([buf[16], buf[17]]) as usize;
        if !(HEADER_LEN..=MAX_MESSAGE_LEN).contains(&len) {
            return Err(CodecError::BadLength(len as u16));
        }
        if buf.len() < len {
            return Ok(None);
        }
        let msg_type = buf[18];
        let mut body = &buf[HEADER_LEN..len];
        let msg = match msg_type {
            1 => Message::Open(decode_open(&mut body)?),
            2 => Message::Update(decode_update(&mut body)?),
            3 => {
                if body.len() < 2 {
                    return Err(CodecError::Truncated("notification"));
                }
                let code = body.get_u8();
                let subcode = body.get_u8();
                Message::Notification(Notification {
                    code,
                    subcode,
                    data: body.to_vec(),
                })
            }
            4 => {
                if !body.is_empty() {
                    return Err(CodecError::Malformed("keepalive body"));
                }
                Message::Keepalive
            }
            t => return Err(CodecError::BadType(t)),
        };
        Ok(Some((msg, len)))
    }
}

fn encode_open(o: &OpenMsg, buf: &mut BytesMut) {
    buf.put_u8(o.version);
    buf.put_u16(o.my_as);
    buf.put_u16(o.hold_time);
    buf.put_slice(&o.bgp_id.octets());
    // Optional parameters: one parameter of type 2 (capabilities).
    let mut caps = BytesMut::new();
    for c in &o.capabilities {
        match c {
            Capability::Multiprotocol { afi, safi } => {
                caps.put_u8(1);
                caps.put_u8(4);
                caps.put_u16(*afi);
                caps.put_u8(0);
                caps.put_u8(*safi);
            }
            Capability::FourOctetAs(asn) => {
                caps.put_u8(65);
                caps.put_u8(4);
                caps.put_u32(*asn);
            }
            Capability::Unknown(code, data) => {
                caps.put_u8(*code);
                caps.put_u8(data.len() as u8);
                caps.put_slice(data);
            }
        }
    }
    if caps.is_empty() {
        buf.put_u8(0);
    } else {
        buf.put_u8((caps.len() + 2) as u8); // opt param len
        buf.put_u8(2); // param type: capabilities
        buf.put_u8(caps.len() as u8);
        buf.put_slice(&caps);
    }
}

fn decode_open(buf: &mut &[u8]) -> Result<OpenMsg, CodecError> {
    if buf.len() < 10 {
        return Err(CodecError::Truncated("open"));
    }
    let version = buf.get_u8();
    if version != BGP_VERSION {
        return Err(CodecError::Malformed("open version"));
    }
    let my_as = buf.get_u16();
    let hold_time = buf.get_u16();
    if hold_time == 1 || hold_time == 2 {
        return Err(CodecError::Malformed("open hold time"));
    }
    let mut id = [0u8; 4];
    buf.copy_to_slice(&mut id);
    let opt_len = buf.get_u8() as usize;
    if buf.len() < opt_len {
        return Err(CodecError::Truncated("open optional parameters"));
    }
    let mut params = &buf[..opt_len];
    buf.advance(opt_len);
    let mut capabilities = Vec::new();
    while params.len() >= 2 {
        let ptype = params.get_u8();
        let plen = params.get_u8() as usize;
        if params.len() < plen {
            return Err(CodecError::Truncated("open parameter"));
        }
        let mut pval = &params[..plen];
        params.advance(plen);
        if ptype != 2 {
            continue; // ignore non-capability parameters
        }
        while pval.len() >= 2 {
            let code = pval.get_u8();
            let clen = pval.get_u8() as usize;
            if pval.len() < clen {
                return Err(CodecError::Truncated("capability"));
            }
            let cval = &pval[..clen];
            pval.advance(clen);
            capabilities.push(match (code, clen) {
                (1, 4) => Capability::Multiprotocol {
                    afi: u16::from_be_bytes([cval[0], cval[1]]),
                    safi: cval[3],
                },
                (65, 4) => Capability::FourOctetAs(u32::from_be_bytes([
                    cval[0], cval[1], cval[2], cval[3],
                ])),
                _ => Capability::Unknown(code, cval.to_vec()),
            });
        }
    }
    if !params.is_empty() {
        return Err(CodecError::Malformed("open parameter padding"));
    }
    Ok(OpenMsg {
        version,
        my_as,
        hold_time,
        bgp_id: Ipv4Addr::from(id),
        capabilities,
    })
}

fn encode_prefix(p: &Ipv4Prefix, buf: &mut BytesMut) {
    buf.put_u8(p.len());
    let octets = p.network().octets();
    let nbytes = p.len().div_ceil(8) as usize;
    buf.put_slice(&octets[..nbytes]);
}

/// Wire size of one prefix in withdrawn-routes / NLRI encoding.
fn prefix_wire_len(p: &Ipv4Prefix) -> usize {
    1 + p.len().div_ceil(8) as usize
}

fn decode_prefix(buf: &mut &[u8]) -> Result<Ipv4Prefix, CodecError> {
    if buf.is_empty() {
        return Err(CodecError::Truncated("prefix length"));
    }
    let len = buf.get_u8();
    if len > 32 {
        return Err(CodecError::Malformed("prefix length"));
    }
    let nbytes = len.div_ceil(8) as usize;
    if buf.len() < nbytes {
        return Err(CodecError::Truncated("prefix bytes"));
    }
    let mut octets = [0u8; 4];
    octets[..nbytes].copy_from_slice(&buf[..nbytes]);
    buf.advance(nbytes);
    Ok(Ipv4Prefix::new(Ipv4Addr::from(octets), len))
}

const ATTR_FLAG_OPTIONAL: u8 = 0x80;
const ATTR_FLAG_TRANSITIVE: u8 = 0x40;
const ATTR_FLAG_EXTENDED: u8 = 0x10;

fn put_attr(buf: &mut BytesMut, flags: u8, type_code: u8, value: &[u8]) {
    if value.len() > 255 {
        buf.put_u8(flags | ATTR_FLAG_EXTENDED);
        buf.put_u8(type_code);
        buf.put_u16(value.len() as u16);
    } else {
        buf.put_u8(flags);
        buf.put_u8(type_code);
        buf.put_u8(value.len() as u8);
    }
    buf.put_slice(value);
}

fn encode_attrs(a: &PathAttributes, buf: &mut BytesMut) {
    put_attr(buf, ATTR_FLAG_TRANSITIVE, 1, &[a.origin.code()]);
    let mut path = BytesMut::new();
    for seg in &a.as_path {
        let (code, asns) = match seg {
            AsPathSegment::Set(v) => (1u8, v),
            AsPathSegment::Sequence(v) => (2u8, v),
        };
        path.put_u8(code);
        path.put_u8(asns.len() as u8);
        for asn in asns {
            path.put_u16(*asn);
        }
    }
    put_attr(buf, ATTR_FLAG_TRANSITIVE, 2, &path);
    put_attr(buf, ATTR_FLAG_TRANSITIVE, 3, &a.next_hop.octets());
    if let Some(med) = a.med {
        put_attr(buf, ATTR_FLAG_OPTIONAL, 4, &med.to_be_bytes());
    }
    if let Some(lp) = a.local_pref {
        put_attr(buf, ATTR_FLAG_TRANSITIVE, 5, &lp.to_be_bytes());
    }
    if !a.communities.is_empty() {
        let mut val = BytesMut::with_capacity(4 * a.communities.len());
        for c in &a.communities {
            val.put_u32(*c);
        }
        put_attr(buf, ATTR_FLAG_OPTIONAL | ATTR_FLAG_TRANSITIVE, 8, &val);
    }
    for (flags, code, data) in &a.unknown {
        put_attr(buf, *flags, *code, data);
    }
}

/// Wire size of the encoded path attributes (exact mirror of
/// [`encode_attrs`]).
fn attrs_wire_len(a: &PathAttributes) -> usize {
    // Type+flags+length header: 3 bytes, or 4 with the extended-length flag.
    fn attr_len(value_len: usize) -> usize {
        value_len + if value_len > 255 { 4 } else { 3 }
    }
    let path_len: usize = a
        .as_path
        .iter()
        .map(|seg| {
            let asns = match seg {
                AsPathSegment::Set(v) | AsPathSegment::Sequence(v) => v,
            };
            2 + 2 * asns.len()
        })
        .sum();
    let mut n = attr_len(1) + attr_len(path_len) + attr_len(4); // origin, as_path, next_hop
    if a.med.is_some() {
        n += attr_len(4);
    }
    if a.local_pref.is_some() {
        n += attr_len(4);
    }
    if !a.communities.is_empty() {
        n += attr_len(4 * a.communities.len());
    }
    for (_, _, data) in &a.unknown {
        n += attr_len(data.len());
    }
    n
}

fn decode_attrs(mut buf: &[u8]) -> Result<PathAttributes, CodecError> {
    let mut origin = None;
    let mut as_path = None;
    let mut next_hop = None;
    let mut med = None;
    let mut local_pref = None;
    let mut communities = Vec::new();
    let mut unknown = Vec::new();
    while !buf.is_empty() {
        if buf.len() < 3 {
            return Err(CodecError::Truncated("attribute header"));
        }
        let flags = buf.get_u8();
        let type_code = buf.get_u8();
        let len = if flags & ATTR_FLAG_EXTENDED != 0 {
            if buf.len() < 2 {
                return Err(CodecError::Truncated("attribute extended length"));
            }
            buf.get_u16() as usize
        } else {
            buf.get_u8() as usize
        };
        if buf.len() < len {
            return Err(CodecError::Truncated("attribute value"));
        }
        let mut val = &buf[..len];
        buf.advance(len);
        match type_code {
            1 => {
                if val.len() != 1 {
                    return Err(CodecError::Malformed("origin length"));
                }
                origin = Some(Origin::from_code(val[0])?);
            }
            2 => {
                let mut segs = Vec::new();
                while !val.is_empty() {
                    if val.len() < 2 {
                        return Err(CodecError::Truncated("as_path segment header"));
                    }
                    let seg_type = val.get_u8();
                    let count = val.get_u8() as usize;
                    if val.len() < count * 2 {
                        return Err(CodecError::Truncated("as_path asns"));
                    }
                    let mut asns = Vec::with_capacity(count);
                    for _ in 0..count {
                        asns.push(val.get_u16());
                    }
                    segs.push(match seg_type {
                        1 => AsPathSegment::Set(asns),
                        2 => AsPathSegment::Sequence(asns),
                        _ => return Err(CodecError::Malformed("as_path segment type")),
                    });
                }
                as_path = Some(segs);
            }
            3 => {
                if val.len() != 4 {
                    return Err(CodecError::Malformed("next_hop length"));
                }
                next_hop = Some(Ipv4Addr::new(val[0], val[1], val[2], val[3]));
            }
            4 => {
                if val.len() != 4 {
                    return Err(CodecError::Malformed("med length"));
                }
                med = Some(u32::from_be_bytes([val[0], val[1], val[2], val[3]]));
            }
            5 => {
                if val.len() != 4 {
                    return Err(CodecError::Malformed("local_pref length"));
                }
                local_pref = Some(u32::from_be_bytes([val[0], val[1], val[2], val[3]]));
            }
            8 => {
                if !val.len().is_multiple_of(4) {
                    return Err(CodecError::Malformed("communities length"));
                }
                while !val.is_empty() {
                    communities.push(val.get_u32());
                }
                // Canonicalize on ingest so equal sets compare (and intern)
                // equal regardless of sender ordering.
                communities.sort_unstable();
                communities.dedup();
            }
            _ => unknown.push((flags, type_code, val.to_vec())),
        }
    }
    Ok(PathAttributes {
        origin: origin.ok_or(CodecError::Malformed("missing origin"))?,
        as_path: as_path.ok_or(CodecError::Malformed("missing as_path"))?,
        next_hop: next_hop.ok_or(CodecError::Malformed("missing next_hop"))?,
        med,
        local_pref,
        communities,
        unknown,
    })
}

fn encode_update(u: &UpdateMsg, buf: &mut BytesMut) {
    let mut withdrawn = BytesMut::new();
    for p in &u.withdrawn {
        encode_prefix(p, &mut withdrawn);
    }
    buf.put_u16(withdrawn.len() as u16);
    buf.put_slice(&withdrawn);
    let mut attrs = BytesMut::new();
    if let Some(a) = &u.attrs {
        encode_attrs(a, &mut attrs);
    }
    buf.put_u16(attrs.len() as u16);
    buf.put_slice(&attrs);
    for p in &u.nlri {
        encode_prefix(p, buf);
    }
}

fn decode_update(buf: &mut &[u8]) -> Result<UpdateMsg, CodecError> {
    if buf.len() < 2 {
        return Err(CodecError::Truncated("update withdrawn length"));
    }
    let wlen = buf.get_u16() as usize;
    if buf.len() < wlen {
        return Err(CodecError::Truncated("update withdrawn routes"));
    }
    let mut wbuf = &buf[..wlen];
    buf.advance(wlen);
    let mut withdrawn = Vec::new();
    while !wbuf.is_empty() {
        withdrawn.push(decode_prefix(&mut wbuf)?);
    }
    if buf.len() < 2 {
        return Err(CodecError::Truncated("update attribute length"));
    }
    let alen = buf.get_u16() as usize;
    if buf.len() < alen {
        return Err(CodecError::Truncated("update attributes"));
    }
    let abuf = &buf[..alen];
    buf.advance(alen);
    let attrs = if alen == 0 {
        None
    } else {
        Some(Arc::new(decode_attrs(abuf)?))
    };
    let mut nlri = Vec::new();
    let mut nbuf = *buf;
    while !nbuf.is_empty() {
        nlri.push(decode_prefix(&mut nbuf)?);
    }
    *buf = nbuf;
    if attrs.is_none() && !nlri.is_empty() {
        return Err(CodecError::Malformed("nlri without attributes"));
    }
    Ok(UpdateMsg {
        withdrawn,
        attrs,
        nlri,
    })
}

/// A streaming decoder that accumulates bytes and yields complete messages
/// (BGP rides a byte stream; message boundaries are internal).
#[derive(Debug, Default)]
pub struct StreamDecoder {
    buf: Vec<u8>,
}

impl StreamDecoder {
    /// An empty decoder.
    pub fn new() -> StreamDecoder {
        StreamDecoder::default()
    }

    /// Appends received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete message, if any. After an error the stream is
    /// unrecoverable (the session should send a NOTIFICATION and close).
    // Fallible Result<Option<_>> pull, not an Iterator — decode errors must
    // reach the session so it can emit a NOTIFICATION before closing.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Message>, CodecError> {
        match Message::decode(&self.buf)? {
            Some((msg, consumed)) => {
                self.buf.drain(..consumed);
                Ok(Some(msg))
            }
            None => Ok(None),
        }
    }

    /// Bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn sample_attrs() -> PathAttributes {
        PathAttributes {
            origin: Origin::Igp,
            as_path: vec![AsPathSegment::Sequence(vec![64512, 64513])],
            next_hop: Ipv4Addr::new(10, 0, 0, 1),
            med: Some(100),
            local_pref: Some(200),
            communities: vec![],
            unknown: vec![],
        }
    }

    fn roundtrip(msg: Message) -> Message {
        let bytes = msg.encode();
        let (decoded, consumed) = Message::decode(&bytes).unwrap().unwrap();
        assert_eq!(consumed, bytes.len());
        decoded
    }

    #[test]
    fn keepalive_roundtrip() {
        assert_eq!(roundtrip(Message::Keepalive), Message::Keepalive);
    }

    #[test]
    fn open_roundtrip_with_capabilities() {
        let open = OpenMsg {
            version: 4,
            my_as: 64512,
            hold_time: 90,
            bgp_id: Ipv4Addr::new(1, 1, 1, 1),
            capabilities: vec![
                Capability::Multiprotocol { afi: 1, safi: 1 },
                Capability::FourOctetAs(64512),
                Capability::Unknown(99, vec![1, 2, 3]),
            ],
        };
        assert_eq!(roundtrip(Message::Open(open.clone())), Message::Open(open));
    }

    #[test]
    fn open_roundtrip_no_capabilities() {
        let open = OpenMsg {
            version: 4,
            my_as: 1,
            hold_time: 0,
            bgp_id: Ipv4Addr::new(9, 9, 9, 9),
            capabilities: vec![],
        };
        assert_eq!(roundtrip(Message::Open(open.clone())), Message::Open(open));
    }

    #[test]
    fn update_roundtrip_announce() {
        let u = UpdateMsg {
            withdrawn: vec![],
            attrs: Some(Arc::new(sample_attrs())),
            nlri: vec![pfx("10.1.0.0/16"), pfx("10.2.3.0/24"), pfx("0.0.0.0/0")],
        };
        assert_eq!(roundtrip(Message::Update(u.clone())), Message::Update(u));
    }

    #[test]
    fn update_roundtrip_withdraw_only() {
        let u = UpdateMsg {
            withdrawn: vec![pfx("10.1.0.0/16"), pfx("192.168.1.128/25")],
            attrs: None,
            nlri: vec![],
        };
        assert_eq!(roundtrip(Message::Update(u.clone())), Message::Update(u));
    }

    #[test]
    fn wire_len_matches_encoding() {
        let cases = [
            UpdateMsg {
                withdrawn: vec![pfx("10.1.0.0/16"), pfx("0.0.0.0/0")],
                attrs: None,
                nlri: vec![],
            },
            UpdateMsg {
                withdrawn: vec![pfx("192.168.1.128/25")],
                attrs: Some(Arc::new(sample_attrs())),
                nlri: vec![pfx("10.2.3.0/24"), pfx("10.0.0.1/32")],
            },
            UpdateMsg {
                withdrawn: vec![],
                attrs: Some(Arc::new(PathAttributes {
                    // 200 ASNs forces the extended-length attribute form.
                    as_path: vec![AsPathSegment::Sequence(vec![64512; 200])],
                    med: None,
                    unknown: vec![(0xc0, 99, vec![0u8; 300])],
                    ..sample_attrs()
                })),
                nlri: vec![pfx("10.9.0.0/16")],
            },
        ];
        for u in cases {
            assert_eq!(u.wire_len(), Message::Update(u.clone()).encode().len());
        }
    }

    #[test]
    fn split_to_fit_keeps_small_updates_intact() {
        let u = UpdateMsg {
            withdrawn: vec![pfx("10.1.0.0/16")],
            attrs: Some(Arc::new(sample_attrs())),
            nlri: vec![pfx("10.2.3.0/24")],
        };
        assert_eq!(u.clone().split_to_fit(), vec![u]);
    }

    #[test]
    fn split_to_fit_chunks_oversized_updates() {
        // 1500 /24s (4 wire bytes each) blows well past 4096 in both the
        // withdrawn and NLRI sections.
        let many: Vec<Ipv4Prefix> = (0u32..1500)
            .map(|g| Ipv4Prefix::new(Ipv4Addr::from(0x0a00_0000 | (g << 8)), 24))
            .collect();
        let u = UpdateMsg {
            withdrawn: many.clone(),
            attrs: Some(Arc::new(sample_attrs())),
            nlri: many.clone(),
        };
        let chunks = u.split_to_fit();
        assert!(
            chunks.len() >= 4,
            "expected several chunks, got {}",
            chunks.len()
        );
        let mut withdrawn = Vec::new();
        let mut nlri = Vec::new();
        for c in &chunks {
            assert!(c.wire_len() <= MAX_MESSAGE_LEN);
            // Each chunk must survive a codec roundtrip.
            assert_eq!(
                roundtrip(Message::Update(c.clone())),
                Message::Update(c.clone())
            );
            assert!(c.withdrawn.is_empty() || c.nlri.is_empty());
            if c.nlri.is_empty() {
                assert!(c.attrs.is_none());
            } else {
                assert_eq!(c.attrs.as_deref(), Some(&sample_attrs()));
            }
            withdrawn.extend(c.withdrawn.iter().copied());
            nlri.extend(c.nlri.iter().copied());
        }
        // Order and content preserved exactly.
        assert_eq!(withdrawn, many);
        assert_eq!(nlri, many);
    }

    #[test]
    fn notification_roundtrip() {
        let n = Notification {
            code: 6,
            subcode: 2,
            data: vec![0xde, 0xad],
        };
        assert_eq!(
            roundtrip(Message::Notification(n.clone())),
            Message::Notification(n)
        );
    }

    #[test]
    fn incomplete_buffer_returns_none() {
        let bytes = Message::Keepalive.encode();
        for cut in 0..bytes.len() {
            assert_eq!(Message::decode(&bytes[..cut]).unwrap(), None, "cut={cut}");
        }
    }

    #[test]
    fn bad_marker_rejected() {
        let mut bytes = Message::Keepalive.encode().to_vec();
        bytes[3] = 0;
        assert_eq!(Message::decode(&bytes), Err(CodecError::BadMarker));
    }

    #[test]
    fn bad_length_rejected() {
        let mut bytes = Message::Keepalive.encode().to_vec();
        bytes[16] = 0xff;
        bytes[17] = 0xff; // 65535 > 4096
        assert!(matches!(
            Message::decode(&bytes),
            Err(CodecError::BadLength(_))
        ));
        bytes[16] = 0;
        bytes[17] = 5; // 5 < 19
        assert!(matches!(
            Message::decode(&bytes),
            Err(CodecError::BadType(_)) | Err(CodecError::BadLength(_))
        ));
    }

    #[test]
    fn bad_type_rejected() {
        let mut bytes = Message::Keepalive.encode().to_vec();
        bytes[18] = 42;
        assert_eq!(Message::decode(&bytes), Err(CodecError::BadType(42)));
    }

    #[test]
    fn nlri_without_attrs_rejected() {
        // Hand-craft: empty withdrawn, empty attrs, one NLRI prefix.
        let mut body = BytesMut::new();
        body.put_u16(0);
        body.put_u16(0);
        body.put_u8(8);
        body.put_u8(10);
        let mut out = BytesMut::new();
        out.put_slice(&[0xff; 16]);
        out.put_u16((HEADER_LEN + body.len()) as u16);
        out.put_u8(2);
        out.put_slice(&body);
        assert!(matches!(
            Message::decode(&out),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn as_path_helpers() {
        let a = sample_attrs();
        assert_eq!(a.as_path_len(), 2);
        assert!(a.contains_asn(64513));
        assert!(!a.contains_asn(7));
        assert_eq!(a.neighbor_as(), Some(64512));
        let b = a.prepended(65000);
        assert_eq!(b.neighbor_as(), Some(65000));
        assert_eq!(b.as_path_len(), 3);
    }

    #[test]
    fn prepend_onto_set_creates_sequence() {
        let mut a = sample_attrs();
        a.as_path = vec![AsPathSegment::Set(vec![1, 2])];
        let b = a.prepended(9);
        assert_eq!(
            b.as_path,
            vec![
                AsPathSegment::Sequence(vec![9]),
                AsPathSegment::Set(vec![1, 2])
            ]
        );
        assert_eq!(b.as_path_len(), 2, "set counts once");
    }

    #[test]
    fn communities_roundtrip() {
        let mut a = sample_attrs();
        a.communities = vec![0x0001_0002, 0xff00_0001, 0xffff_ff01];
        let u = UpdateMsg {
            withdrawn: vec![],
            attrs: Some(Arc::new(a.clone())),
            nlri: vec![pfx("10.0.0.0/8")],
        };
        assert_eq!(u.wire_len(), Message::Update(u.clone()).encode().len());
        match roundtrip(Message::Update(u)) {
            Message::Update(got) => {
                let ga = got.attrs.unwrap();
                assert_eq!(ga.communities, a.communities);
                assert!(ga.has_community(0xff00_0001));
                assert!(!ga.has_community(0xff00_0002));
            }
            other => panic!("expected update, got {other:?}"),
        }
    }

    #[test]
    fn empty_communities_are_not_encoded() {
        // Byte-compat with the pre-communities codec: an empty list adds
        // zero wire bytes and no type-8 attribute appears in the encoding.
        let without = Message::Update(UpdateMsg {
            withdrawn: vec![],
            attrs: Some(Arc::new(sample_attrs())),
            nlri: vec![pfx("10.0.0.0/8")],
        })
        .encode();
        let mut a = sample_attrs();
        a.communities = vec![0xff00_0001];
        let with = Message::Update(UpdateMsg {
            withdrawn: vec![],
            attrs: Some(Arc::new(a)),
            nlri: vec![pfx("10.0.0.0/8")],
        })
        .encode();
        // One community = 3-byte attr header + 4-byte value.
        assert_eq!(with.len(), without.len() + 7);
    }

    #[test]
    fn decoded_communities_are_canonicalized() {
        // Hand-craft a type-8 attr with unsorted duplicates; the decoder
        // must sort + dedup so equal sets intern identically.
        let mut a = sample_attrs();
        a.communities = vec![5, 5, 3, 9, 3];
        let bytes = Message::Update(UpdateMsg {
            withdrawn: vec![],
            attrs: Some(Arc::new(a)),
            nlri: vec![pfx("10.0.0.0/8")],
        })
        .encode();
        let (decoded, _) = Message::decode(&bytes).unwrap().unwrap();
        match decoded {
            Message::Update(u) => assert_eq!(u.attrs.unwrap().communities, vec![3, 5, 9]),
            other => panic!("expected update, got {other:?}"),
        }
    }

    #[test]
    fn originated_attrs_have_empty_path() {
        let a = PathAttributes::originated(Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(a.as_path_len(), 0);
        assert_eq!(a.neighbor_as(), None);
    }

    #[test]
    fn stream_decoder_reassembles() {
        let mut dec = StreamDecoder::new();
        let m1 = Message::Keepalive.encode();
        let m2 = Message::Update(UpdateMsg {
            withdrawn: vec![],
            attrs: Some(Arc::new(sample_attrs())),
            nlri: vec![pfx("10.0.0.0/8")],
        })
        .encode();
        let all = [m1.as_ref(), m2.as_ref()].concat();
        // Feed one byte at a time.
        let mut got = Vec::new();
        for b in all {
            dec.push(&[b]);
            while let Some(m) = dec.next().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], Message::Keepalive);
        assert!(matches!(got[1], Message::Update(_)));
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn hold_time_1_or_2_rejected() {
        let open = OpenMsg {
            version: 4,
            my_as: 1,
            hold_time: 90,
            bgp_id: Ipv4Addr::new(1, 1, 1, 1),
            capabilities: vec![],
        };
        let mut bytes = Message::Open(open).encode().to_vec();
        bytes[HEADER_LEN + 3] = 0;
        bytes[HEADER_LEN + 4] = 1; // hold time 1
        assert!(matches!(
            Message::decode(&bytes),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_attrs_survive_roundtrip() {
        let mut a = sample_attrs();
        a.unknown = vec![(ATTR_FLAG_OPTIONAL | ATTR_FLAG_TRANSITIVE, 16, vec![0; 300])];
        let u = UpdateMsg {
            withdrawn: vec![],
            attrs: Some(Arc::new(a.clone())),
            nlri: vec![pfx("10.0.0.0/8")],
        };
        // 300-byte value exercises the extended-length flag path.
        match roundtrip(Message::Update(u)) {
            Message::Update(got) => {
                let ga = got.attrs.unwrap();
                assert_eq!(ga.unknown.len(), 1);
                assert_eq!(ga.unknown[0].2.len(), 300);
                assert_ne!(ga.unknown[0].0 & ATTR_FLAG_EXTENDED, 0);
            }
            other => panic!("expected update, got {other:?}"),
        }
    }
}

//! The pre-index RIB, preserved as a reference model.
//!
//! This is the [`crate::rib`] implementation as it stood before the
//! route-churn fast path (attribute interning, inverted candidate index,
//! memoized decisions): deep-cloned [`PathAttributes`] per (prefix, path),
//! a per-peer probe loop in [`NaiveRib::decide`], and no memoization. It is
//! **not** used by the speaker — it exists so that
//!
//! * the differential proptest (`tests/prop_rib_differential.rs`) can drive
//!   randomized announce/withdraw/flap sequences through both models and
//!   assert identical decisions and affected-sets, and
//! * the `rib_churn` bench can replay a recorded convergence trace against
//!   the old cost model with honest work counters (the same role
//!   `PumpMode::FullPoll` plays for the readiness pump).
//!
//! Work counters live in [`NaiveStats`] and are tracked with `Cell`s so the
//! read path keeps the original `&self` signatures (and the original
//! allocation behavior — counting must not distort wall-clock timings).

use crate::msg::{Origin, PathAttributes, UpdateMsg};
use horse_net::addr::Ipv4Prefix;
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Work counters for the naive model, in the same units the indexed RIB's
/// [`crate::rib::RibStats`] counts: every `decide` call, every candidate
/// examined, and — where the old code deep-copied attributes — the size of
/// each copy in "clone units" (1 + ASNs in the path + unknown attrs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NaiveStats {
    /// Decision-process invocations (never cached here).
    pub decide_calls: u64,
    /// Candidates gathered across all decides.
    pub candidate_touches: u64,
    /// Deep-copy cost of `PathAttributes` clones (adj-in ingest plus
    /// whatever the caller reports via [`NaiveRib::add_clone_units`]).
    pub attr_clone_units: u64,
    /// Per-peer table entries visited by `prefixes()` union rebuilds.
    pub union_work: u64,
}

impl NaiveStats {
    /// Decision-process work, comparable to
    /// [`crate::rib::RibStats::decision_work`].
    pub fn decision_work(&self) -> u64 {
        self.decide_calls + self.candidate_touches
    }
}

/// Deep-copy cost of one attribute set, in clone units.
pub fn clone_units(attrs: &PathAttributes) -> u64 {
    1 + attrs.as_path_len() as u64 + attrs.unknown.len() as u64
}

/// A candidate path for a prefix (owned, deep-cloned attributes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaivePath {
    /// Path attributes as received (or as originated).
    pub attrs: PathAttributes,
    /// The peer this was learned from (`0.0.0.0` for local origination).
    pub peer: Ipv4Addr,
    /// True when learned over eBGP.
    pub ebgp: bool,
}

impl NaivePath {
    /// A locally originated path.
    pub fn local(next_hop: Ipv4Addr) -> NaivePath {
        NaivePath {
            attrs: PathAttributes::originated(next_hop),
            peer: Ipv4Addr::UNSPECIFIED,
            ebgp: false,
        }
    }

    /// True for locally originated paths.
    pub fn is_local(&self) -> bool {
        self.peer == Ipv4Addr::UNSPECIFIED
    }

    fn local_pref(&self) -> u32 {
        self.attrs.local_pref.unwrap_or(100)
    }

    fn origin_rank(&self) -> u8 {
        match self.attrs.origin {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        }
    }
}

/// Result of the naive decision process for one prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveDecision<'a> {
    /// The single best path.
    pub best: &'a NaivePath,
    /// The ECMP set (always contains `best`).
    pub multipath: Vec<&'a NaivePath>,
}

/// The old RIB: per-peer Adj-RIB-In tables probed on every decide.
#[derive(Debug, Clone, Default)]
pub struct NaiveRib {
    local_as: u16,
    multipath: bool,
    adj_in: BTreeMap<Ipv4Addr, BTreeMap<Ipv4Prefix, NaivePath>>,
    local: BTreeMap<Ipv4Prefix, NaivePath>,
    decide_calls: Cell<u64>,
    candidate_touches: Cell<u64>,
    attr_clone_units: Cell<u64>,
    union_work: Cell<u64>,
}

impl NaiveRib {
    /// A RIB for a speaker in `local_as`.
    pub fn new(local_as: u16, multipath: bool) -> NaiveRib {
        NaiveRib {
            local_as,
            multipath,
            ..NaiveRib::default()
        }
    }

    /// Snapshot of the work counters.
    pub fn stats(&self) -> NaiveStats {
        NaiveStats {
            decide_calls: self.decide_calls.get(),
            candidate_touches: self.candidate_touches.get(),
            attr_clone_units: self.attr_clone_units.get(),
            union_work: self.union_work.get(),
        }
    }

    /// Reports deep-copy cost incurred *outside* the RIB (the old export
    /// path cloned attributes per advertised prefix; the bench's replica of
    /// that read pattern accounts for it here).
    pub fn add_clone_units(&self, units: u64) {
        self.attr_clone_units
            .set(self.attr_clone_units.get() + units);
    }

    /// Originates a local network.
    pub fn originate(&mut self, prefix: Ipv4Prefix, next_hop: Ipv4Addr) {
        self.local.insert(prefix, NaivePath::local(next_hop));
    }

    /// Withdraws a locally originated network.
    pub fn withdraw_local(&mut self, prefix: Ipv4Prefix) -> bool {
        self.local.remove(&prefix).is_some()
    }

    /// Applies an UPDATE from `peer`, returning every prefix whose candidate
    /// set changed (loop-prevention semantics identical to the indexed RIB).
    pub fn update_from_peer(
        &mut self,
        peer: Ipv4Addr,
        ebgp: bool,
        update: &UpdateMsg,
    ) -> BTreeSet<Ipv4Prefix> {
        let mut affected = BTreeSet::new();
        let table = self.adj_in.entry(peer).or_default();
        for p in &update.withdrawn {
            if table.remove(p).is_some() {
                affected.insert(*p);
            }
        }
        if let Some(attrs) = &update.attrs {
            let looped = attrs.contains_asn(self.local_as);
            for p in &update.nlri {
                if looped {
                    if table.remove(p).is_some() {
                        affected.insert(*p);
                    }
                    continue;
                }
                // The old ingest deep-cloned the attributes once per NLRI
                // prefix (plus once more for the comparison copy).
                self.attr_clone_units
                    .set(self.attr_clone_units.get() + clone_units(attrs));
                let path = NaivePath {
                    attrs: (**attrs).clone(),
                    peer,
                    ebgp,
                };
                let prev = table.insert(*p, path.clone());
                if prev.as_ref() != Some(&path) {
                    affected.insert(*p);
                }
            }
        }
        affected
    }

    /// Removes every route learned from `peer`, returning the affected
    /// prefixes.
    pub fn drop_peer(&mut self, peer: Ipv4Addr) -> BTreeSet<Ipv4Prefix> {
        self.adj_in
            .remove(&peer)
            .map(|t| t.into_keys().collect())
            .unwrap_or_default()
    }

    /// Every prefix with at least one candidate path — the old union
    /// rebuild over every per-peer table.
    pub fn prefixes(&self) -> BTreeSet<Ipv4Prefix> {
        let mut out: BTreeSet<Ipv4Prefix> = self.local.keys().copied().collect();
        let mut visited = self.local.len() as u64;
        for t in self.adj_in.values() {
            visited += t.len() as u64;
            out.extend(t.keys().copied());
        }
        self.union_work.set(self.union_work.get() + visited);
        out
    }

    /// Runs the decision process for `prefix` — the per-peer probe loop.
    pub fn decide(&self, prefix: Ipv4Prefix) -> Option<NaiveDecision<'_>> {
        self.decide_calls.set(self.decide_calls.get() + 1);
        let mut candidates: Vec<&NaivePath> = Vec::new();
        if let Some(l) = self.local.get(&prefix) {
            candidates.push(l);
        }
        for t in self.adj_in.values() {
            if let Some(p) = t.get(&prefix) {
                candidates.push(p);
            }
        }
        self.candidate_touches
            .set(self.candidate_touches.get() + candidates.len() as u64);
        if candidates.is_empty() {
            return None;
        }
        let best = candidates
            .iter()
            .copied()
            .min_by(|a, b| Self::rank(a, b))
            .expect("non-empty");
        let multipath = if self.multipath {
            candidates
                .into_iter()
                .filter(|c| Self::rank(c, best) == std::cmp::Ordering::Equal)
                .collect()
        } else {
            vec![best]
        };
        Some(NaiveDecision { best, multipath })
    }

    /// The original ranking (steps 1–6; step 7 falls out of gathering
    /// order + `min_by` keeping the first of equals).
    fn rank(a: &NaivePath, b: &NaivePath) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        let o = b.local_pref().cmp(&a.local_pref());
        if o != Ordering::Equal {
            return o;
        }
        let o = b.is_local().cmp(&a.is_local());
        if o != Ordering::Equal {
            return o;
        }
        let o = a.attrs.as_path_len().cmp(&b.attrs.as_path_len());
        if o != Ordering::Equal {
            return o;
        }
        let o = a.origin_rank().cmp(&b.origin_rank());
        if o != Ordering::Equal {
            return o;
        }
        if a.attrs.neighbor_as().is_some() && a.attrs.neighbor_as() == b.attrs.neighbor_as() {
            let o = a.attrs.med.unwrap_or(0).cmp(&b.attrs.med.unwrap_or(0));
            if o != Ordering::Equal {
                return o;
            }
        }
        b.ebgp.cmp(&a.ebgp)
    }

    /// The effective next-hop set for a prefix (recomputes the decision, as
    /// the old `reconcile` did).
    pub fn next_hops(&self, prefix: Ipv4Prefix) -> Vec<Ipv4Addr> {
        match self.decide(prefix) {
            None => Vec::new(),
            Some(d) => {
                let mut hops: Vec<Ipv4Addr> =
                    d.multipath.iter().map(|p| p.attrs.next_hop).collect();
                hops.sort();
                hops.dedup();
                hops
            }
        }
    }
}

//! The per-peer BGP finite state machine.
//!
//! A trimmed but faithful RFC 4271 FSM: `Idle → Connect → OpenSent →
//! OpenConfirm → Established`, with connect-retry, hold and keepalive
//! timers. (The `Active` state collapses into `Connect`: transport dialing
//! is the harness's job — the Connection Manager wires duplex byte pipes —
//! so the distinction between initiating and listening never arises.)
//!
//! The session is sans-IO: bytes in via [`Session::on_bytes`], wall/virtual
//! clock in via the `now` arguments, and everything outgoing is queued as
//! [`SessionEvent`]s the caller drains with [`Session::take_events`].

use crate::msg::{
    Capability, CodecError, Message, Notification, OpenMsg, StreamDecoder, UpdateMsg, BGP_VERSION,
};
use bytes::Bytes;
use horse_sim::{SimDuration, SimTime};
use std::net::Ipv4Addr;

/// Static configuration of one peering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerConfig {
    /// The neighbor's address (session key; also the expected next hop).
    pub peer_addr: Ipv4Addr,
    /// Our address on the shared subnet (sent as NEXT_HOP on eBGP export).
    pub local_addr: Ipv4Addr,
    /// The neighbor's AS number (validated against its OPEN).
    pub remote_as: u16,
}

/// FSM states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SessionState {
    /// Not trying.
    Idle,
    /// Waiting for the transport to come up.
    Connect,
    /// OPEN sent, waiting for the peer's OPEN.
    OpenSent,
    /// OPENs exchanged, waiting for KEEPALIVE.
    OpenConfirm,
    /// Up; routes flow.
    Established,
}

/// Why a session went down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DownReason {
    /// Our hold timer expired.
    HoldTimerExpired,
    /// The peer sent a NOTIFICATION.
    PeerNotification(Notification),
    /// The byte stream was unparseable.
    CodecError(CodecError),
    /// The peer's OPEN failed validation.
    OpenRejected(&'static str),
    /// The transport dropped underneath us.
    TransportClosed,
    /// A message arrived that the current state forbids.
    FsmError,
}

/// Outputs of the FSM, drained by the speaker.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEvent {
    /// Bytes to write to the peer's transport.
    SendBytes(Bytes),
    /// The session reached Established.
    Established,
    /// The session fell back to Idle.
    Down(DownReason),
    /// An UPDATE arrived (only in Established).
    Update(UpdateMsg),
}

/// Timer configuration. The defaults are deliberately snappier than RFC
/// suggestions (hold 90 s) so laptop-scale experiments converge quickly;
/// the fat-tree scenarios override them further.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerConfig {
    /// Proposed hold time (0 disables keepalives entirely).
    pub hold_time: SimDuration,
    /// Delay between transport retry attempts while in Connect.
    pub connect_retry: SimDuration,
    /// MinRouteAdvertisementInterval (RFC 4271 §9.2.1.1): minimum spacing
    /// between successive UPDATE bursts to the same peer. Zero (the
    /// default here, and what modern data-center BGP uses) advertises
    /// immediately; classic eBGP defaults to 30 s. Enforced by the
    /// speaker, which batches changes accrued during the hold-down.
    pub mrai: SimDuration,
}

impl Default for TimerConfig {
    fn default() -> Self {
        TimerConfig {
            hold_time: SimDuration::from_secs(90),
            connect_retry: SimDuration::from_secs(5),
            mrai: SimDuration::ZERO,
        }
    }
}

/// One BGP session (peering) state machine.
#[derive(Debug)]
pub struct Session {
    /// Peering configuration.
    pub config: PeerConfig,
    local_as: u16,
    router_id: Ipv4Addr,
    timers: TimerConfig,
    state: SessionState,
    decoder: StreamDecoder,
    events: Vec<SessionEvent>,
    hold_deadline: Option<SimTime>,
    keepalive_deadline: Option<SimTime>,
    connect_deadline: Option<SimTime>,
    negotiated_hold: SimDuration,
    /// Counters for observability/tests.
    pub msgs_sent: u64,
    /// Messages received (all types).
    pub msgs_received: u64,
}

impl Session {
    /// Creates an idle session.
    pub fn new(
        config: PeerConfig,
        local_as: u16,
        router_id: Ipv4Addr,
        timers: TimerConfig,
    ) -> Session {
        Session {
            config,
            local_as,
            router_id,
            timers,
            state: SessionState::Idle,
            decoder: StreamDecoder::new(),
            events: Vec::new(),
            hold_deadline: None,
            keepalive_deadline: None,
            connect_deadline: None,
            negotiated_hold: timers.hold_time,
            msgs_sent: 0,
            msgs_received: 0,
        }
    }

    /// Current FSM state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// True once Established.
    pub fn is_established(&self) -> bool {
        self.state == SessionState::Established
    }

    /// Drains queued outputs.
    pub fn take_events(&mut self) -> Vec<SessionEvent> {
        std::mem::take(&mut self.events)
    }

    /// Administratively starts the session (Idle → Connect).
    pub fn start(&mut self, now: SimTime) {
        if self.state == SessionState::Idle {
            self.state = SessionState::Connect;
            self.connect_deadline = Some(now + self.timers.connect_retry);
        }
    }

    /// The transport (TCP in the paper; a byte pipe here) came up:
    /// send our OPEN.
    pub fn on_transport_up(&mut self, _now: SimTime) {
        if self.state != SessionState::Connect {
            return;
        }
        let open = OpenMsg {
            version: BGP_VERSION,
            my_as: self.local_as,
            hold_time: self.timers.hold_time.as_secs_f64() as u16,
            bgp_id: self.router_id,
            capabilities: vec![Capability::Multiprotocol { afi: 1, safi: 1 }],
        };
        self.send(Message::Open(open));
        self.connect_deadline = None;
        self.state = SessionState::OpenSent;
    }

    /// The transport dropped.
    pub fn on_transport_down(&mut self, now: SimTime) {
        if self.state != SessionState::Idle {
            self.go_down(now, DownReason::TransportClosed);
        }
    }

    /// Feeds received bytes through the decoder and the FSM.
    pub fn on_bytes(&mut self, now: SimTime, bytes: &[u8]) {
        self.decoder.push(bytes);
        loop {
            match self.decoder.next() {
                Ok(Some(msg)) => {
                    self.msgs_received += 1;
                    self.on_message(now, msg);
                    if self.state == SessionState::Idle {
                        return; // went down mid-stream
                    }
                }
                Ok(None) => return,
                Err(e) => {
                    self.send(Message::Notification(Notification {
                        code: 1, // message header / update error family
                        subcode: 0,
                        data: Vec::new(),
                    }));
                    self.go_down(now, DownReason::CodecError(e));
                    return;
                }
            }
        }
    }

    /// Sends an UPDATE (only meaningful in Established). An UPDATE whose
    /// encoding would exceed the RFC 4271 4096-byte maximum is split into
    /// multiple messages; in-range UPDATEs go out byte-identical.
    pub fn send_update(&mut self, update: UpdateMsg) {
        debug_assert!(self.is_established(), "update outside Established");
        for chunk in update.split_to_fit() {
            self.send(Message::Update(chunk));
        }
    }

    /// Fires due timers. Call whenever the clock advances; cheap when
    /// nothing is due.
    pub fn poll_timers(&mut self, now: SimTime) {
        if let Some(d) = self.connect_deadline {
            if now >= d && self.state == SessionState::Connect {
                // Still waiting for transport; re-arm (the harness retries).
                self.connect_deadline = Some(now + self.timers.connect_retry);
            }
        }
        if let Some(d) = self.hold_deadline {
            if now >= d {
                self.send(Message::Notification(Notification::hold_timer_expired()));
                self.go_down(now, DownReason::HoldTimerExpired);
                return;
            }
        }
        if let Some(d) = self.keepalive_deadline {
            if now >= d && matches!(self.state, SessionState::Established) {
                self.send(Message::Keepalive);
                self.arm_keepalive(now);
            }
        }
    }

    /// The earliest pending timer deadline, if any (lets a DES harness
    /// schedule the next poll precisely).
    pub fn next_deadline(&self) -> Option<SimTime> {
        [
            self.connect_deadline,
            self.hold_deadline,
            self.keepalive_deadline,
        ]
        .into_iter()
        .flatten()
        .min()
    }

    fn on_message(&mut self, now: SimTime, msg: Message) {
        match (self.state, msg) {
            (SessionState::OpenSent, Message::Open(open)) => {
                if open.version != BGP_VERSION {
                    self.send(Message::Notification(Notification::open_error(1)));
                    self.go_down(now, DownReason::OpenRejected("version"));
                    return;
                }
                if open.my_as != self.config.remote_as {
                    self.send(Message::Notification(Notification::open_error(2)));
                    self.go_down(now, DownReason::OpenRejected("peer AS"));
                    return;
                }
                let their_hold = SimDuration::from_secs(u64::from(open.hold_time));
                self.negotiated_hold = if open.hold_time == 0 || self.timers.hold_time.is_zero() {
                    SimDuration::ZERO
                } else {
                    self.timers.hold_time.min(their_hold)
                };
                self.send(Message::Keepalive);
                self.arm_hold(now);
                self.state = SessionState::OpenConfirm;
            }
            (SessionState::OpenConfirm, Message::Keepalive) => {
                self.state = SessionState::Established;
                self.arm_hold(now);
                self.arm_keepalive(now);
                self.events.push(SessionEvent::Established);
            }
            (SessionState::Established, Message::Keepalive) => {
                self.arm_hold(now);
            }
            (SessionState::Established, Message::Update(update)) => {
                self.arm_hold(now);
                self.events.push(SessionEvent::Update(update));
            }
            (_, Message::Notification(n)) => {
                self.go_down(now, DownReason::PeerNotification(n));
            }
            // Everything else is an FSM violation.
            (_, _) => {
                self.send(Message::Notification(Notification {
                    code: 5, // FSM error
                    subcode: 0,
                    data: Vec::new(),
                }));
                self.go_down(now, DownReason::FsmError);
            }
        }
    }

    fn arm_hold(&mut self, now: SimTime) {
        self.hold_deadline = if self.negotiated_hold.is_zero() {
            None
        } else {
            Some(now + self.negotiated_hold)
        };
    }

    fn arm_keepalive(&mut self, now: SimTime) {
        self.keepalive_deadline = if self.negotiated_hold.is_zero() {
            None
        } else {
            Some(now + self.negotiated_hold / 3)
        };
    }

    fn send(&mut self, msg: Message) {
        self.msgs_sent += 1;
        self.events.push(SessionEvent::SendBytes(msg.encode()));
    }

    fn go_down(&mut self, now: SimTime, reason: DownReason) {
        let was_trying = self.state != SessionState::Idle;
        self.state = SessionState::Idle;
        self.hold_deadline = None;
        self.keepalive_deadline = None;
        self.connect_deadline = None;
        self.decoder = StreamDecoder::new();
        if was_trying {
            self.events.push(SessionEvent::Down(reason));
        }
        // Auto-restart: BGP daemons retry; return to Connect after the
        // retry interval (harness will re-dial the transport).
        self.state = SessionState::Connect;
        self.connect_deadline = Some(now + self.timers.connect_retry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Session, Session) {
        let a_addr = Ipv4Addr::new(10, 0, 0, 1);
        let b_addr = Ipv4Addr::new(10, 0, 0, 2);
        let timers = TimerConfig {
            hold_time: SimDuration::from_secs(9),
            connect_retry: SimDuration::from_secs(1),
            mrai: SimDuration::ZERO,
        };
        let a = Session::new(
            PeerConfig {
                peer_addr: b_addr,
                local_addr: a_addr,
                remote_as: 65002,
            },
            65001,
            a_addr,
            timers,
        );
        let b = Session::new(
            PeerConfig {
                peer_addr: a_addr,
                local_addr: b_addr,
                remote_as: 65001,
            },
            65002,
            b_addr,
            timers,
        );
        (a, b)
    }

    /// Shuttles queued bytes between two sessions until quiescent.
    fn shuttle(a: &mut Session, b: &mut Session, now: SimTime) -> Vec<(char, SessionEvent)> {
        let mut log = Vec::new();
        loop {
            let mut moved = false;
            for ev in a.take_events() {
                if let SessionEvent::SendBytes(bytes) = &ev {
                    b.on_bytes(now, bytes);
                    moved = true;
                }
                log.push(('a', ev));
            }
            for ev in b.take_events() {
                if let SessionEvent::SendBytes(bytes) = &ev {
                    a.on_bytes(now, bytes);
                    moved = true;
                }
                log.push(('b', ev));
            }
            if !moved {
                return log;
            }
        }
    }

    fn establish(a: &mut Session, b: &mut Session, now: SimTime) {
        a.start(now);
        b.start(now);
        a.on_transport_up(now);
        b.on_transport_up(now);
        shuttle(a, b, now);
        assert!(a.is_established(), "a: {:?}", a.state());
        assert!(b.is_established(), "b: {:?}", b.state());
    }

    #[test]
    fn handshake_establishes_both_sides() {
        let (mut a, mut b) = pair();
        establish(&mut a, &mut b, SimTime::ZERO);
    }

    #[test]
    fn wrong_as_rejected() {
        let (mut a, mut b) = pair();
        // Corrupt b's expectation.
        b.config.remote_as = 64999;
        a.start(SimTime::ZERO);
        b.start(SimTime::ZERO);
        a.on_transport_up(SimTime::ZERO);
        b.on_transport_up(SimTime::ZERO);
        let log = shuttle(&mut a, &mut b, SimTime::ZERO);
        assert!(
            log.iter().any(|(who, ev)| *who == 'b'
                && matches!(ev, SessionEvent::Down(DownReason::OpenRejected("peer AS")))),
            "b must reject a's AS: {log:?}"
        );
        assert!(!a.is_established());
        assert!(!b.is_established());
    }

    #[test]
    fn update_delivered_in_established() {
        let (mut a, mut b) = pair();
        establish(&mut a, &mut b, SimTime::ZERO);
        let upd = UpdateMsg {
            withdrawn: vec![],
            attrs: Some(std::sync::Arc::new(crate::msg::PathAttributes::originated(
                Ipv4Addr::new(10, 0, 0, 1),
            ))),
            nlri: vec!["10.9.0.0/16".parse().unwrap()],
        };
        a.send_update(upd.clone());
        let log = shuttle(&mut a, &mut b, SimTime::ZERO);
        assert!(log
            .iter()
            .any(|(who, ev)| *who == 'b' && matches!(ev, SessionEvent::Update(u) if *u == upd)));
    }

    #[test]
    fn hold_timer_expiry_takes_session_down() {
        let (mut a, mut b) = pair();
        establish(&mut a, &mut b, SimTime::ZERO);
        // Starve a of keepalives for > hold (9s).
        a.poll_timers(SimTime::from_secs(10));
        let evs = a.take_events();
        assert!(evs
            .iter()
            .any(|e| matches!(e, SessionEvent::Down(DownReason::HoldTimerExpired))));
        assert_eq!(a.state(), SessionState::Connect, "auto-restarts");
        // The queued NOTIFICATION reaches b, which also goes down.
        for e in evs {
            if let SessionEvent::SendBytes(bytes) = e {
                b.on_bytes(SimTime::from_secs(10), &bytes);
            }
        }
        assert!(b
            .take_events()
            .iter()
            .any(|e| matches!(e, SessionEvent::Down(DownReason::PeerNotification(_)))));
    }

    #[test]
    fn keepalives_maintain_session() {
        let (mut a, mut b) = pair();
        establish(&mut a, &mut b, SimTime::ZERO);
        // Step both clocks for 60 virtual seconds, exchanging keepalives.
        for s in 1..=60u64 {
            let now = SimTime::from_secs(s);
            a.poll_timers(now);
            b.poll_timers(now);
            shuttle(&mut a, &mut b, now);
            assert!(a.is_established() && b.is_established(), "t={s}s");
        }
        assert!(a.msgs_sent >= 60 / 3, "a sent keepalives: {}", a.msgs_sent);
    }

    #[test]
    fn garbage_bytes_cause_codec_down() {
        let (mut a, mut b) = pair();
        establish(&mut a, &mut b, SimTime::ZERO);
        a.on_bytes(SimTime::ZERO, &[0u8; 32]);
        let evs = a.take_events();
        assert!(evs
            .iter()
            .any(|e| matches!(e, SessionEvent::Down(DownReason::CodecError(_)))));
    }

    #[test]
    fn unexpected_message_is_fsm_error() {
        let (mut a, mut b) = pair();
        a.start(SimTime::ZERO);
        b.start(SimTime::ZERO);
        a.on_transport_up(SimTime::ZERO);
        // b (in Connect, hasn't sent OPEN) receives a's OPEN without having
        // the transport up → Connect × Open → FSM error.
        for e in a.take_events() {
            if let SessionEvent::SendBytes(bytes) = e {
                b.on_bytes(SimTime::ZERO, &bytes);
            }
        }
        assert!(b
            .take_events()
            .iter()
            .any(|e| matches!(e, SessionEvent::Down(DownReason::FsmError))));
    }

    #[test]
    fn transport_down_resets() {
        let (mut a, mut b) = pair();
        establish(&mut a, &mut b, SimTime::ZERO);
        a.on_transport_down(SimTime::from_secs(1));
        assert!(!a.is_established());
        assert!(a
            .take_events()
            .iter()
            .any(|e| matches!(e, SessionEvent::Down(DownReason::TransportClosed))));
        assert_eq!(a.state(), SessionState::Connect);
        assert!(a.next_deadline().is_some(), "connect retry armed");
    }

    #[test]
    fn next_deadline_tracks_keepalive() {
        let (mut a, mut b) = pair();
        establish(&mut a, &mut b, SimTime::ZERO);
        let d = a.next_deadline().unwrap();
        // hold/3 = 3s.
        assert_eq!(d, SimTime::from_secs(3));
    }
}

//! Virtual time for the simulation: nanosecond-resolution instants and
//! durations with saturating arithmetic.
//!
//! `SimTime` is an instant measured from the start of the experiment
//! (time zero); `SimDuration` is a span between instants. Both wrap a `u64`
//! nanosecond count, giving ~584 years of range — far beyond any experiment.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds, saturating on overflow and
    /// clamping negatives to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration(0);
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Returns the duration as whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Converts to a `std::time::Duration` (for wall-clock pacing).
    pub const fn to_std(self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.0)
    }

    /// Converts from a `std::time::Duration`, saturating at `u64::MAX` ns.
    pub fn from_std(d: std::time::Duration) -> Self {
        SimDuration(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// An instant of virtual time, measured from experiment start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the experiment.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as an "idle" horizon sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole nanoseconds since experiment start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds an instant from whole milliseconds since experiment start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds an instant from whole seconds since experiment start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Builds an instant from fractional seconds since experiment start.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(SimDuration::from_secs_f64(s).as_nanos())
    }

    /// Nanoseconds since experiment start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since experiment start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`; zero if `earlier` is later.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating add of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.as_nanos()))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_nanos()))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::INFINITY).as_nanos(),
            u64::MAX
        );
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(2);
        let d = SimDuration::from_millis(500);
        assert_eq!((t + d).as_nanos(), 2_500_000_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(t - (t + d), SimDuration::ZERO);
    }

    #[test]
    fn saturation() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::from_nanos(u64::MAX) * 2,
            SimDuration::from_nanos(u64::MAX)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
        assert_eq!(SimTime::from_secs(1).to_string(), "t=1.000000s");
    }

    #[test]
    fn std_roundtrip() {
        let d = SimDuration::from_millis(123);
        assert_eq!(SimDuration::from_std(d.to_std()), d);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}

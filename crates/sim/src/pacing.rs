//! Pacing couples FTI steps to wall-clock time.
//!
//! In FTI mode the point is that the emulated control plane — real protocol
//! engines running on real threads with real timers — should observe a
//! simulation clock that advances like their own wall clock. The
//! [`Pacer`] enforces this: before the engine executes a step that ends at
//! virtual time `t`, it waits until at least `anchor + (t - t0)` of wall time
//! has passed.
//!
//! Two policies are provided:
//!
//! * [`Pacing::RealTime`] — sleep as needed; optionally scaled (a `speed` of
//!   2.0 runs virtual time twice as fast as wall time).
//! * [`Pacing::Virtual`] — never sleep. Deterministic; used in tests and in
//!   benchmark harnesses where the control plane is also virtualized.

use crate::time::SimTime;
use std::time::Instant;

/// Pacing policy for FTI steps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pacing {
    /// Pace virtual time against wall time, scaled by `speed` (virtual
    /// seconds per wall second). `speed = 1.0` is true real time.
    RealTime {
        /// Virtual seconds per wall-clock second.
        speed: f64,
    },
    /// Run as fast as possible; fully deterministic.
    Virtual,
}

impl Pacing {
    /// Plain 1:1 real-time pacing.
    pub fn real_time() -> Self {
        Pacing::RealTime { speed: 1.0 }
    }
}

/// Stateful pacer: anchors virtual time zero to a wall-clock instant.
#[derive(Debug)]
pub struct Pacer {
    policy: Pacing,
    anchor_wall: Instant,
    anchor_sim: SimTime,
}

impl Pacer {
    /// Creates a pacer anchored "now" at the given virtual time.
    pub fn new(policy: Pacing, sim_now: SimTime) -> Self {
        Pacer {
            policy,
            anchor_wall: Instant::now(),
            anchor_sim: sim_now,
        }
    }

    /// The pacing policy.
    pub fn policy(&self) -> Pacing {
        self.policy
    }

    /// Re-anchors the pacer at the current wall instant and the given
    /// virtual time. Called when the engine leaves DES mode: the virtual
    /// time that DES skipped must not be "owed" as wall-clock sleep.
    pub fn rebase(&mut self, sim_now: SimTime) {
        self.anchor_wall = Instant::now();
        self.anchor_sim = sim_now;
    }

    /// Blocks (if pacing in real time) until wall time has caught up with
    /// virtual time `target`. Returns the wall-clock lag (how far behind
    /// real time the simulation was when the call was made); a large lag
    /// means the machine cannot keep up with the configured speed.
    pub fn pace_to(&mut self, target: SimTime) -> std::time::Duration {
        match self.policy {
            Pacing::Virtual => std::time::Duration::ZERO,
            Pacing::RealTime { speed } => {
                let sim_elapsed = target.duration_since(self.anchor_sim).as_secs_f64();
                let wall_needed = if speed > 0.0 {
                    sim_elapsed / speed
                } else {
                    sim_elapsed
                };
                let wall_elapsed = self.anchor_wall.elapsed().as_secs_f64();
                if wall_elapsed < wall_needed {
                    std::thread::sleep(std::time::Duration::from_secs_f64(
                        wall_needed - wall_elapsed,
                    ));
                    std::time::Duration::ZERO
                } else {
                    std::time::Duration::from_secs_f64(wall_elapsed - wall_needed)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn virtual_pacing_never_sleeps() {
        let mut p = Pacer::new(Pacing::Virtual, SimTime::ZERO);
        let start = Instant::now();
        p.pace_to(SimTime::from_secs(3600));
        assert!(start.elapsed().as_millis() < 100);
    }

    #[test]
    fn real_time_pacing_sleeps() {
        let mut p = Pacer::new(Pacing::real_time(), SimTime::ZERO);
        let start = Instant::now();
        p.pace_to(SimTime::from_millis(30));
        assert!(start.elapsed().as_millis() >= 25, "should sleep ~30ms");
    }

    #[test]
    fn speedup_scales_sleep() {
        let mut p = Pacer::new(Pacing::RealTime { speed: 10.0 }, SimTime::ZERO);
        let start = Instant::now();
        p.pace_to(SimTime::from_millis(100));
        let el = start.elapsed().as_millis();
        assert!(
            (5..60).contains(&el),
            "100ms virtual at 10x ≈ 10ms wall, got {el}ms"
        );
    }

    #[test]
    fn rebase_forgives_skipped_time() {
        let mut p = Pacer::new(Pacing::real_time(), SimTime::ZERO);
        // Jump far ahead in virtual time (as DES would), then rebase.
        p.rebase(SimTime::from_secs(1000));
        let start = Instant::now();
        p.pace_to(SimTime::from_secs(1000) + SimDuration::from_millis(10));
        let el = start.elapsed().as_millis();
        assert!(
            el < 100,
            "only the 10ms past the rebase point is owed, got {el}ms"
        );
    }

    #[test]
    fn lag_reported_when_behind() {
        let mut p = Pacer::new(Pacing::real_time(), SimTime::ZERO);
        std::thread::sleep(std::time::Duration::from_millis(20));
        let lag = p.pace_to(SimTime::from_millis(1));
        assert!(lag.as_millis() >= 10, "we were ~19ms behind, got {lag:?}");
    }
}

//! The event queue: a stable min-heap of timestamped events.
//!
//! Two properties matter for reproducibility:
//!
//! 1. **Stability** — events scheduled for the same instant pop in the order
//!    they were pushed (ties broken by a monotonically increasing sequence
//!    number). Without this, hash-map iteration order or heap internals
//!    would leak into experiment results.
//! 2. **Cancellation** — fluid-model re-solves frequently invalidate
//!    previously scheduled flow-completion events. Cancellation is lazy: a
//!    cancelled id goes into a tombstone set and the entry is skipped when it
//!    reaches the top of the heap, keeping `cancel` O(1).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Opaque handle identifying a scheduled event, usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A stable, cancellable priority queue of timestamped events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Ids currently scheduled (not yet popped or cancelled).
    pending: HashSet<u64>,
    /// Cancelled ids awaiting lazy removal from the heap.
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at `time`, returning a handle for cancellation.
    pub fn push(&mut self, time: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.pending.insert(seq);
        EventId(seq)
    }

    /// Cancels a scheduled event. Returns `true` only if the event was
    /// still pending (not yet popped and not previously cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.pending.remove(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        let entry = self.heap.pop()?;
        self.pending.remove(&entry.seq);
        Some((entry.time, entry.event))
    }

    /// Removes the earliest event only if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.clear();
        self.cancelled.clear();
    }

    fn skip_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn stable_for_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.push(t(10), "a");
        q.push(t(20), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn peek_time_sees_past_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(t(10), "a");
        q.push(t(20), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(20)));
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop_due(t(5)), None);
        assert_eq!(q.pop_due(t(10)), Some((t(10), "a")));
        assert_eq!(q.pop_due(t(15)), None);
        assert_eq!(q.pop_due(t(25)), Some((t(20), "b")));
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(t(1), 1);
        q.push(t(2), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}

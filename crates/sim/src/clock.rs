//! The hybrid DES/FTI clock — the heart of Horse's speed-up.
//!
//! The clock is a small state machine with two modes:
//!
//! * [`ClockMode::Des`]: virtual time jumps directly to the next event.
//! * [`ClockMode::Fti`]: virtual time advances in fixed increments so that it
//!   can be paced against wall-clock time while emulated control-plane
//!   processes are talking.
//!
//! Transitions:
//!
//! * `Des → Fti` whenever control-plane activity is reported
//!   ([`HybridClock::on_control_activity`]).
//! * `Fti → Des` once `quiescence` virtual time has elapsed since the last
//!   reported control activity.
//!
//! Every transition is recorded in a log (Figure 1 of the paper shows exactly
//! this timeline for a two-router BGP scenario).

use crate::time::{SimDuration, SimTime};

/// Which time-advance discipline the experiment clock is currently using.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Discrete Event Simulation: jump to the next event.
    Des,
    /// Fixed Time Increment: step in small fixed quanta (control plane live).
    Fti,
}

/// Configuration of the FTI mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FtiConfig {
    /// Size of one fixed step of virtual time.
    pub increment: SimDuration,
    /// How long without control activity before falling back to DES.
    pub quiescence: SimDuration,
}

impl Default for FtiConfig {
    fn default() -> Self {
        FtiConfig {
            increment: SimDuration::from_millis(1),
            quiescence: SimDuration::from_millis(500),
        }
    }
}

/// One recorded mode change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeTransition {
    /// Virtual time at which the mode changed.
    pub at: SimTime,
    /// The mode entered at `at`.
    pub mode: ClockMode,
}

/// What the engine should do next, as decided by the clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advance {
    /// Process all events up to and including this time, then set the clock
    /// there. In FTI mode this is `now + increment`; in DES mode it is the
    /// next event's timestamp.
    RunTo(SimTime),
    /// No pending events and no control activity: the experiment is idle.
    Idle,
}

/// The hybrid DES/FTI clock state machine.
#[derive(Debug, Clone)]
pub struct HybridClock {
    now: SimTime,
    mode: ClockMode,
    fti: FtiConfig,
    last_activity: Option<SimTime>,
    transitions: Vec<ModeTransition>,
    fti_time: SimDuration,
    des_time: SimDuration,
}

impl HybridClock {
    /// Creates a clock at time zero in DES mode.
    pub fn new(fti: FtiConfig) -> Self {
        HybridClock {
            now: SimTime::ZERO,
            mode: ClockMode::Des,
            fti,
            last_activity: None,
            transitions: vec![ModeTransition {
                at: SimTime::ZERO,
                mode: ClockMode::Des,
            }],
            fti_time: SimDuration::ZERO,
            des_time: SimDuration::ZERO,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Current mode.
    pub fn mode(&self) -> ClockMode {
        self.mode
    }

    /// The FTI configuration in force.
    pub fn fti_config(&self) -> FtiConfig {
        self.fti
    }

    /// The full transition log (starts with the initial DES entry at t=0).
    pub fn transitions(&self) -> &[ModeTransition] {
        &self.transitions
    }

    /// Total virtual time spent in FTI mode so far.
    pub fn fti_time(&self) -> SimDuration {
        self.fti_time
    }

    /// Total virtual time spent in DES mode so far.
    pub fn des_time(&self) -> SimDuration {
        self.des_time
    }

    /// Reports control-plane activity observed at the current instant.
    /// Switches to FTI mode if not already there.
    pub fn on_control_activity(&mut self) {
        self.last_activity = Some(self.now);
        if self.mode == ClockMode::Des {
            self.set_mode(ClockMode::Fti);
        }
    }

    /// Decides the next time step given the earliest pending event (if any).
    ///
    /// In FTI mode this first checks the quiescence timeout (demoting to DES
    /// when expired), then returns `now + increment` capped so we never step
    /// past `horizon`. In DES mode it returns the next event time, or `Idle`
    /// when the queue is empty.
    pub fn plan(&mut self, next_event: Option<SimTime>, horizon: SimTime) -> Advance {
        if self.mode == ClockMode::Fti {
            let quiesced = match self.last_activity {
                Some(last) => self.now.duration_since(last) >= self.fti.quiescence,
                None => true,
            };
            if quiesced {
                self.set_mode(ClockMode::Des);
            }
        }
        match self.mode {
            ClockMode::Fti => {
                let target = (self.now + self.fti.increment).min(horizon);
                Advance::RunTo(target)
            }
            ClockMode::Des => match next_event {
                Some(t) if t <= horizon => Advance::RunTo(t.max(self.now)),
                _ => Advance::Idle,
            },
        }
    }

    /// Moves the clock forward to `target` (never backwards), attributing the
    /// elapsed virtual time to the current mode.
    pub fn advance_to(&mut self, target: SimTime) {
        if target <= self.now {
            return;
        }
        let delta = target.duration_since(self.now);
        match self.mode {
            ClockMode::Fti => self.fti_time = self.fti_time + delta,
            ClockMode::Des => self.des_time = self.des_time + delta,
        }
        self.now = target;
    }

    fn set_mode(&mut self, mode: ClockMode) {
        if self.mode != mode {
            self.mode = mode;
            self.transitions.push(ModeTransition { at: self.now, mode });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock() -> HybridClock {
        HybridClock::new(FtiConfig {
            increment: SimDuration::from_millis(1),
            quiescence: SimDuration::from_millis(10),
        })
    }

    #[test]
    fn starts_in_des() {
        let c = clock();
        assert_eq!(c.mode(), ClockMode::Des);
        assert_eq!(c.now(), SimTime::ZERO);
        assert_eq!(c.transitions().len(), 1);
    }

    #[test]
    fn des_jumps_to_next_event() {
        let mut c = clock();
        let ev = SimTime::from_secs(5);
        match c.plan(Some(ev), SimTime::MAX) {
            Advance::RunTo(t) => assert_eq!(t, ev),
            other => panic!("expected RunTo, got {other:?}"),
        }
    }

    #[test]
    fn des_idle_when_no_events() {
        let mut c = clock();
        assert_eq!(c.plan(None, SimTime::MAX), Advance::Idle);
    }

    #[test]
    fn control_activity_enters_fti() {
        let mut c = clock();
        c.on_control_activity();
        assert_eq!(c.mode(), ClockMode::Fti);
        // In FTI the step ignores the (far) next event and uses the increment.
        match c.plan(Some(SimTime::from_secs(100)), SimTime::MAX) {
            Advance::RunTo(t) => assert_eq!(t, SimTime::from_millis(1)),
            other => panic!("expected RunTo, got {other:?}"),
        }
    }

    #[test]
    fn fti_demotes_after_quiescence() {
        let mut c = clock();
        c.on_control_activity();
        // Step the clock past the quiescence window without new activity.
        for _ in 0..10 {
            match c.plan(None, SimTime::MAX) {
                Advance::RunTo(t) => c.advance_to(t),
                Advance::Idle => break,
            }
        }
        assert_eq!(c.now(), SimTime::from_millis(10));
        // Next plan notices quiescence and demotes to DES.
        assert_eq!(c.plan(None, SimTime::MAX), Advance::Idle);
        assert_eq!(c.mode(), ClockMode::Des);
        let modes: Vec<_> = c.transitions().iter().map(|t| t.mode).collect();
        assert_eq!(modes, vec![ClockMode::Des, ClockMode::Fti, ClockMode::Des]);
    }

    #[test]
    fn activity_resets_quiescence() {
        let mut c = clock();
        c.on_control_activity();
        for step in 0..30 {
            match c.plan(None, SimTime::MAX) {
                Advance::RunTo(t) => c.advance_to(t),
                Advance::Idle => panic!("demoted too early at step {step}"),
            }
            if step % 5 == 0 {
                c.on_control_activity(); // keep it alive
            }
            if step >= 25 {
                break;
            }
        }
        assert_eq!(c.mode(), ClockMode::Fti);
    }

    #[test]
    fn horizon_caps_fti_step() {
        let mut c = clock();
        c.on_control_activity();
        let horizon = SimTime::from_nanos(500);
        match c.plan(None, horizon) {
            Advance::RunTo(t) => assert_eq!(t, horizon),
            other => panic!("expected RunTo, got {other:?}"),
        }
    }

    #[test]
    fn advance_never_goes_backwards() {
        let mut c = clock();
        c.advance_to(SimTime::from_secs(1));
        c.advance_to(SimTime::from_millis(1));
        assert_eq!(c.now(), SimTime::from_secs(1));
    }

    #[test]
    fn time_attribution_per_mode() {
        let mut c = clock();
        c.advance_to(SimTime::from_secs(1)); // DES
        c.on_control_activity();
        c.advance_to(SimTime::from_secs(2)); // FTI
        assert_eq!(c.des_time(), SimDuration::from_secs(1));
        assert_eq!(c.fti_time(), SimDuration::from_secs(1));
    }
}

//! A ready-made hybrid run loop for models expressible as an
//! [`EventHandler`].
//!
//! The engine owns the event queue, the [`HybridClock`] and a [`Pacer`], and
//! repeats a simple cycle:
//!
//! 1. poll the handler for control-plane activity (promotes the clock to FTI),
//! 2. ask the clock how far to advance ([`HybridClock::plan`]),
//! 3. pace that step against wall time if in FTI,
//! 4. execute all events due within the step.
//!
//! The full Horse runner (in `horse-core`) drives the clock and queue
//! directly because it must also shuttle bytes between emulated daemons and
//! the Connection Manager mid-step; this engine is the distilled version
//! used by tests, the baseline simulator and simple models.

use crate::clock::{Advance, ClockMode, FtiConfig, HybridClock};
use crate::event::{EventId, EventQueue};
use crate::pacing::{Pacer, Pacing};
use crate::time::{SimDuration, SimTime};

/// Handle given to event handlers for scheduling follow-up events.
pub struct Scheduler<'a, E> {
    queue: &'a mut EventQueue<E>,
    now: SimTime,
    control_activity: bool,
}

impl<'a, E> Scheduler<'a, E> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an event at an absolute time (clamped to now if in the past).
    pub fn at(&mut self, time: SimTime, event: E) -> EventId {
        self.queue.push(time.max(self.now), event)
    }

    /// Schedules an event `delay` after the current time.
    pub fn after(&mut self, delay: SimDuration, event: E) -> EventId {
        self.queue.push(self.now + delay, event)
    }

    /// Cancels a previously scheduled event.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Reports emulated control-plane activity at the current instant,
    /// promoting (or keeping) the experiment clock in FTI mode.
    pub fn control_activity(&mut self) {
        self.control_activity = true;
    }
}

/// A simulation model driven by the engine.
pub trait EventHandler<E> {
    /// Processes one event at virtual time `now`. New events are scheduled
    /// through `sched`.
    fn handle(&mut self, now: SimTime, event: E, sched: &mut Scheduler<'_, E>);

    /// Polled once per engine step: return `true` if external (off-queue)
    /// control-plane activity happened since the last poll. The default is
    /// a pure-DES model with no external control plane.
    fn poll_control_activity(&mut self, _now: SimTime) -> bool {
        false
    }
}

/// Outcome of a [`HybridEngine::run_until`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The horizon was reached with events potentially still pending.
    HorizonReached,
    /// The event queue drained and the clock was in DES mode (nothing left
    /// to do).
    Drained,
}

/// Generic hybrid DES/FTI simulation engine.
pub struct HybridEngine<E> {
    queue: EventQueue<E>,
    clock: HybridClock,
    pacer: Pacer,
    events_processed: u64,
}

impl<E> HybridEngine<E> {
    /// Creates an engine with the given FTI configuration and pacing policy.
    pub fn new(fti: FtiConfig, pacing: Pacing) -> Self {
        HybridEngine {
            queue: EventQueue::new(),
            clock: HybridClock::new(fti),
            pacer: Pacer::new(pacing, SimTime::ZERO),
            events_processed: 0,
        }
    }

    /// A pure-DES engine (FTI never entered unless activity is reported).
    pub fn pure_des() -> Self {
        Self::new(FtiConfig::default(), Pacing::Virtual)
    }

    /// Schedules an initial event.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventId {
        self.queue.push(time, event)
    }

    /// Cancels a scheduled event.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Read access to the clock (time, mode, transition log).
    pub fn clock(&self) -> &HybridClock {
        &self.clock
    }

    /// Number of events executed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Runs the model until `horizon` (inclusive) or until the queue drains
    /// in DES mode, whichever comes first.
    pub fn run_until<H: EventHandler<E>>(
        &mut self,
        horizon: SimTime,
        handler: &mut H,
    ) -> RunOutcome {
        loop {
            if self.clock.now() >= horizon {
                return RunOutcome::HorizonReached;
            }
            if handler.poll_control_activity(self.clock.now()) {
                self.clock.on_control_activity();
            }
            let next = self.queue.peek_time();
            match self.clock.plan(next, horizon) {
                Advance::RunTo(target) => {
                    if self.clock.mode() == ClockMode::Fti {
                        self.pacer.pace_to(target);
                    } else {
                        // DES jumps must not accrue wall-clock debt.
                        self.pacer.rebase(target);
                    }
                    self.step_to(target, handler);
                }
                Advance::Idle => {
                    if self.queue.is_empty() {
                        return RunOutcome::Drained;
                    }
                    // Events exist but all lie beyond the horizon.
                    self.clock.advance_to(horizon);
                    return RunOutcome::HorizonReached;
                }
            }
        }
    }

    /// Executes every event due at or before `target`, then advances the
    /// clock to `target`.
    fn step_to<H: EventHandler<E>>(&mut self, target: SimTime, handler: &mut H) {
        while let Some((time, event)) = self.queue.pop_due(target) {
            self.clock.advance_to(time);
            let mut sched = Scheduler {
                queue: &mut self.queue,
                now: time,
                control_activity: false,
            };
            handler.handle(time, event, &mut sched);
            let activity = sched.control_activity;
            self.events_processed += 1;
            if activity {
                self.clock.on_control_activity();
            }
        }
        self.clock.advance_to(target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that counts events and optionally chains follow-ups.
    struct Chain {
        hops: u32,
        delay: SimDuration,
        fired: Vec<SimTime>,
    }

    impl EventHandler<u32> for Chain {
        fn handle(&mut self, now: SimTime, hop: u32, sched: &mut Scheduler<'_, u32>) {
            self.fired.push(now);
            if hop < self.hops {
                sched.after(self.delay, hop + 1);
            }
        }
    }

    #[test]
    fn des_chain_runs_to_completion() {
        let mut engine = HybridEngine::pure_des();
        engine.schedule(SimTime::from_millis(10), 1);
        let mut model = Chain {
            hops: 5,
            delay: SimDuration::from_millis(10),
            fired: vec![],
        };
        let outcome = engine.run_until(SimTime::from_secs(10), &mut model);
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(model.fired.len(), 5);
        assert_eq!(*model.fired.last().unwrap(), SimTime::from_millis(50));
        assert_eq!(engine.events_processed(), 5);
        // Pure DES: virtual time far outruns wall time.
        assert_eq!(engine.clock().mode(), ClockMode::Des);
    }

    #[test]
    fn horizon_stops_run() {
        let mut engine = HybridEngine::pure_des();
        engine.schedule(SimTime::from_secs(100), 1);
        let mut model = Chain {
            hops: 1,
            delay: SimDuration::ZERO,
            fired: vec![],
        };
        let outcome = engine.run_until(SimTime::from_secs(1), &mut model);
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert!(model.fired.is_empty());
        assert_eq!(engine.pending(), 1);
    }

    /// A model that reports control activity during a window, like a BGP
    /// session converging.
    struct Bursty {
        active_until: SimTime,
        handled: u32,
    }

    impl EventHandler<&'static str> for Bursty {
        fn handle(
            &mut self,
            _now: SimTime,
            _e: &'static str,
            _s: &mut Scheduler<'_, &'static str>,
        ) {
            self.handled += 1;
        }

        fn poll_control_activity(&mut self, now: SimTime) -> bool {
            now < self.active_until
        }
    }

    #[test]
    fn control_activity_drives_fti_then_des() {
        let fti = FtiConfig {
            increment: SimDuration::from_millis(1),
            quiescence: SimDuration::from_millis(5),
        };
        let mut engine = HybridEngine::new(fti, Pacing::Virtual);
        engine.schedule(SimTime::from_millis(50), "late-data-event");
        let mut model = Bursty {
            active_until: SimTime::from_millis(10),
            handled: 0,
        };
        let outcome = engine.run_until(SimTime::from_secs(1), &mut model);
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(model.handled, 1);
        let modes: Vec<_> = engine
            .clock()
            .transitions()
            .iter()
            .map(|t| t.mode)
            .collect();
        assert_eq!(
            modes,
            vec![ClockMode::Des, ClockMode::Fti, ClockMode::Des],
            "Des at start, Fti during the burst, Des after quiescence"
        );
        // FTI covered activity window + quiescence tail, stepped at 1ms.
        assert!(engine.clock().fti_time() >= SimDuration::from_millis(14));
    }

    #[test]
    fn scheduler_control_activity_promotes_clock() {
        struct Promoter;
        impl EventHandler<()> for Promoter {
            fn handle(&mut self, _now: SimTime, _e: (), sched: &mut Scheduler<'_, ()>) {
                sched.control_activity();
            }
        }
        let mut engine = HybridEngine::new(
            FtiConfig {
                increment: SimDuration::from_millis(1),
                quiescence: SimDuration::from_millis(2),
            },
            Pacing::Virtual,
        );
        engine.schedule(SimTime::from_millis(1), ());
        engine.run_until(SimTime::from_secs(1), &mut Promoter);
        let modes: Vec<_> = engine
            .clock()
            .transitions()
            .iter()
            .map(|t| t.mode)
            .collect();
        assert!(modes.contains(&ClockMode::Fti));
    }

    #[test]
    fn cancelled_event_not_delivered() {
        let mut engine = HybridEngine::pure_des();
        let id = engine.schedule(SimTime::from_millis(1), 1);
        engine.schedule(SimTime::from_millis(2), 2);
        engine.cancel(id);
        let mut model = Chain {
            hops: 0,
            delay: SimDuration::ZERO,
            fired: vec![],
        };
        engine.run_until(SimTime::from_secs(1), &mut model);
        assert_eq!(model.fired, vec![SimTime::from_millis(2)]);
    }
}

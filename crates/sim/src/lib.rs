//! # horse-sim — discrete-event core with a hybrid DES/FTI clock
//!
//! This crate implements the simulation substrate of Horse (SIGCOMM'19):
//! a classic discrete-event engine (event queue + scheduler) whose clock can
//! run in two modes:
//!
//! * **DES** — the clock jumps directly to the timestamp of the next event.
//!   This is the fast path used while only (simulated) data-plane traffic is
//!   active.
//! * **FTI** (*Fixed Time Increment*) — the clock advances in small, fixed
//!   steps. Horse enters this mode whenever emulated control-plane activity
//!   is detected (a BGP UPDATE on the wire, an OpenFlow FLOW_MOD, …) so the
//!   emulated daemons, which live in real time, observe a simulation clock
//!   that tracks wall-clock time. After a user-configured *quiescence
//!   timeout* without control activity the clock falls back to DES.
//!
//! The building blocks are deliberately decoupled:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time.
//! * [`EventQueue`] — a stable (FIFO within equal timestamps) priority queue
//!   with O(log n) push/pop and cancellable entries.
//! * [`TimerWheel`] — a hierarchical timing wheel indexing one re-armable
//!   deadline per key (per-node protocol timers), with O(1) schedule/cancel
//!   and an O(1) global minimum off per-level occupancy bitmaps.
//! * [`HybridClock`] — the DES/FTI mode state machine with a transition log.
//! * [`Pacer`] — couples FTI steps to wall-clock time (`RealTime`) or runs
//!   them as fast as possible (`Virtual`) for deterministic tests/benches.
//! * [`HybridEngine`] — a ready-made run loop for models that fit the
//!   [`EventHandler`] trait; larger systems (the Horse runner) drive the
//!   clock and queue directly.

pub mod clock;
pub mod engine;
pub mod event;
pub mod pacing;
pub mod time;
pub mod wheel;

pub use clock::{ClockMode, FtiConfig, HybridClock, ModeTransition};
pub use engine::{EventHandler, HybridEngine, Scheduler};
pub use event::{EventId, EventQueue};
pub use pacing::{Pacer, Pacing};
pub use time::{SimDuration, SimTime};
pub use wheel::TimerWheel;

//! A hierarchical timing wheel: O(1)-amortized deadline bookkeeping for
//! many concurrent timers.
//!
//! The Connection Manager tracks one "earliest deadline" per emulated node
//! (a BGP speaker's next hold/keepalive/MRAI expiry, a flow table's next
//! idle/hard timeout). With hundreds of daemons, recomputing the global
//! minimum by scanning every node each engine step is the dominant pump
//! cost; the wheel makes *register / cancel / next-deadline / fire-due*
//! all cheap:
//!
//! * [`TimerWheel::schedule`] — O(1): place the key's deadline into the
//!   slot of the finest level whose window covers it (re-scheduling first
//!   removes the old entry, found by probing the handful of slots its
//!   deadline can map to — no tombstones, no heap churn).
//! * [`TimerWheel::advance`] — amortized O(fired + slots crossed): walk
//!   the slots between the old and new position, firing due entries and
//!   cascading coarse-level entries down.
//! * [`TimerWheel::next_deadline`] — O(levels): per level, a 64-bit
//!   occupancy bitmap gives the first populated slot in visit order; slot
//!   windows partition time, so the earliest populated slot of each level
//!   holds that level's minimum and the answer is the min over levels.
//!
//! Determinism: `advance` returns fired entries sorted by `(deadline,
//! key)`, and all internal containers iterate in deterministic order, so
//! two runs that schedule the same deadlines observe the same fire order.
//! The wheel deliberately coexists with [`crate::EventQueue`]: the queue
//! orders the *engine's* events; the wheel indexes *per-node* deadlines
//! whose owners re-arm constantly (where a heap would churn O(log n) per
//! update and tombstones would accumulate).

use crate::time::SimTime;
use std::collections::BTreeMap;

/// Slots per level; the shift (6 bits) makes slot math masks.
const SLOTS: usize = 64;
const SLOT_BITS: u32 = 6;
/// Hierarchy depth. With the default 1 ms granularity the levels span
/// 64 ms, 4.1 s, 4.4 min and 4.7 h; later deadlines go to the overflow
/// list (rare: protocol timers are seconds-scale).
const LEVELS: usize = 4;

#[derive(Debug, Clone)]
struct Level<K> {
    slots: Vec<Vec<(K, u64)>>,
    /// Bit `s` set ⇔ `slots[s]` is non-empty.
    occupied: u64,
}

impl<K> Level<K> {
    fn new() -> Level<K> {
        Level {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupied: 0,
        }
    }
}

/// A hierarchical timing wheel mapping keys to a single deadline each.
///
/// Re-scheduling a key replaces its previous deadline; [`TimerWheel::advance`]
/// fires every entry whose deadline has been reached and removes it.
#[derive(Debug, Clone)]
pub struct TimerWheel<K> {
    /// Tick width in nanoseconds (level-0 slot width).
    granularity: u64,
    /// Current position: `now / granularity` of the last `advance`.
    cur: u64,
    levels: Vec<Level<K>>,
    /// Deadlines whose tick is ≤ `cur` (scheduled in the past, or landed
    /// on the current tick): fired by the next `advance` that reaches them.
    due: Vec<(K, u64)>,
    /// Deadlines beyond the coarsest level's window.
    overflow: Vec<(K, u64)>,
    /// The authoritative key → deadline map (`len`, exact lookups).
    deadline_of: BTreeMap<K, u64>,
}

impl<K: Ord + Copy> TimerWheel<K> {
    /// A wheel with 1 ms ticks — matched to the default FTI increment, the
    /// natural resolution of control-plane deadlines here.
    pub fn new() -> TimerWheel<K> {
        TimerWheel::with_granularity_ns(1_000_000)
    }

    /// A wheel with explicit tick width (nanoseconds, ≥ 1).
    pub fn with_granularity_ns(granularity: u64) -> TimerWheel<K> {
        assert!(granularity > 0, "granularity must be positive");
        TimerWheel {
            granularity,
            cur: 0,
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            due: Vec::new(),
            overflow: Vec::new(),
            deadline_of: BTreeMap::new(),
        }
    }

    /// Number of scheduled keys.
    pub fn len(&self) -> usize {
        self.deadline_of.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.deadline_of.is_empty()
    }

    /// The deadline currently scheduled for `key`, if any.
    pub fn deadline_of(&self, key: K) -> Option<SimTime> {
        self.deadline_of.get(&key).map(|d| SimTime::from_nanos(*d))
    }

    /// Schedules (or re-schedules) `key` to fire at `deadline`. Deadlines
    /// at or before the wheel's current position fire on the next
    /// [`TimerWheel::advance`] that reaches them.
    pub fn schedule(&mut self, key: K, deadline: SimTime) {
        let d = deadline.as_nanos();
        if let Some(old) = self.deadline_of.insert(key, d) {
            if old == d {
                return;
            }
            self.remove_entry(key, old);
        }
        self.place(key, d);
    }

    /// Unschedules `key`. Returns true when it was scheduled.
    pub fn cancel(&mut self, key: K) -> bool {
        match self.deadline_of.remove(&key) {
            Some(old) => {
                self.remove_entry(key, old);
                true
            }
            None => false,
        }
    }

    /// The earliest scheduled deadline.
    pub fn next_deadline(&self) -> Option<SimTime> {
        let mut best: Option<u64> = None;
        let mut consider = |d: u64| {
            best = Some(match best {
                Some(b) => b.min(d),
                None => d,
            });
        };
        for (k, d) in &self.due {
            debug_assert_eq!(self.deadline_of.get(k), Some(d));
            consider(*d);
        }
        for (l, level) in self.levels.iter().enumerate() {
            if level.occupied == 0 {
                continue;
            }
            // Visit slots in time order starting just after the current
            // position at this level; the first populated slot holds the
            // level's minimum (slot windows partition time).
            let cur_l = self.cur >> (SLOT_BITS * l as u32);
            let first = ((cur_l + 1) % SLOTS as u64) as u32;
            let rotated = level.occupied.rotate_right(first);
            let offset = rotated.trailing_zeros();
            let slot = (first + offset) as usize % SLOTS;
            for (_, d) in &level.slots[slot] {
                consider(*d);
            }
        }
        for (_, d) in &self.overflow {
            consider(*d);
        }
        best.map(SimTime::from_nanos)
    }

    /// Moves the wheel to `now`, returning every entry whose deadline is
    /// ≤ `now`, sorted by `(deadline, key)` and removed from the wheel.
    pub fn advance(&mut self, now: SimTime) -> Vec<(K, SimTime)> {
        let now_ns = now.as_nanos();
        let new = now_ns / self.granularity;
        let mut candidates: Vec<(K, u64)> = Vec::new();
        if new > self.cur {
            for l in 0..LEVELS {
                let shift = SLOT_BITS * l as u32;
                let cur_l = self.cur >> shift;
                let new_l = new >> shift;
                if cur_l == new_l {
                    // No slot boundary crossed at this level, hence none
                    // at any coarser level either.
                    break;
                }
                let level = &mut self.levels[l];
                if new_l - cur_l >= SLOTS as u64 {
                    for s in 0..SLOTS {
                        candidates.append(&mut level.slots[s]);
                    }
                    level.occupied = 0;
                } else {
                    for t in (cur_l + 1)..=new_l {
                        let s = (t as usize) % SLOTS;
                        candidates.append(&mut level.slots[s]);
                        level.occupied &= !(1u64 << s);
                    }
                }
            }
            // Entering a new coarsest-level slot may bring overflow
            // entries into the wheel's window: re-place them all.
            let top_shift = SLOT_BITS * (LEVELS as u32 - 1);
            if (new >> top_shift) != (self.cur >> top_shift) {
                candidates.append(&mut self.overflow);
            }
            self.cur = new;
        }
        // `due` entries are already at or before the current position;
        // fire the reached ones, keep the rest (sub-tick precision).
        let mut still_due = Vec::new();
        for (k, d) in self.due.drain(..) {
            if d <= now_ns {
                candidates.push((k, d));
            } else {
                still_due.push((k, d));
            }
        }
        self.due = still_due;

        let mut fired: Vec<(K, u64)> = Vec::new();
        for (k, d) in candidates {
            debug_assert_eq!(self.deadline_of.get(&k), Some(&d));
            if d <= now_ns {
                self.deadline_of.remove(&k);
                fired.push((k, d));
            } else {
                // Not yet reached: cascade down to its new location.
                self.place(k, d);
            }
        }
        fired.sort_unstable_by_key(|&(k, d)| (d, k));
        fired
            .into_iter()
            .map(|(k, d)| (k, SimTime::from_nanos(d)))
            .collect()
    }

    /// Puts an entry where it belongs relative to the current position.
    fn place(&mut self, key: K, d: u64) {
        match self.location(d) {
            Location::Due => self.due.push((key, d)),
            Location::Slot(l, s) => {
                self.levels[l].slots[s].push((key, d));
                self.levels[l].occupied |= 1u64 << s;
            }
            Location::Overflow => self.overflow.push((key, d)),
        }
    }

    /// Removes a previously placed entry. `due` and `overflow` are
    /// canonical locations; within the levels an entry sits at the level
    /// chosen when it was placed or last cascaded, which may be *coarser*
    /// than what `location` computes against the advanced `cur` (cascading
    /// only moves entries down when their coarse slot is crossed) — so
    /// search from the computed level upward.
    fn remove_entry(&mut self, key: K, d: u64) {
        match self.location(d) {
            Location::Due => {
                if let Some(pos) = self.due.iter().position(|(k, dd)| *k == key && *dd == d) {
                    self.due.swap_remove(pos);
                }
            }
            Location::Slot(l0, _) => {
                let tick = d / self.granularity;
                for l in l0..LEVELS {
                    let s = ((tick >> (SLOT_BITS * l as u32)) as usize) % SLOTS;
                    let slot = &mut self.levels[l].slots[s];
                    if let Some(pos) = slot.iter().position(|(k, dd)| *k == key && *dd == d) {
                        slot.swap_remove(pos);
                        if slot.is_empty() {
                            self.levels[l].occupied &= !(1u64 << s);
                        }
                        return;
                    }
                }
                debug_assert!(false, "scheduled entry missing from wheel");
            }
            Location::Overflow => {
                if let Some(pos) = self
                    .overflow
                    .iter()
                    .position(|(k, dd)| *k == key && *dd == d)
                {
                    self.overflow.swap_remove(pos);
                }
            }
        }
    }

    fn location(&self, d: u64) -> Location {
        let tick = d / self.granularity;
        if tick <= self.cur {
            return Location::Due;
        }
        for l in 0..LEVELS {
            let shift = SLOT_BITS * l as u32;
            let tick_l = tick >> shift;
            let cur_l = self.cur >> shift;
            if tick_l - cur_l < SLOTS as u64 {
                return Location::Slot(l, (tick_l as usize) % SLOTS);
            }
        }
        Location::Overflow
    }
}

impl<K: Ord + Copy> Default for TimerWheel<K> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

enum Location {
    Due,
    Slot(usize, usize),
    Overflow,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    #[test]
    fn fires_in_deadline_order() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.schedule(1, ms(30));
        w.schedule(2, ms(10));
        w.schedule(3, ms(20));
        assert_eq!(w.next_deadline(), Some(ms(10)));
        let fired = w.advance(ms(25));
        assert_eq!(fired, vec![(2, ms(10)), (3, ms(20))]);
        assert_eq!(w.next_deadline(), Some(ms(30)));
        assert_eq!(w.advance(ms(30)), vec![(1, ms(30))]);
        assert!(w.is_empty());
    }

    #[test]
    fn reschedule_replaces_and_cancel_removes() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.schedule(1, ms(10));
        w.schedule(1, ms(50));
        assert_eq!(w.len(), 1);
        assert_eq!(w.next_deadline(), Some(ms(50)));
        assert!(w.advance(ms(20)).is_empty(), "old deadline must not fire");
        assert!(w.cancel(1));
        assert!(!w.cancel(1));
        assert!(w.advance(ms(100)).is_empty());
    }

    #[test]
    fn cascades_across_levels() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        // 10 s = 10 000 ticks: lives at level 2 initially, must cascade
        // down and fire at exactly its deadline.
        w.schedule(7, ms(10_000));
        assert_eq!(w.next_deadline(), Some(ms(10_000)));
        assert!(w.advance(ms(9_999)).is_empty());
        assert_eq!(w.next_deadline(), Some(ms(10_000)));
        assert_eq!(w.advance(ms(10_000)), vec![(7, ms(10_000))]);
    }

    #[test]
    fn big_jump_fires_everything_due() {
        let mut w: TimerWheel<u64> = TimerWheel::new();
        for i in 0..100u64 {
            w.schedule(i, ms(i * 37 + 1));
        }
        let fired = w.advance(ms(100 * 37));
        assert_eq!(fired.len(), 100);
        // Sorted by (deadline, key).
        for pair in fired.windows(2) {
            assert!((pair[0].1, pair[0].0) < (pair[1].1, pair[1].0));
        }
    }

    #[test]
    fn past_deadline_fires_immediately() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.advance(ms(100));
        w.schedule(1, ms(40));
        assert_eq!(w.next_deadline(), Some(ms(40)));
        assert_eq!(w.advance(ms(100)), vec![(1, ms(40))]);
    }

    #[test]
    fn sub_tick_deadlines_are_exact() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.advance(SimTime::from_nanos(1_000_200));
        // Same 1 ms tick as `cur`, but later than now: must not fire early.
        w.schedule(1, SimTime::from_nanos(1_000_700));
        assert!(w.advance(SimTime::from_nanos(1_000_500)).is_empty());
        assert_eq!(w.next_deadline(), Some(SimTime::from_nanos(1_000_700)));
        assert_eq!(
            w.advance(SimTime::from_nanos(1_000_700)),
            vec![(1, SimTime::from_nanos(1_000_700))]
        );
    }

    #[test]
    fn overflow_beyond_top_level_window() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        // 64^4 ms ≈ 4.66 h is past the wheel's window at t=0.
        let far = ms(20_000_000);
        w.schedule(1, far);
        assert_eq!(w.next_deadline(), Some(far));
        assert!(w.advance(ms(19_999_999)).is_empty());
        assert_eq!(w.advance(far), vec![(1, far)]);
    }

    #[test]
    fn next_deadline_is_global_min_across_levels() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.advance(ms(60)); // desync level boundaries from zero
        w.schedule(1, ms(70)); // level 0
        w.schedule(2, ms(200)); // level 1
        w.schedule(3, ms(90_000)); // level 2
        assert_eq!(w.next_deadline(), Some(ms(70)));
        w.cancel(1);
        assert_eq!(w.next_deadline(), Some(ms(200)));
        w.cancel(2);
        assert_eq!(w.next_deadline(), Some(ms(90_000)));
    }

    /// Differential test against a naive BTreeMap model under a
    /// deterministic pseudo-random schedule/cancel/advance workload.
    #[test]
    fn matches_naive_model() {
        let mut w: TimerWheel<u16> = TimerWheel::new();
        let mut model: BTreeMap<u16, u64> = BTreeMap::new();
        let mut now = 0u64;
        let mut rng = 0x243F_6A88_85A3_08D3u64;
        let mut next = || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng >> 33
        };
        for _ in 0..3000 {
            match next() % 4 {
                0 | 1 => {
                    let key = (next() % 50) as u16;
                    // Mix near, far and past deadlines.
                    let d = match next() % 8 {
                        0 => now.saturating_sub(next() % 5_000_000),
                        1..=5 => now + next() % 80_000_000,
                        _ => now + next() % 20_000_000_000,
                    };
                    w.schedule(key, SimTime::from_nanos(d));
                    model.insert(key, d);
                }
                2 => {
                    let key = (next() % 50) as u16;
                    assert_eq!(w.cancel(key), model.remove(&key).is_some());
                }
                _ => {
                    now += next() % 50_000_000;
                    let fired = w.advance(SimTime::from_nanos(now));
                    let mut expect: Vec<(u16, u64)> = model
                        .iter()
                        .filter(|(_, d)| **d <= now)
                        .map(|(k, d)| (*k, *d))
                        .collect();
                    expect.sort_unstable_by(|a, b| (a.1, a.0).cmp(&(b.1, b.0)));
                    for (k, _) in &expect {
                        model.remove(k);
                    }
                    let got: Vec<(u16, u64)> =
                        fired.iter().map(|(k, d)| (*k, d.as_nanos())).collect();
                    assert_eq!(got, expect, "divergence at now={now}");
                }
            }
            assert_eq!(w.len(), model.len());
            assert_eq!(
                w.next_deadline().map(|d| d.as_nanos()),
                model.values().min().copied()
            );
        }
    }
}

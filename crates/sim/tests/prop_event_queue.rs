//! Property tests: the event queue is a stable priority queue under any
//! interleaving of pushes, pops and cancels.

use horse_sim::{EventQueue, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Push(u64),
    Pop,
    CancelNth(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..1_000).prop_map(Op::Push),
            Just(Op::Pop),
            (0usize..64).prop_map(Op::CancelNth),
        ],
        0..200,
    )
}

proptest! {
    /// Whatever we do, pops come out in (time, insertion) order and the
    /// queue agrees with a naive reference model.
    #[test]
    fn matches_reference_model(ops in ops()) {
        let mut q: EventQueue<u32> = EventQueue::new();
        // Reference: Vec of (time, seq, value, alive).
        let mut model: Vec<(u64, u32, bool)> = Vec::new();
        let mut ids = Vec::new();
        let mut next_val = 0u32;

        for op in ops {
            match op {
                Op::Push(t) => {
                    let id = q.push(SimTime::from_nanos(t), next_val);
                    ids.push(id);
                    model.push((t, next_val, true));
                    next_val += 1;
                }
                Op::Pop => {
                    let got = q.pop();
                    // Reference pop: earliest alive by (time, insertion).
                    let pick = model
                        .iter()
                        .enumerate()
                        .filter(|(_, (_, _, alive))| *alive)
                        .min_by_key(|(i, (t, _, _))| (*t, *i))
                        .map(|(i, _)| i);
                    match (got, pick) {
                        (Some((t, v)), Some(i)) => {
                            prop_assert_eq!(t.as_nanos(), model[i].0);
                            prop_assert_eq!(v, model[i].1);
                            model[i].2 = false;
                        }
                        (None, None) => {}
                        (g, p) => prop_assert!(false, "mismatch {:?} vs {:?}", g, p),
                    }
                }
                Op::CancelNth(n) => {
                    if let Some(id) = ids.get(n) {
                        let was_alive = model.get(n).map(|m| m.2).unwrap_or(false);
                        let cancelled = q.cancel(*id);
                        prop_assert_eq!(cancelled, was_alive);
                        if let Some(m) = model.get_mut(n) {
                            m.2 = false;
                        }
                    }
                }
            }
            let alive = model.iter().filter(|m| m.2).count();
            prop_assert_eq!(q.len(), alive);
        }
        // Drain: remaining events come out fully ordered.
        let mut last: Option<(u64, usize)> = None;
        while let Some((t, v)) = q.pop() {
            let idx = model.iter().position(|(_, mv, alive)| *alive && *mv == v)
                .expect("popped value must be alive in model");
            if let Some((lt, li)) = last {
                prop_assert!((lt, li) <= (t.as_nanos(), idx));
            }
            last = Some((t.as_nanos(), idx));
            model[idx].2 = false;
        }
        prop_assert!(model.iter().all(|m| !m.2));
    }

    /// peek_time always names the next pop's timestamp.
    #[test]
    fn peek_predicts_pop(times in prop::collection::vec(0u64..1000, 1..50)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(*t), i);
        }
        while let Some(peeked) = q.peek_time() {
            let (t, _) = q.pop().expect("peek implies pop");
            prop_assert_eq!(t, peeked);
        }
        prop_assert!(q.is_empty());
    }
}

//! # horse-cm — the Connection Manager
//!
//! "The Connection Manager (CM) is the bridge between the emulation and
//! simulation. The CM has visibility to control plane packets and is
//! responsible for sending events that trigger a change to the FTI mode."
//! (Horse, §2.)
//!
//! Concretely, this crate provides the three bridge mechanisms:
//!
//! * [`ActivityProbe`] — a shared, thread-safe counter bumped by every
//!   control-plane byte transfer. The hybrid runner polls it each step;
//!   any movement promotes (or keeps) the experiment clock in FTI mode.
//! * [`pipe`] / [`PipeEndpoint`] — tapped duplex byte streams connecting
//!   emulated control-plane endpoints (BGP speaker ↔ BGP speaker, switch
//!   agent ↔ controller). Every send bumps the probe, giving the CM its
//!   "visibility to control plane packets". Endpoints are cloneable and
//!   thread-safe so daemons can run on real OS threads in emulation mode,
//!   or be drained inline in deterministic virtual mode.
//! * [`FibInstaller`] — translates routing-protocol next hops (peer link
//!   addresses) into simulated output ports and installs them in the data
//!   plane ("When the routers add routes to their RIB, Horse installs
//!   those routes in the respective data planes").

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use horse_dataplane::fib::{NextHop, RouteEntry, RouteOrigin};
use horse_dataplane::path::DataPlane;
use horse_net::addr::Ipv4Prefix;
use horse_net::topology::{NodeId, PortId};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared control-activity counter.
///
/// Clones observe the same underlying counter. The runner keeps a local
/// snapshot and asks [`ActivityProbe::changed_since`] once per engine step.
#[derive(Debug, Clone, Default)]
pub struct ActivityProbe {
    counter: Arc<AtomicU64>,
}

impl ActivityProbe {
    /// A fresh probe at zero.
    pub fn new() -> ActivityProbe {
        ActivityProbe::default()
    }

    /// Records one unit of control-plane activity.
    pub fn bump(&self) {
        self.counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Current counter value.
    pub fn snapshot(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    /// True if activity occurred since `last`; updates `last`.
    pub fn changed_since(&self, last: &mut u64) -> bool {
        let now = self.snapshot();
        let changed = now != *last;
        *last = now;
        changed
    }
}

/// One end of a tapped duplex byte pipe.
#[derive(Debug, Clone)]
pub struct PipeEndpoint {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    probe: ActivityProbe,
    sent: Arc<AtomicU64>,
}

impl PipeEndpoint {
    /// Sends bytes to the other end, bumping the activity probe on
    /// successful delivery.
    pub fn send(&self, bytes: Bytes) {
        let len = bytes.len() as u64;
        // The peer endpoint may have been dropped (experiment teardown);
        // losing bytes then is correct — but lost bytes are not control
        // activity and must not hold the clock in FTI.
        if self.tx.send(bytes).is_ok() {
            self.probe.bump();
            self.sent.fetch_add(len, Ordering::Relaxed);
        }
    }

    /// Non-blocking receive of one chunk.
    pub fn try_recv(&self) -> Option<Bytes> {
        self.rx.try_recv().ok()
    }

    /// Drains everything currently queued.
    pub fn drain(&self) -> Vec<Bytes> {
        let mut out = Vec::new();
        while let Ok(b) = self.rx.try_recv() {
            out.push(b);
        }
        out
    }

    /// Blocking receive with a wall-clock timeout (emulation mode threads).
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<Bytes> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Total bytes sent from this endpoint.
    pub fn bytes_sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }
}

/// Creates a tapped duplex pipe; both endpoints bump `probe` on send.
pub fn pipe(probe: &ActivityProbe) -> (PipeEndpoint, PipeEndpoint) {
    let (atx, arx) = unbounded();
    let (btx, brx) = unbounded();
    (
        PipeEndpoint {
            tx: atx,
            rx: brx,
            probe: probe.clone(),
            sent: Arc::new(AtomicU64::new(0)),
        },
        PipeEndpoint {
            tx: btx,
            rx: arx,
            probe: probe.clone(),
            sent: Arc::new(AtomicU64::new(0)),
        },
    )
}

/// Translates control-plane next hops into data-plane FIB entries.
#[derive(Debug, Clone, Default)]
pub struct FibInstaller {
    addr_to_port: BTreeMap<NodeId, BTreeMap<Ipv4Addr, PortId>>,
    /// Count of installs/removals applied (observability).
    pub installs: u64,
}

impl FibInstaller {
    /// An empty installer.
    pub fn new() -> FibInstaller {
        FibInstaller::default()
    }

    /// Registers a router's neighbor-address → port map.
    pub fn register(&mut self, node: NodeId, map: BTreeMap<Ipv4Addr, PortId>) {
        self.addr_to_port.insert(node, map);
    }

    /// Applies a route change reported by `node`'s routing daemon: installs
    /// the (multipath) route, or removes the prefix when `next_hops` is
    /// empty. Next hops with no known port (e.g. a neighbor on a link that
    /// was never registered) are skipped; if none remain, the prefix is
    /// removed. Returns true if the FIB changed.
    pub fn apply(
        &mut self,
        dp: &mut DataPlane,
        node: NodeId,
        prefix: Ipv4Prefix,
        next_hops: &[Ipv4Addr],
    ) -> bool {
        let Some(fib) = dp.fib_mut(node) else {
            return false;
        };
        let map = self.addr_to_port.get(&node);
        let hops: Vec<NextHop> = next_hops
            .iter()
            .filter_map(|gw| {
                map.and_then(|m| m.get(gw)).map(|port| NextHop {
                    port: *port,
                    gateway: *gw,
                })
            })
            .collect();
        let changed = if hops.is_empty() {
            fib.remove(prefix).is_some()
        } else {
            let entry = RouteEntry::new(hops, RouteOrigin::Bgp);
            fib.insert(prefix, entry.clone()) != Some(entry)
        };
        // Only actual FIB mutations count; redundant re-announcements of
        // the same route are a no-op.
        if changed {
            self.installs += 1;
        }
        changed
    }

    /// Installs a connected route (host-facing subnet) on a router.
    /// Returns true if the FIB changed; mutations count as installs.
    pub fn install_connected(
        &mut self,
        dp: &mut DataPlane,
        node: NodeId,
        prefix: Ipv4Prefix,
        port: PortId,
    ) -> bool {
        let Some(fib) = dp.fib_mut(node) else {
            return false;
        };
        let entry = RouteEntry::new(
            vec![NextHop {
                port,
                gateway: Ipv4Addr::UNSPECIFIED,
            }],
            RouteOrigin::Connected,
        );
        let changed = fib.insert(prefix, entry.clone()) != Some(entry);
        if changed {
            self.installs += 1;
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use horse_dataplane::hash::HashMode;

    #[test]
    fn probe_counts_and_detects_changes() {
        let p = ActivityProbe::new();
        let mut last = 0;
        assert!(!p.changed_since(&mut last));
        p.bump();
        assert!(p.changed_since(&mut last));
        assert!(!p.changed_since(&mut last));
        assert_eq!(p.snapshot(), 1);
    }

    #[test]
    fn probe_shared_across_clones_and_threads() {
        let p = ActivityProbe::new();
        let p2 = p.clone();
        let h = std::thread::spawn(move || {
            for _ in 0..1000 {
                p2.bump();
            }
        });
        h.join().unwrap();
        assert_eq!(p.snapshot(), 1000);
    }

    #[test]
    fn pipe_moves_bytes_and_bumps_probe() {
        let probe = ActivityProbe::new();
        let (a, b) = pipe(&probe);
        a.send(Bytes::from_static(b"hello"));
        assert_eq!(probe.snapshot(), 1);
        assert_eq!(b.try_recv().unwrap(), Bytes::from_static(b"hello"));
        assert!(b.try_recv().is_none());
        b.send(Bytes::from_static(b"world"));
        assert_eq!(a.drain(), vec![Bytes::from_static(b"world")]);
        assert_eq!(probe.snapshot(), 2);
        assert_eq!(a.bytes_sent(), 5);
    }

    #[test]
    fn pipe_works_across_threads() {
        let probe = ActivityProbe::new();
        let (a, b) = pipe(&probe);
        let h = std::thread::spawn(move || {
            for i in 0..100u8 {
                b.send(Bytes::from(vec![i]));
            }
        });
        h.join().unwrap();
        let got = a.drain();
        assert_eq!(got.len(), 100);
        assert_eq!(got[99][0], 99);
    }

    #[test]
    fn send_to_dropped_peer_does_not_panic_or_count_as_activity() {
        let probe = ActivityProbe::new();
        let (a, b) = pipe(&probe);
        drop(b);
        a.send(Bytes::from_static(b"into the void"));
        assert_eq!(probe.snapshot(), 0, "lost bytes are not control activity");
        assert_eq!(a.bytes_sent(), 0);
    }

    #[test]
    fn installer_translates_and_installs() {
        let mut topo = horse_net::topology::Topology::new();
        let r = topo.add_router("r", Ipv4Addr::new(1, 1, 1, 1));
        let s = topo.add_router("s", Ipv4Addr::new(2, 2, 2, 2));
        let (_, r_port, _) = topo.add_link(r, s, 1e9, 0);
        let mut dp = DataPlane::new();
        dp.add_router(r, HashMode::SrcDst);
        let mut inst = FibInstaller::new();
        let gw = Ipv4Addr::new(172, 16, 0, 2);
        inst.register(r, BTreeMap::from([(gw, r_port)]));
        let prefix: Ipv4Prefix = "10.9.0.0/16".parse().unwrap();
        assert!(inst.apply(&mut dp, r, prefix, &[gw]));
        let (_, entry) = dp
            .fib(r)
            .unwrap()
            .lookup(Ipv4Addr::new(10, 9, 1, 1))
            .unwrap();
        assert_eq!(entry.next_hops[0].port, r_port);
        // Idempotent re-install reports no change.
        assert!(!inst.apply(&mut dp, r, prefix, &[gw]));
        // Withdrawal.
        assert!(inst.apply(&mut dp, r, prefix, &[]));
        assert!(dp
            .fib(r)
            .unwrap()
            .lookup(Ipv4Addr::new(10, 9, 1, 1))
            .is_none());
        // Install + withdrawal mutated the FIB; the idempotent re-install
        // and the redundant withdrawal below must not count.
        assert!(!inst.apply(&mut dp, r, prefix, &[]));
        assert_eq!(inst.installs, 2, "installs == actual FIB mutations");
    }

    #[test]
    fn connected_routes_count_as_installs() {
        let mut dp = DataPlane::new();
        let r = NodeId(0);
        dp.add_router(r, HashMode::SrcDst);
        let mut inst = FibInstaller::new();
        let prefix: Ipv4Prefix = "10.1.0.0/24".parse().unwrap();
        assert!(inst.install_connected(&mut dp, r, prefix, PortId(3)));
        assert_eq!(inst.installs, 1);
        // Re-installing the identical connected route is a no-op.
        assert!(!inst.install_connected(&mut dp, r, prefix, PortId(3)));
        assert_eq!(inst.installs, 1);
        // Moving it to a different port is a mutation.
        assert!(inst.install_connected(&mut dp, r, prefix, PortId(4)));
        assert_eq!(inst.installs, 2);
    }

    #[test]
    fn unknown_next_hop_removes_route() {
        let mut dp = DataPlane::new();
        let r = NodeId(0);
        dp.add_router(r, HashMode::SrcDst);
        let mut inst = FibInstaller::new();
        inst.register(r, BTreeMap::new());
        let prefix: Ipv4Prefix = "10.9.0.0/16".parse().unwrap();
        // Pre-install something, then apply with an unresolvable hop.
        inst.install_connected(&mut dp, r, prefix, PortId(0));
        assert!(dp
            .fib(r)
            .unwrap()
            .lookup(Ipv4Addr::new(10, 9, 0, 1))
            .is_some());
        inst.apply(&mut dp, r, prefix, &[Ipv4Addr::new(9, 9, 9, 9)]);
        assert!(
            dp.fib(r)
                .unwrap()
                .lookup(Ipv4Addr::new(10, 9, 0, 1))
                .is_none(),
            "unresolvable hops remove the prefix"
        );
    }

    #[test]
    fn installer_ignores_non_routers() {
        let mut dp = DataPlane::new();
        dp.add_host(NodeId(0));
        let mut inst = FibInstaller::new();
        assert!(!inst.apply(
            &mut dp,
            NodeId(0),
            "10.0.0.0/8".parse().unwrap(),
            &[Ipv4Addr::new(1, 1, 1, 1)]
        ));
    }
}

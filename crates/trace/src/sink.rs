//! Trace sinks: where instrumented components put events.
//!
//! The hot-path contract is that a disabled tracer costs one enum
//! discriminant check per instrumentation site. Components hold a
//! [`Tracer`] value (not a `dyn TraceSink`) so the disabled branch can be
//! inlined and the enabled branch stays monomorphic.

use crate::event::{Component, TraceData, TraceEvent};
use crate::log::ComponentLog;
use horse_sim::SimTime;
use std::collections::VecDeque;
use std::time::Instant;

/// Tuning knobs for tracing, carried by `RunConfig` and the `Experiment`
/// builder. `Default` is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOptions {
    /// Record events at all. When false every sink is a [`NullSink`].
    pub enabled: bool,
    /// Ring-buffer capacity per component, in events. Each ring preallocates
    /// `capacity * size_of::<TraceEvent>()` bytes at construction, so
    /// right-size this for the run: the demo scenarios record a few hundred
    /// events per component, the convergence replays a few thousand.
    /// Overflow overwrites the oldest events and is counted, never
    /// reallocated.
    pub capacity: usize,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            enabled: false,
            capacity: 1 << 14,
        }
    }
}

impl TraceOptions {
    /// Tracing on, default capacity.
    pub fn enabled() -> Self {
        TraceOptions {
            enabled: true,
            ..TraceOptions::default()
        }
    }

    /// Tracing on with an explicit per-component ring capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceOptions {
            enabled: true,
            capacity: capacity.max(1),
        }
    }
}

/// Destination for trace events. Implementations must be cheap: `record` is
/// called from control-plane hot loops.
pub trait TraceSink {
    /// Record one event at virtual time `t`.
    fn record(&mut self, t: SimTime, data: TraceData);
}

/// A sink that discards everything. The whole call chain inlines to nothing,
/// keeping the tracing-disabled path at ~zero cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn record(&mut self, _t: SimTime, _data: TraceData) {}
}

/// A preallocated per-component ring buffer. On overflow the oldest event is
/// overwritten and counted in `dropped`; recording never allocates after
/// construction.
#[derive(Debug, Clone)]
pub struct RingSink {
    component: Component,
    epoch: Instant,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    seq: u64,
    dropped: u64,
}

impl RingSink {
    /// Builds a ring for `component` holding up to `capacity` events. `epoch`
    /// is the shared wall-clock origin for the run, so wall timestamps from
    /// different components line up.
    pub fn new(component: Component, capacity: usize, epoch: Instant) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            component,
            epoch,
            capacity,
            events: VecDeque::with_capacity(capacity),
            seq: 0,
            dropped: 0,
        }
    }

    /// The component this ring records for.
    pub fn component(&self) -> Component {
        self.component
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been recorded (or everything was taken).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the ring into a [`ComponentLog`], leaving it empty (sequence
    /// numbers keep counting so a later drain still merges after this one).
    pub fn take_log(&mut self) -> ComponentLog {
        ComponentLog {
            component: self.component,
            dropped: self.dropped,
            events: self.events.drain(..).collect(),
        }
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, t: SimTime, data: TraceData) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        let wall_ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.events.push_back(TraceEvent {
            t,
            wall_ns,
            seq: self.seq,
            data,
        });
        self.seq = self.seq.wrapping_add(1);
    }
}

/// The tracer handle components actually hold: either a no-op or a boxed
/// ring. `Default` is `Null`, so adding a tracer field to a struct changes
/// nothing until a trace is requested.
#[derive(Debug, Clone, Default)]
pub enum Tracer {
    /// Tracing disabled; `record` is a no-op.
    #[default]
    Null,
    /// Tracing enabled into a ring buffer.
    Ring(Box<RingSink>),
}

impl Tracer {
    /// A ring-buffer tracer for `component`.
    pub fn ring(component: Component, capacity: usize, epoch: Instant) -> Self {
        Tracer::Ring(Box::new(RingSink::new(component, capacity, epoch)))
    }

    /// True when events are actually recorded. Instrumentation sites that
    /// need to gather extra data (state snapshots, counter deltas) check
    /// this first so the disabled path does no work.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        matches!(self, Tracer::Ring(_))
    }

    /// Record one event; no-op when disabled.
    #[inline(always)]
    pub fn record(&mut self, t: SimTime, data: TraceData) {
        if let Tracer::Ring(ring) = self {
            ring.record(t, data);
        }
    }

    /// Drains the buffered events, if tracing is enabled.
    pub fn take_log(&mut self) -> Option<ComponentLog> {
        match self {
            Tracer::Null => None,
            Tracer::Ring(ring) => Some(ring.take_log()),
        }
    }
}

impl TraceSink for Tracer {
    #[inline(always)]
    fn record(&mut self, t: SimTime, data: TraceData) {
        Tracer::record(self, t, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: &'static str) -> TraceData {
        TraceData::EventDispatch { kind }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut ring = RingSink::new(Component::Runner, 2, Instant::now());
        ring.record(SimTime::from_nanos(1), ev("a"));
        ring.record(SimTime::from_nanos(2), ev("b"));
        ring.record(SimTime::from_nanos(3), ev("c"));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 1);
        let log = ring.take_log();
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.events[0].data, ev("b"));
        assert_eq!(log.events[1].data, ev("c"));
        assert_eq!(log.events[1].seq, 2);
        assert!(ring.is_empty());
    }

    #[test]
    fn null_tracer_records_nothing() {
        let mut t = Tracer::default();
        assert!(!t.enabled());
        t.record(SimTime::ZERO, ev("x"));
        assert!(t.take_log().is_none());
    }

    #[test]
    fn ring_tracer_round_trip() {
        let mut t = Tracer::ring(Component::Pump, 8, Instant::now());
        assert!(t.enabled());
        t.record(SimTime::from_nanos(5), ev("y"));
        let log = t.take_log().expect("log");
        assert_eq!(log.component, Component::Pump);
        assert_eq!(log.events.len(), 1);
        assert_eq!(log.events[0].t, SimTime::from_nanos(5));
    }
}

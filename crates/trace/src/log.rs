//! Merged trace logs and their JSON / Chrome `trace_event` exports.

use crate::event::{Component, TraceData, TraceEvent};
use horse_sim::SimTime;

/// Events drained from one component's ring buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentLog {
    /// Who recorded these events.
    pub component: Component,
    /// Events overwritten because the ring was full.
    pub dropped: u64,
    /// Buffered events in recording order.
    pub events: Vec<TraceEvent>,
}

/// A whole run's trace: per-component logs merged into one stream ordered by
/// `(virtual time, component, sequence)`. The order is a pure function of
/// the simulation, so the same seed produces a byte-identical semantic
/// export at any sweep worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceLog {
    /// Virtual end time of the run (close of the final mode span).
    pub end: SimTime,
    /// Components that recorded, with their drop counts, sorted.
    pub components: Vec<(Component, u64)>,
    /// The merged event stream.
    pub events: Vec<(Component, TraceEvent)>,
}

impl TraceLog {
    /// Merges per-component logs into one deterministic stream.
    pub fn assemble(logs: Vec<ComponentLog>, end: SimTime) -> TraceLog {
        let mut components: Vec<(Component, u64)> =
            logs.iter().map(|l| (l.component, l.dropped)).collect();
        components.sort();
        let mut events = Vec::with_capacity(logs.iter().map(|l| l.events.len()).sum());
        for log in logs {
            for ev in log.events {
                events.push((log.component, ev));
            }
        }
        events.sort_by_key(|(ca, ea)| (ea.t, *ca, ea.seq));
        TraceLog {
            end,
            components,
            events,
        }
    }

    /// Total events in the merged stream.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events dropped across all components.
    pub fn dropped(&self) -> u64 {
        self.components.iter().map(|(_, d)| d).sum()
    }

    /// Condensed stats for embedding in an `ExperimentReport`.
    pub fn summary(&self) -> TraceSummary {
        let attr = crate::analysis::attribute_fti(self);
        TraceSummary {
            events: self.events.len() as u64,
            dropped: self.dropped(),
            fti_attributed_ns: attr.attributed.as_nanos(),
            conversations: attr.by_conversation.len() as u64,
        }
    }

    /// Flat self-describing JSON export (schema `horse-trace-v1`).
    ///
    /// With `include_wall = false` the wall-clock fields are omitted and the
    /// output is byte-deterministic for a given seed — this is the *semantic*
    /// form used by golden tests and cross-worker-count comparisons.
    pub fn to_json(&self, include_wall: bool) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\n  \"schema\": \"horse-trace-v1\",\n");
        out.push_str(&format!("  \"end_ns\": {},\n", self.end.as_nanos()));
        out.push_str("  \"components\": [");
        for (i, (c, dropped)) in self.components.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"dropped\": {dropped}}}",
                c.name()
            ));
        }
        out.push_str("],\n  \"events\": [\n");
        for (i, (c, ev)) in self.events.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"t_ns\":{}", ev.t.as_nanos()));
            if include_wall {
                out.push_str(&format!(",\"wall_ns\":{}", ev.wall_ns));
            }
            out.push_str(&format!(
                ",\"component\":\"{}\",\"kind\":\"{}\",\"args\":{}",
                c.name(),
                ev.data.kind(),
                ev.data.args_json()
            ));
            out.push('}');
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Chrome `trace_event` JSON (the "JSON Array Format" inside an object),
    /// loadable in Perfetto / `chrome://tracing`.
    ///
    /// Layout: tid 0 carries the clock-mode spans as complete (`"X"`) events
    /// named `FTI`/`DES`; every other component is a named thread carrying
    /// instant (`"i"`) events. Timestamps are virtual microseconds with
    /// nanosecond precision kept in three decimal places, so the export is
    /// exact and deterministic. Wall-clock nanoseconds ride along in `args`
    /// when `include_wall` is set.
    pub fn chrome_json(&self, include_wall: bool) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 128);
        out.push_str("{\"traceEvents\":[\n");
        let mut first = true;
        let mut push = |s: String, out: &mut String| {
            if !std::mem::take(&mut first) {
                out.push_str(",\n");
            }
            out.push_str(&s);
        };

        // Thread-name metadata: tid 0 is the clock-mode track.
        push(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"clock-mode\"}}"
                .to_string(),
            &mut out,
        );
        for (c, _) in &self.components {
            if *c == Component::Runner {
                continue; // runner instants share tid 0 with the mode spans
            }
            push(
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    c.tid(),
                    c.name()
                ),
                &mut out,
            );
        }

        // Mode spans from the runner's ModeEnter events.
        let mut modes: Vec<(SimTime, bool, &'static str)> = Vec::new();
        for (c, ev) in &self.events {
            if *c == Component::Runner {
                if let TraceData::ModeEnter { fti, cause } = ev.data {
                    modes.push((ev.t, fti, cause));
                }
            }
        }
        for (i, (start, fti, cause)) in modes.iter().enumerate() {
            let close = if i + 1 < modes.len() {
                modes[i + 1].0
            } else {
                self.end
            };
            let dur_ns = close.duration_since(*start).as_nanos();
            push(
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":{},\
                     \"dur\":{},\"args\":{{\"cause\":\"{cause}\"}}}}",
                    if *fti { "FTI" } else { "DES" },
                    micros(start.as_nanos()),
                    micros(dur_ns),
                ),
                &mut out,
            );
        }

        // Instant events for everything else.
        for (c, ev) in &self.events {
            if matches!(ev.data, TraceData::ModeEnter { .. }) {
                continue;
            }
            let mut args = ev.data.args_json();
            if include_wall {
                // Splice wall_ns into the args object.
                args.pop();
                if args.ends_with('{') {
                    args.push_str(&format!("\"wall_ns\":{}}}", ev.wall_ns));
                } else {
                    args.push_str(&format!(",\"wall_ns\":{}}}", ev.wall_ns));
                }
            }
            push(
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\
                     \"ts\":{},\"args\":{args}}}",
                    ev.data.kind(),
                    c.tid(),
                    micros(ev.t.as_nanos()),
                ),
                &mut out,
            );
        }

        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

/// Formats nanoseconds as exact decimal microseconds ("1234.567").
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Condensed trace statistics embedded in an `ExperimentReport`. All zeros
/// when tracing was disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Events in the merged log.
    pub events: u64,
    /// Events dropped to ring overflow.
    pub dropped: u64,
    /// FTI nanoseconds attributed to a named control-plane conversation.
    pub fti_attributed_ns: u64,
    /// Distinct conversations that held the clock in FTI.
    pub conversations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PumpReason;
    use crate::sink::{RingSink, TraceSink};
    use std::time::Instant;

    fn sample_log() -> TraceLog {
        let epoch = Instant::now();
        let mut runner = RingSink::new(Component::Runner, 64, epoch);
        let mut pump = RingSink::new(Component::Pump, 64, epoch);
        runner.record(
            SimTime::ZERO,
            TraceData::ModeEnter {
                fti: false,
                cause: "start",
            },
        );
        runner.record(
            SimTime::from_millis(10),
            TraceData::ModeEnter {
                fti: true,
                cause: "pump",
            },
        );
        pump.record(
            SimTime::from_millis(10),
            TraceData::PumpNode {
                node: 3,
                reason: PumpReason::Delivery,
            },
        );
        runner.record(
            SimTime::from_millis(30),
            TraceData::ModeEnter {
                fti: false,
                cause: "quiescence",
            },
        );
        TraceLog::assemble(
            vec![runner.take_log(), pump.take_log()],
            SimTime::from_millis(40),
        )
    }

    #[test]
    fn merge_orders_by_time_component_seq() {
        let log = sample_log();
        assert_eq!(log.len(), 4);
        // At t=10ms the runner event sorts before the pump event.
        assert_eq!(log.events[1].0, Component::Runner);
        assert_eq!(log.events[2].0, Component::Pump);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn semantic_json_is_stable_across_assembly_order() {
        let epoch = Instant::now();
        let mk = |flip: bool| {
            let mut a = RingSink::new(Component::Runner, 8, epoch);
            let mut b = RingSink::new(Component::Pump, 8, epoch);
            a.record(
                SimTime::ZERO,
                TraceData::ModeEnter {
                    fti: false,
                    cause: "start",
                },
            );
            b.record(
                SimTime::from_nanos(5),
                TraceData::PumpNode {
                    node: 1,
                    reason: PumpReason::Deadline,
                },
            );
            let logs = if flip {
                vec![b.take_log(), a.take_log()]
            } else {
                vec![a.take_log(), b.take_log()]
            };
            TraceLog::assemble(logs, SimTime::from_nanos(10)).to_json(false)
        };
        assert_eq!(mk(false), mk(true));
    }

    #[test]
    fn chrome_export_has_spans_and_instants() {
        let chrome = sample_log().chrome_json(false);
        assert!(chrome.contains("\"name\":\"FTI\""));
        assert!(chrome.contains("\"name\":\"DES\""));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"name\":\"pump_node\""));
        // FTI span: 10ms..30ms => ts 10000.000 dur 20000.000.
        assert!(chrome.contains("\"ts\":10000.000,\"dur\":20000.000"));
        // No wall fields in semantic mode.
        assert!(!chrome.contains("wall_ns"));
    }

    #[test]
    fn wall_fields_only_when_requested() {
        let log = sample_log();
        assert!(!log.to_json(false).contains("wall_ns"));
        assert!(log.to_json(true).contains("wall_ns"));
        assert!(log.chrome_json(true).contains("wall_ns"));
    }
}

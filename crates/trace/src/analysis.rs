//! Post-pass analyses over a merged [`TraceLog`]: FTI residency attribution
//! and per-speaker convergence timelines.

use crate::event::{fmt_ip, Component, TraceData};
use crate::log::TraceLog;
use horse_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Conversation name for an event, if it names one.
///
/// A *conversation* is the unit FTI residency is attributed to: one BGP
/// session ("bgp:n3<->10.0.0.7"), one switch's OpenFlow exchange
/// ("of:sw12"), the controller's periodic timer ("of:controller-timer"),
/// or a link event ("link:4"). Events that don't name a conversation
/// (pump bookkeeping, RIB work, event dispatch) leave the current
/// attribution unchanged.
pub fn conversation_of(component: Component, data: &TraceData) -> Option<String> {
    match *data {
        TraceData::BgpFsm { peer, .. }
        | TraceData::BgpTx { peer, .. }
        | TraceData::BgpRx { peer, .. }
        | TraceData::MraiFlush { peer, .. } => match component {
            Component::Bgp(n) => Some(format!("bgp:n{n}<->{}", fmt_ip(peer))),
            _ => Some(format!("bgp:{}", fmt_ip(peer))),
        },
        TraceData::OfPacketIn { node, .. }
        | TraceData::OfFlowMod { node }
        | TraceData::OfStatsReply { node, .. }
        | TraceData::FlowRemoved { node, .. } => Some(format!("of:sw{node}")),
        TraceData::OfPacketInRx { dpid }
        | TraceData::OfFlowModTx { dpid }
        | TraceData::OfStatsReqTx { dpid }
        | TraceData::OfStatsReplyRx { dpid, .. } => Some(format!("of:sw{dpid}")),
        TraceData::OfTimer => Some("of:controller-timer".to_string()),
        TraceData::LinkChange { link, .. } => Some(format!("link:{link}")),
        TraceData::ModeEnter { .. }
        | TraceData::EventDispatch { .. }
        | TraceData::PumpNode { .. }
        | TraceData::RibWork { .. } => None,
    }
}

/// Result of [`attribute_fti`]: how much FTI time each control-plane
/// conversation held the clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FtiAttribution {
    /// Total FTI time derived from the traced mode spans.
    pub total_fti: SimDuration,
    /// FTI time credited to a named conversation (the rest predates the
    /// first conversation-naming event of its span).
    pub attributed: SimDuration,
    /// Per-conversation FTI residency, largest first (name breaks ties).
    pub by_conversation: Vec<(String, SimDuration)>,
}

impl FtiAttribution {
    /// Fraction of traced FTI time attributed to a named conversation
    /// (1.0 when there was no FTI time at all).
    pub fn attributed_fraction(&self) -> f64 {
        if self.total_fti.is_zero() {
            1.0
        } else {
            self.attributed.as_secs_f64() / self.total_fti.as_secs_f64()
        }
    }

    /// One-line human summary, e.g. for example binaries.
    pub fn summary_line(&self) -> String {
        let mut s = format!(
            "fti attribution: {:.1}% of {} across {} conversation(s)",
            100.0 * self.attributed_fraction(),
            self.total_fti,
            self.by_conversation.len()
        );
        if let Some((name, d)) = self.by_conversation.first() {
            s.push_str(&format!("; top: {name} ({d})"));
        }
        s
    }
}

/// Walks the merged stream and credits every FTI interval to the
/// conversation that was active when the interval began.
///
/// The sweep keeps a "current conversation" — the most recent event that
/// names one (see [`conversation_of`]). Each FTI span is cut at every event
/// timestamp inside it; each segment is credited to the current conversation
/// at the segment's start. The quiescence tail of a span (after the last
/// control event, before the demotion to DES) is therefore credited to the
/// conversation that drove the final exchange, which is exactly the
/// conversation that held the clock in FTI.
pub fn attribute_fti(log: &TraceLog) -> FtiAttribution {
    let mut acc: BTreeMap<String, u64> = BTreeMap::new();
    let mut unattributed: u64 = 0;
    let mut total: u64 = 0;
    let mut in_fti = false;
    let mut seg_start = SimTime::ZERO;
    let mut cur: Option<String> = None;

    let credit = |acc: &mut BTreeMap<String, u64>,
                  unattributed: &mut u64,
                  total: &mut u64,
                  cur: &Option<String>,
                  from: SimTime,
                  to: SimTime| {
        let ns = to.duration_since(from).as_nanos();
        if ns == 0 {
            return;
        }
        *total += ns;
        match cur {
            Some(name) => *acc.entry(name.clone()).or_insert(0) += ns,
            None => *unattributed += ns,
        }
    };

    for (component, ev) in &log.events {
        if in_fti && ev.t > seg_start {
            credit(
                &mut acc,
                &mut unattributed,
                &mut total,
                &cur,
                seg_start,
                ev.t,
            );
            seg_start = ev.t;
        }
        match &ev.data {
            TraceData::ModeEnter { fti, .. } => {
                if *fti && !in_fti {
                    in_fti = true;
                    seg_start = ev.t;
                } else if !*fti {
                    in_fti = false;
                }
            }
            data => {
                if let Some(name) = conversation_of(*component, data) {
                    cur = Some(name);
                }
            }
        }
    }
    if in_fti {
        credit(
            &mut acc,
            &mut unattributed,
            &mut total,
            &cur,
            seg_start,
            log.end,
        );
    }

    let mut by_conversation: Vec<(String, SimDuration)> = acc
        .into_iter()
        .map(|(name, ns)| (name, SimDuration::from_nanos(ns)))
        .collect();
    by_conversation.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    FtiAttribution {
        total_fti: SimDuration::from_nanos(total),
        attributed: SimDuration::from_nanos(total - unattributed),
        by_conversation,
    }
}

/// Convergence timeline for one BGP speaker, derived from its trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpeakerTimeline {
    /// Speaker node id.
    pub node: u32,
    /// `(time, peer)` for every transition into `Established`.
    pub established: Vec<(SimTime, String)>,
    /// UPDATE messages sent.
    pub updates_tx: u64,
    /// UPDATE messages received.
    pub updates_rx: u64,
    /// Time of the last route-bearing activity (tx, rx, or MRAI flush) —
    /// the speaker's local convergence point.
    pub last_activity: Option<SimTime>,
}

/// Derives per-speaker convergence timelines from the merged log, sorted by
/// node id.
pub fn convergence_timeline(log: &TraceLog) -> Vec<SpeakerTimeline> {
    let mut by_node: BTreeMap<u32, SpeakerTimeline> = BTreeMap::new();
    for (component, ev) in &log.events {
        let Component::Bgp(node) = component else {
            continue;
        };
        let tl = by_node.entry(*node).or_insert_with(|| SpeakerTimeline {
            node: *node,
            established: Vec::new(),
            updates_tx: 0,
            updates_rx: 0,
            last_activity: None,
        });
        match &ev.data {
            TraceData::BgpFsm { peer, to, .. } if *to == "established" => {
                tl.established.push((ev.t, fmt_ip(*peer)));
            }
            TraceData::BgpTx { .. } => {
                tl.updates_tx += 1;
                tl.last_activity = Some(ev.t);
            }
            TraceData::BgpRx { .. } => {
                tl.updates_rx += 1;
                tl.last_activity = Some(ev.t);
            }
            TraceData::MraiFlush { .. } => {
                tl.last_activity = Some(ev.t);
            }
            _ => {}
        }
    }
    by_node.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::log::ComponentLog;

    fn ev(t_ns: u64, seq: u64, data: TraceData) -> TraceEvent {
        TraceEvent {
            t: SimTime::from_nanos(t_ns),
            wall_ns: 0,
            seq,
            data,
        }
    }

    fn peer(last: u8) -> u32 {
        u32::from_be_bytes([10, 0, 0, last])
    }

    #[test]
    fn fti_time_credits_active_conversation() {
        let runner = ComponentLog {
            component: Component::Runner,
            dropped: 0,
            events: vec![
                ev(
                    0,
                    0,
                    TraceData::ModeEnter {
                        fti: false,
                        cause: "start",
                    },
                ),
                ev(
                    100,
                    1,
                    TraceData::ModeEnter {
                        fti: true,
                        cause: "pump",
                    },
                ),
                ev(
                    500,
                    2,
                    TraceData::ModeEnter {
                        fti: false,
                        cause: "quiescence",
                    },
                ),
            ],
        };
        let bgp = ComponentLog {
            component: Component::Bgp(3),
            dropped: 0,
            events: vec![ev(
                100,
                0,
                TraceData::BgpRx {
                    peer: peer(7),
                    announced: 2,
                    withdrawn: 0,
                },
            )],
        };
        let log = TraceLog::assemble(vec![runner, bgp], SimTime::from_nanos(600));
        let attr = attribute_fti(&log);
        assert_eq!(attr.total_fti, SimDuration::from_nanos(400));
        assert_eq!(attr.attributed, SimDuration::from_nanos(400));
        assert_eq!(attr.by_conversation.len(), 1);
        assert_eq!(attr.by_conversation[0].0, "bgp:n3<->10.0.0.7");
        assert!((attr.attributed_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fti_before_any_conversation_is_unattributed() {
        let runner = ComponentLog {
            component: Component::Runner,
            dropped: 0,
            events: vec![
                ev(
                    0,
                    0,
                    TraceData::ModeEnter {
                        fti: true,
                        cause: "pump",
                    },
                ),
                ev(
                    200,
                    1,
                    TraceData::ModeEnter {
                        fti: false,
                        cause: "quiescence",
                    },
                ),
            ],
        };
        let log = TraceLog::assemble(vec![runner], SimTime::from_nanos(300));
        let attr = attribute_fti(&log);
        assert_eq!(attr.total_fti, SimDuration::from_nanos(200));
        assert_eq!(attr.attributed, SimDuration::ZERO);
        assert!(attr.by_conversation.is_empty());
    }

    #[test]
    fn open_fti_span_closes_at_log_end() {
        let runner = ComponentLog {
            component: Component::Runner,
            dropped: 0,
            events: vec![ev(
                100,
                0,
                TraceData::ModeEnter {
                    fti: true,
                    cause: "pump",
                },
            )],
        };
        let link = ComponentLog {
            component: Component::Pump,
            dropped: 0,
            events: vec![ev(100, 0, TraceData::LinkChange { link: 4, up: false })],
        };
        let log = TraceLog::assemble(vec![runner, link], SimTime::from_nanos(400));
        let attr = attribute_fti(&log);
        assert_eq!(attr.total_fti, SimDuration::from_nanos(300));
        assert_eq!(attr.by_conversation[0].0, "link:4");
    }

    #[test]
    fn timeline_collects_establishments_and_updates() {
        let bgp = ComponentLog {
            component: Component::Bgp(1),
            dropped: 0,
            events: vec![
                ev(
                    10,
                    0,
                    TraceData::BgpFsm {
                        peer: peer(2),
                        from: "open-confirm",
                        to: "established",
                    },
                ),
                ev(
                    20,
                    1,
                    TraceData::BgpTx {
                        peer: peer(2),
                        announced: 4,
                        withdrawn: 0,
                    },
                ),
                ev(
                    30,
                    2,
                    TraceData::BgpRx {
                        peer: peer(2),
                        announced: 1,
                        withdrawn: 1,
                    },
                ),
            ],
        };
        let log = TraceLog::assemble(vec![bgp], SimTime::from_nanos(50));
        let tls = convergence_timeline(&log);
        assert_eq!(tls.len(), 1);
        assert_eq!(tls[0].node, 1);
        assert_eq!(
            tls[0].established,
            vec![(SimTime::from_nanos(10), "10.0.0.2".to_string())]
        );
        assert_eq!(tls[0].updates_tx, 1);
        assert_eq!(tls[0].updates_rx, 1);
        assert_eq!(tls[0].last_activity, Some(SimTime::from_nanos(30)));
    }
}

//! Trace event model: components, payloads, and the recorded event struct.
//!
//! Payloads are plain `Copy` data — recording an event never allocates.
//! Strings that appear in payloads are `&'static str` labels chosen at the
//! instrumentation site; numeric identifiers (node ids, datapath ids, peer
//! addresses as `u32` IPv4 bits) are formatted only at export time.

use horse_sim::SimTime;
use std::fmt;

/// Identifies the subsystem that recorded an event. Doubles as the trace
/// "thread": each component gets its own track in the Chrome export.
///
/// The derived `Ord` (variant order, then payload) is the tie-break used by
/// the deterministic merge in [`TraceLog::assemble`](crate::TraceLog::assemble).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    /// The hybrid run loop in `horse-core`: event dispatch and clock-mode
    /// transitions (with cause).
    Runner,
    /// The control-message pump (CM layer): per-node pump reasons and
    /// agent-side OpenFlow activity.
    Pump,
    /// The OpenFlow controller application.
    OfController,
    /// One emulated BGP speaker, keyed by node id.
    Bgp(u32),
}

impl Component {
    /// Human-readable track name ("runner", "pump", "of-controller",
    /// "bgp-n7").
    pub fn name(&self) -> String {
        match self {
            Component::Runner => "runner".to_string(),
            Component::Pump => "pump".to_string(),
            Component::OfController => "of-controller".to_string(),
            Component::Bgp(n) => format!("bgp-n{n}"),
        }
    }

    /// Stable thread id for the Chrome `trace_event` export. Runner is tid 0
    /// so the mode spans sit on the top track; BGP speakers start at 16.
    pub fn tid(&self) -> u64 {
        match self {
            Component::Runner => 0,
            Component::Pump => 1,
            Component::OfController => 2,
            Component::Bgp(n) => 16 + u64::from(*n),
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Why the CM pump touched a node in a pump round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PumpReason {
    /// An in-flight control message reached the node this round.
    Delivery,
    /// A timer wheel deadline (MRAI, hold, retry, rule expiry) fired.
    Deadline,
    /// The node was marked dirty by a link event or other external change.
    LinkEvent,
}

impl PumpReason {
    /// Short label used in exports.
    pub fn label(&self) -> &'static str {
        match self {
            PumpReason::Delivery => "delivery",
            PumpReason::Deadline => "deadline",
            PumpReason::LinkEvent => "link-event",
        }
    }
}

/// Event payload. All variants are `Copy`; identifiers are raw numerics
/// (IPv4 peer addresses travel as their `u32` big-endian bit pattern).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceData {
    /// The hybrid clock entered a mode (`fti == false` means DES), with the
    /// runner-observed cause ("start", "pump", "packet-in", "link-change",
    /// "pending", "quiescence").
    ModeEnter {
        /// True when entering fluid-time-integration mode.
        fti: bool,
        /// What triggered the transition.
        cause: &'static str,
    },
    /// The runner dispatched one simulator event (flow start/stop,
    /// completion, sample, control tick, retry, link change).
    EventDispatch {
        /// Event kind label.
        kind: &'static str,
    },
    /// The CM pump touched `node` for `reason` this round.
    PumpNode {
        /// Node id.
        node: u32,
        /// Why the node was on the ready set.
        reason: PumpReason,
    },
    /// A link changed state (recorded by the control plane when told).
    LinkChange {
        /// Link index in the topology.
        link: u32,
        /// New state.
        up: bool,
    },
    /// A BGP session changed FSM state.
    BgpFsm {
        /// Peer address (IPv4 bits).
        peer: u32,
        /// State before.
        from: &'static str,
        /// State after.
        to: &'static str,
    },
    /// The speaker sent one UPDATE message.
    BgpTx {
        /// Peer address (IPv4 bits).
        peer: u32,
        /// Prefixes announced in this UPDATE.
        announced: u32,
        /// Prefixes withdrawn in this UPDATE.
        withdrawn: u32,
    },
    /// The speaker received one UPDATE message.
    BgpRx {
        /// Peer address (IPv4 bits).
        peer: u32,
        /// Prefixes announced.
        announced: u32,
        /// Prefixes withdrawn.
        withdrawn: u32,
    },
    /// An MRAI hold-down expired and the pending batch flushed to the peer.
    MraiFlush {
        /// Peer address (IPv4 bits).
        peer: u32,
        /// Prefixes in the flushed batch.
        prefixes: u32,
    },
    /// Decision work done while reconciling the RIB after an UPDATE.
    RibWork {
        /// Best-path decisions computed.
        decides: u32,
        /// Decisions served from the memoized cache.
        cache_hits: u32,
    },
    /// A table-miss packet entered the switch agent (PACKET_IN, CM side).
    OfPacketIn {
        /// Switch node id.
        node: u32,
        /// Ingress port.
        port: u32,
    },
    /// The controller received a PACKET_IN.
    OfPacketInRx {
        /// Datapath id.
        dpid: u64,
    },
    /// The controller sent a FLOW_MOD.
    OfFlowModTx {
        /// Datapath id.
        dpid: u64,
    },
    /// A FLOW_MOD was applied to a switch table (CM side).
    OfFlowMod {
        /// Switch node id.
        node: u32,
    },
    /// The controller sent a flow-stats request.
    OfStatsReqTx {
        /// Datapath id.
        dpid: u64,
    },
    /// A switch agent answered a stats request (CM side).
    OfStatsReply {
        /// Switch node id.
        node: u32,
        /// Table entries reported.
        entries: u32,
    },
    /// The controller received a flow-stats reply.
    OfStatsReplyRx {
        /// Datapath id.
        dpid: u64,
        /// Entries in the reply.
        entries: u32,
    },
    /// The controller application's periodic timer fired.
    OfTimer,
    /// Idle-timeout sweep removed expired rules from a switch table.
    FlowRemoved {
        /// Switch node id.
        node: u32,
        /// Rules removed.
        entries: u32,
    },
}

impl TraceData {
    /// Stable snake_case kind label (the `name` field in exports).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceData::ModeEnter { fti: true, .. } => "fti_enter",
            TraceData::ModeEnter { fti: false, .. } => "des_enter",
            TraceData::EventDispatch { .. } => "event_dispatch",
            TraceData::PumpNode { .. } => "pump_node",
            TraceData::LinkChange { .. } => "link_change",
            TraceData::BgpFsm { .. } => "bgp_fsm",
            TraceData::BgpTx { .. } => "bgp_tx",
            TraceData::BgpRx { .. } => "bgp_rx",
            TraceData::MraiFlush { .. } => "mrai_flush",
            TraceData::RibWork { .. } => "rib_work",
            TraceData::OfPacketIn { .. } => "of_packet_in",
            TraceData::OfPacketInRx { .. } => "of_packet_in_rx",
            TraceData::OfFlowModTx { .. } => "of_flow_mod_tx",
            TraceData::OfFlowMod { .. } => "of_flow_mod",
            TraceData::OfStatsReqTx { .. } => "of_stats_req_tx",
            TraceData::OfStatsReply { .. } => "of_stats_reply",
            TraceData::OfStatsReplyRx { .. } => "of_stats_reply_rx",
            TraceData::OfTimer => "of_timer",
            TraceData::FlowRemoved { .. } => "flow_removed",
        }
    }

    /// JSON object with the payload fields (no surrounding event metadata).
    pub fn args_json(&self) -> String {
        match *self {
            TraceData::ModeEnter { fti, cause } => {
                format!("{{\"fti\":{fti},\"cause\":\"{cause}\"}}")
            }
            TraceData::EventDispatch { kind } => format!("{{\"kind\":\"{kind}\"}}"),
            TraceData::PumpNode { node, reason } => {
                format!("{{\"node\":{node},\"reason\":\"{}\"}}", reason.label())
            }
            TraceData::LinkChange { link, up } => format!("{{\"link\":{link},\"up\":{up}}}"),
            TraceData::BgpFsm { peer, from, to } => {
                format!(
                    "{{\"peer\":\"{}\",\"from\":\"{from}\",\"to\":\"{to}\"}}",
                    fmt_ip(peer)
                )
            }
            TraceData::BgpTx {
                peer,
                announced,
                withdrawn,
            } => format!(
                "{{\"peer\":\"{}\",\"announced\":{announced},\"withdrawn\":{withdrawn}}}",
                fmt_ip(peer)
            ),
            TraceData::BgpRx {
                peer,
                announced,
                withdrawn,
            } => format!(
                "{{\"peer\":\"{}\",\"announced\":{announced},\"withdrawn\":{withdrawn}}}",
                fmt_ip(peer)
            ),
            TraceData::MraiFlush { peer, prefixes } => {
                format!("{{\"peer\":\"{}\",\"prefixes\":{prefixes}}}", fmt_ip(peer))
            }
            TraceData::RibWork {
                decides,
                cache_hits,
            } => {
                format!("{{\"decides\":{decides},\"cache_hits\":{cache_hits}}}")
            }
            TraceData::OfPacketIn { node, port } => {
                format!("{{\"node\":{node},\"port\":{port}}}")
            }
            TraceData::OfPacketInRx { dpid } => format!("{{\"dpid\":{dpid}}}"),
            TraceData::OfFlowModTx { dpid } => format!("{{\"dpid\":{dpid}}}"),
            TraceData::OfFlowMod { node } => format!("{{\"node\":{node}}}"),
            TraceData::OfStatsReqTx { dpid } => format!("{{\"dpid\":{dpid}}}"),
            TraceData::OfStatsReply { node, entries } => {
                format!("{{\"node\":{node},\"entries\":{entries}}}")
            }
            TraceData::OfStatsReplyRx { dpid, entries } => {
                format!("{{\"dpid\":{dpid},\"entries\":{entries}}}")
            }
            TraceData::OfTimer => "{}".to_string(),
            TraceData::FlowRemoved { node, entries } => {
                format!("{{\"node\":{node},\"entries\":{entries}}}")
            }
        }
    }
}

/// Formats IPv4 bits as dotted-quad.
pub fn fmt_ip(bits: u32) -> String {
    let [a, b, c, d] = bits.to_be_bytes();
    format!("{a}.{b}.{c}.{d}")
}

/// One recorded event: virtual time, wall nanoseconds since the run epoch,
/// per-component sequence number, and the payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Virtual time the event describes.
    pub t: SimTime,
    /// Wall-clock nanoseconds since the run's trace epoch when recorded.
    pub wall_ns: u64,
    /// Monotone per-component sequence number (merge tie-break).
    pub seq: u64,
    /// The payload.
    pub data: TraceData,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_ordering_is_stable() {
        let mut v = vec![
            Component::Bgp(2),
            Component::Pump,
            Component::Bgp(0),
            Component::Runner,
            Component::OfController,
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Component::Runner,
                Component::Pump,
                Component::OfController,
                Component::Bgp(0),
                Component::Bgp(2),
            ]
        );
    }

    #[test]
    fn ip_formatting() {
        assert_eq!(fmt_ip(u32::from_be_bytes([10, 0, 0, 7])), "10.0.0.7");
    }

    #[test]
    fn args_are_json_objects() {
        let d = TraceData::BgpTx {
            peer: u32::from_be_bytes([10, 0, 1, 2]),
            announced: 3,
            withdrawn: 1,
        };
        assert_eq!(
            d.args_json(),
            "{\"peer\":\"10.0.1.2\",\"announced\":3,\"withdrawn\":1}"
        );
        assert_eq!(d.kind(), "bgp_tx");
    }
}

//! Structured event tracing and profiling for Horse experiments.
//!
//! The crate answers the question the coarse `fti_time`/`des_time` pair in
//! an [`ExperimentReport`] cannot: *which* control-plane conversation held
//! the hybrid clock in FTI, and what the control plane was doing while it
//! did. Instrumented components (the runner, the CM pump, each BGP speaker,
//! the OpenFlow controller) record compact [`TraceData`] payloads into
//! per-component ring buffers behind the [`TraceSink`] trait; when tracing
//! is disabled the [`NullSink`]/[`Tracer::Null`] path inlines to a single
//! discriminant check, so instrumented code is ~free unless a trace was
//! requested.
//!
//! Design points:
//!
//! * **Two timestamps per event.** Every [`TraceEvent`] carries the virtual
//!   [`SimTime`] it describes *and* the wall-clock nanoseconds since the run
//!   epoch when it was recorded. Virtual time is deterministic (same seed ⇒
//!   byte-identical semantic export); wall time shows where real CPU went.
//! * **Preallocated ring buffers.** A [`RingSink`] allocates its capacity up
//!   front and overwrites the oldest events on overflow, counting drops —
//!   recording never allocates and never blocks the hot path.
//! * **Deterministic merge.** [`TraceLog::assemble`] merges per-component
//!   logs into one stream ordered by `(virtual time, component, sequence)`,
//!   which is stable across runs and across sweep worker counts.
//! * **Exports.** [`TraceLog::to_json`] emits a flat self-describing event
//!   list; [`TraceLog::chrome_json`] emits Chrome `trace_event` JSON that
//!   loads directly in Perfetto / `chrome://tracing` (mode spans on one
//!   track, per-component instant tracks). Passing `include_wall = false`
//!   strips wall-clock fields so the output is byte-deterministic.
//! * **Post-pass analysis.** [`attribute_fti`] walks the merged stream and
//!   credits every FTI interval to the named control-plane conversation
//!   that was active ("bgp:n3<->10.0.0.7", "of:sw12", "link:4", ...);
//!   [`convergence_timeline`] derives per-speaker session-establishment and
//!   last-activity timelines.
//!
//! `horse-trace` sits low in the dependency graph (it needs only
//! `horse-sim` for time types); `horse-bgp`, `horse-openflow`, `horse-core`
//! and `horse-sweep` depend on it, never the reverse.
//!
//! [`ExperimentReport`]: https://docs.rs/horse-core

pub mod analysis;
pub mod event;
pub mod log;
pub mod sink;

pub use analysis::{attribute_fti, convergence_timeline, FtiAttribution, SpeakerTimeline};
pub use event::{Component, PumpReason, TraceData, TraceEvent};
pub use log::{ComponentLog, TraceLog, TraceSummary};
pub use sink::{NullSink, RingSink, TraceOptions, TraceSink, Tracer};

//! Link-layer and network-layer addressing.
//!
//! IPv4 addresses reuse `std::net::Ipv4Addr`; this module adds MAC addresses
//! and CIDR prefixes with the matching semantics a FIB needs.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// A 48-bit Ethernet MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Deterministically derives a locally administered unicast MAC from a
    /// node id and port index. Used when building topologies.
    pub fn for_port(node: u32, port: u16) -> MacAddr {
        let n = node.to_be_bytes();
        let p = port.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, n[1], n[2], n[3], p[0], p[1]])
    }

    /// True for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if the group (multicast) bit is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Raw bytes.
    pub fn octets(&self) -> [u8; 6] {
        self.0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

/// Error parsing a MAC address or prefix from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrParseError(pub String);

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "address parse error: {}", self.0)
    }
}

impl std::error::Error for AddrParseError {}

impl FromStr for MacAddr {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 6 {
            return Err(AddrParseError(format!("bad MAC {s:?}")));
        }
        let mut out = [0u8; 6];
        for (i, p) in parts.iter().enumerate() {
            out[i] =
                u8::from_str_radix(p, 16).map_err(|_| AddrParseError(format!("bad MAC {s:?}")))?;
        }
        Ok(MacAddr(out))
    }
}

/// An IPv4 CIDR prefix (`address/len`), canonicalized so that host bits are
/// zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Prefix {
    network: Ipv4Addr,
    len: u8,
}

impl Ipv4Prefix {
    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Ipv4Prefix = Ipv4Prefix {
        network: Ipv4Addr::UNSPECIFIED,
        len: 0,
    };

    /// Creates a prefix, masking away host bits. Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Ipv4Prefix {
        assert!(len <= 32, "prefix length {len} > 32");
        Ipv4Prefix {
            network: Ipv4Addr::from(u32::from(addr) & Self::mask(len)),
            len,
        }
    }

    /// A /32 host route.
    pub fn host(addr: Ipv4Addr) -> Ipv4Prefix {
        Ipv4Prefix::new(addr, 32)
    }

    /// The network address (host bits zero).
    pub fn network(&self) -> Ipv4Addr {
        self.network
    }

    /// The prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True only for the zero-length default prefix.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The netmask for a given prefix length.
    pub fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// True if `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        (u32::from(addr) & Self::mask(self.len)) == u32::from(self.network)
    }

    /// True if `other` is fully covered by this prefix (including equality).
    pub fn covers(&self, other: &Ipv4Prefix) -> bool {
        other.len >= self.len && self.contains(other.network)
    }

    /// The `i`-th host address inside the prefix (0 = network address).
    /// Wraps silently if `i` exceeds the prefix size; callers building
    /// topologies stay well within bounds.
    pub fn nth(&self, i: u32) -> Ipv4Addr {
        Ipv4Addr::from(u32::from(self.network).wrapping_add(i))
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network, self.len)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| AddrParseError(format!("missing '/' in {s:?}")))?;
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|_| AddrParseError(format!("bad address in {s:?}")))?;
        let len: u8 = len
            .parse()
            .map_err(|_| AddrParseError(format!("bad length in {s:?}")))?;
        if len > 32 {
            return Err(AddrParseError(format!("length {len} > 32")));
        }
        Ok(Ipv4Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_display_parse_roundtrip() {
        let m = MacAddr([0x02, 0x00, 0x00, 0x01, 0x00, 0x02]);
        let s = m.to_string();
        assert_eq!(s, "02:00:00:01:00:02");
        assert_eq!(s.parse::<MacAddr>().unwrap(), m);
    }

    #[test]
    fn mac_parse_rejects_garbage() {
        assert!("not-a-mac".parse::<MacAddr>().is_err());
        assert!("02:00:00:01:00".parse::<MacAddr>().is_err());
        assert!("02:00:00:01:00:zz".parse::<MacAddr>().is_err());
    }

    #[test]
    fn mac_flags() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::for_port(1, 2).is_multicast());
    }

    #[test]
    fn for_port_is_unique_per_port() {
        assert_ne!(MacAddr::for_port(1, 0), MacAddr::for_port(1, 1));
        assert_ne!(MacAddr::for_port(1, 0), MacAddr::for_port(2, 0));
    }

    #[test]
    fn prefix_canonicalizes_host_bits() {
        let p = Ipv4Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 24);
        assert_eq!(p.network(), Ipv4Addr::new(10, 1, 2, 0));
        assert_eq!(p.to_string(), "10.1.2.0/24");
    }

    #[test]
    fn prefix_contains() {
        let p: Ipv4Prefix = "192.168.4.0/22".parse().unwrap();
        assert!(p.contains(Ipv4Addr::new(192, 168, 5, 77)));
        assert!(!p.contains(Ipv4Addr::new(192, 168, 8, 1)));
        assert!(Ipv4Prefix::DEFAULT.contains(Ipv4Addr::new(8, 8, 8, 8)));
    }

    #[test]
    fn prefix_covers() {
        let wide: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let narrow: Ipv4Prefix = "10.5.0.0/16".parse().unwrap();
        assert!(wide.covers(&narrow));
        assert!(!narrow.covers(&wide));
        assert!(wide.covers(&wide));
    }

    #[test]
    fn prefix_parse_errors() {
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0/8".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn nth_host() {
        let p: Ipv4Prefix = "10.0.1.0/24".parse().unwrap();
        assert_eq!(p.nth(0), Ipv4Addr::new(10, 0, 1, 0));
        assert_eq!(p.nth(2), Ipv4Addr::new(10, 0, 1, 2));
    }

    #[test]
    fn host_route() {
        let h = Ipv4Prefix::host(Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(h.len(), 32);
        assert!(h.contains(Ipv4Addr::new(1, 2, 3, 4)));
        assert!(!h.contains(Ipv4Addr::new(1, 2, 3, 5)));
    }
}

//! The fluid-rate data plane: event-driven max–min fair bandwidth sharing.
//!
//! Horse's data plane does not move packets. Each flow is a fluid with a
//! *demand* (offered rate) and a *path* (sequence of directed links); the
//! achieved rate of every flow is the max–min fair allocation subject to
//! per-link capacities and per-flow demand caps, computed by progressive
//! filling (water-filling). Rates change only at discrete instants — a flow
//! starts, finishes, is rerouted, or a link changes — so the simulation only
//! needs to re-solve at those events and can jump the clock in between.
//!
//! Links are full duplex: each direction of a link is an independent
//! capacity. A flow's direction over each link on its path is derived from
//! walking the path from the flow's source.
//!
//! # Memory shape and the event fast path
//!
//! Flow state lives in struct-of-arrays arenas indexed by the flow id
//! value itself (ids are dense and never reused), so ascending-slot
//! iteration *is* ascending-id iteration and every ordered float
//! accumulation matches the historical `BTreeMap` shape bitwise. Directed
//! links get dense ids too (`link * 2 + direction`, preserving `DirLink`
//! order), and per-link membership is a sorted slice of flow slots.
//!
//! Three O(active) scans are gone from the event dispatch path:
//!
//! - [`FluidNetwork::advance`] is a single watermark bump; delivered bytes
//!   are **lazily accrued** — derived from `(rate, settled_at, watermark)`
//!   on demand and folded ("settled") into the byte base only when a
//!   flow's rate changes, it retires, or its stats are read.
//! - [`FluidNetwork::next_completion`] pops a min-heap of predicted finish
//!   times with lazy invalidation instead of rescanning every bounded
//!   flow; the historical `(time, FlowId-value)` tie-break is preserved
//!   exactly by heap order.
//! - [`FluidNetwork::all_link_loads`] / [`FluidNetwork::flows_on_link`]
//!   are served from the maintained membership index.
//!
//! [`FluidNetwork::recompute_scoped`] partitions its seeds into
//! link-disjoint components and water-fills each component independently
//! with reusable dense-id scratch (allocation-free in steady state).
//! Components are independent subproblems, so with `run_threads > 1` they
//! are sharded across `horse-pool` workers and merged in seed order; the
//! per-component arithmetic is identical on the serial and parallel paths,
//! making the allocation bitwise invariant to the thread count (the same
//! contract the PR 8 pump shards follow).
//!
//! The pre-refactor solver is preserved verbatim in
//! [`crate::fluid_naive::NaiveFluidNetwork`] as the differential oracle.

use crate::flow::{FiveTuple, FlowId, FlowSpec};
use crate::intern::IdSet;
use crate::topology::{LinkId, NodeId, Topology};
use horse_sim::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};
use std::sync::Mutex;

const EPS: f64 = 1e-6;

/// Below this many affected flows a parallel component round is not worth
/// the fork/join; solve serially even when threads are available.
const PAR_MIN_FLOWS: usize = 8;

/// A directed traversal of a link: `forward` means a→b.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DirLink {
    /// The underlying link.
    pub link: LinkId,
    /// True when traversed from endpoint `a` to endpoint `b`.
    pub forward: bool,
}

/// Dense directed-link id. `link * 2 + forward` preserves the derived
/// `DirLink` order (`link` major, `false < true`), so ascending-dlid
/// iteration matches ascending-`DirLink` iteration.
#[inline]
fn dlid(d: DirLink) -> usize {
    ((d.link.0 as usize) << 1) | (d.forward as usize)
}

#[inline]
fn undlid(di: usize) -> DirLink {
    DirLink {
        link: LinkId((di >> 1) as u32),
        forward: di & 1 == 1,
    }
}

/// A rate change produced by a re-solve, for observers (stats, tracing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateChange {
    /// The affected flow.
    pub flow: FlowId,
    /// Rate before the re-solve, bits/s.
    pub old_bps: f64,
    /// Rate after the re-solve, bits/s.
    pub new_bps: f64,
}

/// Progress snapshot of one flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowProgress {
    /// When the flow started.
    pub started: SimTime,
    /// Current allocated rate, bits/s.
    pub rate_bps: f64,
    /// Bytes delivered so far.
    pub bytes_sent: f64,
    /// Bytes remaining (`None` for unbounded flows).
    pub bytes_remaining: Option<f64>,
}

/// Errors from flow operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FluidError {
    /// The supplied path does not connect the flow's source to its sink.
    BrokenPath,
    /// Unknown flow id.
    NoSuchFlow,
}

impl std::fmt::Display for FluidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FluidError::BrokenPath => write!(f, "path does not connect src to dst"),
            FluidError::NoSuchFlow => write!(f, "no such flow"),
        }
    }
}

impl std::error::Error for FluidError {}

/// An entity whose state changed since the last solve, for
/// [`FluidNetwork::recompute_incremental`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dirty {
    /// A flow started, stopped, was rerouted, or otherwise changed.
    Flow(FlowId),
    /// A link went up or down, or its capacity changed.
    Link(LinkId),
}

/// Cumulative solver-effort counters, for benchmarking the incremental
/// solver against full re-solves and the arena shape against the oracle.
/// "Work" approximates FLOP-equivalents: each waterfill round costs one
/// unit per participating flow plus one per constrained directed link.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct SolverStats {
    /// Scoped (incremental) solves run.
    pub solves: u64,
    /// Full oracle re-solves run.
    pub full_solves: u64,
    /// Flows included across all solved subproblems.
    pub flows_touched: u64,
    /// Directed links included across all solved subproblems.
    pub links_touched: u64,
    /// Waterfill rounds across all solves.
    pub iterations: u64,
    /// FLOP-equivalent units of solver work.
    pub work: u64,
    /// Directed links handed to scoped solves as seeds.
    pub seed_dlinks: u64,
    /// Per-flow byte-accrual writes. The oracle shape pays one per active
    /// flow per `advance`; the arena shape pays one per settle (rate
    /// change / retire / stats read).
    pub advance_touches: u64,
    /// Flow-visits spent answering `next_completion`. The oracle shape
    /// pays one per active flow per query; the arena shape pays one per
    /// heap entry examined.
    pub completion_visits: u64,
    /// Predicted-completion entries pushed onto the heap.
    pub heap_pushes: u64,
    /// Heap entries discarded as stale (retired flow or superseded
    /// prediction).
    pub heap_stale_pops: u64,
    /// Component solves served by an already-warm scratch buffer (no
    /// allocation).
    pub scratch_reuses: u64,
    /// Scoped solves whose components were sharded across the pool.
    pub parallel_rounds: u64,
    /// Components solved inside parallel rounds.
    pub parallel_components: u64,
}

/// Reusable component-closure scratch: cleared, never dropped, so the
/// steady solve path allocates nothing once warmed up.
#[derive(Debug, Default)]
struct ClosureScratch {
    /// Directed links (dense ids) already pulled into some component.
    visited: IdSet,
    /// Flow slots already pulled into some component.
    affected_set: IdSet,
    /// BFS frontier of directed links (dense ids) still to expand.
    queue: Vec<u32>,
    /// Component flows in discovery order, concatenated.
    flows_flat: Vec<u32>,
    /// End offset of each component in `flows_flat`, in seed order.
    comp_ends: Vec<usize>,
    /// `(slot, new_rate)` results from all components, merged then
    /// sorted by slot for the deterministic apply pass.
    apply: Vec<(u32, f64)>,
}

/// Reusable per-component waterfill scratch. Directed-link lookups go
/// through an epoch-tagged dense map (`dl_epoch`/`dl_local`), so reuse
/// across components needs no clearing of the id-indexed arrays.
#[derive(Debug, Default)]
struct WaterfillScratch {
    /// True once this buffer has served a component (reuse counter).
    warm: bool,
    epoch: u64,
    /// dlid → epoch tag; `dl_local` is valid where the tag matches.
    dl_epoch: Vec<u64>,
    /// dlid → local constrained-link index for the current component.
    dl_local: Vec<u32>,
    /// Remaining capacity per local constrained link.
    remaining: Vec<f64>,
    /// Unfrozen member count per local constrained link.
    n_unfrozen: Vec<u32>,
    /// Tentative rate per local (competing) flow.
    new_rate: Vec<f64>,
    /// Demand cap per local flow.
    demand: Vec<f64>,
    /// Local flow → arena slot.
    flow_slot: Vec<u32>,
    /// CSR offsets into `flow_dl` (one sentinel past the end).
    flow_dl_off: Vec<u32>,
    /// CSR payload: local constrained-link ids per local flow.
    flow_dl: Vec<u32>,
    /// Local flows still rising with the water level.
    unfrozen: Vec<u32>,
}

/// Per-component effort, merged into [`SolverStats`] after the (possibly
/// parallel) solve round.
#[derive(Debug, Default, Clone, Copy)]
struct CompStats {
    links: u64,
    iterations: u64,
    work: u64,
    reused: u64,
}

impl CompStats {
    fn merge(&mut self, o: CompStats) {
        self.links += o.links;
        self.iterations += o.iterations;
        self.work += o.work;
        self.reused += o.reused;
    }
}

/// The set of active fluid flows and their current allocation.
#[derive(Debug, Default)]
pub struct FluidNetwork {
    next_id: u64,
    /// Global lazy-accrual watermark: the instant `advance` has reached.
    watermark: SimTime,
    // ---- Struct-of-arrays flow state, indexed by flow id value (slots
    // are dense and never reused; retired slots keep their row with the
    // heavy vectors emptied).
    specs: Vec<FlowSpec>,
    paths: Vec<Vec<LinkId>>,
    dlinks: Vec<Vec<DirLink>>,
    rate_bps: Vec<f64>,
    /// Bytes settled as of `settled_at`; derived bytes at the watermark
    /// are `bytes_base + rate × (watermark − settled_at) / 8`, clamped.
    bytes_base: Vec<f64>,
    settled_at: Vec<SimTime>,
    started: Vec<SimTime>,
    /// Live predicted completion time per slot; the heap entry matching
    /// this value is the current one, everything else is stale.
    predicted: Vec<Option<SimTime>>,
    /// Slots of live flows.
    active: IdSet,
    /// Dense dlid → member flow slots, sorted ascending (= FlowId order).
    /// Structural (includes blocked and zero-demand flows); the basis of
    /// incremental re-solves and of O(members) queries.
    link_members: Vec<Vec<u32>>,
    /// Five-tuple → flow id, for the controller stats path.
    by_tuple: HashMap<FiveTuple, FlowId>,
    /// Min-heap of `(predicted completion, flow id)` with lazy
    /// invalidation.
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// Directed links touched by deferred (batched) operations, awaiting
    /// [`FluidNetwork::flush`].
    pending_seeds: Vec<DirLink>,
    /// Rate changes synthesized by deferred operations on flows with no
    /// constrained links (granted rates), reported at the next flush.
    pending_changes: Vec<RateChange>,
    closure: ClosureScratch,
    /// Pool of waterfill scratch buffers; the mutex only matters on the
    /// parallel component path (workers pop/push; buffers are fully
    /// re-initialized per component, so assignment order is free).
    wf_pool: Mutex<Vec<WaterfillScratch>>,
    /// Worker budget for parallel component rounds (1 = serial).
    run_threads: usize,
    stats: SolverStats,
}

impl FluidNetwork {
    /// An empty fluid network.
    pub fn new() -> FluidNetwork {
        FluidNetwork {
            run_threads: 1,
            ..FluidNetwork::default()
        }
    }

    /// Sets the worker budget for parallel component solves (1 = serial,
    /// the default). Any value yields bitwise-identical allocations; this
    /// only trades wall time.
    pub fn set_run_threads(&mut self, threads: usize) {
        self.run_threads = threads.max(1);
    }

    /// Number of active flows.
    pub fn flow_count(&self) -> usize {
        self.active.len()
    }

    /// Active flow ids, in id order.
    pub fn flow_ids(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.active.iter().map(|slot| FlowId(slot as u64))
    }

    /// The spec a flow was started with.
    pub fn spec(&self, id: FlowId) -> Option<&FlowSpec> {
        self.active
            .contains(id.0 as u32)
            .then(|| &self.specs[id.0 as usize])
    }

    /// The path a flow currently uses.
    pub fn path(&self, id: FlowId) -> Option<&[LinkId]> {
        self.active
            .contains(id.0 as u32)
            .then(|| self.paths[id.0 as usize].as_slice())
    }

    /// Current rate of a flow, bits/s.
    pub fn rate_of(&self, id: FlowId) -> Option<f64> {
        self.active
            .contains(id.0 as u32)
            .then(|| self.rate_bps[id.0 as usize])
    }

    /// Delivered bytes at the watermark, derived from the settled base
    /// without mutating (the lazy-accrual read path).
    fn derived_bytes(&self, slot: usize) -> f64 {
        let mut b = self.bytes_base[slot];
        if self.watermark > self.settled_at[slot] {
            let dt = self
                .watermark
                .duration_since(self.settled_at[slot])
                .as_secs_f64();
            b += self.rate_bps[slot] * dt / 8.0;
            if let Some(total) = self.specs[slot].size_bytes {
                b = b.min(total as f64);
            }
        }
        b
    }

    /// Folds lazily-accrued bytes into the settled base. Must run before
    /// any rate change so bytes delivered at the old rate are banked.
    fn settle(&mut self, slot: usize) {
        if self.watermark > self.settled_at[slot] {
            let dt = self
                .watermark
                .duration_since(self.settled_at[slot])
                .as_secs_f64();
            self.bytes_base[slot] += self.rate_bps[slot] * dt / 8.0;
            if let Some(total) = self.specs[slot].size_bytes {
                self.bytes_base[slot] = self.bytes_base[slot].min(total as f64);
            }
            self.settled_at[slot] = self.watermark;
            self.stats.advance_touches += 1;
        }
    }

    /// Recomputes a bounded flow's predicted completion from its settled
    /// state and queues it; the previous heap entry (if any) goes stale.
    /// Mirrors the oracle's per-query arithmetic: already-done flows
    /// complete at their settle instant, stalled flows have no prediction,
    /// and a positive delay never rounds below 1 ns (a sub-nanosecond tail
    /// must still move time forward).
    fn refresh_prediction(&mut self, slot: usize) {
        let Some(total) = self.specs[slot].size_bytes else {
            return;
        };
        let remaining = total as f64 - self.bytes_base[slot];
        let t = if remaining <= EPS {
            self.settled_at[slot]
        } else if self.rate_bps[slot] <= EPS {
            self.predicted[slot] = None; // stalled; no completion while starved
            return;
        } else {
            let secs = remaining * 8.0 / self.rate_bps[slot];
            self.settled_at[slot] + SimDuration::from_secs_f64(secs).max(SimDuration::from_nanos(1))
        };
        if self.predicted[slot] == Some(t) {
            return; // the live heap entry already says this
        }
        self.predicted[slot] = Some(t);
        self.heap.push(Reverse((t, slot as u64)));
        self.stats.heap_pushes += 1;
    }

    /// Progress snapshot for a flow.
    pub fn progress(&self, id: FlowId) -> Option<FlowProgress> {
        if !self.active.contains(id.0 as u32) {
            return None;
        }
        let slot = id.0 as usize;
        let bytes_sent = self.derived_bytes(slot);
        Some(FlowProgress {
            started: self.started[slot],
            rate_bps: self.rate_bps[slot],
            bytes_sent,
            bytes_remaining: self.specs[slot]
                .size_bytes
                .map(|total| (total as f64 - bytes_sent).max(0.0)),
        })
    }

    /// The flow currently carrying this five-tuple, if any. O(1) via a
    /// persistent index — the controller stats path resolves table entries
    /// to flows through this.
    pub fn flow_by_tuple(&self, tuple: &FiveTuple) -> Option<FlowId> {
        self.by_tuple.get(tuple).copied()
    }

    /// Cumulative solver-effort counters.
    pub fn solver_stats(&self) -> SolverStats {
        self.stats
    }

    /// Zeroes the solver-effort counters (for benchmarking windows).
    pub fn reset_solver_stats(&mut self) {
        self.stats = SolverStats::default();
    }

    /// The rate a flow gets without solving: demand for zero-demand or
    /// pathless flows (which consume no shared capacity), `None` when the
    /// flow actually competes.
    fn granted_rate(spec: &FlowSpec, dlinks: &[DirLink]) -> Option<f64> {
        if spec.demand_bps <= EPS || dlinks.is_empty() {
            // Zero demand stays at zero; empty path (src == dst or
            // loopback) is unconstrained: grant the full demand — except
            // elastic (infinite-demand) flows, which have no finite
            // number to grant and get zero.
            Some(if spec.demand_bps.is_finite() {
                spec.demand_bps.max(0.0)
            } else {
                0.0
            })
        } else {
            None
        }
    }

    /// Adds `slot` to a directed link's member list, growing the dense
    /// index as needed. New flows have the highest slot so far and may
    /// push; reroutes of older flows insert in place.
    fn add_member(&mut self, d: DirLink, slot: u32) {
        let di = dlid(d);
        if di >= self.link_members.len() {
            self.link_members.resize_with(di + 1, Vec::new);
        }
        let members = &mut self.link_members[di];
        match members.last() {
            Some(&last) if last >= slot => {
                if let Err(pos) = members.binary_search(&slot) {
                    members.insert(pos, slot);
                }
            }
            _ => members.push(slot),
        }
    }

    fn remove_member(&mut self, d: DirLink, slot: u32) {
        let di = dlid(d);
        if let Some(members) = self.link_members.get_mut(di) {
            if let Ok(pos) = members.binary_search(&slot) {
                members.remove(pos);
            }
        }
    }

    /// Inserts a flow and indexes its directed links; no solve.
    fn insert_flow(
        &mut self,
        now: SimTime,
        spec: FlowSpec,
        path: Vec<LinkId>,
        topo: &Topology,
    ) -> Result<FlowId, FluidError> {
        let dlinks = Self::orient(&path, spec.src, spec.dst, topo)?;
        self.advance(now);
        debug_assert!(
            self.next_id < u64::from(u32::MAX),
            "flow slots are dense u32"
        );
        let id = FlowId(self.next_id);
        let slot = self.next_id as usize;
        self.next_id += 1;
        for d in &dlinks {
            self.add_member(*d, slot as u32);
        }
        self.by_tuple.insert(spec.tuple, id);
        // Flows that consume no shared capacity get their rate up front;
        // no solve will visit them (they are in no link's member set).
        let rate_bps = Self::granted_rate(&spec, &dlinks).unwrap_or(0.0);
        if rate_bps > EPS {
            self.pending_changes.push(RateChange {
                flow: id,
                old_bps: 0.0,
                new_bps: rate_bps,
            });
        }
        debug_assert_eq!(slot, self.specs.len());
        self.specs.push(spec);
        self.paths.push(path);
        self.dlinks.push(dlinks);
        self.rate_bps.push(rate_bps);
        self.bytes_base.push(0.0);
        self.settled_at.push(now);
        self.started.push(now);
        self.predicted.push(None);
        self.active.insert(slot as u32);
        self.refresh_prediction(slot);
        Ok(id)
    }

    /// Starts a flow on the given path. The path must connect
    /// `spec.src` to `spec.dst` in `topo`. Re-solves the affected
    /// component incrementally.
    pub fn start(
        &mut self,
        now: SimTime,
        spec: FlowSpec,
        path: Vec<LinkId>,
        topo: &Topology,
    ) -> Result<(FlowId, Vec<RateChange>), FluidError> {
        let id = self.start_deferred(now, spec, path, topo)?;
        let changes = self.flush(topo);
        Ok((id, changes))
    }

    /// Starts a flow without solving; call [`FluidNetwork::flush`] after
    /// the control burst to solve once for the whole batch.
    pub fn start_deferred(
        &mut self,
        now: SimTime,
        spec: FlowSpec,
        path: Vec<LinkId>,
        topo: &Topology,
    ) -> Result<FlowId, FluidError> {
        let id = self.insert_flow(now, spec, path, topo)?;
        let slot = id.0 as usize;
        for i in 0..self.dlinks[slot].len() {
            let d = self.dlinks[slot][i];
            self.pending_seeds.push(d);
        }
        Ok(id)
    }

    /// Stops (removes) a flow, returning its final progress and the rate
    /// changes caused by freeing its bandwidth.
    pub fn stop(
        &mut self,
        now: SimTime,
        id: FlowId,
        topo: &Topology,
    ) -> Result<(FlowProgress, Vec<RateChange>), FluidError> {
        self.advance(now);
        let progress = self.progress(id).ok_or(FluidError::NoSuchFlow)?;
        let slot = id.0 as usize;
        self.active.remove(id.0 as u32);
        self.predicted[slot] = None; // heap entries for this slot go stale
        let dlinks = std::mem::take(&mut self.dlinks[slot]);
        for d in &dlinks {
            self.remove_member(*d, id.0 as u32);
        }
        self.pending_seeds.extend(dlinks);
        self.paths[slot] = Vec::new(); // retired rows keep no heavy state
        if self.by_tuple.get(&self.specs[slot].tuple) == Some(&id) {
            self.by_tuple.remove(&self.specs[slot].tuple);
        }
        let changes = self.flush(topo);
        Ok((progress, changes))
    }

    /// Moves a flow onto a new path (e.g. after a Hedera re-placement or a
    /// FIB update), preserving its progress. Re-solves the affected
    /// component incrementally.
    pub fn reroute(
        &mut self,
        now: SimTime,
        id: FlowId,
        new_path: Vec<LinkId>,
        topo: &Topology,
    ) -> Result<Vec<RateChange>, FluidError> {
        self.reroute_deferred(now, id, new_path, topo)?;
        Ok(self.flush(topo))
    }

    /// Reroutes without solving; call [`FluidNetwork::flush`] after the
    /// control burst. Returns whether the path actually changed.
    pub fn reroute_deferred(
        &mut self,
        now: SimTime,
        id: FlowId,
        new_path: Vec<LinkId>,
        topo: &Topology,
    ) -> Result<bool, FluidError> {
        self.advance(now);
        if !self.active.contains(id.0 as u32) {
            return Err(FluidError::NoSuchFlow);
        }
        let slot = id.0 as usize;
        if self.paths[slot] == new_path {
            return Ok(false);
        }
        let spec = self.specs[slot];
        let dlinks = Self::orient(&new_path, spec.src, spec.dst, topo)?;
        for d in &dlinks {
            self.add_member(*d, id.0 as u32);
            self.pending_seeds.push(*d);
        }
        let old_dlinks = std::mem::replace(&mut self.dlinks[slot], dlinks);
        self.paths[slot] = new_path;
        for d in &old_dlinks {
            // Only unindex directions the new path no longer uses.
            if self.dlinks[slot].contains(d) {
                continue;
            }
            self.remove_member(*d, id.0 as u32);
        }
        self.pending_seeds.extend(old_dlinks);
        Ok(true)
    }

    /// True when deferred operations are waiting for a solve.
    pub fn has_pending(&self) -> bool {
        !self.pending_seeds.is_empty() || !self.pending_changes.is_empty()
    }

    /// Solves once for everything deferred since the last flush, scoped to
    /// the affected component(s). One control burst → one solve.
    pub fn flush(&mut self, topo: &Topology) -> Vec<RateChange> {
        let seeds = std::mem::take(&mut self.pending_seeds);
        let mut changes = std::mem::take(&mut self.pending_changes);
        if !seeds.is_empty() {
            changes.extend(self.recompute_scoped(topo, &seeds));
        }
        changes
    }

    /// Incrementally re-solves only the component affected by the given
    /// dirty entities: the flows transitively sharing directed links with
    /// them. Untouched bottleneck groups keep their rates. Equivalent to
    /// [`FluidNetwork::recompute`] (the full oracle) restricted to the
    /// affected flows — max–min allocations decompose across components
    /// that share no directed link.
    pub fn recompute_incremental(&mut self, topo: &Topology, dirty: &[Dirty]) -> Vec<RateChange> {
        let mut seeds = std::mem::take(&mut self.pending_seeds);
        let mut changes = std::mem::take(&mut self.pending_changes);
        for d in dirty {
            match d {
                Dirty::Flow(id) => {
                    if self.active.contains(id.0 as u32) {
                        seeds.extend(self.dlinks[id.0 as usize].iter().copied());
                    }
                }
                Dirty::Link(lid) => {
                    for forward in [true, false] {
                        seeds.push(DirLink {
                            link: *lid,
                            forward,
                        });
                    }
                }
            }
        }
        if !seeds.is_empty() {
            changes.extend(self.recompute_scoped(topo, &seeds));
        }
        seeds.clear();
        self.pending_seeds = seeds; // hand the buffer back, emptied
        changes
    }

    /// Moves the accrual watermark to `now`. O(1): delivered bytes are
    /// derived lazily, so nothing per-flow happens here. Idempotent for a
    /// given `now`; time never moves backwards.
    pub fn advance(&mut self, now: SimTime) {
        if now > self.watermark {
            self.watermark = now;
        }
    }

    /// The earliest instant at which a bounded flow completes at its current
    /// rate, if any. The caller schedules a completion event there and must
    /// re-query after every re-solve (stale events are cancelled upstream).
    ///
    /// Served from the prediction heap: entries whose flow retired or
    /// whose prediction was superseded are popped and dropped (lazy
    /// invalidation); an entry at or before the watermark whose flow is
    /// not actually complete (sub-ns rounding tail) is re-predicted from
    /// the settled state, which always moves strictly past the watermark.
    /// Heap order is `(time, FlowId value)` — exactly the historical
    /// full-scan tie-break.
    pub fn next_completion(&mut self) -> Option<(SimTime, FlowId)> {
        loop {
            let Reverse((t, idv)) = *self.heap.peek()?;
            self.stats.completion_visits += 1;
            let slot = idv as usize;
            if !self.active.contains(idv as u32) || self.predicted[slot] != Some(t) {
                self.heap.pop();
                self.stats.heap_stale_pops += 1;
                continue;
            }
            if t <= self.watermark {
                let total = self.specs[slot]
                    .size_bytes
                    .expect("bounded: has prediction");
                if total as f64 - self.derived_bytes(slot) <= EPS {
                    return Some((t, FlowId(idv)));
                }
                self.heap.pop();
                self.stats.heap_stale_pops += 1;
                self.predicted[slot] = None;
                self.settle(slot);
                self.refresh_prediction(slot);
                continue;
            }
            return Some((t, FlowId(idv)));
        }
    }

    /// True if a bounded flow has delivered all its bytes as of the
    /// watermark (call [`FluidNetwork::advance`] first).
    pub fn is_complete(&self, id: FlowId) -> bool {
        if !self.active.contains(id.0 as u32) {
            return false;
        }
        let slot = id.0 as usize;
        self.specs[slot]
            .size_bytes
            .is_some_and(|total| total as f64 - self.derived_bytes(slot) <= EPS)
    }

    /// Aggregate arrival (goodput) rate at a destination host, bits/s.
    pub fn arrival_rate_at(&self, dst: NodeId) -> f64 {
        // Ascending slots == ascending flow ids: the summation order (and
        // thus the ulp-level float result) matches the historical
        // id-ordered map scan. `+ 0.0` normalizes the empty sum's IEEE
        // negative zero.
        self.active
            .iter()
            .filter(|&slot| self.specs[slot as usize].dst == dst)
            .map(|slot| self.rate_bps[slot as usize])
            .sum::<f64>()
            + 0.0
    }

    /// Aggregate arrival rate over all destinations, bits/s — the series the
    /// Horse demo plots per TE approach.
    pub fn total_arrival_rate(&self) -> f64 {
        self.active
            .iter()
            .map(|slot| self.rate_bps[slot as usize])
            .sum::<f64>()
            + 0.0
    }

    /// Load on each direction of `link` in bits/s: `(a→b, b→a)`. Served
    /// from the membership index; member lists are id-sorted, so the
    /// accumulation order matches the historical flow scan.
    pub fn link_load(&self, link: LinkId) -> (f64, f64) {
        let sum_dir = |forward: bool| -> f64 {
            let di = dlid(DirLink { link, forward });
            self.link_members.get(di).map_or(0.0, |members| {
                members
                    .iter()
                    .map(|&slot| self.rate_bps[slot as usize])
                    .sum()
            })
        };
        (sum_dir(true), sum_dir(false))
    }

    /// Load on every directed link with members, served from the
    /// membership index — O(links × members) instead of a rescan of every
    /// flow's path. Member lists are id-sorted, so each link's float
    /// accumulation order (and the `BTreeMap` key order) is byte-identical
    /// to the historical flow-id-ordered scan. Used by samplers.
    pub fn all_link_loads(&self) -> BTreeMap<DirLink, f64> {
        let mut loads: BTreeMap<DirLink, f64> = BTreeMap::new();
        for (di, members) in self.link_members.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            let mut sum = 0.0;
            for &slot in members {
                sum += self.rate_bps[slot as usize];
            }
            loads.insert(undlid(di), sum);
        }
        loads
    }

    /// Flows (with current rates) traversing `link` in either direction,
    /// in id order. O(members) via the persistent link→flows index — used
    /// by switch port/flow statistics. The two per-direction member lists
    /// are id-sorted, so a linear merge yields the historical
    /// sorted-and-deduped output without sorting.
    pub fn flows_on_link(&self, link: LinkId) -> Vec<(FlowId, f64)> {
        let dir = |forward: bool| -> &[u32] {
            self.link_members
                .get(dlid(DirLink { link, forward }))
                .map_or(&[][..], |v| v.as_slice())
        };
        let (fwd, rev) = (dir(true), dir(false));
        let mut out = Vec::with_capacity(fwd.len() + rev.len());
        let (mut i, mut j) = (0, 0);
        loop {
            let slot = match (fwd.get(i), rev.get(j)) {
                (Some(&a), Some(&b)) if a == b => {
                    i += 1;
                    j += 1;
                    a
                }
                (Some(&a), Some(&b)) if a < b => {
                    i += 1;
                    a
                }
                (Some(_), Some(&b)) => {
                    j += 1;
                    b
                }
                (Some(&a), None) => {
                    i += 1;
                    a
                }
                (None, Some(&b)) => {
                    j += 1;
                    b
                }
                (None, None) => break,
            };
            out.push((FlowId(slot as u64), self.rate_bps[slot as usize]));
        }
        out
    }

    /// Walks `path` from `src`, checking connectivity and ending at `dst`,
    /// and returns the directed-link sequence.
    fn orient(
        path: &[LinkId],
        src: NodeId,
        dst: NodeId,
        topo: &Topology,
    ) -> Result<Vec<DirLink>, FluidError> {
        let mut cur = src;
        let mut out = Vec::with_capacity(path.len());
        for lid in path {
            let link = topo.link(*lid);
            let forward = if link.a.node == cur {
                true
            } else if link.b.node == cur {
                false
            } else {
                return Err(FluidError::BrokenPath);
            };
            out.push(DirLink {
                link: *lid,
                forward,
            });
            cur = link.other(cur);
        }
        if cur != dst {
            return Err(FluidError::BrokenPath);
        }
        Ok(out)
    }

    /// Full max–min fair re-solve by progressive filling with demand caps,
    /// over every flow. Returns the rate changes (only flows whose rate
    /// moved > EPS). Kept allocation-heavy and simple — this is the oracle
    /// the incremental solver is differentially tested against; the hot
    /// path is [`FluidNetwork::recompute_incremental`] /
    /// [`FluidNetwork::flush`].
    pub fn recompute(&mut self, topo: &Topology) -> Vec<RateChange> {
        self.stats.full_solves += 1;
        self.stats.flows_touched += self.active.len() as u64;
        let ids: Vec<u32> = self.active.iter().collect();
        // Directed-link remaining capacities and memberships.
        let mut remaining: HashMap<DirLink, f64> = HashMap::new();
        let mut members: HashMap<DirLink, Vec<FlowId>> = HashMap::new();
        let mut new_rate: BTreeMap<FlowId, f64> = BTreeMap::new();
        let mut frozen: BTreeSet<FlowId> = BTreeSet::new();

        for &slot in &ids {
            let id = FlowId(slot as u64);
            let s = slot as usize;
            let spec = &self.specs[s];
            let f_dlinks = &self.dlinks[s];
            new_rate.insert(id, 0.0);
            let blocked = f_dlinks.iter().any(|d| !topo.link(d.link).up);
            if blocked {
                frozen.insert(id); // down link: starved at 0
                continue;
            }
            if let Some(granted) = Self::granted_rate(spec, f_dlinks) {
                new_rate.insert(id, granted);
                frozen.insert(id);
                continue;
            }
            for d in f_dlinks {
                remaining
                    .entry(*d)
                    .or_insert_with(|| topo.link(d.link).capacity_bps);
                members.entry(*d).or_default().push(id);
            }
        }

        self.stats.links_touched += members.len() as u64;
        loop {
            // Count unfrozen members per directed link (rebuilt per round:
            // oracle simplicity over speed; the cost is what the counters
            // charge it for).
            let mut n_unfrozen: HashMap<DirLink, usize> = HashMap::new();
            for (d, flows) in &members {
                let n = flows.iter().filter(|f| !frozen.contains(f)).count();
                self.stats.work += flows.len() as u64;
                if n > 0 {
                    n_unfrozen.insert(*d, n);
                }
            }
            let unfrozen: Vec<FlowId> = new_rate
                .keys()
                .filter(|id| !frozen.contains(id))
                .copied()
                .collect();
            if unfrozen.is_empty() {
                break;
            }
            self.stats.iterations += 1;
            self.stats.work += unfrozen.len() as u64 + n_unfrozen.len() as u64;

            // The water level rises by the tightest constraint.
            let mut delta = f64::INFINITY;
            for (d, n) in &n_unfrozen {
                delta = delta.min(remaining[d].max(0.0) / *n as f64);
            }
            for id in &unfrozen {
                let headroom = self.specs[id.0 as usize].demand_bps - new_rate[id];
                delta = delta.min(headroom);
            }
            if delta.is_infinite() {
                break; // defensive: no constraints at all
            }
            if delta > EPS {
                for id in &unfrozen {
                    *new_rate.get_mut(id).expect("flow present") += delta;
                }
                for (d, n) in &n_unfrozen {
                    *remaining.get_mut(d).expect("dlink present") -= delta * *n as f64;
                }
            }

            // Freeze demand-satisfied flows and flows on saturated links.
            let mut progressed = false;
            for id in &unfrozen {
                let s = id.0 as usize;
                let satisfied = new_rate[id] >= self.specs[s].demand_bps - EPS;
                let bottlenecked = self.dlinks[s]
                    .iter()
                    .any(|d| remaining.get(d).copied().unwrap_or(0.0) <= EPS);
                if satisfied || bottlenecked {
                    frozen.insert(*id);
                    progressed = true;
                }
            }
            if !progressed {
                // Numerically stuck; freeze everything to guarantee progress.
                for id in unfrozen {
                    frozen.insert(id);
                }
            }
        }

        // Apply and report. A full solve supersedes anything deferred:
        // fold in pending granted-rate changes and drop pending seeds.
        self.pending_seeds.clear();
        let mut changes = std::mem::take(&mut self.pending_changes);
        for &slot in &ids {
            let id = FlowId(slot as u64);
            let s = slot as usize;
            self.settle(s);
            let nr = new_rate[&id];
            if (nr - self.rate_bps[s]).abs() > EPS {
                changes.push(RateChange {
                    flow: id,
                    old_bps: self.rate_bps[s],
                    new_bps: nr,
                });
            }
            self.rate_bps[s] = nr;
            self.refresh_prediction(s);
        }
        changes
    }

    /// Scoped max–min re-solve: expands `seeds` to the affected
    /// component(s) and water-fills each link-disjoint component
    /// independently with reusable dense-id scratch. Flows outside the
    /// components keep their rates — max–min fair allocations decompose
    /// across link-disjoint components, so the result matches a full
    /// solve restricted to the affected flows.
    ///
    /// With `run_threads > 1` and at least two components, components are
    /// sharded across the `horse-pool` workers and merged in seed order.
    /// The per-component arithmetic is identical on both paths, so the
    /// allocation is bitwise invariant to the thread count.
    fn recompute_scoped(&mut self, topo: &Topology, seeds: &[DirLink]) -> Vec<RateChange> {
        self.stats.solves += 1;
        self.stats.seed_dlinks += seeds.len() as u64;

        // Component closure: BFS over the flow↔directed-link sharing
        // graph, one component per seed-order island. Seeds belonging to
        // an already-discovered component are absorbed by `visited`.
        let mut cl = std::mem::take(&mut self.closure);
        cl.visited.clear();
        cl.affected_set.clear();
        cl.queue.clear();
        cl.flows_flat.clear();
        cl.comp_ends.clear();
        cl.apply.clear();
        for seed in seeds {
            let sdi = dlid(*seed) as u32;
            if !cl.visited.insert(sdi) {
                continue;
            }
            cl.queue.push(sdi);
            while let Some(di) = cl.queue.pop() {
                let Some(members) = self.link_members.get(di as usize) else {
                    continue;
                };
                for &slot in members {
                    if cl.affected_set.insert(slot) {
                        cl.flows_flat.push(slot);
                        for d2 in &self.dlinks[slot as usize] {
                            let di2 = dlid(*d2) as u32;
                            if cl.visited.insert(di2) {
                                cl.queue.push(di2);
                            }
                        }
                    }
                }
            }
            if cl.comp_ends.last().copied().unwrap_or(0) < cl.flows_flat.len() {
                cl.comp_ends.push(cl.flows_flat.len());
            }
        }
        self.stats.flows_touched += cl.flows_flat.len() as u64;

        let ncomps = cl.comp_ends.len();
        if ncomps == 0 {
            self.closure = cl;
            return Vec::new();
        }

        // Solve each component. The parallel path is worth a fork/join
        // only for genuinely independent work of some size.
        let engage = self.run_threads > 1 && ncomps >= 2 && cl.flows_flat.len() >= PAR_MIN_FLOWS;
        let mut agg = CompStats::default();
        if engage {
            self.stats.parallel_rounds += 1;
            self.stats.parallel_components += ncomps as u64;
            let this: &FluidNetwork = &*self;
            let cl_ref = &cl;
            let (results, _) =
                horse_pool::run_indexed(ncomps, this.run_threads.min(ncomps), |ci| {
                    let start = if ci == 0 { 0 } else { cl_ref.comp_ends[ci - 1] };
                    let end = cl_ref.comp_ends[ci];
                    let mut ws = this
                        .wf_pool
                        .lock()
                        .expect("scratch pool poisoned")
                        .pop()
                        .unwrap_or_default();
                    let mut out = Vec::new();
                    let cs = this.solve_component(
                        topo,
                        &cl_ref.flows_flat[start..end],
                        &mut ws,
                        &mut out,
                    );
                    this.wf_pool.lock().expect("scratch pool poisoned").push(ws);
                    (out, cs)
                });
            // `run_indexed` returns results in component (seed) order; the
            // apply pass below re-sorts by slot anyway, so the merge order
            // only needs to be deterministic, which index order is.
            for r in results {
                let (out, cs) = r.value;
                cl.apply.extend(out);
                agg.merge(cs);
            }
        } else {
            let mut ws = self
                .wf_pool
                .lock()
                .expect("scratch pool poisoned")
                .pop()
                .unwrap_or_default();
            let mut apply = std::mem::take(&mut cl.apply);
            let mut start = 0;
            for &end in &cl.comp_ends {
                let cs =
                    self.solve_component(topo, &cl.flows_flat[start..end], &mut ws, &mut apply);
                agg.merge(cs);
                start = end;
            }
            cl.apply = apply;
            self.wf_pool.lock().expect("scratch pool poisoned").push(ws);
        }
        self.stats.links_touched += agg.links;
        self.stats.iterations += agg.iterations;
        self.stats.work += agg.work;
        self.stats.scratch_reuses += agg.reused;

        // Apply to affected flows only, in ascending id order (matching
        // the historical sorted-affected apply): settle lazily-accrued
        // bytes at the old rate, swap in the new rate, re-predict.
        cl.apply.sort_unstable_by_key(|&(slot, _)| slot);
        let mut changes = Vec::with_capacity(cl.apply.len().min(16));
        for i in 0..cl.apply.len() {
            let (slot32, nr) = cl.apply[i];
            let s = slot32 as usize;
            self.settle(s);
            let old = self.rate_bps[s];
            if (nr - old).abs() > EPS {
                changes.push(RateChange {
                    flow: FlowId(slot32 as u64),
                    old_bps: old,
                    new_bps: nr,
                });
            }
            self.rate_bps[s] = nr;
            self.refresh_prediction(s);
        }
        self.closure = cl;
        changes
    }

    /// Water-fills one link-disjoint component. Pure with respect to the
    /// network (reads specs/paths/capacities, writes only the scratch and
    /// `out`), so components can run on pool workers concurrently. The
    /// arithmetic — constraint minimum, rate increments, freeze rules —
    /// is exactly the oracle's scoped solver restricted to one component.
    fn solve_component(
        &self,
        topo: &Topology,
        flows: &[u32],
        ws: &mut WaterfillScratch,
        out: &mut Vec<(u32, f64)>,
    ) -> CompStats {
        let mut cs = CompStats {
            reused: ws.warm as u64,
            ..CompStats::default()
        };
        ws.warm = true;
        ws.epoch += 1;
        let dl_cap = self.link_members.len();
        if ws.dl_epoch.len() < dl_cap {
            ws.dl_epoch.resize(dl_cap, 0);
            ws.dl_local.resize(dl_cap, 0);
        }
        ws.remaining.clear();
        ws.n_unfrozen.clear();
        ws.new_rate.clear();
        ws.demand.clear();
        ws.flow_slot.clear();
        ws.flow_dl_off.clear();
        ws.flow_dl.clear();
        ws.unfrozen.clear();

        // Subproblem setup over the component's flows only, with full
        // capacities: every flow on a component link is in the component.
        for &slot in flows {
            let s = slot as usize;
            let f_dlinks = &self.dlinks[s];
            let spec = &self.specs[s];
            if f_dlinks.iter().any(|d| !topo.link(d.link).up) {
                out.push((slot, 0.0)); // down link: starved at 0
                continue;
            }
            if let Some(granted) = Self::granted_rate(spec, f_dlinks) {
                out.push((slot, granted));
                continue;
            }
            let li = ws.flow_slot.len() as u32;
            ws.flow_slot.push(slot);
            ws.new_rate.push(0.0);
            ws.demand.push(spec.demand_bps);
            ws.flow_dl_off.push(ws.flow_dl.len() as u32);
            for d in f_dlinks {
                let di = dlid(*d);
                if ws.dl_epoch[di] != ws.epoch {
                    ws.dl_epoch[di] = ws.epoch;
                    ws.dl_local[di] = ws.remaining.len() as u32;
                    ws.remaining.push(topo.link(d.link).capacity_bps);
                    ws.n_unfrozen.push(0);
                }
                let ld = ws.dl_local[di];
                ws.flow_dl.push(ld);
                ws.n_unfrozen[ld as usize] += 1;
            }
            ws.unfrozen.push(li);
        }
        ws.flow_dl_off.push(ws.flow_dl.len() as u32);
        cs.links = ws.remaining.len() as u64;

        // Progressive filling. Per-dlink unfrozen counts are maintained
        // incrementally as flows freeze, so each round costs O(unfrozen
        // flows + constrained links) instead of a full membership rebuild.
        while !ws.unfrozen.is_empty() {
            cs.iterations += 1;
            cs.work += ws.unfrozen.len() as u64 + ws.remaining.len() as u64;

            // The water level rises by the tightest constraint.
            let mut delta = f64::INFINITY;
            for ld in 0..ws.remaining.len() {
                let n = ws.n_unfrozen[ld];
                if n > 0 {
                    delta = delta.min(ws.remaining[ld].max(0.0) / n as f64);
                }
            }
            for &li in &ws.unfrozen {
                let headroom = ws.demand[li as usize] - ws.new_rate[li as usize];
                delta = delta.min(headroom);
            }
            if delta.is_infinite() {
                break; // defensive: no constraints at all
            }
            if delta > EPS {
                for &li in &ws.unfrozen {
                    ws.new_rate[li as usize] += delta;
                }
                for ld in 0..ws.remaining.len() {
                    let n = ws.n_unfrozen[ld];
                    if n > 0 {
                        ws.remaining[ld] -= delta * n as f64;
                    }
                }
            }

            // Freeze demand-satisfied flows and flows on saturated links,
            // decrementing the per-dlink counts as they leave.
            let mut progressed = false;
            let mut i = 0;
            while i < ws.unfrozen.len() {
                let li = ws.unfrozen[i] as usize;
                let satisfied = ws.new_rate[li] >= ws.demand[li] - EPS;
                let (o0, o1) = (ws.flow_dl_off[li] as usize, ws.flow_dl_off[li + 1] as usize);
                let bottlenecked = ws.flow_dl[o0..o1]
                    .iter()
                    .any(|&ld| ws.remaining[ld as usize] <= EPS);
                if satisfied || bottlenecked {
                    for &ld in &ws.flow_dl[o0..o1] {
                        ws.n_unfrozen[ld as usize] -= 1;
                    }
                    ws.unfrozen.swap_remove(i);
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            if !progressed {
                break; // numerically stuck; everything left stays put
            }
        }

        for li in 0..ws.flow_slot.len() {
            out.push((ws.flow_slot[li], ws.new_rate[li]));
        }
        cs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FiveTuple;
    use std::net::Ipv4Addr;

    const GBPS: f64 = 1e9;

    /// h0 --- s --- h1 and h2 --- s (star with a shared uplink to h1).
    fn star() -> (Topology, Vec<NodeId>, NodeId) {
        let mut t = Topology::new();
        let sn: crate::addr::Ipv4Prefix = "10.0.0.0/24".parse().unwrap();
        let hosts: Vec<NodeId> = (0..3)
            .map(|i| t.add_host(format!("h{i}"), Ipv4Addr::new(10, 0, 0, i + 1), sn))
            .collect();
        let s = t.add_switch("s", Ipv4Addr::new(10, 255, 0, 1));
        for h in &hosts {
            t.add_link(*h, s, GBPS, 1000);
        }
        (t, hosts, s)
    }

    fn tuple(i: u8) -> FiveTuple {
        FiveTuple::udp(
            Ipv4Addr::new(10, 0, 0, i),
            1000 + i as u16,
            Ipv4Addr::new(10, 0, 9, i),
            2000,
        )
    }

    fn path_between(t: &Topology, a: NodeId, b: NodeId) -> Vec<LinkId> {
        t.all_shortest_paths(a, b).into_iter().next().unwrap()
    }

    #[test]
    fn single_flow_capped_by_demand() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        let spec = FlowSpec::cbr(h[0], h[1], tuple(1), 0.3 * GBPS);
        let p = path_between(&t, h[0], h[1]);
        let (id, _) = net.start(SimTime::ZERO, spec, p, &t).unwrap();
        assert!((net.rate_of(id).unwrap() - 0.3 * GBPS).abs() < 1.0);
    }

    #[test]
    fn two_flows_share_bottleneck_fairly() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        // Both flows sink at h1 → share the s→h1 direction of that link.
        let (a, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[0], h[1], tuple(1), GBPS),
                path_between(&t, h[0], h[1]),
                &t,
            )
            .unwrap();
        let (b, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[2], h[1], tuple(2), GBPS),
                path_between(&t, h[2], h[1]),
                &t,
            )
            .unwrap();
        assert!((net.rate_of(a).unwrap() - 0.5 * GBPS).abs() < 1.0);
        assert!((net.rate_of(b).unwrap() - 0.5 * GBPS).abs() < 1.0);
        assert!((net.arrival_rate_at(h[1]) - GBPS).abs() < 1.0);
    }

    #[test]
    fn max_min_respects_small_demands() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        let (a, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[0], h[1], tuple(1), 0.2 * GBPS),
                path_between(&t, h[0], h[1]),
                &t,
            )
            .unwrap();
        let (b, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[2], h[1], tuple(2), GBPS),
                path_between(&t, h[2], h[1]),
                &t,
            )
            .unwrap();
        // Flow a is demand-limited to 0.2; b picks up the slack (0.8).
        assert!((net.rate_of(a).unwrap() - 0.2 * GBPS).abs() < 1.0);
        assert!((net.rate_of(b).unwrap() - 0.8 * GBPS).abs() < 1.0);
    }

    #[test]
    fn opposite_directions_do_not_share() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        let (a, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[0], h[1], tuple(1), GBPS),
                path_between(&t, h[0], h[1]),
                &t,
            )
            .unwrap();
        let (b, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[1], h[0], tuple(2), GBPS),
                path_between(&t, h[1], h[0]),
                &t,
            )
            .unwrap();
        // Full duplex: both directions carry a full gigabit.
        assert!((net.rate_of(a).unwrap() - GBPS).abs() < 1.0);
        assert!((net.rate_of(b).unwrap() - GBPS).abs() < 1.0);
    }

    #[test]
    fn down_link_starves_flow() {
        let (mut t, h, s) = star();
        let mut net = FluidNetwork::new();
        let (a, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[0], h[1], tuple(1), GBPS),
                path_between(&t, h[0], h[1]),
                &t,
            )
            .unwrap();
        let (lid, _) = t.link_between(h[0], s).unwrap();
        t.link_mut(lid).up = false;
        let changes = net.recompute(&t);
        assert_eq!(net.rate_of(a), Some(0.0));
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].new_bps, 0.0);
    }

    #[test]
    fn completion_time_of_bounded_flow() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        // 1 Gbit = 125 MB at 1 Gbps → 1 second.
        let spec = FlowSpec::transfer(h[0], h[1], tuple(1), GBPS, 125_000_000);
        let (id, _) = net
            .start(SimTime::ZERO, spec, path_between(&t, h[0], h[1]), &t)
            .unwrap();
        let (t_done, done_id) = net.next_completion().unwrap();
        assert_eq!(done_id, id);
        assert!((t_done.as_secs_f64() - 1.0).abs() < 1e-6);
        net.advance(t_done);
        assert!(net.is_complete(id));
    }

    #[test]
    fn completion_reflects_rate_share() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        let spec = FlowSpec::transfer(h[0], h[1], tuple(1), GBPS, 125_000_000);
        let (id, _) = net
            .start(SimTime::ZERO, spec, path_between(&t, h[0], h[1]), &t)
            .unwrap();
        // A competing flow halves the rate after 0.5 s.
        net.start(
            SimTime::from_millis(500),
            FlowSpec::cbr(h[2], h[1], tuple(2), GBPS),
            path_between(&t, h[2], h[1]),
            &t,
        )
        .unwrap();
        // Remaining 62.5 MB at 0.5 Gbps → 1 more second; total 1.5 s.
        let (t_done, done_id) = net.next_completion().unwrap();
        assert_eq!(done_id, id);
        assert!((t_done.as_secs_f64() - 1.5).abs() < 1e-6, "{t_done}");
    }

    #[test]
    fn stop_frees_bandwidth() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        let (a, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[0], h[1], tuple(1), GBPS),
                path_between(&t, h[0], h[1]),
                &t,
            )
            .unwrap();
        let (b, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[2], h[1], tuple(2), GBPS),
                path_between(&t, h[2], h[1]),
                &t,
            )
            .unwrap();
        let (prog, changes) = net.stop(SimTime::from_secs(1), a, &t).unwrap();
        // a ran at 0.5 Gbps for 1 s = 62.5 MB.
        assert!((prog.bytes_sent - 62_500_000.0).abs() < 1.0);
        assert_eq!(changes.len(), 1);
        assert!((net.rate_of(b).unwrap() - GBPS).abs() < 1.0);
    }

    #[test]
    fn reroute_preserves_progress() {
        // Square a-{x,y}-b with two disjoint paths.
        let mut t = Topology::new();
        let sn: crate::addr::Ipv4Prefix = "10.0.0.0/24".parse().unwrap();
        let a = t.add_host("a", Ipv4Addr::new(10, 0, 0, 1), sn);
        let b = t.add_host("b", Ipv4Addr::new(10, 0, 0, 2), sn);
        let x = t.add_switch("x", Ipv4Addr::new(10, 255, 0, 1));
        let y = t.add_switch("y", Ipv4Addr::new(10, 255, 0, 2));
        let (ax, ..) = t.add_link(a, x, GBPS, 0);
        let (xb, ..) = t.add_link(x, b, GBPS, 0);
        let (ay, ..) = t.add_link(a, y, GBPS, 0);
        let (yb, ..) = t.add_link(y, b, GBPS, 0);
        let mut net = FluidNetwork::new();
        let spec = FlowSpec::cbr(a, b, tuple(1), GBPS);
        let (id, _) = net.start(SimTime::ZERO, spec, vec![ax, xb], &t).unwrap();
        net.advance(SimTime::from_secs(1));
        let before = net.progress(id).unwrap().bytes_sent;
        net.reroute(SimTime::from_secs(1), id, vec![ay, yb], &t)
            .unwrap();
        let after = net.progress(id).unwrap();
        assert_eq!(after.bytes_sent, before);
        assert_eq!(net.path(id).unwrap(), &[ay, yb]);
        assert!((after.rate_bps - GBPS).abs() < 1.0);
        assert_eq!(net.link_load(ax), (0.0, 0.0));
        let (fwd, _) = net.link_load(ay);
        assert!((fwd - GBPS).abs() < 1.0);
    }

    #[test]
    fn broken_path_rejected() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        let wrong = path_between(&t, h[1], h[2]); // doesn't start at h0
        let err = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[0], h[1], tuple(1), GBPS),
                wrong,
                &t,
            )
            .unwrap_err();
        assert_eq!(err, FluidError::BrokenPath);
    }

    #[test]
    fn zero_demand_flow_stays_zero() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        let (id, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[0], h[1], tuple(1), 0.0),
                path_between(&t, h[0], h[1]),
                &t,
            )
            .unwrap();
        assert_eq!(net.rate_of(id), Some(0.0));
        assert_eq!(net.next_completion(), None);
    }

    #[test]
    fn three_level_waterfill() {
        // One shared 1G link with three flows of demands 0.1, 0.4, 1.0:
        // max-min gives 0.1, 0.4, 0.5.
        let mut t = Topology::new();
        let sn: crate::addr::Ipv4Prefix = "10.0.0.0/24".parse().unwrap();
        let src = t.add_host("src", Ipv4Addr::new(10, 0, 0, 1), sn);
        let dst = t.add_host("dst", Ipv4Addr::new(10, 0, 0, 2), sn);
        let (l, ..) = t.add_link(src, dst, GBPS, 0);
        let mut net = FluidNetwork::new();
        let demands = [0.1, 0.4, 1.0];
        let ids: Vec<FlowId> = demands
            .iter()
            .enumerate()
            .map(|(i, d)| {
                net.start(
                    SimTime::ZERO,
                    FlowSpec::cbr(src, dst, tuple(i as u8), d * GBPS),
                    vec![l],
                    &t,
                )
                .unwrap()
                .0
            })
            .collect();
        let expected = [0.1, 0.4, 0.5];
        for (id, e) in ids.iter().zip(expected) {
            assert!(
                (net.rate_of(*id).unwrap() - e * GBPS).abs() < 1.0,
                "flow {id} expected {e} Gbps got {} bps",
                net.rate_of(*id).unwrap()
            );
        }
        let (fwd, rev) = net.link_load(l);
        assert!((fwd - GBPS).abs() < 1.0);
        assert_eq!(rev, 0.0);
    }

    #[test]
    fn sub_nanosecond_completion_tails_terminate() {
        // Regression: a residual of a fraction of a byte at gigabit rates
        // yields a completion delay below 1 ns, which must not reschedule
        // at the same instant forever.
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        // An awkward size that leaves float crumbs when shared 3 ways.
        let spec = FlowSpec::transfer(h[0], h[1], tuple(1), GBPS, 1_000_003);
        let (id, _) = net
            .start(SimTime::ZERO, spec, path_between(&t, h[0], h[1]), &t)
            .unwrap();
        let mut now = SimTime::ZERO;
        for _ in 0..1000 {
            let Some((t_done, did)) = net.next_completion() else {
                break;
            };
            assert_eq!(did, id);
            assert!(t_done > now, "completion must move time forward");
            now = t_done;
            net.advance(now);
            if net.is_complete(id) {
                return; // terminated — pass
            }
        }
        panic!("completion never converged");
    }

    #[test]
    fn elastic_flows_share_without_demand_cap() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        // One elastic flow alone: grabs the full link.
        let (a, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::elastic(h[0], h[1], tuple(1), None),
                path_between(&t, h[0], h[1]),
                &t,
            )
            .unwrap();
        assert!((net.rate_of(a).unwrap() - GBPS).abs() < 1.0);
        // A CBR competitor at 0.3 G: elastic takes the remaining 0.7 G.
        let (_b, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[2], h[1], tuple(2), 0.3 * GBPS),
                path_between(&t, h[2], h[1]),
                &t,
            )
            .unwrap();
        assert!((net.rate_of(a).unwrap() - 0.7 * GBPS).abs() < 1.0);
    }

    #[test]
    fn elastic_bounded_transfer_completes() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        // 125 MB elastic transfer on an idle 1 Gbps path → 1 s.
        let (id, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::elastic(h[0], h[1], tuple(1), Some(125_000_000)),
                path_between(&t, h[0], h[1]),
                &t,
            )
            .unwrap();
        let (t_done, did) = net.next_completion().unwrap();
        assert_eq!(did, id);
        assert!((t_done.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn flows_on_link_reports_both_directions() {
        let (t, h, s) = star();
        let mut net = FluidNetwork::new();
        let (a, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[0], h[1], tuple(1), GBPS),
                path_between(&t, h[0], h[1]),
                &t,
            )
            .unwrap();
        let (lid, _) = t.link_between(h[0], s).unwrap();
        let on = net.flows_on_link(lid);
        assert_eq!(on.len(), 1);
        assert_eq!(on[0].0, a);
    }

    #[test]
    fn tuple_index_tracks_start_stop() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        let spec = FlowSpec::cbr(h[0], h[1], tuple(1), GBPS);
        let (id, _) = net
            .start(SimTime::ZERO, spec, path_between(&t, h[0], h[1]), &t)
            .unwrap();
        assert_eq!(net.flow_by_tuple(&tuple(1)), Some(id));
        assert_eq!(net.flow_by_tuple(&tuple(2)), None);
        net.stop(SimTime::ZERO, id, &t).unwrap();
        assert_eq!(net.flow_by_tuple(&tuple(1)), None);
    }

    #[test]
    fn deferred_burst_solves_once() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        // Two flows into the same sink, queued as one burst.
        let ids: Vec<FlowId> = [0, 2]
            .iter()
            .map(|&i| {
                net.start_deferred(
                    SimTime::ZERO,
                    FlowSpec::cbr(h[i], h[1], tuple(i as u8 + 1), GBPS),
                    path_between(&t, h[i], h[1]),
                    &t,
                )
                .unwrap()
            })
            .collect();
        assert!(net.has_pending());
        let before = net.solver_stats().solves;
        net.flush(&t);
        assert!(!net.has_pending());
        assert_eq!(
            net.solver_stats().solves,
            before + 1,
            "one burst, one solve"
        );
        for id in ids {
            assert!((net.rate_of(id).unwrap() - 0.5 * GBPS).abs() < 1.0);
        }
        // A second flush with nothing queued is free.
        net.flush(&t);
        assert_eq!(net.solver_stats().solves, before + 1);
    }

    #[test]
    fn incremental_solution_is_a_fixed_point_of_the_full_solver() {
        let (mut t, h, s) = star();
        let mut net = FluidNetwork::new();
        for (i, pair) in [(0, 1), (2, 1), (1, 0)].iter().enumerate() {
            net.start(
                SimTime::ZERO,
                FlowSpec::cbr(h[pair.0], h[pair.1], tuple(i as u8 + 1), GBPS),
                path_between(&t, h[pair.0], h[pair.1]),
                &t,
            )
            .unwrap();
        }
        let (lid, _) = t.link_between(h[2], s).unwrap();
        t.link_mut(lid).up = false;
        net.recompute_incremental(&t, &[Dirty::Link(lid)]);
        // The full oracle must agree: re-solving from scratch changes no
        // rate beyond EPS.
        let residual = net.recompute(&t);
        assert!(
            residual.is_empty(),
            "full solve disagreed with incremental: {residual:?}"
        );
    }

    #[test]
    fn link_down_then_up_restores_rates() {
        let (mut t, h, s) = star();
        let mut net = FluidNetwork::new();
        let (a, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[0], h[1], tuple(1), GBPS),
                path_between(&t, h[0], h[1]),
                &t,
            )
            .unwrap();
        let (b, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[2], h[1], tuple(2), GBPS),
                path_between(&t, h[2], h[1]),
                &t,
            )
            .unwrap();
        let rate_a = net.rate_of(a).unwrap();
        let rate_b = net.rate_of(b).unwrap();
        let (lid, _) = t.link_between(h[2], s).unwrap();
        t.link_mut(lid).up = false;
        net.recompute_incremental(&t, &[Dirty::Link(lid)]);
        assert_eq!(net.rate_of(b), Some(0.0), "starved by the failure");
        assert!(
            (net.rate_of(a).unwrap() - GBPS).abs() < 1.0,
            "survivor picks up the slack"
        );
        t.link_mut(lid).up = true;
        net.recompute_incremental(&t, &[Dirty::Link(lid)]);
        assert!((net.rate_of(a).unwrap() - rate_a).abs() < 1.0, "restored");
        assert!((net.rate_of(b).unwrap() - rate_b).abs() < 1.0, "restored");
    }

    #[test]
    fn disjoint_components_are_untouched_by_incremental_solves() {
        // Two independent bottlenecks; churn on one must not count work on
        // the other.
        let mut t = Topology::new();
        let sn: crate::addr::Ipv4Prefix = "10.0.0.0/24".parse().unwrap();
        let hosts: Vec<NodeId> = (0..4)
            .map(|i| t.add_host(format!("h{i}"), Ipv4Addr::new(10, 0, 0, i + 1), sn))
            .collect();
        let (_l01, ..) = t.add_link(hosts[0], hosts[1], GBPS, 0);
        let (l23, ..) = t.add_link(hosts[2], hosts[3], GBPS, 0);
        let mut net = FluidNetwork::new();
        let (a, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(hosts[0], hosts[1], tuple(1), GBPS),
                path_between(&t, hosts[0], hosts[1]),
                &t,
            )
            .unwrap();
        net.reset_solver_stats();
        // Start a second flow on the *other* pair: the solve must only
        // touch that one flow.
        let (b, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(hosts[2], hosts[3], tuple(2), 0.4 * GBPS),
                vec![l23],
                &t,
            )
            .unwrap();
        let stats = net.solver_stats();
        assert_eq!(stats.solves, 1);
        assert_eq!(stats.full_solves, 0);
        assert_eq!(stats.flows_touched, 1, "only the new flow's component");
        assert!((net.rate_of(a).unwrap() - GBPS).abs() < 1.0);
        assert!((net.rate_of(b).unwrap() - 0.4 * GBPS).abs() < 1.0);
    }

    // ---- Arena-shape-specific tests ----------------------------------

    /// Builds `rails` disjoint host pairs, each joined by one 1 Gbps link.
    fn rails(n: usize) -> (Topology, Vec<(NodeId, NodeId, LinkId)>) {
        let mut t = Topology::new();
        let sn: crate::addr::Ipv4Prefix = "10.0.0.0/16".parse().unwrap();
        let mut out = Vec::new();
        for i in 0..n {
            let a = t.add_host(format!("a{i}"), Ipv4Addr::new(10, 0, i as u8, 1), sn);
            let b = t.add_host(format!("b{i}"), Ipv4Addr::new(10, 0, i as u8, 2), sn);
            let (l, ..) = t.add_link(a, b, GBPS, 0);
            out.push((a, b, l));
        }
        (t, out)
    }

    /// Starts one deferred burst spanning `rails` components with mixed
    /// demands, flushes, and returns the rates in id order.
    fn burst_rates(threads: usize) -> (Vec<u64>, SolverStats) {
        let (t, rs) = rails(4);
        let mut net = FluidNetwork::new();
        net.set_run_threads(threads);
        let mut k = 0u8;
        for (a, b, l) in &rs {
            for j in 0..3 {
                let demand = [0.2, 0.5, 1.0][j] * GBPS;
                net.start_deferred(
                    SimTime::ZERO,
                    FlowSpec::cbr(*a, *b, tuple(k), demand),
                    vec![*l],
                    &t,
                )
                .unwrap();
                k += 1;
            }
        }
        net.flush(&t);
        let rates = net
            .flow_ids()
            .map(|id| net.rate_of(id).unwrap().to_bits())
            .collect();
        (rates, net.solver_stats())
    }

    #[test]
    fn thread_count_does_not_change_allocations() {
        // 4 components × 3 flows in one burst: serial and sharded solves
        // must agree bitwise (identical per-component arithmetic).
        let (serial, s1) = burst_rates(1);
        let (two, s2) = burst_rates(2);
        let (four, s4) = burst_rates(4);
        assert_eq!(serial, two);
        assert_eq!(serial, four);
        assert_eq!(s1.parallel_rounds, 0, "serial path stays off the pool");
        assert!(s2.parallel_rounds >= 1, "threads>1 + components engage");
        assert_eq!(s4.parallel_components, 4);
        // The logical work is thread-count-invariant too.
        assert_eq!(s1.flows_touched, s2.flows_touched);
        assert_eq!(s1.iterations, s4.iterations);
        assert_eq!(s1.work, s4.work);
    }

    #[test]
    fn stale_heap_entries_are_dropped() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        let (a, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::transfer(h[0], h[1], tuple(1), GBPS, 125_000_000),
                path_between(&t, h[0], h[1]),
                &t,
            )
            .unwrap();
        let (b, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::transfer(h[2], h[1], tuple(2), GBPS, 250_000_000),
                path_between(&t, h[2], h[1]),
                &t,
            )
            .unwrap();
        // Both predictions were refreshed when the shared solve halved the
        // rates; retiring `a` leaves its entries stale.
        net.stop(SimTime::ZERO, a, &t).unwrap();
        let (_, winner) = net.next_completion().unwrap();
        assert_eq!(winner, b, "retired flow's entries are skipped");
        assert!(net.solver_stats().heap_stale_pops > 0);
    }

    #[test]
    fn advance_is_constant_time_and_lazy() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        let (id, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[0], h[1], tuple(1), 0.4 * GBPS),
                path_between(&t, h[0], h[1]),
                &t,
            )
            .unwrap();
        net.reset_solver_stats();
        for ms in 1..=100 {
            net.advance(SimTime::from_millis(ms));
        }
        // 100 advances, zero per-flow accrual writes…
        assert_eq!(net.solver_stats().advance_touches, 0);
        // …yet reads see exactly the accrued bytes.
        let bytes = net.progress(id).unwrap().bytes_sent;
        assert!((bytes - 0.4 * GBPS * 0.1 / 8.0).abs() < 1.0, "{bytes}");
        // Reading twice (idempotence) and advancing to the same instant
        // changes nothing.
        net.advance(SimTime::from_millis(100));
        assert_eq!(net.progress(id).unwrap().bytes_sent, bytes);
    }

    #[test]
    fn settle_preserves_derived_bytes() {
        // A rate change mid-transfer settles accrued bytes; the derived
        // total before and after the settle is identical.
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        let (id, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::transfer(h[0], h[1], tuple(1), GBPS, 250_000_000),
                path_between(&t, h[0], h[1]),
                &t,
            )
            .unwrap();
        net.advance(SimTime::from_millis(700));
        let before = net.progress(id).unwrap().bytes_sent;
        // A competitor forces a re-solve (and thus a settle) at 700 ms.
        net.start(
            SimTime::from_millis(700),
            FlowSpec::cbr(h[2], h[1], tuple(2), GBPS),
            path_between(&t, h[2], h[1]),
            &t,
        )
        .unwrap();
        assert_eq!(net.progress(id).unwrap().bytes_sent, before);
        assert!(net.solver_stats().advance_touches > 0, "settled on change");
    }
}

//! The fluid-rate data plane: event-driven max–min fair bandwidth sharing.
//!
//! Horse's data plane does not move packets. Each flow is a fluid with a
//! *demand* (offered rate) and a *path* (sequence of directed links); the
//! achieved rate of every flow is the max–min fair allocation subject to
//! per-link capacities and per-flow demand caps, computed by progressive
//! filling (water-filling). Rates change only at discrete instants — a flow
//! starts, finishes, is rerouted, or a link changes — so the simulation only
//! needs to re-solve at those events and can jump the clock in between.
//!
//! Links are full duplex: each direction of a link is an independent
//! capacity. A flow's direction over each link on its path is derived from
//! walking the path from the flow's source.

use crate::flow::{FiveTuple, FlowId, FlowSpec};
use crate::topology::{LinkId, NodeId, Topology};
use horse_sim::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

const EPS: f64 = 1e-6;

/// A directed traversal of a link: `forward` means a→b.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DirLink {
    /// The underlying link.
    pub link: LinkId,
    /// True when traversed from endpoint `a` to endpoint `b`.
    pub forward: bool,
}

/// A rate change produced by a re-solve, for observers (stats, tracing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateChange {
    /// The affected flow.
    pub flow: FlowId,
    /// Rate before the re-solve, bits/s.
    pub old_bps: f64,
    /// Rate after the re-solve, bits/s.
    pub new_bps: f64,
}

/// Progress snapshot of one flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowProgress {
    /// When the flow started.
    pub started: SimTime,
    /// Current allocated rate, bits/s.
    pub rate_bps: f64,
    /// Bytes delivered so far.
    pub bytes_sent: f64,
    /// Bytes remaining (`None` for unbounded flows).
    pub bytes_remaining: Option<f64>,
}

#[derive(Debug, Clone)]
struct ActiveFlow {
    spec: FlowSpec,
    path: Vec<LinkId>,
    dlinks: Vec<DirLink>,
    rate_bps: f64,
    bytes_sent: f64,
    last_update: SimTime,
    started: SimTime,
}

/// Errors from flow operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FluidError {
    /// The supplied path does not connect the flow's source to its sink.
    BrokenPath,
    /// Unknown flow id.
    NoSuchFlow,
}

impl std::fmt::Display for FluidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FluidError::BrokenPath => write!(f, "path does not connect src to dst"),
            FluidError::NoSuchFlow => write!(f, "no such flow"),
        }
    }
}

impl std::error::Error for FluidError {}

/// An entity whose state changed since the last solve, for
/// [`FluidNetwork::recompute_incremental`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dirty {
    /// A flow started, stopped, was rerouted, or otherwise changed.
    Flow(FlowId),
    /// A link went up or down, or its capacity changed.
    Link(LinkId),
}

/// Cumulative solver-effort counters, for benchmarking the incremental
/// solver against full re-solves. "Work" approximates FLOP-equivalents:
/// each waterfill round costs one unit per participating flow plus one
/// per constrained directed link.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct SolverStats {
    /// Scoped (incremental) solves run.
    pub solves: u64,
    /// Full oracle re-solves run.
    pub full_solves: u64,
    /// Flows included across all solved subproblems.
    pub flows_touched: u64,
    /// Directed links included across all solved subproblems.
    pub links_touched: u64,
    /// Waterfill rounds across all solves.
    pub iterations: u64,
    /// FLOP-equivalent units of solver work.
    pub work: u64,
}

/// Reusable scratch buffers for the scoped solver: cleared, never
/// dropped, so the steady path allocates nothing once warmed up.
#[derive(Debug, Default)]
struct SolverArena {
    /// BFS frontier of directed links still to expand.
    link_queue: Vec<DirLink>,
    /// Directed links already pulled into the component.
    visited: HashSet<DirLink>,
    /// Flows in the component, in discovery order.
    affected: Vec<FlowId>,
    /// Membership filter for `affected`.
    affected_set: HashSet<FlowId>,
    /// Tentative rate per affected flow.
    new_rate: HashMap<FlowId, f64>,
    /// Affected flows still rising with the water level.
    unfrozen: Vec<FlowId>,
    /// Remaining capacity per constrained directed link.
    remaining: HashMap<DirLink, f64>,
    /// Unfrozen member count per constrained directed link, maintained
    /// incrementally as flows freeze (no per-round rebuilds).
    n_unfrozen: HashMap<DirLink, usize>,
}

impl SolverArena {
    fn clear(&mut self) {
        self.link_queue.clear();
        self.visited.clear();
        self.affected.clear();
        self.affected_set.clear();
        self.new_rate.clear();
        self.unfrozen.clear();
        self.remaining.clear();
        self.n_unfrozen.clear();
    }
}

/// The set of active fluid flows and their current allocation.
#[derive(Debug, Default)]
pub struct FluidNetwork {
    flows: BTreeMap<FlowId, ActiveFlow>,
    next_id: u64,
    /// Directed link → flows traversing it. Structural (includes blocked
    /// and zero-demand flows); the basis of incremental re-solves and of
    /// O(members) [`FluidNetwork::flows_on_link`].
    link_members: HashMap<DirLink, BTreeSet<FlowId>>,
    /// Five-tuple → flow id, for the controller stats path.
    by_tuple: HashMap<FiveTuple, FlowId>,
    /// Directed links touched by deferred (batched) operations, awaiting
    /// [`FluidNetwork::flush`].
    pending_seeds: Vec<DirLink>,
    /// Rate changes synthesized by deferred operations on flows with no
    /// constrained links (granted rates), reported at the next flush.
    pending_changes: Vec<RateChange>,
    arena: SolverArena,
    stats: SolverStats,
}

impl FluidNetwork {
    /// An empty fluid network.
    pub fn new() -> FluidNetwork {
        FluidNetwork::default()
    }

    /// Number of active flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Active flow ids, in id order.
    pub fn flow_ids(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.flows.keys().copied()
    }

    /// The spec a flow was started with.
    pub fn spec(&self, id: FlowId) -> Option<&FlowSpec> {
        self.flows.get(&id).map(|f| &f.spec)
    }

    /// The path a flow currently uses.
    pub fn path(&self, id: FlowId) -> Option<&[LinkId]> {
        self.flows.get(&id).map(|f| f.path.as_slice())
    }

    /// Current rate of a flow, bits/s.
    pub fn rate_of(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.rate_bps)
    }

    /// Progress snapshot for a flow.
    pub fn progress(&self, id: FlowId) -> Option<FlowProgress> {
        self.flows.get(&id).map(|f| FlowProgress {
            started: f.started,
            rate_bps: f.rate_bps,
            bytes_sent: f.bytes_sent,
            bytes_remaining: f
                .spec
                .size_bytes
                .map(|total| (total as f64 - f.bytes_sent).max(0.0)),
        })
    }

    /// The flow currently carrying this five-tuple, if any. O(1) via a
    /// persistent index — the controller stats path resolves table entries
    /// to flows through this.
    pub fn flow_by_tuple(&self, tuple: &FiveTuple) -> Option<FlowId> {
        self.by_tuple.get(tuple).copied()
    }

    /// Cumulative solver-effort counters.
    pub fn solver_stats(&self) -> SolverStats {
        self.stats
    }

    /// Zeroes the solver-effort counters (for benchmarking windows).
    pub fn reset_solver_stats(&mut self) {
        self.stats = SolverStats::default();
    }

    /// The rate a flow gets without solving: demand for zero-demand or
    /// pathless flows (which consume no shared capacity), `None` when the
    /// flow actually competes.
    fn granted_rate(spec: &FlowSpec, dlinks: &[DirLink]) -> Option<f64> {
        if spec.demand_bps <= EPS || dlinks.is_empty() {
            // Zero demand stays at zero; empty path (src == dst or
            // loopback) is unconstrained: grant the full demand — except
            // elastic (infinite-demand) flows, which have no finite
            // number to grant and get zero.
            Some(if spec.demand_bps.is_finite() {
                spec.demand_bps.max(0.0)
            } else {
                0.0
            })
        } else {
            None
        }
    }

    /// Inserts a flow and indexes its directed links; no solve.
    fn insert_flow(
        &mut self,
        now: SimTime,
        spec: FlowSpec,
        path: Vec<LinkId>,
        topo: &Topology,
    ) -> Result<FlowId, FluidError> {
        let dlinks = Self::orient(&path, spec.src, spec.dst, topo)?;
        self.advance(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        for d in &dlinks {
            self.link_members.entry(*d).or_default().insert(id);
        }
        self.by_tuple.insert(spec.tuple, id);
        // Flows that consume no shared capacity get their rate up front;
        // no solve will visit them (they are in no link's member set).
        let rate_bps = Self::granted_rate(&spec, &dlinks).unwrap_or(0.0);
        if rate_bps > EPS {
            self.pending_changes.push(RateChange {
                flow: id,
                old_bps: 0.0,
                new_bps: rate_bps,
            });
        }
        self.flows.insert(
            id,
            ActiveFlow {
                spec,
                path,
                dlinks,
                rate_bps,
                bytes_sent: 0.0,
                last_update: now,
                started: now,
            },
        );
        Ok(id)
    }

    /// Removes a flow from the member index and the tuple index.
    fn unindex_flow(&mut self, id: FlowId, flow: &ActiveFlow) {
        for d in &flow.dlinks {
            if let Some(members) = self.link_members.get_mut(d) {
                members.remove(&id);
                if members.is_empty() {
                    self.link_members.remove(d);
                }
            }
        }
        if self.by_tuple.get(&flow.spec.tuple) == Some(&id) {
            self.by_tuple.remove(&flow.spec.tuple);
        }
    }

    /// Starts a flow on the given path. The path must connect
    /// `spec.src` to `spec.dst` in `topo`. Re-solves the affected
    /// component incrementally.
    pub fn start(
        &mut self,
        now: SimTime,
        spec: FlowSpec,
        path: Vec<LinkId>,
        topo: &Topology,
    ) -> Result<(FlowId, Vec<RateChange>), FluidError> {
        let id = self.start_deferred(now, spec, path, topo)?;
        let changes = self.flush(topo);
        Ok((id, changes))
    }

    /// Starts a flow without solving; call [`FluidNetwork::flush`] after
    /// the control burst to solve once for the whole batch.
    pub fn start_deferred(
        &mut self,
        now: SimTime,
        spec: FlowSpec,
        path: Vec<LinkId>,
        topo: &Topology,
    ) -> Result<FlowId, FluidError> {
        let id = self.insert_flow(now, spec, path, topo)?;
        let dlinks = &self.flows[&id].dlinks;
        self.pending_seeds.extend(dlinks.iter().copied());
        Ok(id)
    }

    /// Stops (removes) a flow, returning its final progress and the rate
    /// changes caused by freeing its bandwidth.
    pub fn stop(
        &mut self,
        now: SimTime,
        id: FlowId,
        topo: &Topology,
    ) -> Result<(FlowProgress, Vec<RateChange>), FluidError> {
        self.advance(now);
        let progress = self.progress(id).ok_or(FluidError::NoSuchFlow)?;
        let flow = self.flows.remove(&id).expect("progress implies presence");
        self.unindex_flow(id, &flow);
        self.pending_seeds.extend(flow.dlinks.iter().copied());
        let changes = self.flush(topo);
        Ok((progress, changes))
    }

    /// Moves a flow onto a new path (e.g. after a Hedera re-placement or a
    /// FIB update), preserving its progress. Re-solves the affected
    /// component incrementally.
    pub fn reroute(
        &mut self,
        now: SimTime,
        id: FlowId,
        new_path: Vec<LinkId>,
        topo: &Topology,
    ) -> Result<Vec<RateChange>, FluidError> {
        self.reroute_deferred(now, id, new_path, topo)?;
        Ok(self.flush(topo))
    }

    /// Reroutes without solving; call [`FluidNetwork::flush`] after the
    /// control burst. Returns whether the path actually changed.
    pub fn reroute_deferred(
        &mut self,
        now: SimTime,
        id: FlowId,
        new_path: Vec<LinkId>,
        topo: &Topology,
    ) -> Result<bool, FluidError> {
        self.advance(now);
        let flow = self.flows.get(&id).ok_or(FluidError::NoSuchFlow)?;
        if flow.path == new_path {
            return Ok(false);
        }
        let dlinks = Self::orient(&new_path, flow.spec.src, flow.spec.dst, topo)?;
        for d in &dlinks {
            self.link_members.entry(*d).or_default().insert(id);
            self.pending_seeds.push(*d);
        }
        let flow = self.flows.get_mut(&id).expect("checked above");
        let old_dlinks = std::mem::replace(&mut flow.dlinks, dlinks);
        flow.path = new_path;
        for d in &old_dlinks {
            // Only unindex directions the new path no longer uses.
            if self.flows[&id].dlinks.contains(d) {
                continue;
            }
            if let Some(members) = self.link_members.get_mut(d) {
                members.remove(&id);
                if members.is_empty() {
                    self.link_members.remove(d);
                }
            }
        }
        self.pending_seeds.extend(old_dlinks);
        Ok(true)
    }

    /// True when deferred operations are waiting for a solve.
    pub fn has_pending(&self) -> bool {
        !self.pending_seeds.is_empty() || !self.pending_changes.is_empty()
    }

    /// Solves once for everything deferred since the last flush, scoped to
    /// the affected component(s). One control burst → one solve.
    pub fn flush(&mut self, topo: &Topology) -> Vec<RateChange> {
        let seeds = std::mem::take(&mut self.pending_seeds);
        let mut changes = std::mem::take(&mut self.pending_changes);
        if !seeds.is_empty() {
            changes.extend(self.recompute_scoped(topo, &seeds));
        }
        changes
    }

    /// Incrementally re-solves only the component affected by the given
    /// dirty entities: the flows transitively sharing directed links with
    /// them. Untouched bottleneck groups keep their rates. Equivalent to
    /// [`FluidNetwork::recompute`] (the full oracle) restricted to the
    /// affected flows — max–min allocations decompose across components
    /// that share no directed link.
    pub fn recompute_incremental(&mut self, topo: &Topology, dirty: &[Dirty]) -> Vec<RateChange> {
        let mut seeds = std::mem::take(&mut self.pending_seeds);
        let mut changes = std::mem::take(&mut self.pending_changes);
        for d in dirty {
            match d {
                Dirty::Flow(id) => {
                    if let Some(f) = self.flows.get(id) {
                        seeds.extend(f.dlinks.iter().copied());
                    }
                }
                Dirty::Link(lid) => {
                    for forward in [true, false] {
                        seeds.push(DirLink {
                            link: *lid,
                            forward,
                        });
                    }
                }
            }
        }
        if !seeds.is_empty() {
            changes.extend(self.recompute_scoped(topo, &seeds));
        }
        seeds.clear();
        self.pending_seeds = seeds; // hand the buffer back, emptied
        changes
    }

    /// Accrues delivered bytes for every flow up to `now`. Idempotent for a
    /// given `now`; time never moves backwards.
    pub fn advance(&mut self, now: SimTime) {
        for f in self.flows.values_mut() {
            if now > f.last_update {
                let dt = now.duration_since(f.last_update).as_secs_f64();
                f.bytes_sent += f.rate_bps * dt / 8.0;
                if let Some(total) = f.spec.size_bytes {
                    f.bytes_sent = f.bytes_sent.min(total as f64);
                }
                f.last_update = now;
            }
        }
    }

    /// The earliest instant at which a bounded flow completes at its current
    /// rate, if any. The caller schedules a completion event there and must
    /// re-query after every re-solve (stale events are cancelled upstream).
    pub fn next_completion(&self) -> Option<(SimTime, FlowId)> {
        let mut best: Option<(SimTime, FlowId)> = None;
        for (id, f) in &self.flows {
            let Some(total) = f.spec.size_bytes else {
                continue;
            };
            let remaining = total as f64 - f.bytes_sent;
            if remaining <= EPS {
                // Already done: complete "now" (at its last update instant).
                let t = f.last_update;
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, *id));
                }
                continue;
            }
            if f.rate_bps <= EPS {
                continue; // stalled; no completion while starved
            }
            let secs = remaining * 8.0 / f.rate_bps;
            // Never round a positive completion delay down to zero: a
            // sub-nanosecond tail would otherwise reschedule at `now`
            // forever without the clock (and thus byte accrual) advancing.
            let delay = SimDuration::from_secs_f64(secs).max(SimDuration::from_nanos(1));
            let t = f.last_update + delay;
            if best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, *id));
            }
        }
        best
    }

    /// True if a bounded flow has delivered all its bytes (as of its last
    /// update; call [`FluidNetwork::advance`] first).
    pub fn is_complete(&self, id: FlowId) -> bool {
        self.flows.get(&id).is_some_and(|f| {
            f.spec
                .size_bytes
                .is_some_and(|total| total as f64 - f.bytes_sent <= EPS)
        })
    }

    /// Aggregate arrival (goodput) rate at a destination host, bits/s.
    pub fn arrival_rate_at(&self, dst: NodeId) -> f64 {
        // `+ 0.0` normalizes the empty sum's IEEE negative zero.
        self.flows
            .values()
            .filter(|f| f.spec.dst == dst)
            .map(|f| f.rate_bps)
            .sum::<f64>()
            + 0.0
    }

    /// Aggregate arrival rate over all destinations, bits/s — the series the
    /// Horse demo plots per TE approach.
    pub fn total_arrival_rate(&self) -> f64 {
        self.flows.values().map(|f| f.rate_bps).sum::<f64>() + 0.0
    }

    /// Load on each direction of `link` in bits/s: `(a→b, b→a)`.
    pub fn link_load(&self, link: LinkId) -> (f64, f64) {
        let mut fwd = 0.0;
        let mut rev = 0.0;
        for f in self.flows.values() {
            for d in &f.dlinks {
                if d.link == link {
                    if d.forward {
                        fwd += f.rate_bps;
                    } else {
                        rev += f.rate_bps;
                    }
                }
            }
        }
        (fwd, rev)
    }

    /// Load on every directed link in one pass over the flows — O(flows ×
    /// path length), independent of the number of links. Used by samplers.
    pub fn all_link_loads(&self) -> BTreeMap<DirLink, f64> {
        // Ordered, so accumulating over the result is deterministic (float
        // addition is order-sensitive at the ulp level).
        let mut loads: BTreeMap<DirLink, f64> = BTreeMap::new();
        for f in self.flows.values() {
            for d in &f.dlinks {
                *loads.entry(*d).or_default() += f.rate_bps;
            }
        }
        loads
    }

    /// Flows (with current rates) traversing `link` in either direction,
    /// in id order. O(members) via the persistent link→flows index — used
    /// by switch port/flow statistics.
    pub fn flows_on_link(&self, link: LinkId) -> Vec<(FlowId, f64)> {
        let mut out: Vec<(FlowId, f64)> = Vec::new();
        for forward in [true, false] {
            if let Some(members) = self.link_members.get(&DirLink { link, forward }) {
                for id in members {
                    out.push((*id, self.flows[id].rate_bps));
                }
            }
        }
        out.sort_unstable_by_key(|(id, _)| *id);
        out.dedup_by_key(|(id, _)| *id);
        out
    }

    /// Walks `path` from `src`, checking connectivity and ending at `dst`,
    /// and returns the directed-link sequence.
    fn orient(
        path: &[LinkId],
        src: NodeId,
        dst: NodeId,
        topo: &Topology,
    ) -> Result<Vec<DirLink>, FluidError> {
        let mut cur = src;
        let mut out = Vec::with_capacity(path.len());
        for lid in path {
            let link = topo.link(*lid);
            let forward = if link.a.node == cur {
                true
            } else if link.b.node == cur {
                false
            } else {
                return Err(FluidError::BrokenPath);
            };
            out.push(DirLink {
                link: *lid,
                forward,
            });
            cur = link.other(cur);
        }
        if cur != dst {
            return Err(FluidError::BrokenPath);
        }
        Ok(out)
    }

    /// Full max–min fair re-solve by progressive filling with demand caps,
    /// over every flow. Returns the rate changes (only flows whose rate
    /// moved > EPS). Kept allocation-heavy and simple — this is the oracle
    /// the incremental solver is differentially tested against; the hot
    /// path is [`FluidNetwork::recompute_incremental`] /
    /// [`FluidNetwork::flush`].
    pub fn recompute(&mut self, topo: &Topology) -> Vec<RateChange> {
        self.stats.full_solves += 1;
        self.stats.flows_touched += self.flows.len() as u64;
        // Directed-link remaining capacities and memberships.
        let mut remaining: HashMap<DirLink, f64> = HashMap::new();
        let mut members: HashMap<DirLink, Vec<FlowId>> = HashMap::new();
        let mut new_rate: BTreeMap<FlowId, f64> = BTreeMap::new();
        let mut frozen: BTreeSet<FlowId> = BTreeSet::new();

        for (id, f) in &self.flows {
            new_rate.insert(*id, 0.0);
            let blocked = f.dlinks.iter().any(|d| !topo.link(d.link).up);
            if blocked {
                frozen.insert(*id); // down link: starved at 0
                continue;
            }
            if f.spec.demand_bps <= EPS || f.dlinks.is_empty() {
                // Zero demand stays at zero; empty path (src == dst or
                // loopback) is unconstrained: grant the full demand —
                // except elastic (infinite-demand) flows, which have no
                // finite number to grant and get zero.
                let granted = if f.spec.demand_bps.is_finite() {
                    f.spec.demand_bps.max(0.0)
                } else {
                    0.0
                };
                new_rate.insert(*id, granted);
                frozen.insert(*id);
                continue;
            }
            for d in &f.dlinks {
                remaining
                    .entry(*d)
                    .or_insert_with(|| topo.link(d.link).capacity_bps);
                members.entry(*d).or_default().push(*id);
            }
        }

        self.stats.links_touched += members.len() as u64;
        loop {
            // Count unfrozen members per directed link (rebuilt per round:
            // oracle simplicity over speed; the cost is what the counters
            // charge it for).
            let mut n_unfrozen: HashMap<DirLink, usize> = HashMap::new();
            for (d, flows) in &members {
                let n = flows.iter().filter(|f| !frozen.contains(f)).count();
                self.stats.work += flows.len() as u64;
                if n > 0 {
                    n_unfrozen.insert(*d, n);
                }
            }
            let unfrozen: Vec<FlowId> = new_rate
                .keys()
                .filter(|id| !frozen.contains(id))
                .copied()
                .collect();
            if unfrozen.is_empty() {
                break;
            }
            self.stats.iterations += 1;
            self.stats.work += unfrozen.len() as u64 + n_unfrozen.len() as u64;

            // The water level rises by the tightest constraint.
            let mut delta = f64::INFINITY;
            for (d, n) in &n_unfrozen {
                delta = delta.min(remaining[d].max(0.0) / *n as f64);
            }
            for id in &unfrozen {
                let headroom = self.flows[id].spec.demand_bps - new_rate[id];
                delta = delta.min(headroom);
            }
            if delta.is_infinite() {
                break; // defensive: no constraints at all
            }
            if delta > EPS {
                for id in &unfrozen {
                    *new_rate.get_mut(id).expect("flow present") += delta;
                }
                for (d, n) in &n_unfrozen {
                    *remaining.get_mut(d).expect("dlink present") -= delta * *n as f64;
                }
            }

            // Freeze demand-satisfied flows and flows on saturated links.
            let mut progressed = false;
            for id in &unfrozen {
                let f = &self.flows[id];
                let satisfied = new_rate[id] >= f.spec.demand_bps - EPS;
                let bottlenecked = f
                    .dlinks
                    .iter()
                    .any(|d| remaining.get(d).copied().unwrap_or(0.0) <= EPS);
                if satisfied || bottlenecked {
                    frozen.insert(*id);
                    progressed = true;
                }
            }
            if !progressed {
                // Numerically stuck; freeze everything to guarantee progress.
                for id in unfrozen {
                    frozen.insert(id);
                }
            }
        }

        // Apply and report. A full solve supersedes anything deferred:
        // fold in pending granted-rate changes and drop pending seeds.
        self.pending_seeds.clear();
        let mut changes = std::mem::take(&mut self.pending_changes);
        for (id, f) in &mut self.flows {
            let nr = new_rate[id];
            if (nr - f.rate_bps).abs() > EPS {
                changes.push(RateChange {
                    flow: *id,
                    old_bps: f.rate_bps,
                    new_bps: nr,
                });
            }
            f.rate_bps = nr;
        }
        changes
    }

    /// Scoped max–min re-solve: expands `seeds` to the affected component
    /// (flows transitively sharing directed links) and water-fills only
    /// that subgraph, reusing the solver arena. Flows outside the
    /// component keep their rates — max–min fair allocations decompose
    /// across link-disjoint components, so the result matches a full
    /// solve restricted to the component.
    fn recompute_scoped(&mut self, topo: &Topology, seeds: &[DirLink]) -> Vec<RateChange> {
        let mut arena = std::mem::take(&mut self.arena);
        arena.clear();
        self.stats.solves += 1;

        // Component closure: BFS over the flow↔directed-link sharing graph.
        for d in seeds {
            if arena.visited.insert(*d) {
                arena.link_queue.push(*d);
            }
        }
        while let Some(d) = arena.link_queue.pop() {
            let Some(members) = self.link_members.get(&d) else {
                continue;
            };
            for id in members {
                if arena.affected_set.insert(*id) {
                    arena.affected.push(*id);
                    for d2 in &self.flows[id].dlinks {
                        if arena.visited.insert(*d2) {
                            arena.link_queue.push(*d2);
                        }
                    }
                }
            }
        }
        self.stats.flows_touched += arena.affected.len() as u64;

        // Subproblem setup over affected flows only, with full capacities:
        // every flow on a component link is itself in the component.
        for id in &arena.affected {
            let f = &self.flows[id];
            if f.dlinks.iter().any(|d| !topo.link(d.link).up) {
                arena.new_rate.insert(*id, 0.0); // down link: starved at 0
                continue;
            }
            if let Some(granted) = Self::granted_rate(&f.spec, &f.dlinks) {
                arena.new_rate.insert(*id, granted);
                continue;
            }
            arena.new_rate.insert(*id, 0.0);
            arena.unfrozen.push(*id);
            for d in &f.dlinks {
                arena
                    .remaining
                    .entry(*d)
                    .or_insert_with(|| topo.link(d.link).capacity_bps);
                *arena.n_unfrozen.entry(*d).or_insert(0) += 1;
            }
        }
        self.stats.links_touched += arena.remaining.len() as u64;

        // Progressive filling. Per-dlink unfrozen counts are maintained
        // incrementally as flows freeze, so each round costs O(unfrozen
        // flows + constrained links) instead of a full membership rebuild.
        while !arena.unfrozen.is_empty() {
            self.stats.iterations += 1;
            self.stats.work += arena.unfrozen.len() as u64 + arena.n_unfrozen.len() as u64;

            // The water level rises by the tightest constraint.
            let mut delta = f64::INFINITY;
            for (d, n) in &arena.n_unfrozen {
                if *n > 0 {
                    delta = delta.min(arena.remaining[d].max(0.0) / *n as f64);
                }
            }
            for id in &arena.unfrozen {
                let headroom = self.flows[id].spec.demand_bps - arena.new_rate[id];
                delta = delta.min(headroom);
            }
            if delta.is_infinite() {
                break; // defensive: no constraints at all
            }
            if delta > EPS {
                for id in &arena.unfrozen {
                    *arena.new_rate.get_mut(id).expect("flow present") += delta;
                }
                for (d, n) in &arena.n_unfrozen {
                    if *n > 0 {
                        *arena.remaining.get_mut(d).expect("dlink present") -= delta * *n as f64;
                    }
                }
            }

            // Freeze demand-satisfied flows and flows on saturated links,
            // decrementing the per-dlink counts as they leave.
            let mut progressed = false;
            let mut i = 0;
            while i < arena.unfrozen.len() {
                let id = arena.unfrozen[i];
                let f = &self.flows[&id];
                let satisfied = arena.new_rate[&id] >= f.spec.demand_bps - EPS;
                let bottlenecked = f
                    .dlinks
                    .iter()
                    .any(|d| arena.remaining.get(d).copied().unwrap_or(0.0) <= EPS);
                if satisfied || bottlenecked {
                    for d in &f.dlinks {
                        *arena.n_unfrozen.get_mut(d).expect("indexed above") -= 1;
                    }
                    arena.unfrozen.swap_remove(i);
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            if !progressed {
                break; // numerically stuck; everything left stays put
            }
        }

        // Apply to affected flows only; the rest keep their rates.
        let mut changes = Vec::with_capacity(arena.affected.len().min(16));
        arena.affected.sort_unstable();
        for id in &arena.affected {
            let f = self.flows.get_mut(id).expect("affected flows exist");
            let nr = arena.new_rate[id];
            if (nr - f.rate_bps).abs() > EPS {
                changes.push(RateChange {
                    flow: *id,
                    old_bps: f.rate_bps,
                    new_bps: nr,
                });
            }
            f.rate_bps = nr;
        }
        self.arena = arena;
        changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FiveTuple;
    use std::net::Ipv4Addr;

    const GBPS: f64 = 1e9;

    /// h0 --- s --- h1 and h2 --- s (star with a shared uplink to h1).
    fn star() -> (Topology, Vec<NodeId>, NodeId) {
        let mut t = Topology::new();
        let sn: crate::addr::Ipv4Prefix = "10.0.0.0/24".parse().unwrap();
        let hosts: Vec<NodeId> = (0..3)
            .map(|i| t.add_host(format!("h{i}"), Ipv4Addr::new(10, 0, 0, i + 1), sn))
            .collect();
        let s = t.add_switch("s", Ipv4Addr::new(10, 255, 0, 1));
        for h in &hosts {
            t.add_link(*h, s, GBPS, 1000);
        }
        (t, hosts, s)
    }

    fn tuple(i: u8) -> FiveTuple {
        FiveTuple::udp(
            Ipv4Addr::new(10, 0, 0, i),
            1000 + i as u16,
            Ipv4Addr::new(10, 0, 9, i),
            2000,
        )
    }

    fn path_between(t: &Topology, a: NodeId, b: NodeId) -> Vec<LinkId> {
        t.all_shortest_paths(a, b).into_iter().next().unwrap()
    }

    #[test]
    fn single_flow_capped_by_demand() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        let spec = FlowSpec::cbr(h[0], h[1], tuple(1), 0.3 * GBPS);
        let p = path_between(&t, h[0], h[1]);
        let (id, _) = net.start(SimTime::ZERO, spec, p, &t).unwrap();
        assert!((net.rate_of(id).unwrap() - 0.3 * GBPS).abs() < 1.0);
    }

    #[test]
    fn two_flows_share_bottleneck_fairly() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        // Both flows sink at h1 → share the s→h1 direction of that link.
        let (a, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[0], h[1], tuple(1), GBPS),
                path_between(&t, h[0], h[1]),
                &t,
            )
            .unwrap();
        let (b, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[2], h[1], tuple(2), GBPS),
                path_between(&t, h[2], h[1]),
                &t,
            )
            .unwrap();
        assert!((net.rate_of(a).unwrap() - 0.5 * GBPS).abs() < 1.0);
        assert!((net.rate_of(b).unwrap() - 0.5 * GBPS).abs() < 1.0);
        assert!((net.arrival_rate_at(h[1]) - GBPS).abs() < 1.0);
    }

    #[test]
    fn max_min_respects_small_demands() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        let (a, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[0], h[1], tuple(1), 0.2 * GBPS),
                path_between(&t, h[0], h[1]),
                &t,
            )
            .unwrap();
        let (b, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[2], h[1], tuple(2), GBPS),
                path_between(&t, h[2], h[1]),
                &t,
            )
            .unwrap();
        // Flow a is demand-limited to 0.2; b picks up the slack (0.8).
        assert!((net.rate_of(a).unwrap() - 0.2 * GBPS).abs() < 1.0);
        assert!((net.rate_of(b).unwrap() - 0.8 * GBPS).abs() < 1.0);
    }

    #[test]
    fn opposite_directions_do_not_share() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        let (a, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[0], h[1], tuple(1), GBPS),
                path_between(&t, h[0], h[1]),
                &t,
            )
            .unwrap();
        let (b, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[1], h[0], tuple(2), GBPS),
                path_between(&t, h[1], h[0]),
                &t,
            )
            .unwrap();
        // Full duplex: both directions carry a full gigabit.
        assert!((net.rate_of(a).unwrap() - GBPS).abs() < 1.0);
        assert!((net.rate_of(b).unwrap() - GBPS).abs() < 1.0);
    }

    #[test]
    fn down_link_starves_flow() {
        let (mut t, h, s) = star();
        let mut net = FluidNetwork::new();
        let (a, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[0], h[1], tuple(1), GBPS),
                path_between(&t, h[0], h[1]),
                &t,
            )
            .unwrap();
        let (lid, _) = t.link_between(h[0], s).unwrap();
        t.link_mut(lid).up = false;
        let changes = net.recompute(&t);
        assert_eq!(net.rate_of(a), Some(0.0));
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].new_bps, 0.0);
    }

    #[test]
    fn completion_time_of_bounded_flow() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        // 1 Gbit = 125 MB at 1 Gbps → 1 second.
        let spec = FlowSpec::transfer(h[0], h[1], tuple(1), GBPS, 125_000_000);
        let (id, _) = net
            .start(SimTime::ZERO, spec, path_between(&t, h[0], h[1]), &t)
            .unwrap();
        let (t_done, done_id) = net.next_completion().unwrap();
        assert_eq!(done_id, id);
        assert!((t_done.as_secs_f64() - 1.0).abs() < 1e-6);
        net.advance(t_done);
        assert!(net.is_complete(id));
    }

    #[test]
    fn completion_reflects_rate_share() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        let spec = FlowSpec::transfer(h[0], h[1], tuple(1), GBPS, 125_000_000);
        let (id, _) = net
            .start(SimTime::ZERO, spec, path_between(&t, h[0], h[1]), &t)
            .unwrap();
        // A competing flow halves the rate after 0.5 s.
        net.start(
            SimTime::from_millis(500),
            FlowSpec::cbr(h[2], h[1], tuple(2), GBPS),
            path_between(&t, h[2], h[1]),
            &t,
        )
        .unwrap();
        // Remaining 62.5 MB at 0.5 Gbps → 1 more second; total 1.5 s.
        let (t_done, done_id) = net.next_completion().unwrap();
        assert_eq!(done_id, id);
        assert!((t_done.as_secs_f64() - 1.5).abs() < 1e-6, "{t_done}");
    }

    #[test]
    fn stop_frees_bandwidth() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        let (a, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[0], h[1], tuple(1), GBPS),
                path_between(&t, h[0], h[1]),
                &t,
            )
            .unwrap();
        let (b, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[2], h[1], tuple(2), GBPS),
                path_between(&t, h[2], h[1]),
                &t,
            )
            .unwrap();
        let (prog, changes) = net.stop(SimTime::from_secs(1), a, &t).unwrap();
        // a ran at 0.5 Gbps for 1 s = 62.5 MB.
        assert!((prog.bytes_sent - 62_500_000.0).abs() < 1.0);
        assert_eq!(changes.len(), 1);
        assert!((net.rate_of(b).unwrap() - GBPS).abs() < 1.0);
    }

    #[test]
    fn reroute_preserves_progress() {
        // Square a-{x,y}-b with two disjoint paths.
        let mut t = Topology::new();
        let sn: crate::addr::Ipv4Prefix = "10.0.0.0/24".parse().unwrap();
        let a = t.add_host("a", Ipv4Addr::new(10, 0, 0, 1), sn);
        let b = t.add_host("b", Ipv4Addr::new(10, 0, 0, 2), sn);
        let x = t.add_switch("x", Ipv4Addr::new(10, 255, 0, 1));
        let y = t.add_switch("y", Ipv4Addr::new(10, 255, 0, 2));
        let (ax, ..) = t.add_link(a, x, GBPS, 0);
        let (xb, ..) = t.add_link(x, b, GBPS, 0);
        let (ay, ..) = t.add_link(a, y, GBPS, 0);
        let (yb, ..) = t.add_link(y, b, GBPS, 0);
        let mut net = FluidNetwork::new();
        let spec = FlowSpec::cbr(a, b, tuple(1), GBPS);
        let (id, _) = net.start(SimTime::ZERO, spec, vec![ax, xb], &t).unwrap();
        net.advance(SimTime::from_secs(1));
        let before = net.progress(id).unwrap().bytes_sent;
        net.reroute(SimTime::from_secs(1), id, vec![ay, yb], &t)
            .unwrap();
        let after = net.progress(id).unwrap();
        assert_eq!(after.bytes_sent, before);
        assert_eq!(net.path(id).unwrap(), &[ay, yb]);
        assert!((after.rate_bps - GBPS).abs() < 1.0);
        assert_eq!(net.link_load(ax), (0.0, 0.0));
        let (fwd, _) = net.link_load(ay);
        assert!((fwd - GBPS).abs() < 1.0);
    }

    #[test]
    fn broken_path_rejected() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        let wrong = path_between(&t, h[1], h[2]); // doesn't start at h0
        let err = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[0], h[1], tuple(1), GBPS),
                wrong,
                &t,
            )
            .unwrap_err();
        assert_eq!(err, FluidError::BrokenPath);
    }

    #[test]
    fn zero_demand_flow_stays_zero() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        let (id, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[0], h[1], tuple(1), 0.0),
                path_between(&t, h[0], h[1]),
                &t,
            )
            .unwrap();
        assert_eq!(net.rate_of(id), Some(0.0));
        assert_eq!(net.next_completion(), None);
    }

    #[test]
    fn three_level_waterfill() {
        // One shared 1G link with three flows of demands 0.1, 0.4, 1.0:
        // max-min gives 0.1, 0.4, 0.5.
        let mut t = Topology::new();
        let sn: crate::addr::Ipv4Prefix = "10.0.0.0/24".parse().unwrap();
        let src = t.add_host("src", Ipv4Addr::new(10, 0, 0, 1), sn);
        let dst = t.add_host("dst", Ipv4Addr::new(10, 0, 0, 2), sn);
        let (l, ..) = t.add_link(src, dst, GBPS, 0);
        let mut net = FluidNetwork::new();
        let demands = [0.1, 0.4, 1.0];
        let ids: Vec<FlowId> = demands
            .iter()
            .enumerate()
            .map(|(i, d)| {
                net.start(
                    SimTime::ZERO,
                    FlowSpec::cbr(src, dst, tuple(i as u8), d * GBPS),
                    vec![l],
                    &t,
                )
                .unwrap()
                .0
            })
            .collect();
        let expected = [0.1, 0.4, 0.5];
        for (id, e) in ids.iter().zip(expected) {
            assert!(
                (net.rate_of(*id).unwrap() - e * GBPS).abs() < 1.0,
                "flow {id} expected {e} Gbps got {} bps",
                net.rate_of(*id).unwrap()
            );
        }
        let (fwd, rev) = net.link_load(l);
        assert!((fwd - GBPS).abs() < 1.0);
        assert_eq!(rev, 0.0);
    }

    #[test]
    fn sub_nanosecond_completion_tails_terminate() {
        // Regression: a residual of a fraction of a byte at gigabit rates
        // yields a completion delay below 1 ns, which must not reschedule
        // at the same instant forever.
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        // An awkward size that leaves float crumbs when shared 3 ways.
        let spec = FlowSpec::transfer(h[0], h[1], tuple(1), GBPS, 1_000_003);
        let (id, _) = net
            .start(SimTime::ZERO, spec, path_between(&t, h[0], h[1]), &t)
            .unwrap();
        let mut now = SimTime::ZERO;
        for _ in 0..1000 {
            let Some((t_done, did)) = net.next_completion() else {
                break;
            };
            assert_eq!(did, id);
            assert!(t_done > now, "completion must move time forward");
            now = t_done;
            net.advance(now);
            if net.is_complete(id) {
                return; // terminated — pass
            }
        }
        panic!("completion never converged");
    }

    #[test]
    fn elastic_flows_share_without_demand_cap() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        // One elastic flow alone: grabs the full link.
        let (a, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::elastic(h[0], h[1], tuple(1), None),
                path_between(&t, h[0], h[1]),
                &t,
            )
            .unwrap();
        assert!((net.rate_of(a).unwrap() - GBPS).abs() < 1.0);
        // A CBR competitor at 0.3 G: elastic takes the remaining 0.7 G.
        let (_b, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[2], h[1], tuple(2), 0.3 * GBPS),
                path_between(&t, h[2], h[1]),
                &t,
            )
            .unwrap();
        assert!((net.rate_of(a).unwrap() - 0.7 * GBPS).abs() < 1.0);
    }

    #[test]
    fn elastic_bounded_transfer_completes() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        // 125 MB elastic transfer on an idle 1 Gbps path → 1 s.
        let (id, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::elastic(h[0], h[1], tuple(1), Some(125_000_000)),
                path_between(&t, h[0], h[1]),
                &t,
            )
            .unwrap();
        let (t_done, did) = net.next_completion().unwrap();
        assert_eq!(did, id);
        assert!((t_done.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn flows_on_link_reports_both_directions() {
        let (t, h, s) = star();
        let mut net = FluidNetwork::new();
        let (a, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[0], h[1], tuple(1), GBPS),
                path_between(&t, h[0], h[1]),
                &t,
            )
            .unwrap();
        let (lid, _) = t.link_between(h[0], s).unwrap();
        let on = net.flows_on_link(lid);
        assert_eq!(on.len(), 1);
        assert_eq!(on[0].0, a);
    }

    #[test]
    fn tuple_index_tracks_start_stop() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        let spec = FlowSpec::cbr(h[0], h[1], tuple(1), GBPS);
        let (id, _) = net
            .start(SimTime::ZERO, spec, path_between(&t, h[0], h[1]), &t)
            .unwrap();
        assert_eq!(net.flow_by_tuple(&tuple(1)), Some(id));
        assert_eq!(net.flow_by_tuple(&tuple(2)), None);
        net.stop(SimTime::ZERO, id, &t).unwrap();
        assert_eq!(net.flow_by_tuple(&tuple(1)), None);
    }

    #[test]
    fn deferred_burst_solves_once() {
        let (t, h, _) = star();
        let mut net = FluidNetwork::new();
        // Two flows into the same sink, queued as one burst.
        let ids: Vec<FlowId> = [0, 2]
            .iter()
            .map(|&i| {
                net.start_deferred(
                    SimTime::ZERO,
                    FlowSpec::cbr(h[i], h[1], tuple(i as u8 + 1), GBPS),
                    path_between(&t, h[i], h[1]),
                    &t,
                )
                .unwrap()
            })
            .collect();
        assert!(net.has_pending());
        let before = net.solver_stats().solves;
        net.flush(&t);
        assert!(!net.has_pending());
        assert_eq!(
            net.solver_stats().solves,
            before + 1,
            "one burst, one solve"
        );
        for id in ids {
            assert!((net.rate_of(id).unwrap() - 0.5 * GBPS).abs() < 1.0);
        }
        // A second flush with nothing queued is free.
        net.flush(&t);
        assert_eq!(net.solver_stats().solves, before + 1);
    }

    #[test]
    fn incremental_solution_is_a_fixed_point_of_the_full_solver() {
        let (mut t, h, s) = star();
        let mut net = FluidNetwork::new();
        for (i, pair) in [(0, 1), (2, 1), (1, 0)].iter().enumerate() {
            net.start(
                SimTime::ZERO,
                FlowSpec::cbr(h[pair.0], h[pair.1], tuple(i as u8 + 1), GBPS),
                path_between(&t, h[pair.0], h[pair.1]),
                &t,
            )
            .unwrap();
        }
        let (lid, _) = t.link_between(h[2], s).unwrap();
        t.link_mut(lid).up = false;
        net.recompute_incremental(&t, &[Dirty::Link(lid)]);
        // The full oracle must agree: re-solving from scratch changes no
        // rate beyond EPS.
        let residual = net.recompute(&t);
        assert!(
            residual.is_empty(),
            "full solve disagreed with incremental: {residual:?}"
        );
    }

    #[test]
    fn link_down_then_up_restores_rates() {
        let (mut t, h, s) = star();
        let mut net = FluidNetwork::new();
        let (a, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[0], h[1], tuple(1), GBPS),
                path_between(&t, h[0], h[1]),
                &t,
            )
            .unwrap();
        let (b, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(h[2], h[1], tuple(2), GBPS),
                path_between(&t, h[2], h[1]),
                &t,
            )
            .unwrap();
        let rate_a = net.rate_of(a).unwrap();
        let rate_b = net.rate_of(b).unwrap();
        let (lid, _) = t.link_between(h[2], s).unwrap();
        t.link_mut(lid).up = false;
        net.recompute_incremental(&t, &[Dirty::Link(lid)]);
        assert_eq!(net.rate_of(b), Some(0.0), "starved by the failure");
        assert!(
            (net.rate_of(a).unwrap() - GBPS).abs() < 1.0,
            "survivor picks up the slack"
        );
        t.link_mut(lid).up = true;
        net.recompute_incremental(&t, &[Dirty::Link(lid)]);
        assert!((net.rate_of(a).unwrap() - rate_a).abs() < 1.0, "restored");
        assert!((net.rate_of(b).unwrap() - rate_b).abs() < 1.0, "restored");
    }

    #[test]
    fn disjoint_components_are_untouched_by_incremental_solves() {
        // Two independent bottlenecks; churn on one must not count work on
        // the other.
        let mut t = Topology::new();
        let sn: crate::addr::Ipv4Prefix = "10.0.0.0/24".parse().unwrap();
        let hosts: Vec<NodeId> = (0..4)
            .map(|i| t.add_host(format!("h{i}"), Ipv4Addr::new(10, 0, 0, i + 1), sn))
            .collect();
        let (_l01, ..) = t.add_link(hosts[0], hosts[1], GBPS, 0);
        let (l23, ..) = t.add_link(hosts[2], hosts[3], GBPS, 0);
        let mut net = FluidNetwork::new();
        let (a, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(hosts[0], hosts[1], tuple(1), GBPS),
                path_between(&t, hosts[0], hosts[1]),
                &t,
            )
            .unwrap();
        net.reset_solver_stats();
        // Start a second flow on the *other* pair: the solve must only
        // touch that one flow.
        let (b, _) = net
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(hosts[2], hosts[3], tuple(2), 0.4 * GBPS),
                vec![l23],
                &t,
            )
            .unwrap();
        let stats = net.solver_stats();
        assert_eq!(stats.solves, 1);
        assert_eq!(stats.full_solves, 0);
        assert_eq!(stats.flows_touched, 1, "only the new flow's component");
        assert!((net.rate_of(a).unwrap() - GBPS).abs() < 1.0);
        assert!((net.rate_of(b).unwrap() - 0.4 * GBPS).abs() < 1.0);
    }
}

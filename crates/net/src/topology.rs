//! The topology graph: nodes, ports and capacitated links.
//!
//! A [`Topology`] is an undirected multigraph. Each link attaches to a
//! specific *port* on each endpoint; forwarding decisions in the data plane
//! are expressed in terms of output ports, so port↔link resolution is the
//! hot query and is answered from a per-node vector.

use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

use crate::addr::{Ipv4Prefix, MacAddr};

/// Index of a node in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A node-local port index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u16);

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Index of a link in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// What role a node plays in the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An end host (traffic source/sink).
    Host,
    /// An OpenFlow-style switch (controlled by an SDN controller).
    Switch,
    /// An IP router (runs an emulated routing daemon, e.g. BGP).
    Router,
}

/// A node in the topology.
#[derive(Debug, Clone)]
pub struct Node {
    /// Role.
    pub kind: NodeKind,
    /// Human-readable name (e.g. `"pod0-edge1"` or `"h3"`).
    pub name: String,
    /// Primary IPv4 address (hosts have exactly one; switches/routers use it
    /// as a router-id / datapath address).
    pub ip: Ipv4Addr,
    /// Subnet the node's primary address lives in.
    pub subnet: Ipv4Prefix,
    /// Per-port link attachment; `ports[p]` is the link on port `p`.
    ports: Vec<Option<LinkId>>,
}

impl Node {
    /// Number of ports allocated so far.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// MAC address of a port (derived deterministically).
    pub fn port_mac(&self, node: NodeId, port: PortId) -> MacAddr {
        MacAddr::for_port(node.0, port.0)
    }
}

/// One end of a link: a (node, port) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Endpoint {
    /// The node.
    pub node: NodeId,
    /// The port on that node.
    pub port: PortId,
}

/// A bidirectional link. Capacity applies independently to each direction
/// (full duplex), matching how the fluid allocator treats it.
#[derive(Debug, Clone)]
pub struct Link {
    /// One endpoint.
    pub a: Endpoint,
    /// The other endpoint.
    pub b: Endpoint,
    /// Capacity per direction, bits per second.
    pub capacity_bps: f64,
    /// One-way propagation delay in nanoseconds.
    pub delay_ns: u64,
    /// Administrative/operational state.
    pub up: bool,
}

impl Link {
    /// Given one endpoint's node, returns the node at the other end.
    pub fn other(&self, node: NodeId) -> NodeId {
        if self.a.node == node {
            self.b.node
        } else {
            self.a.node
        }
    }

    /// The endpoint residing on `node`, if the link touches it.
    pub fn endpoint_on(&self, node: NodeId) -> Option<Endpoint> {
        if self.a.node == node {
            Some(self.a)
        } else if self.b.node == node {
            Some(self.b)
        } else {
            None
        }
    }
}

/// The experiment topology.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    by_name: HashMap<String, NodeId>,
    by_ip: HashMap<Ipv4Addr, NodeId>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Adds a node. Panics on duplicate names (these are builder bugs).
    pub fn add_node(
        &mut self,
        kind: NodeKind,
        name: impl Into<String>,
        ip: Ipv4Addr,
        subnet: Ipv4Prefix,
    ) -> NodeId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate node name {name:?}"
        );
        let id = NodeId(self.nodes.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.by_ip.insert(ip, id);
        self.nodes.push(Node {
            kind,
            name,
            ip,
            subnet,
            ports: Vec::new(),
        });
        id
    }

    /// Adds a host with a /24-style subnet.
    pub fn add_host(
        &mut self,
        name: impl Into<String>,
        ip: Ipv4Addr,
        subnet: Ipv4Prefix,
    ) -> NodeId {
        self.add_node(NodeKind::Host, name, ip, subnet)
    }

    /// Adds an OpenFlow switch.
    pub fn add_switch(&mut self, name: impl Into<String>, ip: Ipv4Addr) -> NodeId {
        self.add_node(NodeKind::Switch, name, ip, Ipv4Prefix::host(ip))
    }

    /// Adds a router.
    pub fn add_router(&mut self, name: impl Into<String>, ip: Ipv4Addr) -> NodeId {
        self.add_node(NodeKind::Router, name, ip, Ipv4Prefix::host(ip))
    }

    /// Connects two nodes with a new link, allocating the next free port on
    /// each side. Returns the link id and both ports.
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity_bps: f64,
        delay_ns: u64,
    ) -> (LinkId, PortId, PortId) {
        assert!(a != b, "self-links are not supported");
        let id = LinkId(self.links.len() as u32);
        let pa = self.alloc_port(a, id);
        let pb = self.alloc_port(b, id);
        self.links.push(Link {
            a: Endpoint { node: a, port: pa },
            b: Endpoint { node: b, port: pb },
            capacity_bps,
            delay_ns,
            up: true,
        });
        (id, pa, pb)
    }

    fn alloc_port(&mut self, node: NodeId, link: LinkId) -> PortId {
        let ports = &mut self.nodes[node.0 as usize].ports;
        let p = PortId(ports.len() as u16);
        ports.push(Some(link));
        p
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Link accessor.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Mutable link accessor (to flip `up`, change capacity in scenarios).
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.0 as usize]
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len() as u32).map(LinkId)
    }

    /// Nodes of a given kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        self.node_ids()
            .filter(|id| self.node(*id).kind == kind)
            .collect()
    }

    /// Looks a node up by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Looks a node up by its primary IPv4 address.
    pub fn find_by_ip(&self, ip: Ipv4Addr) -> Option<NodeId> {
        self.by_ip.get(&ip).copied()
    }

    /// The link attached to `port` of `node`, if any.
    pub fn link_at(&self, node: NodeId, port: PortId) -> Option<LinkId> {
        self.nodes[node.0 as usize]
            .ports
            .get(port.0 as usize)
            .copied()
            .flatten()
    }

    /// The (link, local port, neighbor) triples of a node, in port order.
    pub fn neighbors(&self, node: NodeId) -> Vec<(LinkId, PortId, NodeId)> {
        let n = &self.nodes[node.0 as usize];
        n.ports
            .iter()
            .enumerate()
            .filter_map(|(p, l)| {
                l.map(|lid| {
                    let link = &self.links[lid.0 as usize];
                    (lid, PortId(p as u16), link.other(node))
                })
            })
            .collect()
    }

    /// The first up link directly connecting `a` and `b`, with the port on
    /// `a`'s side.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<(LinkId, PortId)> {
        self.neighbors(a)
            .into_iter()
            .find(|(lid, _, n)| *n == b && self.link(*lid).up)
            .map(|(lid, p, _)| (lid, p))
    }

    /// Shortest-path hop distance between two nodes over up links (BFS).
    /// Returns `None` if disconnected.
    pub fn hop_distance(&self, from: NodeId, to: NodeId) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let mut dist = vec![usize::MAX; self.nodes.len()];
        dist[from.0 as usize] = 0;
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(n) = queue.pop_front() {
            for (lid, _, next) in self.neighbors(n) {
                if !self.link(lid).up {
                    continue;
                }
                if dist[next.0 as usize] == usize::MAX {
                    dist[next.0 as usize] = dist[n.0 as usize] + 1;
                    if next == to {
                        return Some(dist[next.0 as usize]);
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// All shortest paths between two nodes as port-by-port link sequences,
    /// over up links. Used by SDN controllers to enumerate ECMP candidates.
    pub fn all_shortest_paths(&self, from: NodeId, to: NodeId) -> Vec<Vec<LinkId>> {
        if from == to {
            return vec![vec![]];
        }
        // BFS computing distance-from-`from`.
        let mut dist = vec![usize::MAX; self.nodes.len()];
        dist[from.0 as usize] = 0;
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(n) = queue.pop_front() {
            for (lid, _, next) in self.neighbors(n) {
                if !self.link(lid).up {
                    continue;
                }
                if dist[next.0 as usize] == usize::MAX {
                    dist[next.0 as usize] = dist[n.0 as usize] + 1;
                    queue.push_back(next);
                }
            }
        }
        if dist[to.0 as usize] == usize::MAX {
            return vec![];
        }
        // DFS backwards from `to` along strictly decreasing distances.
        let mut paths = Vec::new();
        let mut stack: Vec<LinkId> = Vec::new();
        self.collect_paths(from, to, &dist, &mut stack, &mut paths);
        paths
    }

    fn collect_paths(
        &self,
        from: NodeId,
        cur: NodeId,
        dist: &[usize],
        stack: &mut Vec<LinkId>,
        out: &mut Vec<Vec<LinkId>>,
    ) {
        if cur == from {
            let mut p = stack.clone();
            p.reverse();
            out.push(p);
            return;
        }
        for (lid, _, prev) in self.neighbors(cur) {
            if !self.link(lid).up {
                continue;
            }
            if dist[prev.0 as usize] + 1 == dist[cur.0 as usize] {
                stack.push(lid);
                self.collect_paths(from, prev, dist, stack, out);
                stack.pop();
            }
        }
    }

    /// Translates a link path starting at `from` into the node sequence it
    /// visits. Returns `None` if the path is not connected.
    pub fn path_nodes(&self, from: NodeId, path: &[LinkId]) -> Option<Vec<NodeId>> {
        let mut nodes = vec![from];
        let mut cur = from;
        for lid in path {
            let link = self.link(*lid);
            link.endpoint_on(cur)?;
            cur = link.other(cur);
            nodes.push(cur);
        }
        Some(nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Topology, NodeId, NodeId, NodeId, NodeId) {
        // h1 - s1 - s2 - h2  with a second parallel middle path s1 - s3 - s2
        let mut t = Topology::new();
        let subnet: Ipv4Prefix = "10.0.0.0/24".parse().unwrap();
        let h1 = t.add_host("h1", Ipv4Addr::new(10, 0, 0, 1), subnet);
        let h2 = t.add_host("h2", Ipv4Addr::new(10, 0, 0, 2), subnet);
        let s1 = t.add_switch("s1", Ipv4Addr::new(10, 255, 0, 1));
        let s2 = t.add_switch("s2", Ipv4Addr::new(10, 255, 0, 2));
        let s3 = t.add_switch("s3", Ipv4Addr::new(10, 255, 0, 3));
        t.add_link(h1, s1, 1e9, 1000);
        t.add_link(s1, s2, 1e9, 1000);
        t.add_link(s1, s3, 1e9, 1000);
        t.add_link(s3, s2, 1e9, 1000);
        t.add_link(s2, h2, 1e9, 1000);
        (t, h1, h2, s1, s2)
    }

    #[test]
    fn lookup_by_name_and_ip() {
        let (t, h1, ..) = diamond();
        assert_eq!(t.find("h1"), Some(h1));
        assert_eq!(t.find("nope"), None);
        assert_eq!(t.find_by_ip(Ipv4Addr::new(10, 0, 0, 1)), Some(h1));
    }

    #[test]
    fn ports_allocate_sequentially() {
        let (t, _, _, s1, _) = diamond();
        // s1 has 3 links: to h1, s2, s3.
        assert_eq!(t.node(s1).port_count(), 3);
        let nbrs = t.neighbors(s1);
        assert_eq!(nbrs.len(), 3);
        assert_eq!(nbrs[0].1, PortId(0));
        assert_eq!(nbrs[2].1, PortId(2));
    }

    #[test]
    fn link_between_and_other() {
        let (t, h1, _, s1, _) = diamond();
        let (lid, port) = t.link_between(h1, s1).unwrap();
        assert_eq!(port, PortId(0));
        assert_eq!(t.link(lid).other(h1), s1);
        assert_eq!(t.link(lid).other(s1), h1);
        assert!(t.link_between(h1, NodeId(4)).is_none());
    }

    #[test]
    fn hop_distance_bfs() {
        let (t, h1, h2, ..) = diamond();
        assert_eq!(t.hop_distance(h1, h2), Some(3));
        assert_eq!(t.hop_distance(h1, h1), Some(0));
    }

    #[test]
    fn down_links_ignored() {
        let (mut t, h1, h2, s1, s2) = diamond();
        let (direct, _) = t.link_between(s1, s2).unwrap();
        t.link_mut(direct).up = false;
        assert_eq!(t.hop_distance(h1, h2), Some(4), "must detour via s3");
        assert!(t.link_between(s1, s2).is_none());
    }

    #[test]
    fn all_shortest_paths_finds_ecmp() {
        let (mut t, h1, h2, s1, s2) = diamond();
        // Two paths of length 3 vs 4: only the short one qualifies.
        assert_eq!(t.all_shortest_paths(h1, h2).len(), 1);
        // Take the direct s1-s2 link down: single path of length 4 remains.
        let (direct, _) = t.link_between(s1, s2).unwrap();
        t.link_mut(direct).up = false;
        let paths = t.all_shortest_paths(h1, h2);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 4);
    }

    #[test]
    fn equal_cost_paths_enumerated() {
        // Square: a - {x,y} - b gives two equal-cost 2-hop paths.
        let mut t = Topology::new();
        let sn: Ipv4Prefix = "10.0.0.0/24".parse().unwrap();
        let a = t.add_host("a", Ipv4Addr::new(10, 0, 0, 1), sn);
        let b = t.add_host("b", Ipv4Addr::new(10, 0, 0, 2), sn);
        let x = t.add_switch("x", Ipv4Addr::new(10, 255, 0, 1));
        let y = t.add_switch("y", Ipv4Addr::new(10, 255, 0, 2));
        t.add_link(a, x, 1e9, 0);
        t.add_link(a, y, 1e9, 0);
        t.add_link(x, b, 1e9, 0);
        t.add_link(y, b, 1e9, 0);
        let paths = t.all_shortest_paths(a, b);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.len(), 2);
            assert_eq!(
                t.path_nodes(a, p).unwrap().last().copied(),
                Some(b),
                "path must terminate at b"
            );
        }
    }

    #[test]
    fn path_nodes_rejects_disconnected() {
        let (t, h1, _, _, s2) = diamond();
        let (far_link, _) = t.link_between(s2, t.find("h2").unwrap()).unwrap();
        assert!(t.path_nodes(h1, &[far_link]).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_names_panic() {
        let mut t = Topology::new();
        let sn = Ipv4Prefix::DEFAULT;
        t.add_host("h", Ipv4Addr::new(1, 1, 1, 1), sn);
        t.add_host("h", Ipv4Addr::new(1, 1, 1, 2), sn);
    }

    #[test]
    fn nodes_of_kind() {
        let (t, ..) = diamond();
        assert_eq!(t.nodes_of_kind(NodeKind::Host).len(), 2);
        assert_eq!(t.nodes_of_kind(NodeKind::Switch).len(), 3);
        assert_eq!(t.nodes_of_kind(NodeKind::Router).len(), 0);
    }
}

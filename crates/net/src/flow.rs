//! Flow identities and specifications for the fluid data plane.

use std::fmt;
use std::net::Ipv4Addr;

use crate::topology::NodeId;

/// IP protocol numbers used by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IpProto {
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Anything else, by protocol number.
    Other(u8),
}

impl IpProto {
    /// The wire protocol number.
    pub fn number(&self) -> u8 {
        match self {
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Other(n) => *n,
        }
    }

    /// From a wire protocol number.
    pub fn from_number(n: u8) -> IpProto {
        match n {
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            other => IpProto::Other(other),
        }
    }
}

impl fmt::Display for IpProto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProto::Tcp => write!(f, "tcp"),
            IpProto::Udp => write!(f, "udp"),
            IpProto::Other(n) => write!(f, "proto{n}"),
        }
    }
}

/// The classic transport 5-tuple identifying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// IP protocol.
    pub proto: IpProto,
    /// Transport source port.
    pub src_port: u16,
    /// Transport destination port.
    pub dst_port: u16,
}

impl FiveTuple {
    /// Convenience constructor for a UDP flow.
    pub fn udp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> FiveTuple {
        FiveTuple {
            src_ip,
            dst_ip,
            proto: IpProto::Udp,
            src_port,
            dst_port,
        }
    }

    /// Convenience constructor for a TCP flow.
    pub fn tcp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> FiveTuple {
        FiveTuple {
            src_ip,
            dst_ip,
            proto: IpProto::Tcp,
            src_port,
            dst_port,
        }
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} ({})",
            self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.proto
        )
    }
}

/// Unique identifier of a flow within an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow#{}", self.0)
    }
}

/// What a flow wants to do: its endpoints, identity and demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Transport identity (drives ECMP hashing and OpenFlow matching).
    pub tuple: FiveTuple,
    /// Offered load in bits per second (the paper's demo uses constant-rate
    /// 1 Gbps UDP flows — the fluid model caps the achieved rate at this
    /// demand even when more bandwidth is available).
    pub demand_bps: f64,
    /// Total bytes to transfer; `None` means the flow runs until stopped.
    pub size_bytes: Option<u64>,
}

impl FlowSpec {
    /// A constant-bit-rate flow that runs until explicitly stopped.
    pub fn cbr(src: NodeId, dst: NodeId, tuple: FiveTuple, demand_bps: f64) -> FlowSpec {
        FlowSpec {
            src,
            dst,
            tuple,
            demand_bps,
            size_bytes: None,
        }
    }

    /// An elastic flow (TCP-like): no demand cap — it takes whatever
    /// max–min fair share the network grants. `size_bytes` bounds the
    /// transfer; `None` runs until stopped.
    pub fn elastic(
        src: NodeId,
        dst: NodeId,
        tuple: FiveTuple,
        size_bytes: Option<u64>,
    ) -> FlowSpec {
        FlowSpec {
            src,
            dst,
            tuple,
            demand_bps: f64::INFINITY,
            size_bytes,
        }
    }

    /// A bounded transfer of `size_bytes` at up to `demand_bps`.
    pub fn transfer(
        src: NodeId,
        dst: NodeId,
        tuple: FiveTuple,
        demand_bps: f64,
        size_bytes: u64,
    ) -> FlowSpec {
        FlowSpec {
            src,
            dst,
            tuple,
            demand_bps,
            size_bytes: Some(size_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proto_roundtrip() {
        for n in 0..=255u8 {
            assert_eq!(IpProto::from_number(n).number(), n);
        }
    }

    #[test]
    fn tuple_display() {
        let t = FiveTuple::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            1234,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        );
        assert_eq!(t.to_string(), "10.0.0.1:1234 -> 10.0.0.2:80 (udp)");
    }

    #[test]
    fn spec_constructors() {
        let t = FiveTuple::tcp(Ipv4Addr::new(10, 0, 0, 1), 1, Ipv4Addr::new(10, 0, 0, 2), 2);
        let cbr = FlowSpec::cbr(NodeId(0), NodeId(1), t, 1e9);
        assert_eq!(cbr.size_bytes, None);
        let xfer = FlowSpec::transfer(NodeId(0), NodeId(1), t, 1e9, 1_000_000);
        assert_eq!(xfer.size_bytes, Some(1_000_000));
    }
}

//! Compact-id interning for hot routing-table keys.
//!
//! The BGP RIB and speaker keep per-prefix and per-peer state. Keyed by the
//! address structs themselves (`Ipv4Prefix`, `Ipv4Addr`) every map probe
//! costs a tree walk and every entry carries the full key; production
//! routing daemons instead intern each key once and index dense arrays by
//! the resulting small integer. This module provides that layer:
//!
//! * [`PrefixId`] / [`PeerId`] — `u32` ids assigned in **first-intern
//!   order**, mirroring the `AttrId` discipline of the attribute store:
//!   equal event sequences produce equal ids, ids are never reused or
//!   compacted, and the id→value table is stable for the interner's
//!   lifetime.
//! * [`PrefixInterner`] / [`PeerInterner`] — the two typed interners, each
//!   a hash map (value → id) plus a dense table (id → value).
//! * [`IdSet`] — a growable bitset over ids with an exact element count,
//!   for membership state like per-peer Adj-RIB-In indexes.
//!
//! Ids deliberately do **not** order like their values (they order by first
//! appearance). Consumers that must iterate in value order — every
//! determinism-sensitive path — sort id slices with the interner's
//! [`PrefixInterner::sort_key`], which is monotone in the value's `Ord`.

use crate::addr::Ipv4Prefix;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::{Arc, RwLock};

/// Stable id of an interned [`Ipv4Prefix`] (first-intern order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PrefixId(pub u32);

impl PrefixId {
    /// The raw table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Stable id of an interned peer address (first-intern order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(pub u32);

impl PeerId {
    /// The raw table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interner for [`Ipv4Prefix`] keys.
#[derive(Debug, Clone, Default)]
pub struct PrefixInterner {
    ids: HashMap<Ipv4Prefix, PrefixId>,
    values: Vec<Ipv4Prefix>,
}

impl PrefixInterner {
    /// Interns `p`, returning its stable id (allocating one on first
    /// sight).
    pub fn intern(&mut self, p: Ipv4Prefix) -> PrefixId {
        if let Some(&id) = self.ids.get(&p) {
            return id;
        }
        let id = PrefixId(self.values.len() as u32);
        self.ids.insert(p, id);
        self.values.push(p);
        id
    }

    /// The id of `p`, if it has ever been interned.
    pub fn get(&self, p: Ipv4Prefix) -> Option<PrefixId> {
        self.ids.get(&p).copied()
    }

    /// The value behind an id.
    pub fn value(&self, id: PrefixId) -> Ipv4Prefix {
        self.values[id.index()]
    }

    /// Number of distinct prefixes interned (monotone — also the peak).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// A `u64` key that orders exactly like `Ipv4Prefix`'s `Ord`
    /// (network first, then length): `(network << 8) | len`.
    pub fn sort_key(&self, id: PrefixId) -> u64 {
        let p = self.values[id.index()];
        (u64::from(u32::from(p.network())) << 8) | u64::from(p.len())
    }

    /// Sorts (and dedups) an id slice into ascending **value** order — the
    /// iteration order every determinism-sensitive consumer requires.
    pub fn sort_by_value(&self, ids: &mut Vec<PrefixId>) {
        ids.sort_unstable_by_key(|&id| self.sort_key(id));
        ids.dedup();
    }
}

/// A shared handle to one [`PrefixInterner`] — the per-run prefix table.
///
/// Mirrors the attribute pool: the run owner creates one pool and hands a
/// clone to every speaker, so a 1000-node experiment holding 100k routes
/// interns each prefix **once per run** instead of once per speaker
/// (without sharing, per-speaker tables dominate peak RSS at that scale).
///
/// Interning is read-mostly: the owner seeds every prefix the experiment
/// can ever announce (each speaker's originated networks, gathered in
/// deterministic order) before any worker thread exists, so steady-state
/// interns take only the read lock and ids are independent of execution
/// order — the property the intra-run parallel pump's determinism
/// contract relies on. The write path exists for prefixes outside the
/// seed (e.g. a standalone harness) and is serialized by the lock; the
/// double-checked probe under the write lock keeps one id per value even
/// if two workers miss concurrently.
#[derive(Debug, Clone, Default)]
pub struct PrefixPool(Arc<RwLock<PrefixInterner>>);

impl PrefixPool {
    /// A fresh, empty pool.
    pub fn new() -> PrefixPool {
        PrefixPool::default()
    }

    /// Interns `p`: a read-locked probe on the hot (already-seeded) path,
    /// falling back to the write lock for a genuinely new prefix.
    pub fn intern(&self, p: Ipv4Prefix) -> PrefixId {
        if let Some(id) = self.0.read().expect("prefix pool lock poisoned").get(p) {
            return id;
        }
        self.0.write().expect("prefix pool lock poisoned").intern(p)
    }

    /// The id of `p`, if it has ever been interned.
    pub fn get(&self, p: Ipv4Prefix) -> Option<PrefixId> {
        self.0.read().expect("prefix pool lock poisoned").get(p)
    }

    /// The value behind an id.
    pub fn value(&self, id: PrefixId) -> Ipv4Prefix {
        self.0.read().expect("prefix pool lock poisoned").value(id)
    }

    /// Number of distinct prefixes interned (monotone — also the peak).
    pub fn len(&self) -> usize {
        self.0.read().expect("prefix pool lock poisoned").len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.0.read().expect("prefix pool lock poisoned").is_empty()
    }

    /// See [`PrefixInterner::sort_key`].
    pub fn sort_key(&self, id: PrefixId) -> u64 {
        self.0
            .read()
            .expect("prefix pool lock poisoned")
            .sort_key(id)
    }

    /// Sorts (and dedups) an id slice into ascending value order, taking
    /// the read lock once for the whole sort rather than per comparison.
    pub fn sort_by_value(&self, ids: &mut Vec<PrefixId>) {
        self.0
            .read()
            .expect("prefix pool lock poisoned")
            .sort_by_value(ids);
    }

    /// True when `other` is the same underlying table.
    pub fn same_as(&self, other: &PrefixPool) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Interner for peer addresses.
#[derive(Debug, Clone, Default)]
pub struct PeerInterner {
    ids: HashMap<Ipv4Addr, PeerId>,
    values: Vec<Ipv4Addr>,
}

impl PeerInterner {
    /// Interns `a`, returning its stable id.
    pub fn intern(&mut self, a: Ipv4Addr) -> PeerId {
        if let Some(&id) = self.ids.get(&a) {
            return id;
        }
        let id = PeerId(self.values.len() as u32);
        self.ids.insert(a, id);
        self.values.push(a);
        id
    }

    /// The id of `a`, if it has ever been interned.
    pub fn get(&self, a: Ipv4Addr) -> Option<PeerId> {
        self.ids.get(&a).copied()
    }

    /// The value behind an id.
    pub fn value(&self, id: PeerId) -> Ipv4Addr {
        self.values[id.index()]
    }

    /// Number of distinct addresses interned.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A growable bitset over `u32` ids with an exact element count.
///
/// Insert/remove/contains are O(1); iteration yields ids in ascending
/// **id** order (first-intern order), so callers needing value order must
/// sort through the interner afterwards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdSet {
    words: Vec<u64>,
    len: usize,
}

impl IdSet {
    /// An empty set.
    pub fn new() -> IdSet {
        IdSet::default()
    }

    /// Adds `id`; true when it was absent.
    pub fn insert(&mut self, id: u32) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << b;
        if self.words[w] & mask != 0 {
            return false;
        }
        self.words[w] |= mask;
        self.len += 1;
        true
    }

    /// Removes `id`; true when it was present.
    pub fn remove(&mut self, id: u32) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        if w >= self.words.len() {
            return false;
        }
        let mask = 1u64 << b;
        if self.words[w] & mask == 0 {
            return false;
        }
        self.words[w] &= !mask;
        self.len -= 1;
        true
    }

    /// Membership test.
    pub fn contains(&self, id: u32) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Exact element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no ids are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every id (keeps the allocation).
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }

    /// Ids in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                Some(wi as u32 * 64 + b)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn ids_are_first_intern_order_and_stable() {
        let mut i = PrefixInterner::default();
        let a = i.intern(pfx("10.2.0.0/16"));
        let b = i.intern(pfx("10.1.0.0/16"));
        assert_eq!(a, PrefixId(0), "first seen gets id 0, regardless of Ord");
        assert_eq!(b, PrefixId(1));
        assert_eq!(i.intern(pfx("10.2.0.0/16")), a, "re-intern is stable");
        assert_eq!(i.value(a), pfx("10.2.0.0/16"));
        assert_eq!(i.get(pfx("10.1.0.0/16")), Some(b));
        assert_eq!(i.get(pfx("10.3.0.0/16")), None);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn sort_key_matches_prefix_ord() {
        let mut i = PrefixInterner::default();
        // Same network with different lengths, plus neighbors — cover the
        // (network, len) lexicographic tie-break.
        let values = [
            pfx("10.1.0.0/16"),
            pfx("10.1.0.0/24"),
            pfx("10.0.255.0/24"),
            pfx("10.2.0.0/16"),
            pfx("0.0.0.0/0"),
            pfx("255.255.255.255/32"),
        ];
        let ids: Vec<PrefixId> = values.iter().map(|&p| i.intern(p)).collect();
        for &x in &ids {
            for &y in &ids {
                assert_eq!(
                    i.sort_key(x).cmp(&i.sort_key(y)),
                    i.value(x).cmp(&i.value(y)),
                    "{:?} vs {:?}",
                    i.value(x),
                    i.value(y)
                );
            }
        }
        let mut sorted = ids.clone();
        i.sort_by_value(&mut sorted);
        let mut expect = values.to_vec();
        expect.sort();
        let got: Vec<Ipv4Prefix> = sorted.iter().map(|&id| i.value(id)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn sort_by_value_dedups() {
        let mut i = PrefixInterner::default();
        let a = i.intern(pfx("10.2.0.0/16"));
        let b = i.intern(pfx("10.1.0.0/16"));
        let mut ids = vec![a, b, a, b, b];
        i.sort_by_value(&mut ids);
        assert_eq!(ids, vec![b, a]);
    }

    #[test]
    fn prefix_pool_shares_one_table_across_clones() {
        let pool = PrefixPool::new();
        let sharer = pool.clone();
        let a = pool.intern(pfx("10.2.0.0/16"));
        let b = sharer.intern(pfx("10.1.0.0/16"));
        assert_eq!(a, PrefixId(0));
        assert_eq!(b, PrefixId(1));
        assert_eq!(
            sharer.intern(pfx("10.2.0.0/16")),
            a,
            "hit via either handle"
        );
        assert_eq!(pool.len(), 2, "one table, not one per handle");
        assert_eq!(pool.get(pfx("10.1.0.0/16")), Some(b));
        assert_eq!(pool.value(a), pfx("10.2.0.0/16"));
        assert!(pool.same_as(&sharer));
        assert!(!pool.same_as(&PrefixPool::new()));
        let mut ids = vec![a, b, a];
        pool.sort_by_value(&mut ids);
        assert_eq!(ids, vec![b, a], "value order with dedup, like the interner");
    }

    #[test]
    fn peer_interner_round_trips() {
        let mut i = PeerInterner::default();
        let a = i.intern(Ipv4Addr::new(10, 0, 0, 9));
        let b = i.intern(Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!((a, b), (PeerId(0), PeerId(1)));
        assert_eq!(i.intern(Ipv4Addr::new(10, 0, 0, 9)), a);
        assert_eq!(i.value(b), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn idset_tracks_exact_len_and_iterates_ascending() {
        let mut s = IdSet::new();
        assert!(s.insert(130));
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(!s.insert(130), "duplicate insert reports absent=false");
        assert_eq!(s.len(), 4);
        assert!(s.contains(63));
        assert!(!s.contains(62));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 130]);
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.len(), 3);
        // Remove of an id beyond the allocated words is a no-op.
        assert!(!s.remove(100_000));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}

//! # horse-net — network model for the simulated data plane
//!
//! Horse's data plane is *simulated*, not emulated: traffic is a set of
//! fluid-rate flows over a topology graph, and bandwidth is shared max–min
//! fairly on every link. This crate provides:
//!
//! * [`addr`] — MAC addresses and IPv4 prefixes (with longest-prefix-match
//!   semantics used by the FIB in `horse-dataplane`).
//! * [`packet`] — real wire-layout Ethernet/IPv4/UDP/TCP headers. The fluid
//!   model never serializes data packets, but control-plane machinery does:
//!   OpenFlow `PACKET_IN` carries genuine packet bytes, and ECMP hashing is
//!   defined over genuine header fields.
//! * [`intern`] — compact-id interners (`PrefixId`, `PeerId`) and id
//!   bitsets backing the dense routing-table shapes in `horse-bgp`.
//! * [`topology`] — nodes (hosts / switches / routers), ports, and
//!   capacitated links.
//! * [`flow`] — flow identities and specifications (5-tuples, demands,
//!   bounded or unbounded transfers).
//! * [`fluid`] — the event-driven max–min fair bandwidth allocator and flow
//!   progress tracker.

pub mod addr;
pub mod flow;
pub mod fluid;
pub mod fluid_naive;
pub mod intern;
pub mod packet;
pub mod topology;

pub use addr::{Ipv4Prefix, MacAddr};
pub use flow::{FiveTuple, FlowId, FlowSpec, IpProto};
pub use fluid::{FluidNetwork, RateChange};
pub use intern::{IdSet, PeerId, PeerInterner, PrefixId, PrefixInterner};
pub use packet::{EthernetHeader, Ipv4Header, Packet, TransportHeader};
pub use topology::{LinkId, NodeId, NodeKind, PortId, Topology};

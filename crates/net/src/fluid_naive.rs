//! The pre-arena fluid solver, preserved verbatim as a differential oracle.
//!
//! This is the flow plane as it stood before the arena/lazy-accrual
//! refactor of [`crate::fluid::FluidNetwork`]: flows keyed in a
//! `BTreeMap`, link membership in `HashMap<DirLink, BTreeSet<FlowId>>`,
//! eager per-flow byte accrual in `advance`, and a full scan of every
//! bounded flow in `next_completion`. It is kept as a separate type (the
//! PR 4/7 `naive`/`BtreeRib` pattern) so property tests and the
//! `flow_scale` bench can replay identical flow-churn traces through both
//! shapes and assert identical rate allocations while counting how much
//! per-event work each shape does.
//!
//! The only deliberate deviations from the historical code are the
//! effort counters (`advance_touches`, `completion_visits`,
//! `seed_dlinks`) and `next_completion` taking `&mut self` so it can
//! count its scan — the arithmetic is untouched.

use crate::flow::{FiveTuple, FlowId, FlowSpec};
use crate::fluid::{DirLink, Dirty, FlowProgress, FluidError, RateChange, SolverStats};
use crate::topology::{LinkId, NodeId, Topology};
use horse_sim::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

const EPS: f64 = 1e-6;

#[derive(Debug, Clone)]
struct ActiveFlow {
    spec: FlowSpec,
    path: Vec<LinkId>,
    dlinks: Vec<DirLink>,
    rate_bps: f64,
    bytes_sent: f64,
    last_update: SimTime,
    started: SimTime,
}

/// Reusable scratch buffers for the scoped solver: cleared, never
/// dropped, so the steady path allocates nothing once warmed up.
#[derive(Debug, Default)]
struct SolverArena {
    /// BFS frontier of directed links still to expand.
    link_queue: Vec<DirLink>,
    /// Directed links already pulled into the component.
    visited: HashSet<DirLink>,
    /// Flows in the component, in discovery order.
    affected: Vec<FlowId>,
    /// Membership filter for `affected`.
    affected_set: HashSet<FlowId>,
    /// Tentative rate per affected flow.
    new_rate: HashMap<FlowId, f64>,
    /// Affected flows still rising with the water level.
    unfrozen: Vec<FlowId>,
    /// Remaining capacity per constrained directed link.
    remaining: HashMap<DirLink, f64>,
    /// Unfrozen member count per constrained directed link, maintained
    /// incrementally as flows freeze (no per-round rebuilds).
    n_unfrozen: HashMap<DirLink, usize>,
}

impl SolverArena {
    fn clear(&mut self) {
        self.link_queue.clear();
        self.visited.clear();
        self.affected.clear();
        self.affected_set.clear();
        self.new_rate.clear();
        self.unfrozen.clear();
        self.remaining.clear();
        self.n_unfrozen.clear();
    }
}

/// The pre-refactor set of active fluid flows and their allocation.
#[derive(Debug, Default)]
pub struct NaiveFluidNetwork {
    flows: BTreeMap<FlowId, ActiveFlow>,
    next_id: u64,
    /// Directed link → flows traversing it. Structural (includes blocked
    /// and zero-demand flows).
    link_members: HashMap<DirLink, BTreeSet<FlowId>>,
    /// Five-tuple → flow id, for the controller stats path.
    by_tuple: HashMap<FiveTuple, FlowId>,
    /// Directed links touched by deferred (batched) operations, awaiting
    /// [`NaiveFluidNetwork::flush`].
    pending_seeds: Vec<DirLink>,
    /// Rate changes synthesized by deferred operations on flows with no
    /// constrained links (granted rates), reported at the next flush.
    pending_changes: Vec<RateChange>,
    arena: SolverArena,
    stats: SolverStats,
}

impl NaiveFluidNetwork {
    /// An empty fluid network.
    pub fn new() -> NaiveFluidNetwork {
        NaiveFluidNetwork::default()
    }

    /// Number of active flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Active flow ids, in id order.
    pub fn flow_ids(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.flows.keys().copied()
    }

    /// The spec a flow was started with.
    pub fn spec(&self, id: FlowId) -> Option<&FlowSpec> {
        self.flows.get(&id).map(|f| &f.spec)
    }

    /// The path a flow currently uses.
    pub fn path(&self, id: FlowId) -> Option<&[LinkId]> {
        self.flows.get(&id).map(|f| f.path.as_slice())
    }

    /// Current rate of a flow, bits/s.
    pub fn rate_of(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.rate_bps)
    }

    /// Progress snapshot for a flow.
    pub fn progress(&self, id: FlowId) -> Option<FlowProgress> {
        self.flows.get(&id).map(|f| FlowProgress {
            started: f.started,
            rate_bps: f.rate_bps,
            bytes_sent: f.bytes_sent,
            bytes_remaining: f
                .spec
                .size_bytes
                .map(|total| (total as f64 - f.bytes_sent).max(0.0)),
        })
    }

    /// The flow currently carrying this five-tuple, if any.
    pub fn flow_by_tuple(&self, tuple: &FiveTuple) -> Option<FlowId> {
        self.by_tuple.get(tuple).copied()
    }

    /// Cumulative solver-effort counters.
    pub fn solver_stats(&self) -> SolverStats {
        self.stats
    }

    /// Zeroes the solver-effort counters (for benchmarking windows).
    pub fn reset_solver_stats(&mut self) {
        self.stats = SolverStats::default();
    }

    /// The rate a flow gets without solving: demand for zero-demand or
    /// pathless flows (which consume no shared capacity), `None` when the
    /// flow actually competes.
    fn granted_rate(spec: &FlowSpec, dlinks: &[DirLink]) -> Option<f64> {
        if spec.demand_bps <= EPS || dlinks.is_empty() {
            Some(if spec.demand_bps.is_finite() {
                spec.demand_bps.max(0.0)
            } else {
                0.0
            })
        } else {
            None
        }
    }

    /// Inserts a flow and indexes its directed links; no solve.
    fn insert_flow(
        &mut self,
        now: SimTime,
        spec: FlowSpec,
        path: Vec<LinkId>,
        topo: &Topology,
    ) -> Result<FlowId, FluidError> {
        let dlinks = Self::orient(&path, spec.src, spec.dst, topo)?;
        self.advance(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        for d in &dlinks {
            self.link_members.entry(*d).or_default().insert(id);
        }
        self.by_tuple.insert(spec.tuple, id);
        let rate_bps = Self::granted_rate(&spec, &dlinks).unwrap_or(0.0);
        if rate_bps > EPS {
            self.pending_changes.push(RateChange {
                flow: id,
                old_bps: 0.0,
                new_bps: rate_bps,
            });
        }
        self.flows.insert(
            id,
            ActiveFlow {
                spec,
                path,
                dlinks,
                rate_bps,
                bytes_sent: 0.0,
                last_update: now,
                started: now,
            },
        );
        Ok(id)
    }

    /// Removes a flow from the member index and the tuple index.
    fn unindex_flow(&mut self, id: FlowId, flow: &ActiveFlow) {
        for d in &flow.dlinks {
            if let Some(members) = self.link_members.get_mut(d) {
                members.remove(&id);
                if members.is_empty() {
                    self.link_members.remove(d);
                }
            }
        }
        if self.by_tuple.get(&flow.spec.tuple) == Some(&id) {
            self.by_tuple.remove(&flow.spec.tuple);
        }
    }

    /// Starts a flow on the given path and re-solves incrementally.
    pub fn start(
        &mut self,
        now: SimTime,
        spec: FlowSpec,
        path: Vec<LinkId>,
        topo: &Topology,
    ) -> Result<(FlowId, Vec<RateChange>), FluidError> {
        let id = self.start_deferred(now, spec, path, topo)?;
        let changes = self.flush(topo);
        Ok((id, changes))
    }

    /// Starts a flow without solving; call [`NaiveFluidNetwork::flush`]
    /// after the control burst to solve once for the whole batch.
    pub fn start_deferred(
        &mut self,
        now: SimTime,
        spec: FlowSpec,
        path: Vec<LinkId>,
        topo: &Topology,
    ) -> Result<FlowId, FluidError> {
        let id = self.insert_flow(now, spec, path, topo)?;
        let dlinks = &self.flows[&id].dlinks;
        self.pending_seeds.extend(dlinks.iter().copied());
        Ok(id)
    }

    /// Stops (removes) a flow, returning its final progress and the rate
    /// changes caused by freeing its bandwidth.
    pub fn stop(
        &mut self,
        now: SimTime,
        id: FlowId,
        topo: &Topology,
    ) -> Result<(FlowProgress, Vec<RateChange>), FluidError> {
        self.advance(now);
        let progress = self.progress(id).ok_or(FluidError::NoSuchFlow)?;
        let flow = self.flows.remove(&id).expect("progress implies presence");
        self.unindex_flow(id, &flow);
        self.pending_seeds.extend(flow.dlinks.iter().copied());
        let changes = self.flush(topo);
        Ok((progress, changes))
    }

    /// Moves a flow onto a new path, preserving progress, and re-solves.
    pub fn reroute(
        &mut self,
        now: SimTime,
        id: FlowId,
        new_path: Vec<LinkId>,
        topo: &Topology,
    ) -> Result<Vec<RateChange>, FluidError> {
        self.reroute_deferred(now, id, new_path, topo)?;
        Ok(self.flush(topo))
    }

    /// Reroutes without solving; call [`NaiveFluidNetwork::flush`] after
    /// the control burst. Returns whether the path actually changed.
    pub fn reroute_deferred(
        &mut self,
        now: SimTime,
        id: FlowId,
        new_path: Vec<LinkId>,
        topo: &Topology,
    ) -> Result<bool, FluidError> {
        self.advance(now);
        let flow = self.flows.get(&id).ok_or(FluidError::NoSuchFlow)?;
        if flow.path == new_path {
            return Ok(false);
        }
        let dlinks = Self::orient(&new_path, flow.spec.src, flow.spec.dst, topo)?;
        for d in &dlinks {
            self.link_members.entry(*d).or_default().insert(id);
            self.pending_seeds.push(*d);
        }
        let flow = self.flows.get_mut(&id).expect("checked above");
        let old_dlinks = std::mem::replace(&mut flow.dlinks, dlinks);
        flow.path = new_path;
        for d in &old_dlinks {
            // Only unindex directions the new path no longer uses.
            if self.flows[&id].dlinks.contains(d) {
                continue;
            }
            if let Some(members) = self.link_members.get_mut(d) {
                members.remove(&id);
                if members.is_empty() {
                    self.link_members.remove(d);
                }
            }
        }
        self.pending_seeds.extend(old_dlinks);
        Ok(true)
    }

    /// True when deferred operations are waiting for a solve.
    pub fn has_pending(&self) -> bool {
        !self.pending_seeds.is_empty() || !self.pending_changes.is_empty()
    }

    /// Solves once for everything deferred since the last flush.
    pub fn flush(&mut self, topo: &Topology) -> Vec<RateChange> {
        let seeds = std::mem::take(&mut self.pending_seeds);
        let mut changes = std::mem::take(&mut self.pending_changes);
        if !seeds.is_empty() {
            changes.extend(self.recompute_scoped(topo, &seeds));
        }
        changes
    }

    /// Incrementally re-solves only the component affected by the given
    /// dirty entities.
    pub fn recompute_incremental(&mut self, topo: &Topology, dirty: &[Dirty]) -> Vec<RateChange> {
        let mut seeds = std::mem::take(&mut self.pending_seeds);
        let mut changes = std::mem::take(&mut self.pending_changes);
        for d in dirty {
            match d {
                Dirty::Flow(id) => {
                    if let Some(f) = self.flows.get(id) {
                        seeds.extend(f.dlinks.iter().copied());
                    }
                }
                Dirty::Link(lid) => {
                    for forward in [true, false] {
                        seeds.push(DirLink {
                            link: *lid,
                            forward,
                        });
                    }
                }
            }
        }
        if !seeds.is_empty() {
            changes.extend(self.recompute_scoped(topo, &seeds));
        }
        seeds.clear();
        self.pending_seeds = seeds; // hand the buffer back, emptied
        changes
    }

    /// Accrues delivered bytes for **every** flow up to `now` — the O(active)
    /// scan the arena shape replaces with lazy accrual.
    pub fn advance(&mut self, now: SimTime) {
        self.stats.advance_touches += self.flows.len() as u64;
        for f in self.flows.values_mut() {
            if now > f.last_update {
                let dt = now.duration_since(f.last_update).as_secs_f64();
                f.bytes_sent += f.rate_bps * dt / 8.0;
                if let Some(total) = f.spec.size_bytes {
                    f.bytes_sent = f.bytes_sent.min(total as f64);
                }
                f.last_update = now;
            }
        }
    }

    /// The earliest bounded-flow completion at current rates, by scanning
    /// **every** flow — the O(active) scan the arena shape replaces with a
    /// prediction heap.
    pub fn next_completion(&mut self) -> Option<(SimTime, FlowId)> {
        self.stats.completion_visits += self.flows.len() as u64;
        let mut best: Option<(SimTime, FlowId)> = None;
        for (id, f) in &self.flows {
            let Some(total) = f.spec.size_bytes else {
                continue;
            };
            let remaining = total as f64 - f.bytes_sent;
            if remaining <= EPS {
                // Already done: complete "now" (at its last update instant).
                let t = f.last_update;
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, *id));
                }
                continue;
            }
            if f.rate_bps <= EPS {
                continue; // stalled; no completion while starved
            }
            let secs = remaining * 8.0 / f.rate_bps;
            // Never round a positive completion delay down to zero.
            let delay = SimDuration::from_secs_f64(secs).max(SimDuration::from_nanos(1));
            let t = f.last_update + delay;
            if best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, *id));
            }
        }
        best
    }

    /// True if a bounded flow has delivered all its bytes (as of its last
    /// update; call [`NaiveFluidNetwork::advance`] first).
    pub fn is_complete(&self, id: FlowId) -> bool {
        self.flows.get(&id).is_some_and(|f| {
            f.spec
                .size_bytes
                .is_some_and(|total| total as f64 - f.bytes_sent <= EPS)
        })
    }

    /// Aggregate arrival (goodput) rate at a destination host, bits/s.
    pub fn arrival_rate_at(&self, dst: NodeId) -> f64 {
        self.flows
            .values()
            .filter(|f| f.spec.dst == dst)
            .map(|f| f.rate_bps)
            .sum::<f64>()
            + 0.0
    }

    /// Aggregate arrival rate over all destinations, bits/s.
    pub fn total_arrival_rate(&self) -> f64 {
        self.flows.values().map(|f| f.rate_bps).sum::<f64>() + 0.0
    }

    /// Load on each direction of `link` in bits/s: `(a→b, b→a)`.
    pub fn link_load(&self, link: LinkId) -> (f64, f64) {
        let mut fwd = 0.0;
        let mut rev = 0.0;
        for f in self.flows.values() {
            for d in &f.dlinks {
                if d.link == link {
                    if d.forward {
                        fwd += f.rate_bps;
                    } else {
                        rev += f.rate_bps;
                    }
                }
            }
        }
        (fwd, rev)
    }

    /// Load on every directed link in one pass over the flows.
    pub fn all_link_loads(&self) -> BTreeMap<DirLink, f64> {
        let mut loads: BTreeMap<DirLink, f64> = BTreeMap::new();
        for f in self.flows.values() {
            for d in &f.dlinks {
                *loads.entry(*d).or_default() += f.rate_bps;
            }
        }
        loads
    }

    /// Flows (with current rates) traversing `link` in either direction,
    /// in id order.
    pub fn flows_on_link(&self, link: LinkId) -> Vec<(FlowId, f64)> {
        let mut out: Vec<(FlowId, f64)> = Vec::new();
        for forward in [true, false] {
            if let Some(members) = self.link_members.get(&DirLink { link, forward }) {
                for id in members {
                    out.push((*id, self.flows[id].rate_bps));
                }
            }
        }
        out.sort_unstable_by_key(|(id, _)| *id);
        out.dedup_by_key(|(id, _)| *id);
        out
    }

    /// Walks `path` from `src`, checking connectivity and ending at `dst`,
    /// and returns the directed-link sequence.
    fn orient(
        path: &[LinkId],
        src: NodeId,
        dst: NodeId,
        topo: &Topology,
    ) -> Result<Vec<DirLink>, FluidError> {
        let mut cur = src;
        let mut out = Vec::with_capacity(path.len());
        for lid in path {
            let link = topo.link(*lid);
            let forward = if link.a.node == cur {
                true
            } else if link.b.node == cur {
                false
            } else {
                return Err(FluidError::BrokenPath);
            };
            out.push(DirLink {
                link: *lid,
                forward,
            });
            cur = link.other(cur);
        }
        if cur != dst {
            return Err(FluidError::BrokenPath);
        }
        Ok(out)
    }

    /// Full max–min fair re-solve by progressive filling with demand caps,
    /// over every flow.
    pub fn recompute(&mut self, topo: &Topology) -> Vec<RateChange> {
        self.stats.full_solves += 1;
        self.stats.flows_touched += self.flows.len() as u64;
        let mut remaining: HashMap<DirLink, f64> = HashMap::new();
        let mut members: HashMap<DirLink, Vec<FlowId>> = HashMap::new();
        let mut new_rate: BTreeMap<FlowId, f64> = BTreeMap::new();
        let mut frozen: BTreeSet<FlowId> = BTreeSet::new();

        for (id, f) in &self.flows {
            new_rate.insert(*id, 0.0);
            let blocked = f.dlinks.iter().any(|d| !topo.link(d.link).up);
            if blocked {
                frozen.insert(*id); // down link: starved at 0
                continue;
            }
            if f.spec.demand_bps <= EPS || f.dlinks.is_empty() {
                let granted = if f.spec.demand_bps.is_finite() {
                    f.spec.demand_bps.max(0.0)
                } else {
                    0.0
                };
                new_rate.insert(*id, granted);
                frozen.insert(*id);
                continue;
            }
            for d in &f.dlinks {
                remaining
                    .entry(*d)
                    .or_insert_with(|| topo.link(d.link).capacity_bps);
                members.entry(*d).or_default().push(*id);
            }
        }

        self.stats.links_touched += members.len() as u64;
        loop {
            let mut n_unfrozen: HashMap<DirLink, usize> = HashMap::new();
            for (d, flows) in &members {
                let n = flows.iter().filter(|f| !frozen.contains(f)).count();
                self.stats.work += flows.len() as u64;
                if n > 0 {
                    n_unfrozen.insert(*d, n);
                }
            }
            let unfrozen: Vec<FlowId> = new_rate
                .keys()
                .filter(|id| !frozen.contains(id))
                .copied()
                .collect();
            if unfrozen.is_empty() {
                break;
            }
            self.stats.iterations += 1;
            self.stats.work += unfrozen.len() as u64 + n_unfrozen.len() as u64;

            let mut delta = f64::INFINITY;
            for (d, n) in &n_unfrozen {
                delta = delta.min(remaining[d].max(0.0) / *n as f64);
            }
            for id in &unfrozen {
                let headroom = self.flows[id].spec.demand_bps - new_rate[id];
                delta = delta.min(headroom);
            }
            if delta.is_infinite() {
                break; // defensive: no constraints at all
            }
            if delta > EPS {
                for id in &unfrozen {
                    *new_rate.get_mut(id).expect("flow present") += delta;
                }
                for (d, n) in &n_unfrozen {
                    *remaining.get_mut(d).expect("dlink present") -= delta * *n as f64;
                }
            }

            let mut progressed = false;
            for id in &unfrozen {
                let f = &self.flows[id];
                let satisfied = new_rate[id] >= f.spec.demand_bps - EPS;
                let bottlenecked = f
                    .dlinks
                    .iter()
                    .any(|d| remaining.get(d).copied().unwrap_or(0.0) <= EPS);
                if satisfied || bottlenecked {
                    frozen.insert(*id);
                    progressed = true;
                }
            }
            if !progressed {
                for id in unfrozen {
                    frozen.insert(id);
                }
            }
        }

        self.pending_seeds.clear();
        let mut changes = std::mem::take(&mut self.pending_changes);
        for (id, f) in &mut self.flows {
            let nr = new_rate[id];
            if (nr - f.rate_bps).abs() > EPS {
                changes.push(RateChange {
                    flow: *id,
                    old_bps: f.rate_bps,
                    new_bps: nr,
                });
            }
            f.rate_bps = nr;
        }
        changes
    }

    /// Scoped max–min re-solve: expands `seeds` to the affected component
    /// and water-fills only that subgraph, reusing the solver arena.
    fn recompute_scoped(&mut self, topo: &Topology, seeds: &[DirLink]) -> Vec<RateChange> {
        let mut arena = std::mem::take(&mut self.arena);
        arena.clear();
        self.stats.solves += 1;
        self.stats.seed_dlinks += seeds.len() as u64;

        // Component closure: BFS over the flow↔directed-link sharing graph.
        for d in seeds {
            if arena.visited.insert(*d) {
                arena.link_queue.push(*d);
            }
        }
        while let Some(d) = arena.link_queue.pop() {
            let Some(members) = self.link_members.get(&d) else {
                continue;
            };
            for id in members {
                if arena.affected_set.insert(*id) {
                    arena.affected.push(*id);
                    for d2 in &self.flows[id].dlinks {
                        if arena.visited.insert(*d2) {
                            arena.link_queue.push(*d2);
                        }
                    }
                }
            }
        }
        self.stats.flows_touched += arena.affected.len() as u64;

        for id in &arena.affected {
            let f = &self.flows[id];
            if f.dlinks.iter().any(|d| !topo.link(d.link).up) {
                arena.new_rate.insert(*id, 0.0); // down link: starved at 0
                continue;
            }
            if let Some(granted) = Self::granted_rate(&f.spec, &f.dlinks) {
                arena.new_rate.insert(*id, granted);
                continue;
            }
            arena.new_rate.insert(*id, 0.0);
            arena.unfrozen.push(*id);
            for d in &f.dlinks {
                arena
                    .remaining
                    .entry(*d)
                    .or_insert_with(|| topo.link(d.link).capacity_bps);
                *arena.n_unfrozen.entry(*d).or_insert(0) += 1;
            }
        }
        self.stats.links_touched += arena.remaining.len() as u64;

        while !arena.unfrozen.is_empty() {
            self.stats.iterations += 1;
            self.stats.work += arena.unfrozen.len() as u64 + arena.n_unfrozen.len() as u64;

            let mut delta = f64::INFINITY;
            for (d, n) in &arena.n_unfrozen {
                if *n > 0 {
                    delta = delta.min(arena.remaining[d].max(0.0) / *n as f64);
                }
            }
            for id in &arena.unfrozen {
                let headroom = self.flows[id].spec.demand_bps - arena.new_rate[id];
                delta = delta.min(headroom);
            }
            if delta.is_infinite() {
                break; // defensive: no constraints at all
            }
            if delta > EPS {
                for id in &arena.unfrozen {
                    *arena.new_rate.get_mut(id).expect("flow present") += delta;
                }
                for (d, n) in &arena.n_unfrozen {
                    if *n > 0 {
                        *arena.remaining.get_mut(d).expect("dlink present") -= delta * *n as f64;
                    }
                }
            }

            let mut progressed = false;
            let mut i = 0;
            while i < arena.unfrozen.len() {
                let id = arena.unfrozen[i];
                let f = &self.flows[&id];
                let satisfied = arena.new_rate[&id] >= f.spec.demand_bps - EPS;
                let bottlenecked = f
                    .dlinks
                    .iter()
                    .any(|d| arena.remaining.get(d).copied().unwrap_or(0.0) <= EPS);
                if satisfied || bottlenecked {
                    for d in &f.dlinks {
                        *arena.n_unfrozen.get_mut(d).expect("indexed above") -= 1;
                    }
                    arena.unfrozen.swap_remove(i);
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            if !progressed {
                break; // numerically stuck; everything left stays put
            }
        }

        let mut changes = Vec::with_capacity(arena.affected.len().min(16));
        arena.affected.sort_unstable();
        for id in &arena.affected {
            let f = self.flows.get_mut(id).expect("affected flows exist");
            let nr = arena.new_rate[id];
            if (nr - f.rate_bps).abs() > EPS {
                changes.push(RateChange {
                    flow: *id,
                    old_bps: f.rate_bps,
                    new_bps: nr,
                });
            }
            f.rate_bps = nr;
        }
        self.arena = arena;
        changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    const GBPS: f64 = 1e9;

    #[test]
    fn oracle_shape_counts_full_scans() {
        let mut t = Topology::new();
        let sn: crate::addr::Ipv4Prefix = "10.0.0.0/24".parse().unwrap();
        let a = t.add_host("a", Ipv4Addr::new(10, 0, 0, 1), sn);
        let b = t.add_host("b", Ipv4Addr::new(10, 0, 0, 2), sn);
        let (l, ..) = t.add_link(a, b, GBPS, 0);
        let mut net = NaiveFluidNetwork::new();
        for i in 0..4u8 {
            let tuple = FiveTuple::udp(
                Ipv4Addr::new(10, 0, 0, 1),
                1000 + i as u16,
                Ipv4Addr::new(10, 0, 0, 2),
                2000,
            );
            net.start(
                SimTime::ZERO,
                FlowSpec::transfer(a, b, tuple, GBPS, 1_000_000),
                vec![l],
                &t,
            )
            .unwrap();
        }
        net.reset_solver_stats();
        net.advance(SimTime::from_millis(1));
        net.next_completion();
        let stats = net.solver_stats();
        // The oracle touches every active flow per advance and per
        // completion query — that is exactly what the arena shape avoids.
        assert_eq!(stats.advance_touches, 4);
        assert_eq!(stats.completion_visits, 4);
    }
}

//! Wire-format packet headers.
//!
//! The fluid data plane never moves per-packet bytes, but Horse's control
//! plane does: an OpenFlow `PACKET_IN` carries the first bytes of a real
//! packet, and controllers parse those bytes to extract the 5-tuple. To keep
//! that path realistic we encode genuine Ethernet/IPv4/UDP/TCP layouts,
//! including a correct IPv4 header checksum.

use crate::addr::MacAddr;
use crate::flow::{FiveTuple, IpProto};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::net::Ipv4Addr;

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// EtherType for ARP (parsed but otherwise unused by the model).
pub const ETHERTYPE_ARP: u16 = 0x0806;

/// Errors produced when decoding packet bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    /// Fewer bytes than the fixed header requires.
    Truncated(&'static str),
    /// A header field holds an unsupported value.
    Unsupported(&'static str),
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Truncated(what) => write!(f, "truncated {what}"),
            PacketError::Unsupported(what) => write!(f, "unsupported {what}"),
        }
    }
}

impl std::error::Error for PacketError {}

/// A 14-byte Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// EtherType (e.g. [`ETHERTYPE_IPV4`]).
    pub ethertype: u16,
}

impl EthernetHeader {
    /// Encoded size in bytes.
    pub const LEN: usize = 14;

    fn encode(&self, buf: &mut BytesMut) {
        buf.put_slice(&self.dst.0);
        buf.put_slice(&self.src.0);
        buf.put_u16(self.ethertype);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, PacketError> {
        if buf.len() < Self::LEN {
            return Err(PacketError::Truncated("ethernet header"));
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        buf.copy_to_slice(&mut dst);
        buf.copy_to_slice(&mut src);
        let ethertype = buf.get_u16();
        Ok(EthernetHeader {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
        })
    }
}

/// A 20-byte (optionless) IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Type of service / DSCP byte.
    pub tos: u8,
    /// Identification field.
    pub ident: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub proto: IpProto,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Total length (header + payload). Filled in by [`Packet::encode`].
    pub total_len: u16,
}

impl Ipv4Header {
    /// Encoded size in bytes (no options).
    pub const LEN: usize = 20;

    /// A fresh header with common defaults (TTL 64).
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, proto: IpProto) -> Ipv4Header {
        Ipv4Header {
            tos: 0,
            ident: 0,
            ttl: 64,
            proto,
            src,
            dst,
            total_len: Self::LEN as u16,
        }
    }

    fn encode(&self, buf: &mut BytesMut) {
        let start = buf.len();
        buf.put_u8(0x45); // version 4, IHL 5
        buf.put_u8(self.tos);
        buf.put_u16(self.total_len);
        buf.put_u16(self.ident);
        buf.put_u16(0); // flags / fragment offset
        buf.put_u8(self.ttl);
        buf.put_u8(self.proto.number());
        buf.put_u16(0); // checksum placeholder
        buf.put_slice(&self.src.octets());
        buf.put_slice(&self.dst.octets());
        let cksum = internet_checksum(&buf[start..start + Self::LEN]);
        buf[start + 10..start + 12].copy_from_slice(&cksum.to_be_bytes());
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, PacketError> {
        if buf.len() < Self::LEN {
            return Err(PacketError::Truncated("ipv4 header"));
        }
        let vihl = buf.get_u8();
        if vihl >> 4 != 4 {
            return Err(PacketError::Unsupported("ip version"));
        }
        let ihl = (vihl & 0x0f) as usize * 4;
        if ihl < Self::LEN {
            return Err(PacketError::Unsupported("ipv4 ihl < 20"));
        }
        let tos = buf.get_u8();
        let total_len = buf.get_u16();
        let ident = buf.get_u16();
        let _flags_frag = buf.get_u16();
        let ttl = buf.get_u8();
        let proto = IpProto::from_number(buf.get_u8());
        let _cksum = buf.get_u16();
        let mut src = [0u8; 4];
        let mut dst = [0u8; 4];
        buf.copy_to_slice(&mut src);
        buf.copy_to_slice(&mut dst);
        // Skip options if present.
        let opts = ihl - Self::LEN;
        if buf.len() < opts {
            return Err(PacketError::Truncated("ipv4 options"));
        }
        buf.advance(opts);
        Ok(Ipv4Header {
            tos,
            ident,
            ttl,
            proto,
            src: Ipv4Addr::from(src),
            dst: Ipv4Addr::from(dst),
            total_len,
        })
    }
}

/// Transport-layer header: UDP (8 bytes) or TCP (20 bytes, optionless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportHeader {
    /// UDP header.
    Udp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
    },
    /// TCP header (sequence/ack/flags carried for realism; the fluid model
    /// ignores them).
    Tcp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Sequence number.
        seq: u32,
        /// Acknowledgement number.
        ack: u32,
        /// Flag bits (FIN=0x01, SYN=0x02, …).
        flags: u8,
    },
}

impl TransportHeader {
    /// Source port.
    pub fn src_port(&self) -> u16 {
        match self {
            TransportHeader::Udp { src_port, .. } | TransportHeader::Tcp { src_port, .. } => {
                *src_port
            }
        }
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        match self {
            TransportHeader::Udp { dst_port, .. } | TransportHeader::Tcp { dst_port, .. } => {
                *dst_port
            }
        }
    }

    /// Encoded size in bytes.
    pub fn len(&self) -> usize {
        match self {
            TransportHeader::Udp { .. } => 8,
            TransportHeader::Tcp { .. } => 20,
        }
    }

    /// Always false; present for clippy's `len-without-is-empty` lint.
    pub fn is_empty(&self) -> bool {
        false
    }

    fn encode(&self, buf: &mut BytesMut, payload_len: usize) {
        match *self {
            TransportHeader::Udp { src_port, dst_port } => {
                buf.put_u16(src_port);
                buf.put_u16(dst_port);
                buf.put_u16((8 + payload_len) as u16);
                buf.put_u16(0); // checksum optional in IPv4 UDP
            }
            TransportHeader::Tcp {
                src_port,
                dst_port,
                seq,
                ack,
                flags,
            } => {
                buf.put_u16(src_port);
                buf.put_u16(dst_port);
                buf.put_u32(seq);
                buf.put_u32(ack);
                buf.put_u8(5 << 4); // data offset 5 words
                buf.put_u8(flags);
                buf.put_u16(65535); // window
                buf.put_u16(0); // checksum (not computed for the model)
                buf.put_u16(0); // urgent pointer
            }
        }
    }

    fn decode(proto: IpProto, buf: &mut &[u8]) -> Result<Option<Self>, PacketError> {
        match proto {
            IpProto::Udp => {
                if buf.len() < 8 {
                    return Err(PacketError::Truncated("udp header"));
                }
                let src_port = buf.get_u16();
                let dst_port = buf.get_u16();
                let _len = buf.get_u16();
                let _cksum = buf.get_u16();
                Ok(Some(TransportHeader::Udp { src_port, dst_port }))
            }
            IpProto::Tcp => {
                if buf.len() < 20 {
                    return Err(PacketError::Truncated("tcp header"));
                }
                let src_port = buf.get_u16();
                let dst_port = buf.get_u16();
                let seq = buf.get_u32();
                let ack = buf.get_u32();
                let offset = buf.get_u8() >> 4;
                let flags = buf.get_u8();
                let _window = buf.get_u16();
                let _cksum = buf.get_u16();
                let _urgent = buf.get_u16();
                let opts = (offset as usize * 4).saturating_sub(20);
                if buf.len() < opts {
                    return Err(PacketError::Truncated("tcp options"));
                }
                buf.advance(opts);
                Ok(Some(TransportHeader::Tcp {
                    src_port,
                    dst_port,
                    seq,
                    ack,
                    flags,
                }))
            }
            IpProto::Other(_) => Ok(None),
        }
    }
}

/// A parsed (or to-be-encoded) packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Link-layer header.
    pub eth: EthernetHeader,
    /// Network-layer header (absent for non-IP frames such as ARP).
    pub ipv4: Option<Ipv4Header>,
    /// Transport-layer header, when the IP protocol is TCP or UDP.
    pub transport: Option<TransportHeader>,
    /// Remaining payload bytes.
    pub payload: Bytes,
}

impl Packet {
    /// Builds a UDP packet with the given 5-tuple and payload.
    pub fn udp(src_mac: MacAddr, dst_mac: MacAddr, tuple: FiveTuple, payload: Bytes) -> Packet {
        Packet {
            eth: EthernetHeader {
                dst: dst_mac,
                src: src_mac,
                ethertype: ETHERTYPE_IPV4,
            },
            ipv4: Some(Ipv4Header::new(tuple.src_ip, tuple.dst_ip, IpProto::Udp)),
            transport: Some(TransportHeader::Udp {
                src_port: tuple.src_port,
                dst_port: tuple.dst_port,
            }),
            payload,
        }
    }

    /// Builds a TCP SYN packet with the given 5-tuple (used as the "first
    /// packet" of SDN flows, triggering PACKET_IN at switches).
    pub fn tcp_syn(src_mac: MacAddr, dst_mac: MacAddr, tuple: FiveTuple) -> Packet {
        Packet {
            eth: EthernetHeader {
                dst: dst_mac,
                src: src_mac,
                ethertype: ETHERTYPE_IPV4,
            },
            ipv4: Some(Ipv4Header::new(tuple.src_ip, tuple.dst_ip, IpProto::Tcp)),
            transport: Some(TransportHeader::Tcp {
                src_port: tuple.src_port,
                dst_port: tuple.dst_port,
                seq: 0,
                ack: 0,
                flags: 0x02, // SYN
            }),
            payload: Bytes::new(),
        }
    }

    /// Builds the first packet of an arbitrary flow spec.
    pub fn first_of(tuple: FiveTuple, src_mac: MacAddr, dst_mac: MacAddr) -> Packet {
        match tuple.proto {
            IpProto::Tcp => Packet::tcp_syn(src_mac, dst_mac, tuple),
            _ => Packet::udp(src_mac, dst_mac, tuple, Bytes::new()),
        }
    }

    /// Serializes the packet to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + self.payload.len());
        self.eth.encode(&mut buf);
        if let Some(mut ip) = self.ipv4 {
            let t_len = self.transport.as_ref().map_or(0, |t| t.len());
            ip.total_len = (Ipv4Header::LEN + t_len + self.payload.len()) as u16;
            ip.encode(&mut buf);
            if let Some(t) = &self.transport {
                t.encode(&mut buf, self.payload.len());
            }
        }
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parses wire bytes into a packet. Non-IPv4 frames keep everything
    /// after the Ethernet header as payload.
    pub fn decode(bytes: &[u8]) -> Result<Packet, PacketError> {
        let mut buf = bytes;
        let eth = EthernetHeader::decode(&mut buf)?;
        if eth.ethertype != ETHERTYPE_IPV4 {
            return Ok(Packet {
                eth,
                ipv4: None,
                transport: None,
                payload: Bytes::copy_from_slice(buf),
            });
        }
        let ip = Ipv4Header::decode(&mut buf)?;
        let transport = TransportHeader::decode(ip.proto, &mut buf)?;
        Ok(Packet {
            eth,
            ipv4: Some(ip),
            transport,
            payload: Bytes::copy_from_slice(buf),
        })
    }

    /// Extracts the transport 5-tuple if this is a TCP/UDP-over-IPv4 packet.
    pub fn five_tuple(&self) -> Option<FiveTuple> {
        let ip = self.ipv4.as_ref()?;
        let t = self.transport.as_ref()?;
        Some(FiveTuple {
            src_ip: ip.src,
            dst_ip: ip.dst,
            proto: ip.proto,
            src_port: t.src_port(),
            dst_port: t.dst_port(),
        })
    }
}

/// RFC 1071 internet checksum over `data`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple() -> FiveTuple {
        FiveTuple::udp(
            Ipv4Addr::new(10, 0, 1, 2),
            4321,
            Ipv4Addr::new(10, 2, 0, 3),
            9999,
        )
    }

    #[test]
    fn udp_roundtrip() {
        let p = Packet::udp(
            MacAddr::for_port(1, 0),
            MacAddr::for_port(2, 0),
            tuple(),
            Bytes::from_static(b"hello"),
        );
        let bytes = p.encode();
        let q = Packet::decode(&bytes).unwrap();
        assert_eq!(q.five_tuple(), Some(tuple()));
        assert_eq!(q.payload, Bytes::from_static(b"hello"));
        assert_eq!(q.eth, p.eth);
    }

    #[test]
    fn tcp_syn_roundtrip() {
        let t = FiveTuple::tcp(
            Ipv4Addr::new(192, 168, 0, 1),
            1000,
            Ipv4Addr::new(192, 168, 0, 2),
            80,
        );
        let p = Packet::tcp_syn(MacAddr::for_port(1, 0), MacAddr::for_port(2, 0), t);
        let q = Packet::decode(&p.encode()).unwrap();
        assert_eq!(q.five_tuple(), Some(t));
        match q.transport {
            Some(TransportHeader::Tcp { flags, .. }) => assert_eq!(flags, 0x02),
            other => panic!("expected TCP header, got {other:?}"),
        }
    }

    #[test]
    fn ipv4_checksum_is_valid() {
        let p = Packet::udp(
            MacAddr::for_port(1, 0),
            MacAddr::for_port(2, 0),
            tuple(),
            Bytes::new(),
        );
        let bytes = p.encode();
        // Checksum over the received IPv4 header must be zero.
        let ip_hdr = &bytes[EthernetHeader::LEN..EthernetHeader::LEN + Ipv4Header::LEN];
        assert_eq!(internet_checksum(ip_hdr), 0);
    }

    #[test]
    fn non_ip_frames_pass_through() {
        let mut raw = Vec::new();
        raw.extend_from_slice(&[0xff; 6]);
        raw.extend_from_slice(&[0x02, 0, 0, 0, 0, 1]);
        raw.extend_from_slice(&ETHERTYPE_ARP.to_be_bytes());
        raw.extend_from_slice(b"arp-body");
        let p = Packet::decode(&raw).unwrap();
        assert!(p.ipv4.is_none());
        assert!(p.five_tuple().is_none());
        assert_eq!(&p.payload[..], b"arp-body");
    }

    #[test]
    fn truncated_inputs_error_not_panic() {
        let p = Packet::udp(
            MacAddr::for_port(1, 0),
            MacAddr::for_port(2, 0),
            tuple(),
            Bytes::new(),
        );
        let bytes = p.encode();
        for cut in 0..bytes.len() {
            // Any prefix must decode cleanly or error; never panic.
            let _ = Packet::decode(&bytes[..cut]);
        }
    }

    #[test]
    fn total_len_reflects_payload() {
        let p = Packet::udp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            tuple(),
            Bytes::from(vec![0u8; 100]),
        );
        let q = Packet::decode(&p.encode()).unwrap();
        assert_eq!(q.ipv4.unwrap().total_len, (20 + 8 + 100) as u16);
    }

    #[test]
    fn checksum_known_vector() {
        // Hand-computed RFC 1071 vector: words 0001 f203 f4f5 f6f7 sum to
        // 0x2ddf0, fold to 0xddf2, complement to 0x220d.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), 0x220d);
        // Odd-length input pads the final byte with zero.
        assert_eq!(internet_checksum(&[0xffu8]), !0xff00);
    }
}

//! Property tests on the max–min fair fluid allocator.
//!
//! For random chain topologies with random flows the solution must satisfy
//! the defining properties of max–min fairness with demand caps:
//!
//! 1. feasibility — every directed link's load ≤ its capacity;
//! 2. demand caps — 0 ≤ rate ≤ demand for every flow;
//! 3. bottleneck justification — a flow below its demand traverses at
//!    least one link that is saturated *in the flow's direction* and on
//!    which the flow's rate is maximal among same-direction flows (the
//!    textbook characterization of the max–min allocation).
//!
//! Note what is deliberately *not* asserted: removing a flow does not
//! monotonically help the others — in a parking-lot topology, freeing an
//! upstream link lets a long flow grab more of a downstream link, hurting
//! the short flow there. The removal property that does hold is that the
//! invariants above are re-established after every change.

use horse_net::addr::Ipv4Prefix;
use horse_net::flow::{FiveTuple, FlowId, FlowSpec};
use horse_net::fluid::{Dirty, FluidNetwork};
use horse_net::fluid_naive::NaiveFluidNetwork;
use horse_net::topology::{LinkId, NodeId, Topology};
use horse_sim::SimTime;
use proptest::prelude::*;
use std::net::Ipv4Addr;

const G: f64 = 1e9;
const TOL: f64 = 1e6; // 1 Mbps tolerance on 1 Gbps links

/// Differential tolerance: the incremental and the full solver run the
/// same water-filling arithmetic, so they must agree far tighter than the
/// fairness tolerance — 1 kbps on 1 Gbps links.
const DIFF_TOL: f64 = 1e3;

fn scenario() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (2usize..6).prop_flat_map(|n| {
        let flows = prop::collection::vec(
            (0..n, 0..n, 0.05f64..1.5).prop_filter("distinct endpoints", |(a, b, _)| a != b),
            1..12,
        );
        (Just(n), flows)
    })
}

fn build_chain(n: usize) -> (Topology, Vec<NodeId>) {
    let mut t = Topology::new();
    let sn: Ipv4Prefix = "10.0.0.0/16".parse().unwrap();
    let switches: Vec<NodeId> = (0..n)
        .map(|i| t.add_switch(format!("s{i}"), Ipv4Addr::new(10, 255, 0, i as u8 + 1)))
        .collect();
    for w in switches.windows(2) {
        t.add_link(w[0], w[1], G, 0);
    }
    let hosts: Vec<NodeId> = (0..n)
        .map(|i| {
            let h = t.add_host(format!("h{i}"), Ipv4Addr::new(10, 0, i as u8, 1), sn);
            t.add_link(h, switches[i], G, 0);
            h
        })
        .collect();
    (t, hosts)
}

fn chain_path(t: &Topology, hosts: &[NodeId], a: usize, b: usize) -> Vec<LinkId> {
    t.all_shortest_paths(hosts[a], hosts[b])
        .into_iter()
        .next()
        .expect("chain is connected")
}

/// The direction (`true` = a→b) in which `flow` traverses `lid`, if at all.
fn dir_of(net: &FluidNetwork, topo: &Topology, flow: FlowId, lid: LinkId) -> Option<bool> {
    let spec = net.spec(flow)?;
    let path = net.path(flow)?;
    let mut cur = spec.src;
    for l in path {
        let link = topo.link(*l);
        let forward = link.a.node == cur;
        if *l == lid {
            return Some(forward);
        }
        cur = link.other(cur);
    }
    None
}

/// Checks the three max–min invariants for the current allocation.
fn assert_invariants(
    net: &FluidNetwork,
    topo: &Topology,
    demands: &[(FlowId, f64)],
) -> Result<(), TestCaseError> {
    // (2) demand caps.
    for (id, demand) in demands {
        if net.rate_of(*id).is_none() {
            continue; // stopped
        }
        let r = net.rate_of(*id).unwrap();
        prop_assert!(r >= -TOL, "negative rate {r}");
        prop_assert!(r <= demand + TOL, "rate {r} > demand {demand}");
    }
    // (1) feasibility.
    for lid in topo.link_ids() {
        let (fwd, rev) = net.link_load(lid);
        let cap = topo.link(lid).capacity_bps;
        prop_assert!(fwd <= cap + TOL, "link {lid} fwd {fwd} > {cap}");
        prop_assert!(rev <= cap + TOL, "link {lid} rev {rev} > {cap}");
    }
    // (3) bottleneck justification, same-direction only.
    for (id, demand) in demands {
        let Some(r) = net.rate_of(*id) else { continue };
        if r >= demand - TOL {
            continue;
        }
        let path = net.path(*id).unwrap().to_vec();
        let mut justified = false;
        for lid in path {
            let my_dir = dir_of(net, topo, *id, lid).expect("on own path");
            let (fwd, rev) = net.link_load(lid);
            let load = if my_dir { fwd } else { rev };
            let cap = topo.link(lid).capacity_bps;
            if load < cap - TOL {
                continue; // not saturated in my direction
            }
            let max_same_dir = net
                .flows_on_link(lid)
                .into_iter()
                .filter(|(f, _)| dir_of(net, topo, *f, lid) == Some(my_dir))
                .map(|(_, rate)| rate)
                .fold(0.0f64, f64::max);
            if r >= max_same_dir - TOL {
                justified = true;
                break;
            }
        }
        prop_assert!(
            justified,
            "flow {id} at {r} below demand {demand} without bottleneck"
        );
    }
    Ok(())
}

fn start_all(
    net: &mut FluidNetwork,
    topo: &Topology,
    hosts: &[NodeId],
    flows: &[(usize, usize, f64)],
) -> Vec<(FlowId, f64)> {
    flows
        .iter()
        .enumerate()
        .map(|(i, (a, b, demand))| {
            let tuple = FiveTuple::udp(
                Ipv4Addr::new(10, 0, *a as u8, 1),
                1000 + i as u16,
                Ipv4Addr::new(10, 0, *b as u8, 1),
                2000,
            );
            let spec = FlowSpec::cbr(hosts[*a], hosts[*b], tuple, demand * G);
            let path = chain_path(topo, hosts, *a, *b);
            let (id, _) = net.start(SimTime::ZERO, spec, path, topo).unwrap();
            (id, demand * G)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn max_min_invariants((n, flows) in scenario()) {
        let (topo, hosts) = build_chain(n);
        let mut net = FluidNetwork::new();
        let demands = start_all(&mut net, &topo, &hosts, &flows);
        assert_invariants(&net, &topo, &demands)?;
    }

    /// The invariants are re-established after every removal, in any order.
    #[test]
    fn invariants_survive_removals(
        (n, flows) in scenario(),
        stop_order in prop::collection::vec(0usize..12, 0..12),
    ) {
        let (topo, hosts) = build_chain(n);
        let mut net = FluidNetwork::new();
        let demands = start_all(&mut net, &topo, &hosts, &flows);
        let mut t = 1u64;
        for s in stop_order {
            if let Some((id, _)) = demands.get(s) {
                if net.rate_of(*id).is_some() {
                    net.stop(SimTime::from_millis(t), *id, &topo).unwrap();
                    t += 1;
                    assert_invariants(&net, &topo, &demands)?;
                }
            }
        }
    }

    /// Differential: after any churn sequence of flow starts (batched),
    /// stops, and link failures/repairs handled *incrementally*, a full
    /// from-scratch solve must agree on every rate. This is the oracle
    /// check for the scoped solver: its component-local water-fill must be
    /// a fixed point of the global one.
    #[test]
    fn incremental_matches_full_solver_under_churn(
        (n, flows) in scenario(),
        ops in prop::collection::vec((0usize..3, 0usize..32), 1..16),
    ) {
        let (mut topo, hosts) = build_chain(n);
        let mut net = FluidNetwork::new();
        let mut demands = start_all(&mut net, &topo, &hosts, &flows);
        let links: Vec<LinkId> = topo.link_ids().collect();
        let mut t = 1u64;
        for (op, pick) in ops {
            let now = SimTime::from_millis(t);
            t += 1;
            match op {
                // Stop one of the flows started so far.
                0 => {
                    let (id, _) = demands[pick % demands.len()];
                    if net.rate_of(id).is_some() {
                        net.stop(now, id, &topo).unwrap();
                    }
                }
                // Fail or repair a link; only the touched component is
                // re-solved.
                1 => {
                    let lid = links[pick % links.len()];
                    let up = !topo.link(lid).up;
                    topo.link_mut(lid).up = up;
                    net.advance(now);
                    net.recompute_incremental(&topo, &[Dirty::Link(lid)]);
                }
                // Start a small burst of fresh flows, deferred into one
                // scoped solve (the runner's control-burst pattern).
                _ => {
                    for i in 0..(pick % 3) + 1 {
                        let a = (pick + i) % hosts.len();
                        let b = (pick + i + 1) % hosts.len();
                        let tuple = FiveTuple::udp(
                            Ipv4Addr::new(10, 0, a as u8, 1),
                            5000 + t as u16 * 8 + i as u16,
                            Ipv4Addr::new(10, 0, b as u8, 1),
                            2000,
                        );
                        let demand = (0.1 + 0.2 * i as f64) * G;
                        let spec = FlowSpec::cbr(hosts[a], hosts[b], tuple, demand);
                        // A failed link may disconnect the pair; hosts
                        // simply can't start such flows.
                        let Some(path) = topo
                            .all_shortest_paths(hosts[a], hosts[b])
                            .into_iter()
                            .next()
                        else {
                            continue;
                        };
                        let id = net.start_deferred(now, spec, path, &topo).unwrap();
                        demands.push((id, demand));
                    }
                    net.flush(&topo);
                }
            }
            // Oracle: a full solve from the incremental solution must not
            // move any rate.
            let residual = net.recompute(&topo);
            for ch in &residual {
                prop_assert!(
                    (ch.new_bps - ch.old_bps).abs() < DIFF_TOL,
                    "flow {} diverged: incremental {} vs full {}",
                    ch.flow, ch.old_bps, ch.new_bps
                );
            }
            // And the allocation must still be max–min fair (links that
            // are down carry zero-rate flows, which invariant (3) skips
            // via the demand-cap guard only if rate 0 is justified — a
            // down link is saturated at capacity 0 in both directions).
            if topo.link_ids().all(|l| topo.link(l).up) {
                assert_invariants(&net, &topo, &demands)?;
            }
        }
    }

    /// Byte accounting: advancing time in arbitrary increments accrues
    /// exactly rate × time (for a stable single flow).
    #[test]
    fn byte_accounting_is_exact(steps in prop::collection::vec(1u64..1_000, 1..20)) {
        let (topo, hosts) = build_chain(2);
        let mut net = FluidNetwork::new();
        let tuple = FiveTuple::udp(
            Ipv4Addr::new(10, 0, 0, 1), 1, Ipv4Addr::new(10, 0, 1, 1), 2,
        );
        let spec = FlowSpec::cbr(hosts[0], hosts[1], tuple, 0.25 * G);
        let path = chain_path(&topo, &hosts, 0, 1);
        let (id, _) = net.start(SimTime::ZERO, spec, path, &topo).unwrap();
        let mut now_ms = 0u64;
        for s in &steps {
            now_ms += s;
            net.advance(SimTime::from_millis(now_ms));
        }
        let expect = 0.25 * G / 8.0 * (now_ms as f64 / 1e3);
        let got = net.progress(id).unwrap().bytes_sent;
        prop_assert!((got - expect).abs() < 1.0, "{got} vs {expect}");
    }
}

// ---------------------------------------------------------------------------
// Arena vs oracle differential properties
//
// `FluidNetwork` is the arena-backed fast path; `NaiveFluidNetwork` is the
// pre-refactor solver preserved verbatim as an oracle. The two must agree on
// every externally visible quantity under arbitrary churn — including the
// quantities the fast path derives lazily (bytes) or caches (completions).
// ---------------------------------------------------------------------------

/// Nanosecond slack between the oracle's eagerly-computed completion times
/// and the fast path's heap predictions (both are `rate × remaining` float
/// arithmetic folded at different instants).
const COMPLETION_TOL_NS: u64 = 2_000;

/// Two spine switches give every host pair two disjoint two-hop shortest
/// paths, so reroutes are meaningful and the flow-sharing graph genuinely
/// splits (all-via-x vs all-via-y) and merges as flows move between spines.
fn build_dual_spine(n: usize) -> (Topology, Vec<NodeId>) {
    let mut t = Topology::new();
    let sn: Ipv4Prefix = "10.0.0.0/16".parse().unwrap();
    let x = t.add_switch("x", Ipv4Addr::new(10, 255, 0, 1));
    let y = t.add_switch("y", Ipv4Addr::new(10, 255, 0, 2));
    let hosts: Vec<NodeId> = (0..n)
        .map(|i| {
            let h = t.add_host(format!("h{i}"), Ipv4Addr::new(10, 0, i as u8, 1), sn);
            t.add_link(h, x, G, 0);
            t.add_link(h, y, G, 0);
            h
        })
        .collect();
    (t, hosts)
}

/// Asserts that the fast path and the oracle agree on the full externally
/// visible state: per-flow liveness, rates, accrued bytes, and the next
/// predicted completion.
fn assert_nets_agree(
    fast: &mut FluidNetwork,
    naive: &mut NaiveFluidNetwork,
    started: &[FlowId],
) -> Result<(), TestCaseError> {
    for id in started {
        let (fr, nr) = (fast.rate_of(*id), naive.rate_of(*id));
        prop_assert_eq!(fr.is_some(), nr.is_some(), "liveness of {} diverged", id);
        let (Some(fr), Some(nr)) = (fr, nr) else {
            continue;
        };
        prop_assert!(
            (fr - nr).abs() < DIFF_TOL,
            "flow {} rate: arena {} vs oracle {}",
            id,
            fr,
            nr
        );
        let fb = fast.progress(*id).unwrap().bytes_sent;
        let nb = naive.progress(*id).unwrap().bytes_sent;
        prop_assert!(
            (fb - nb).abs() < 16.0,
            "flow {} bytes: arena {} vs oracle {}",
            id,
            fb,
            nb
        );
    }
    let (fc, nc) = (fast.next_completion(), naive.next_completion());
    match (fc, nc) {
        (None, None) => {}
        (Some((ft, _)), Some((nt, _))) => {
            // Times must agree; on a near-tie the two shapes may order the
            // tied flows differently, which the drain loop tolerates.
            prop_assert!(
                ft.as_nanos().abs_diff(nt.as_nanos()) <= COMPLETION_TOL_NS,
                "next completion: arena {:?} vs oracle {:?}",
                ft,
                nt
            );
        }
        (f, n) => prop_assert!(false, "completion presence diverged: {:?} vs {:?}", f, n),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Differential: an identical op script of starts (bounded and
    /// unbounded), stops, reroutes between spines, and link flaps must
    /// leave the arena solver and the preserved naive oracle in agreement
    /// after every op, and the two must then drain the same completion
    /// schedule.
    #[test]
    fn oracle_and_arena_agree_under_churn(
        n in 3usize..6,
        ops in prop::collection::vec((0usize..4, 0usize..64), 1..20),
    ) {
        let (mut topo, hosts) = build_dual_spine(n);
        let links: Vec<LinkId> = topo.link_ids().collect();
        let mut fast = FluidNetwork::new();
        let mut naive = NaiveFluidNetwork::new();
        let mut started: Vec<FlowId> = Vec::new();
        let mut endpoints: Vec<(usize, usize)> = Vec::new();
        let mut t = 1u64;
        for (op, pick) in ops {
            let now = SimTime::from_millis(t);
            t += 1;
            match op {
                // Stop a flow (in both nets) if it is still active.
                0 if !started.is_empty() => {
                    let id = started[pick % started.len()];
                    if fast.rate_of(id).is_some() {
                        fast.stop(now, id, &topo).unwrap();
                        naive.stop(now, id, &topo).unwrap();
                    }
                }
                // Flap a link: both nets see the same dirty seed. This is
                // what splits a spine's component into per-host fragments.
                1 => {
                    let lid = links[pick % links.len()];
                    topo.link_mut(lid).up = !topo.link(lid).up;
                    fast.advance(now);
                    naive.advance(now);
                    fast.recompute_incremental(&topo, &[Dirty::Link(lid)]);
                    naive.recompute_incremental(&topo, &[Dirty::Link(lid)]);
                }
                // Reroute an active flow onto its other spine path.
                2 if !started.is_empty() => {
                    let i = pick % started.len();
                    let id = started[i];
                    if fast.rate_of(id).is_some() {
                        let (a, b) = endpoints[i];
                        let paths = topo.all_shortest_paths(hosts[a], hosts[b]);
                        if !paths.is_empty() {
                            let path = paths[pick % paths.len()].clone();
                            fast.reroute(now, id, path.clone(), &topo).unwrap();
                            naive.reroute(now, id, path, &topo).unwrap();
                        }
                    }
                }
                // Start a deferred burst of flows, bounded and unbounded
                // mixed, on a pick-chosen spine path; flush once.
                _ => {
                    for i in 0..(pick % 3) + 1 {
                        let a = (pick + i) % hosts.len();
                        let b = (pick + i + 1) % hosts.len();
                        let tuple = FiveTuple::udp(
                            Ipv4Addr::new(10, 0, a as u8, 1),
                            5000 + t as u16 * 8 + i as u16,
                            Ipv4Addr::new(10, 0, b as u8, 1),
                            2000,
                        );
                        let demand = (0.1 + 0.2 * i as f64) * G;
                        let spec = if pick % 2 == 0 {
                            FlowSpec::cbr(hosts[a], hosts[b], tuple, demand)
                        } else {
                            let size = 50_000 + 37_000 * (pick as u64 + i as u64);
                            FlowSpec::transfer(hosts[a], hosts[b], tuple, demand, size)
                        };
                        let paths = topo.all_shortest_paths(hosts[a], hosts[b]);
                        let Some(path) = paths.get(pick % paths.len().max(1)).cloned()
                        else {
                            continue;
                        };
                        let fid = fast
                            .start_deferred(now, spec.clone(), path.clone(), &topo)
                            .unwrap();
                        let nid = naive.start_deferred(now, spec, path, &topo).unwrap();
                        prop_assert_eq!(fid, nid, "id assignment diverged");
                        started.push(fid);
                        endpoints.push((a, b));
                    }
                    fast.flush(&topo);
                    naive.flush(&topo);
                }
            }
            // Retire completions due by `now` in lockstep, as the runner's
            // completion events would. Stopping the flow in *both* nets
            // whenever either reports it due keeps them aligned even when
            // a completion instant straddles `now` by a rounding hair.
            let mut guard = 0u32;
            loop {
                guard += 1;
                prop_assert!(guard < 10_000, "completion retirement did not converge");
                let due = match fast.next_completion() {
                    Some((ct, cf)) if ct <= now => Some(cf),
                    _ => match naive.next_completion() {
                        Some((ct, cf)) if ct <= now => Some(cf),
                        _ => None,
                    },
                };
                let Some(cf) = due else { break };
                for rem in [
                    fast.progress(cf).unwrap().bytes_remaining,
                    naive.progress(cf).unwrap().bytes_remaining,
                ] {
                    prop_assert!(
                        rem.expect("due flows are bounded") < 1_000.0,
                        "flow {} retired with {:?} bytes left", cf, rem
                    );
                }
                fast.stop(now, cf, &topo).unwrap();
                naive.stop(now, cf, &topo).unwrap();
            }
            assert_nets_agree(&mut fast, &mut naive, &started)?;
        }
        // Drain each net to quiescence independently (the runner's loop:
        // advance to the predicted instant, stop once actually complete —
        // a prediction may round a nanosecond early, in which case the
        // next query re-predicts just past the watermark). The two nets
        // must retire the same flows at the same times.
        macro_rules! drain {
            ($net:expr) => {{
                let mut done: Vec<(u64, u64)> = Vec::new();
                let mut wm = SimTime::from_millis(t);
                let mut guard = 0u32;
                while let Some((ct, cf)) = $net.next_completion() {
                    guard += 1;
                    prop_assert!(guard < 100_000, "drain did not converge");
                    wm = wm.max(ct);
                    $net.advance(wm);
                    if $net.is_complete(cf) {
                        $net.stop(wm, cf, &topo).unwrap();
                        done.push((cf.0, ct.as_nanos()));
                    }
                }
                done.sort_unstable();
                done
            }};
        }
        let fast_done = drain!(fast);
        let naive_done = drain!(naive);
        let fast_ids: Vec<u64> = fast_done.iter().map(|(id, _)| *id).collect();
        let naive_ids: Vec<u64> = naive_done.iter().map(|(id, _)| *id).collect();
        prop_assert_eq!(&fast_ids, &naive_ids, "completed flow sets diverged");
        for ((id, ft), (_, nt)) in fast_done.iter().zip(&naive_done) {
            prop_assert!(
                ft.abs_diff(*nt) <= COMPLETION_TOL_NS,
                "flow {} finished at {}ns (arena) vs {}ns (oracle)", id, ft, nt
            );
        }
    }

    /// Completion-heap staleness: whatever churn has pushed stale entries
    /// into the heap, every `next_completion` answer must be *current* —
    /// an active flow whose predicted finish equals the brute-force
    /// minimum over all active bounded flows (with the `(time, FlowId)`
    /// tie-break), never a stopped or unbounded flow.
    #[test]
    fn completion_heap_pops_are_current_or_stale(
        ops in prop::collection::vec((0usize..3, 0usize..64), 1..24),
    ) {
        let (topo, hosts) = build_chain(3);
        let mut net = FluidNetwork::new();
        let mut started: Vec<FlowId> = Vec::new();
        let mut t = 1u64;
        for (op, pick) in ops {
            let now = SimTime::from_millis(t);
            t += 1;
            match op {
                // Start a bounded transfer (rate changes re-predict every
                // sharing flow, pushing fresh heap entries over stale ones).
                0 => {
                    let a = pick % hosts.len();
                    let b = (pick + 1 + pick % (hosts.len() - 1)) % hosts.len();
                    let tuple = FiveTuple::udp(
                        Ipv4Addr::new(10, 0, a as u8, 1),
                        7000 + t as u16,
                        Ipv4Addr::new(10, 0, b as u8, 1),
                        2000,
                    );
                    let demand = (0.2 + 0.1 * (pick % 5) as f64) * G;
                    let size = 40_000 + 29_000 * pick as u64;
                    let spec = FlowSpec::transfer(hosts[a], hosts[b], tuple, demand, size);
                    let path = chain_path(&topo, &hosts, a, b);
                    let (id, _) = net.start(now, spec, path, &topo).unwrap();
                    started.push(id);
                }
                // Stop a flow: its heap entries go stale and must never be
                // served.
                1 if !started.is_empty() => {
                    let id = started[pick % started.len()];
                    if net.rate_of(id).is_some() {
                        net.stop(now, id, &topo).unwrap();
                    }
                }
                // Advance the watermark without touching rates.
                _ => {
                    t += pick as u64;
                    net.advance(SimTime::from_millis(t));
                }
            }
            net.advance(SimTime::from_millis(t));
            let wm = SimTime::from_millis(t);
            // Contract: an answer at or before the watermark means the flow
            // is genuinely complete (the heap re-predicts rounding tails
            // internally before answering). Retire such flows as the
            // runner's completion events would.
            let mut guard = 0u32;
            while let Some((ct, cf)) = net.next_completion() {
                if ct > wm {
                    break;
                }
                guard += 1;
                prop_assert!(guard < 10_000, "retirement did not converge");
                prop_assert!(
                    net.is_complete(cf),
                    "served {} at {:?} though incomplete", cf, ct
                );
                net.stop(wm, cf, &topo).unwrap();
            }
            // Brute-force reference from public state only: min
            // (finish time, FlowId) over active bounded in-progress flows
            // at positive rate — what the oracle's full scan computes.
            let ids: Vec<FlowId> = net.flow_ids().collect();
            let mut best: Option<(u64, u64)> = None;
            for id in ids {
                let p = net.progress(id).unwrap();
                let Some(rem) = p.bytes_remaining else { continue };
                if rem <= 0.0 || p.rate_bps <= 1e-6 {
                    continue; // retired above / stalled: never finishes
                }
                let dt_ns = (((rem * 8.0 / p.rate_bps) * 1e9).ceil() as u64).max(1);
                let cand = (wm.as_nanos() + dt_ns, id.0);
                if best.is_none_or(|b| cand < b) {
                    best = Some(cand);
                }
            }
            match (net.next_completion(), best) {
                (None, None) => {}
                (Some((gt, gf)), Some((bt, _))) => {
                    // The served flow must be live and bounded…
                    prop_assert!(net.rate_of(gf).is_some(), "served stopped flow {}", gf);
                    let gp = net.progress(gf).unwrap();
                    prop_assert!(gp.bytes_remaining.is_some(), "served unbounded flow");
                    // …its time must match the brute-force minimum…
                    prop_assert!(
                        gt.as_nanos().abs_diff(bt) <= COMPLETION_TOL_NS,
                        "served {:?}, brute minimum {}ns", gt, bt
                    );
                    // …and the served flow's own finish must itself be
                    // minimal (tie-break slack aside) — a stale heap entry
                    // for a re-rated flow must never be passed through.
                    let rem = gp.bytes_remaining.unwrap();
                    let own = wm.as_nanos()
                        + (((rem * 8.0 / gp.rate_bps) * 1e9).ceil() as u64).max(1);
                    prop_assert!(
                        own.abs_diff(bt) <= COMPLETION_TOL_NS,
                        "served flow finishes at {}ns, minimum is {}ns", own, bt
                    );
                }
                (got, brute) => prop_assert!(
                    false,
                    "completion presence: heap {:?} vs brute {:?}", got, brute
                ),
            }
        }
    }

    /// Lazy accrual is a pure function of the watermark: advancing in k
    /// steps, advancing once, and re-reading at the same instant all
    /// derive bit-identical byte counts, and a settle (forced by a rate
    /// change) at the same instant preserves the derived value exactly.
    #[test]
    fn lazy_accrual_is_idempotent(steps in prop::collection::vec(1u64..500, 1..16)) {
        let (topo, hosts) = build_chain(2);
        let tuple = FiveTuple::udp(
            Ipv4Addr::new(10, 0, 0, 1), 1, Ipv4Addr::new(10, 0, 1, 1), 2,
        );
        let spec = FlowSpec::cbr(hosts[0], hosts[1], tuple, 0.25 * G);
        let path = chain_path(&topo, &hosts, 0, 1);

        // Net A advances in k steps; net B jumps straight to the end.
        let mut stepped = FluidNetwork::new();
        let mut jumped = FluidNetwork::new();
        let (id, _) = stepped.start(SimTime::ZERO, spec.clone(), path.clone(), &topo).unwrap();
        let (jid, _) = jumped.start(SimTime::ZERO, spec, path.clone(), &topo).unwrap();
        prop_assert_eq!(id, jid);
        let mut now_ms = 0u64;
        for s in &steps {
            now_ms += s;
            stepped.advance(SimTime::from_millis(now_ms));
        }
        jumped.advance(SimTime::from_millis(now_ms));
        let a = stepped.progress(id).unwrap().bytes_sent;
        let b = jumped.progress(id).unwrap().bytes_sent;
        prop_assert_eq!(a.to_bits(), b.to_bits(), "k-step {} vs one-shot {}", a, b);

        // Re-reading at the same instant changes nothing.
        stepped.advance(SimTime::from_millis(now_ms));
        let again = stepped.progress(id).unwrap().bytes_sent;
        prop_assert_eq!(a.to_bits(), again.to_bits());

        // A rate change settles the flow (folds derived bytes into the
        // base); the settle must not move the derived value.
        let rival_tuple = FiveTuple::udp(
            Ipv4Addr::new(10, 0, 0, 1), 3, Ipv4Addr::new(10, 0, 1, 1), 4,
        );
        let rival = FlowSpec::cbr(hosts[0], hosts[1], rival_tuple, G);
        let now = SimTime::from_millis(now_ms);
        stepped.start(now, rival, path, &topo).unwrap();
        let settled = stepped.progress(id).unwrap().bytes_sent;
        prop_assert_eq!(a.to_bits(), settled.to_bits(), "settle moved bytes: {} -> {}", a, settled);
    }
}

/// Regression: failing and repairing a link must return every flow to its
/// pre-failure rate — the incremental solver may not leave stale state
/// (memberships, frozen rates) behind from the failure interval.
#[test]
fn link_down_then_up_restores_all_rates() {
    let (mut topo, hosts) = build_chain(4);
    let mut net = FluidNetwork::new();
    // Three flows sharing the chain's spine in the same direction, one
    // counter-flow: an asymmetric allocation worth restoring exactly.
    let flows = [(0, 3, 1.5), (1, 3, 0.2), (2, 3, 1.5), (3, 0, 0.7)];
    let demands = start_all(&mut net, &topo, &hosts, &flows);
    let before: Vec<Option<f64>> = demands.iter().map(|(id, _)| net.rate_of(*id)).collect();

    // Fail the link between the last two switches — it carries every flow.
    let spine = topo
        .link_ids()
        .find(|l| {
            let link = topo.link(*l);
            link.a.node == NodeId(2) && link.b.node == NodeId(3)
        })
        .expect("chain spine link");
    topo.link_mut(spine).up = false;
    net.advance(SimTime::from_millis(1));
    net.recompute_incremental(&topo, &[Dirty::Link(spine)]);
    for (id, _) in &demands {
        assert_eq!(net.rate_of(*id), Some(0.0), "all flows cross the cut");
    }

    topo.link_mut(spine).up = true;
    net.advance(SimTime::from_millis(2));
    net.recompute_incremental(&topo, &[Dirty::Link(spine)]);
    for ((id, _), old) in demands.iter().zip(&before) {
        let now = net.rate_of(*id).expect("still active");
        let old = old.expect("was active");
        assert!(
            (now - old).abs() < DIFF_TOL,
            "flow {id}: {old} before failure, {now} after repair"
        );
    }
}

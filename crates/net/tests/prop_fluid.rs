//! Property tests on the max–min fair fluid allocator.
//!
//! For random chain topologies with random flows the solution must satisfy
//! the defining properties of max–min fairness with demand caps:
//!
//! 1. feasibility — every directed link's load ≤ its capacity;
//! 2. demand caps — 0 ≤ rate ≤ demand for every flow;
//! 3. bottleneck justification — a flow below its demand traverses at
//!    least one link that is saturated *in the flow's direction* and on
//!    which the flow's rate is maximal among same-direction flows (the
//!    textbook characterization of the max–min allocation).
//!
//! Note what is deliberately *not* asserted: removing a flow does not
//! monotonically help the others — in a parking-lot topology, freeing an
//! upstream link lets a long flow grab more of a downstream link, hurting
//! the short flow there. The removal property that does hold is that the
//! invariants above are re-established after every change.

use horse_net::addr::Ipv4Prefix;
use horse_net::flow::{FiveTuple, FlowId, FlowSpec};
use horse_net::fluid::{Dirty, FluidNetwork};
use horse_net::topology::{LinkId, NodeId, Topology};
use horse_sim::SimTime;
use proptest::prelude::*;
use std::net::Ipv4Addr;

const G: f64 = 1e9;
const TOL: f64 = 1e6; // 1 Mbps tolerance on 1 Gbps links

/// Differential tolerance: the incremental and the full solver run the
/// same water-filling arithmetic, so they must agree far tighter than the
/// fairness tolerance — 1 kbps on 1 Gbps links.
const DIFF_TOL: f64 = 1e3;

fn scenario() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (2usize..6).prop_flat_map(|n| {
        let flows = prop::collection::vec(
            (0..n, 0..n, 0.05f64..1.5).prop_filter("distinct endpoints", |(a, b, _)| a != b),
            1..12,
        );
        (Just(n), flows)
    })
}

fn build_chain(n: usize) -> (Topology, Vec<NodeId>) {
    let mut t = Topology::new();
    let sn: Ipv4Prefix = "10.0.0.0/16".parse().unwrap();
    let switches: Vec<NodeId> = (0..n)
        .map(|i| t.add_switch(format!("s{i}"), Ipv4Addr::new(10, 255, 0, i as u8 + 1)))
        .collect();
    for w in switches.windows(2) {
        t.add_link(w[0], w[1], G, 0);
    }
    let hosts: Vec<NodeId> = (0..n)
        .map(|i| {
            let h = t.add_host(format!("h{i}"), Ipv4Addr::new(10, 0, i as u8, 1), sn);
            t.add_link(h, switches[i], G, 0);
            h
        })
        .collect();
    (t, hosts)
}

fn chain_path(t: &Topology, hosts: &[NodeId], a: usize, b: usize) -> Vec<LinkId> {
    t.all_shortest_paths(hosts[a], hosts[b])
        .into_iter()
        .next()
        .expect("chain is connected")
}

/// The direction (`true` = a→b) in which `flow` traverses `lid`, if at all.
fn dir_of(net: &FluidNetwork, topo: &Topology, flow: FlowId, lid: LinkId) -> Option<bool> {
    let spec = net.spec(flow)?;
    let path = net.path(flow)?;
    let mut cur = spec.src;
    for l in path {
        let link = topo.link(*l);
        let forward = link.a.node == cur;
        if *l == lid {
            return Some(forward);
        }
        cur = link.other(cur);
    }
    None
}

/// Checks the three max–min invariants for the current allocation.
fn assert_invariants(
    net: &FluidNetwork,
    topo: &Topology,
    demands: &[(FlowId, f64)],
) -> Result<(), TestCaseError> {
    // (2) demand caps.
    for (id, demand) in demands {
        if net.rate_of(*id).is_none() {
            continue; // stopped
        }
        let r = net.rate_of(*id).unwrap();
        prop_assert!(r >= -TOL, "negative rate {r}");
        prop_assert!(r <= demand + TOL, "rate {r} > demand {demand}");
    }
    // (1) feasibility.
    for lid in topo.link_ids() {
        let (fwd, rev) = net.link_load(lid);
        let cap = topo.link(lid).capacity_bps;
        prop_assert!(fwd <= cap + TOL, "link {lid} fwd {fwd} > {cap}");
        prop_assert!(rev <= cap + TOL, "link {lid} rev {rev} > {cap}");
    }
    // (3) bottleneck justification, same-direction only.
    for (id, demand) in demands {
        let Some(r) = net.rate_of(*id) else { continue };
        if r >= demand - TOL {
            continue;
        }
        let path = net.path(*id).unwrap().to_vec();
        let mut justified = false;
        for lid in path {
            let my_dir = dir_of(net, topo, *id, lid).expect("on own path");
            let (fwd, rev) = net.link_load(lid);
            let load = if my_dir { fwd } else { rev };
            let cap = topo.link(lid).capacity_bps;
            if load < cap - TOL {
                continue; // not saturated in my direction
            }
            let max_same_dir = net
                .flows_on_link(lid)
                .into_iter()
                .filter(|(f, _)| dir_of(net, topo, *f, lid) == Some(my_dir))
                .map(|(_, rate)| rate)
                .fold(0.0f64, f64::max);
            if r >= max_same_dir - TOL {
                justified = true;
                break;
            }
        }
        prop_assert!(
            justified,
            "flow {id} at {r} below demand {demand} without bottleneck"
        );
    }
    Ok(())
}

fn start_all(
    net: &mut FluidNetwork,
    topo: &Topology,
    hosts: &[NodeId],
    flows: &[(usize, usize, f64)],
) -> Vec<(FlowId, f64)> {
    flows
        .iter()
        .enumerate()
        .map(|(i, (a, b, demand))| {
            let tuple = FiveTuple::udp(
                Ipv4Addr::new(10, 0, *a as u8, 1),
                1000 + i as u16,
                Ipv4Addr::new(10, 0, *b as u8, 1),
                2000,
            );
            let spec = FlowSpec::cbr(hosts[*a], hosts[*b], tuple, demand * G);
            let path = chain_path(topo, hosts, *a, *b);
            let (id, _) = net.start(SimTime::ZERO, spec, path, topo).unwrap();
            (id, demand * G)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn max_min_invariants((n, flows) in scenario()) {
        let (topo, hosts) = build_chain(n);
        let mut net = FluidNetwork::new();
        let demands = start_all(&mut net, &topo, &hosts, &flows);
        assert_invariants(&net, &topo, &demands)?;
    }

    /// The invariants are re-established after every removal, in any order.
    #[test]
    fn invariants_survive_removals(
        (n, flows) in scenario(),
        stop_order in prop::collection::vec(0usize..12, 0..12),
    ) {
        let (topo, hosts) = build_chain(n);
        let mut net = FluidNetwork::new();
        let demands = start_all(&mut net, &topo, &hosts, &flows);
        let mut t = 1u64;
        for s in stop_order {
            if let Some((id, _)) = demands.get(s) {
                if net.rate_of(*id).is_some() {
                    net.stop(SimTime::from_millis(t), *id, &topo).unwrap();
                    t += 1;
                    assert_invariants(&net, &topo, &demands)?;
                }
            }
        }
    }

    /// Differential: after any churn sequence of flow starts (batched),
    /// stops, and link failures/repairs handled *incrementally*, a full
    /// from-scratch solve must agree on every rate. This is the oracle
    /// check for the scoped solver: its component-local water-fill must be
    /// a fixed point of the global one.
    #[test]
    fn incremental_matches_full_solver_under_churn(
        (n, flows) in scenario(),
        ops in prop::collection::vec((0usize..3, 0usize..32), 1..16),
    ) {
        let (mut topo, hosts) = build_chain(n);
        let mut net = FluidNetwork::new();
        let mut demands = start_all(&mut net, &topo, &hosts, &flows);
        let links: Vec<LinkId> = topo.link_ids().collect();
        let mut t = 1u64;
        for (op, pick) in ops {
            let now = SimTime::from_millis(t);
            t += 1;
            match op {
                // Stop one of the flows started so far.
                0 => {
                    let (id, _) = demands[pick % demands.len()];
                    if net.rate_of(id).is_some() {
                        net.stop(now, id, &topo).unwrap();
                    }
                }
                // Fail or repair a link; only the touched component is
                // re-solved.
                1 => {
                    let lid = links[pick % links.len()];
                    let up = !topo.link(lid).up;
                    topo.link_mut(lid).up = up;
                    net.advance(now);
                    net.recompute_incremental(&topo, &[Dirty::Link(lid)]);
                }
                // Start a small burst of fresh flows, deferred into one
                // scoped solve (the runner's control-burst pattern).
                _ => {
                    for i in 0..(pick % 3) + 1 {
                        let a = (pick + i) % hosts.len();
                        let b = (pick + i + 1) % hosts.len();
                        let tuple = FiveTuple::udp(
                            Ipv4Addr::new(10, 0, a as u8, 1),
                            5000 + t as u16 * 8 + i as u16,
                            Ipv4Addr::new(10, 0, b as u8, 1),
                            2000,
                        );
                        let demand = (0.1 + 0.2 * i as f64) * G;
                        let spec = FlowSpec::cbr(hosts[a], hosts[b], tuple, demand);
                        // A failed link may disconnect the pair; hosts
                        // simply can't start such flows.
                        let Some(path) = topo
                            .all_shortest_paths(hosts[a], hosts[b])
                            .into_iter()
                            .next()
                        else {
                            continue;
                        };
                        let id = net.start_deferred(now, spec, path, &topo).unwrap();
                        demands.push((id, demand));
                    }
                    net.flush(&topo);
                }
            }
            // Oracle: a full solve from the incremental solution must not
            // move any rate.
            let residual = net.recompute(&topo);
            for ch in &residual {
                prop_assert!(
                    (ch.new_bps - ch.old_bps).abs() < DIFF_TOL,
                    "flow {} diverged: incremental {} vs full {}",
                    ch.flow, ch.old_bps, ch.new_bps
                );
            }
            // And the allocation must still be max–min fair (links that
            // are down carry zero-rate flows, which invariant (3) skips
            // via the demand-cap guard only if rate 0 is justified — a
            // down link is saturated at capacity 0 in both directions).
            if topo.link_ids().all(|l| topo.link(l).up) {
                assert_invariants(&net, &topo, &demands)?;
            }
        }
    }

    /// Byte accounting: advancing time in arbitrary increments accrues
    /// exactly rate × time (for a stable single flow).
    #[test]
    fn byte_accounting_is_exact(steps in prop::collection::vec(1u64..1_000, 1..20)) {
        let (topo, hosts) = build_chain(2);
        let mut net = FluidNetwork::new();
        let tuple = FiveTuple::udp(
            Ipv4Addr::new(10, 0, 0, 1), 1, Ipv4Addr::new(10, 0, 1, 1), 2,
        );
        let spec = FlowSpec::cbr(hosts[0], hosts[1], tuple, 0.25 * G);
        let path = chain_path(&topo, &hosts, 0, 1);
        let (id, _) = net.start(SimTime::ZERO, spec, path, &topo).unwrap();
        let mut now_ms = 0u64;
        for s in &steps {
            now_ms += s;
            net.advance(SimTime::from_millis(now_ms));
        }
        let expect = 0.25 * G / 8.0 * (now_ms as f64 / 1e3);
        let got = net.progress(id).unwrap().bytes_sent;
        prop_assert!((got - expect).abs() < 1.0, "{got} vs {expect}");
    }
}

/// Regression: failing and repairing a link must return every flow to its
/// pre-failure rate — the incremental solver may not leave stale state
/// (memberships, frozen rates) behind from the failure interval.
#[test]
fn link_down_then_up_restores_all_rates() {
    let (mut topo, hosts) = build_chain(4);
    let mut net = FluidNetwork::new();
    // Three flows sharing the chain's spine in the same direction, one
    // counter-flow: an asymmetric allocation worth restoring exactly.
    let flows = [(0, 3, 1.5), (1, 3, 0.2), (2, 3, 1.5), (3, 0, 0.7)];
    let demands = start_all(&mut net, &topo, &hosts, &flows);
    let before: Vec<Option<f64>> = demands.iter().map(|(id, _)| net.rate_of(*id)).collect();

    // Fail the link between the last two switches — it carries every flow.
    let spine = topo
        .link_ids()
        .find(|l| {
            let link = topo.link(*l);
            link.a.node == NodeId(2) && link.b.node == NodeId(3)
        })
        .expect("chain spine link");
    topo.link_mut(spine).up = false;
    net.advance(SimTime::from_millis(1));
    net.recompute_incremental(&topo, &[Dirty::Link(spine)]);
    for (id, _) in &demands {
        assert_eq!(net.rate_of(*id), Some(0.0), "all flows cross the cut");
    }

    topo.link_mut(spine).up = true;
    net.advance(SimTime::from_millis(2));
    net.recompute_incremental(&topo, &[Dirty::Link(spine)]);
    for ((id, _), old) in demands.iter().zip(&before) {
        let now = net.rate_of(*id).expect("still active");
        let old = old.expect("was active");
        assert!(
            (now - old).abs() < DIFF_TOL,
            "flow {id}: {old} before failure, {now} after repair"
        );
    }
}

//! The work-stealing worker pool.
//!
//! Runs independent, index-identified tasks on `threads` workers. Tasks
//! are dealt round-robin into per-worker deques; a worker drains its own
//! deque from the front and, when empty, steals from siblings' backs.
//! Results flow through an MPMC channel to the calling thread, which
//! observes them as they complete (the checkpoint layer streams them to
//! disk) and re-orders them by index ([`horse_stats::OrderedCollector`]),
//! so the returned vector is identical for every thread count — the
//! scheduling shows up only in the [`SweepStats`] counters.
//!
//! With `threads == 1` the pool spawns nothing and runs the tasks inline
//! in index order — byte-for-byte the serial loop the bench bins used to
//! write by hand.
//!
//! The pool is deliberately free of experiment-level knowledge: it lives
//! in its own crate so both the sweep layer (one task = one experiment)
//! and the intra-run parallel pump in `horse-core` (one task = one ready
//! node's drain) schedule through the same scheduler. Workers are scoped
//! threads spawned per call; nesting a pump-level pool inside a sweep
//! worker composes without a shared global queue to deadlock on.
//!
//! ## Panic containment
//!
//! Each task runs under `catch_unwind`: a panicking run becomes a
//! [`RunOutcome::Failed`] carrying the panic message, and the worker
//! moves on to its next task. One failing experiment can neither poison
//! the pool's queue mutexes (locks are never held across a task) nor
//! abort its siblings — the sweep always drains. [`run_selected`]
//! surfaces the outcomes; the legacy [`run_indexed`] re-raises the first
//! failure *after* the drain, preserving its infallible signature.

use crossbeam::channel;
use horse_stats::{OrderedCollector, SweepStats, WorkerStats};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// How one contained task ended: its value, or the panic that killed it.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome<T> {
    /// The task returned normally.
    Ok(T),
    /// The task panicked; the pool caught it and kept draining.
    Failed {
        /// The panic payload, stringified (`"non-string panic payload"`
        /// when it was neither `&str` nor `String`).
        message: String,
    },
}

impl<T> RunOutcome<T> {
    /// The value, if the task succeeded.
    pub fn ok(self) -> Option<T> {
        match self {
            RunOutcome::Ok(v) => Some(v),
            RunOutcome::Failed { .. } => None,
        }
    }

    /// True when the task panicked.
    pub fn is_failed(&self) -> bool {
        matches!(self, RunOutcome::Failed { .. })
    }

    /// Maps the success value, preserving failures.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> RunOutcome<U> {
        match self {
            RunOutcome::Ok(v) => RunOutcome::Ok(f(v)),
            RunOutcome::Failed { message } => RunOutcome::Failed { message },
        }
    }
}

/// One task's result, tagged with where and how long it ran.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult<T> {
    /// The task's index (plan order; also the result ordering key).
    pub index: usize,
    /// Worker that executed it (0 on the serial path).
    pub worker: usize,
    /// Wall time inside the task closure, in milliseconds.
    pub wall_ms: f64,
    /// The closure's return value.
    pub value: T,
}

/// Stringifies a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("non-string panic payload")
    }
}

/// Runs one task under `catch_unwind`, timing it and updating `stats`.
fn run_contained<T, F>(
    f: &F,
    index: usize,
    worker: usize,
    stats: &mut WorkerStats,
) -> RunResult<RunOutcome<T>>
where
    F: Fn(usize) -> T + Sync,
{
    let t0 = Instant::now();
    // AssertUnwindSafe: each task is an independent experiment; the only
    // state shared across tasks (topology templates, attr stores) is
    // read-only from the pool's perspective, so a panicking run leaves
    // nothing half-mutated that a sibling could observe.
    let outcome = match catch_unwind(AssertUnwindSafe(|| f(index))) {
        Ok(v) => RunOutcome::Ok(v),
        Err(payload) => {
            stats.failed += 1;
            RunOutcome::Failed {
                message: panic_message(payload),
            }
        }
    };
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    stats.runs += 1;
    stats.busy_ms += wall_ms;
    RunResult {
        index,
        worker,
        wall_ms,
        value: outcome,
    }
}

/// Recovers a possibly-poisoned lock: a panic elsewhere must not cascade
/// into every worker that subsequently touches the queue. The protected
/// data (task deques, counter structs) is valid at every lock boundary —
/// tasks execute outside the lock — so the poison flag carries no
/// information here.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Executes `f` over an explicit set of task indices on `threads`
/// workers, calling `observe` on the collecting thread as each result
/// completes (completion order), and returning the results sorted by
/// index plus the pool's counters.
///
/// This is [`run_indexed`] generalized twice for the checkpoint layer:
/// the index set need not be `0..n` (a resumed sweep runs only the
/// remainder), and results stream through `observe` while the sweep is
/// still running (the checkpoint writer appends a record per completed
/// run, so a killed process keeps everything it finished).
///
/// `observe` returns whether the sweep should keep going: on `false`
/// workers stop pulling new tasks (tasks already in flight finish and
/// are still observed) and the call returns only the completed results.
/// The checkpoint layer aborts this way when a record fails to persist —
/// executing a thousand further runs whose results cannot be recorded
/// would only be discarded work.
///
/// Panics inside `f` are contained per-task ([`RunOutcome::Failed`]);
/// `observe` runs outside any pool lock but must not panic.
pub fn run_selected_with<T, F>(
    indices: &[usize],
    threads: usize,
    f: F,
    mut observe: impl FnMut(&RunResult<RunOutcome<T>>) -> bool,
) -> (Vec<RunResult<RunOutcome<T>>>, SweepStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let start = Instant::now();
    let m = indices.len();
    if threads <= 1 || m <= 1 {
        let mut worker = WorkerStats::default();
        let mut out = Vec::with_capacity(m);
        for &index in indices {
            let r = run_contained(&f, index, 0, &mut worker);
            let keep_going = observe(&r);
            out.push(r);
            if !keep_going {
                break;
            }
        }
        out.sort_by_key(|r| r.index);
        let stats = SweepStats {
            threads: 1,
            runs: out.len(),
            elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
            workers: vec![worker],
        };
        return (out, stats);
    }

    // No point spawning more workers than tasks.
    let nw = threads.min(m);
    // Deal tasks round-robin: worker w owns positions w, w+nw, w+2nw, …
    // ascending, so its own pop_front walks the plan in order while
    // thieves take pop_back (the victim's farthest-out work).
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..nw)
        .map(|w| Mutex::new(indices.iter().copied().skip(w).step_by(nw).collect()))
        .collect();
    let per_worker: Vec<Mutex<WorkerStats>> = (0..nw)
        .map(|_| Mutex::new(WorkerStats::default()))
        .collect();
    let (tx, rx) = channel::unbounded::<RunResult<RunOutcome<T>>>();
    let stop = AtomicBool::new(false);

    let mut results = Vec::with_capacity(m);
    std::thread::scope(|s| {
        for w in 0..nw {
            let tx = tx.clone();
            let queues = &queues;
            let per_worker = &per_worker;
            let f = &f;
            let stop = &stop;
            s.spawn(move || {
                let mut local = WorkerStats::default();
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let mut stolen = false;
                    // Bind the own-queue pop to a `let` so its lock guard
                    // drops *here*: as a `match` scrutinee the temporary
                    // would live through the steal arm, and a worker that
                    // holds its own queue's lock while trying a sibling's
                    // deadlocks the moment two empty workers scan each
                    // other (hold-and-wait cycle; observed as a rare pool
                    // hang). Each worker must hold at most one queue lock
                    // at a time.
                    let own = lock_unpoisoned(&queues[w]).pop_front();
                    let index = match own {
                        Some(i) => Some(i),
                        None => {
                            // Scan siblings starting after ourselves so
                            // thieves spread instead of mobbing worker 0.
                            let mut found = None;
                            for off in 1..nw {
                                let victim = (w + off) % nw;
                                if let Some(i) = lock_unpoisoned(&queues[victim]).pop_back() {
                                    found = Some(i);
                                    break;
                                }
                            }
                            stolen = found.is_some();
                            found
                        }
                    };
                    // Every task was dealt up front, so empty queues all
                    // around mean the sweep is drained (tasks already
                    // popped are owned by the worker running them).
                    let Some(index) = index else { break };
                    if stolen {
                        local.steals += 1;
                    }
                    let _ = tx.send(run_contained(f, index, w, &mut local));
                }
                *lock_unpoisoned(&per_worker[w]) = local;
            });
        }
        // Collect on the calling thread while workers run. Every task
        // that executes sends exactly one result — panics are caught
        // inside run_contained — and the channel closes when the last
        // worker drops its sender, so this loop sees every completion
        // whether the sweep drains or the observer stops it early.
        drop(tx);
        while let Ok(r) = rx.recv() {
            if !observe(&r) {
                stop.store(true, Ordering::Relaxed);
            }
            results.push(r);
        }
    });

    results.sort_by_key(|r| r.index);
    let stats = SweepStats {
        threads: nw,
        runs: results.len(),
        elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
        workers: per_worker
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect(),
    };
    (results, stats)
}

/// [`run_selected_with`] without an observer.
pub fn run_selected<T, F>(
    indices: &[usize],
    threads: usize,
    f: F,
) -> (Vec<RunResult<RunOutcome<T>>>, SweepStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_selected_with(indices, threads, f, |_| true)
}

/// Executes `f(0..n)` on `threads` workers and returns the results in
/// index order plus the pool's counters.
///
/// `f` must be a pure function of its index (up to shared read-only
/// state): the determinism contract is that the returned vector does not
/// depend on `threads`. Wall times and worker ids in [`RunResult`] *do*
/// vary run to run; callers comparing results across thread counts must
/// compare only the values (for experiments, their semantic JSON).
///
/// A panic inside `f` is contained until the sweep drains — every other
/// run completes — and then re-raised here with its run index. Callers
/// that want failures as data instead use [`run_selected`].
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> (Vec<RunResult<T>>, SweepStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    let (results, stats) = run_selected(&indices, threads, f);
    let mut ordered = OrderedCollector::new(n);
    for r in results {
        let value = match r.value {
            RunOutcome::Ok(v) => v,
            RunOutcome::Failed { message } => {
                panic!("sweep run {} panicked: {message}", r.index)
            }
        };
        ordered.insert(
            r.index,
            RunResult {
                index: r.index,
                worker: r.worker,
                wall_ms: r.wall_ms,
                value,
            },
        );
    }
    let out = ordered
        .try_into_ordered()
        .unwrap_or_else(|m| panic!("pool lost results: {m}"));
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values<T: Clone>(rs: &[RunResult<T>]) -> Vec<T> {
        rs.iter().map(|r| r.value.clone()).collect()
    }

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| (i as u64) * (i as u64) + 7;
        let (serial, s1) = run_indexed(37, 1, f);
        assert_eq!(s1.threads, 1);
        for t in [2, 3, 8] {
            let (par, st) = run_indexed(37, t, f);
            assert_eq!(values(&serial), values(&par), "threads={t}");
            assert_eq!(st.runs, 37);
            assert_eq!(st.workers.iter().map(|w| w.runs).sum::<u64>(), 37);
        }
    }

    #[test]
    fn results_are_index_ordered() {
        let (rs, _) = run_indexed(16, 4, |i| i);
        for (pos, r) in rs.iter().enumerate() {
            assert_eq!(r.index, pos);
            assert_eq!(r.value, pos);
            assert!(r.worker < 4);
        }
    }

    #[test]
    fn workers_capped_at_task_count() {
        let (rs, st) = run_indexed(2, 8, |i| i);
        assert_eq!(st.threads, 2);
        assert_eq!(st.workers.len(), 2);
        assert_eq!(values(&rs), vec![0, 1]);
    }

    #[test]
    fn zero_tasks() {
        let (rs, st) = run_indexed(8, 4, |i| i);
        assert_eq!(rs.len(), 8);
        let (rs, st0) = {
            let (rs, st0) = run_indexed(0, 4, |i| i);
            (rs, st0)
        };
        assert!(rs.is_empty());
        assert_eq!(st0.runs, 0);
        assert_eq!(st.runs, 8);
    }

    #[test]
    fn uneven_work_gets_stolen() {
        // Worker 0's own tasks are heavy; with 4 workers the others go
        // idle and must steal to finish. We can't assert steals > 0 on a
        // single-core box (worker 0 may drain everything before others
        // are scheduled), but accounting must balance regardless.
        let f = |i: usize| {
            if i % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        };
        let (rs, st) = run_indexed(24, 4, f);
        assert_eq!(values(&rs), (0..24).collect::<Vec<_>>());
        let total_runs: u64 = st.workers.iter().map(|w| w.runs).sum();
        let total_steals: u64 = st.workers.iter().map(|w| w.steals).sum();
        assert_eq!(total_runs, 24);
        assert!(total_steals <= 24);
        assert!(st.total_busy_ms() > 0.0);
    }

    #[test]
    fn subset_of_indices_runs_only_those() {
        let indices = [3, 5, 11, 2];
        for threads in [1, 3] {
            let (rs, st) = run_selected(&indices, threads, |i| i * 10);
            assert_eq!(st.runs, 4);
            let got: Vec<(usize, usize)> = rs
                .iter()
                .map(|r| (r.index, r.value.clone().ok().unwrap()))
                .collect();
            // Sorted by index, values from the original index.
            assert_eq!(got, vec![(2, 20), (3, 30), (5, 50), (11, 110)]);
        }
    }

    #[test]
    fn panicking_run_is_contained_and_siblings_finish() {
        let indices: Vec<usize> = (0..8).collect();
        for threads in [1, 4] {
            let (rs, st) = run_selected(&indices, threads, |i| {
                if i == 3 {
                    panic!("deliberate failure in run {i}");
                }
                i * 2
            });
            assert_eq!(rs.len(), 8, "threads={threads}: sweep must drain");
            assert_eq!(st.total_failed(), 1);
            for r in &rs {
                if r.index == 3 {
                    match &r.value {
                        RunOutcome::Failed { message } => {
                            assert!(message.contains("deliberate failure in run 3"), "{message}");
                        }
                        other => panic!("expected Failed, got {other:?}"),
                    }
                } else {
                    assert_eq!(r.value, RunOutcome::Ok(r.index * 2));
                }
            }
        }
    }

    #[test]
    fn observer_sees_every_completion() {
        let seen = Mutex::new(Vec::new());
        let indices: Vec<usize> = (0..12).collect();
        let (rs, _) = run_selected_with(
            &indices,
            4,
            |i| i,
            |r| {
                lock_unpoisoned(&seen).push(r.index);
                true
            },
        );
        assert_eq!(rs.len(), 12);
        let mut seen = lock_unpoisoned(&seen).clone();
        seen.sort_unstable();
        assert_eq!(seen, indices);
    }

    #[test]
    fn observer_false_aborts_remaining_queue() {
        // Serial path is deterministic: stop after the second completion.
        let indices: Vec<usize> = (0..10).collect();
        let mut seen = 0usize;
        let (rs, st) = run_selected_with(
            &indices,
            1,
            |i| i,
            |_| {
                seen += 1;
                seen < 2
            },
        );
        assert_eq!(rs.len(), 2);
        assert_eq!(st.runs, 2);

        // Parallel path: tasks already in flight may still land, but the
        // stop flag must keep the pool from draining the whole queue.
        let seen = std::sync::atomic::AtomicUsize::new(0);
        let indices: Vec<usize> = (0..64).collect();
        let (rs, st) = run_selected_with(
            &indices,
            4,
            |i| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                i
            },
            |_| seen.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1 < 2,
        );
        assert!(rs.len() >= 2);
        assert!(rs.len() < 64, "stop flag must cut the sweep short");
        assert_eq!(st.runs, rs.len());
    }

    #[test]
    fn empty_steal_scans_do_not_deadlock() {
        // Regression: the own-queue pop's lock guard must drop before the
        // steal scan — held across it (as a match-scrutinee temporary),
        // two simultaneously empty workers scanning each other's queues
        // deadlock in a hold-and-wait cycle. Many short-lived pools with
        // barely more tasks than workers maximize concurrent empty scans.
        for round in 0..200 {
            let (rs, _) = run_indexed(9, 8, move |i| i + round);
            assert_eq!(rs.len(), 9);
            assert!(rs.iter().enumerate().all(|(p, r)| r.value == p + round));
        }
    }

    #[test]
    fn nested_pools_do_not_deadlock_and_agree_serially() {
        // A sweep-level pool whose tasks each run an inner pool — the
        // shape the intra-run parallel pump creates under a sweep. Scoped
        // per-call workers mean there is no shared global queue to starve:
        // the composition must drain and agree with the fully serial run.
        let run = |outer: usize, inner: usize| -> Vec<u64> {
            let (rs, _) = run_indexed(6, outer, |i| {
                let (inner_rs, _) = run_indexed(5, inner, move |j| (i as u64) * 100 + (j as u64));
                inner_rs.into_iter().map(|r| r.value).sum::<u64>()
            });
            rs.into_iter().map(|r| r.value).collect()
        };
        let serial = run(1, 1);
        for (outer, inner) in [(2, 2), (4, 2), (2, 4)] {
            assert_eq!(run(outer, inner), serial, "outer={outer} inner={inner}");
        }
    }

    #[test]
    #[should_panic(expected = "sweep run 1 panicked: boom")]
    fn run_indexed_reraises_after_drain() {
        let completed = std::sync::atomic::AtomicUsize::new(0);
        let _ = run_indexed(4, 2, |i| {
            if i == 1 {
                panic!("boom");
            }
            completed.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            i
        });
    }
}

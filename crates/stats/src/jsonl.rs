//! Append-only JSON-Lines persistence — one JSON object per line.
//!
//! The sweep checkpoint layer streams a record to disk after every
//! completed run, so a killed process keeps everything it finished. Two
//! properties matter for that workload and are what this module
//! guarantees:
//!
//! 1. **Appends are line-atomic from the reader's perspective.** Each
//!    record is written with a single `write_all` of `line + '\n'` and
//!    flushed; a process killed mid-write leaves at most one truncated
//!    *final* line, which [`parse_jsonl`] surfaces as a per-line parse
//!    error the caller can choose to discard.
//! 2. **Reading is total, not fail-fast.** [`parse_jsonl`] returns a
//!    result per line instead of bailing on the first bad one, so policy
//!    (drop a truncated tail, reject mid-file corruption) stays with the
//!    caller.

use crate::Json;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// Appends JSON records to a file, one per line, flushing after each so
/// completed records survive the process.
#[derive(Debug)]
pub struct JsonlWriter {
    file: File,
    path: PathBuf,
}

impl JsonlWriter {
    /// Opens `path` for appending, creating the file (and its parent
    /// directory) if missing.
    ///
    /// If an earlier writer was killed mid-record the file may not end
    /// with a newline; the first append then starts with a `'\n'` so the
    /// new record lands on its own line instead of being glued onto the
    /// partial tail (which would corrupt a *good* record, not just the
    /// junk one).
    pub fn append(path: impl AsRef<Path>) -> std::io::Result<JsonlWriter> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        let len = file.metadata()?.len();
        if len > 0 {
            file.seek(SeekFrom::Start(len - 1))?;
            let mut last = [0u8; 1];
            file.read_exact(&mut last)?;
            if last[0] != b'\n' {
                file.write_all(b"\n")?;
            }
        }
        Ok(JsonlWriter { file, path })
    }

    /// Appends one record. `record` must be a single-line JSON document
    /// (the writers in this workspace escape embedded newlines).
    pub fn write_line(&mut self, record: &str) -> std::io::Result<()> {
        debug_assert!(!record.contains('\n'), "JSONL record must be a single line");
        let mut line = String::with_capacity(record.len() + 1);
        line.push_str(record);
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.flush()
    }

    /// The file being appended to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Parses JSON-Lines text into one result per non-empty line, tagged
/// with its 1-based line number. A line that fails to parse yields
/// `Err(reason)` in place; subsequent lines still parse.
pub fn parse_jsonl(text: &str) -> Vec<(usize, Result<Json, String>)> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| (i + 1, Json::parse(l)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("horse_jsonl_{tag}_{}", std::process::id()))
    }

    #[test]
    fn roundtrips_records() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut w = JsonlWriter::append(&path).unwrap();
        w.write_line(r#"{"a": 1}"#).unwrap();
        w.write_line(r#"{"b": "x"}"#).unwrap();
        drop(w);
        // A second writer appends, not truncates.
        let mut w = JsonlWriter::append(&path).unwrap();
        w.write_line(r#"{"c": true}"#).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines = parse_jsonl(&text);
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].0, 1);
        assert_eq!(
            lines[0].1.as_ref().unwrap().get("a").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(
            lines[2].1.as_ref().unwrap().get("c").unwrap().as_bool(),
            Some(true)
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_is_isolated() {
        // A kill mid-write leaves a partial final line; earlier records
        // must still parse and the bad line must be identifiable.
        let text = "{\"a\": 1}\n{\"b\": 2}\n{\"c\": tr";
        let lines = parse_jsonl(text);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].1.is_ok());
        assert!(lines[1].1.is_ok());
        assert_eq!(lines[2].0, 3);
        assert!(lines[2].1.is_err());
    }

    #[test]
    fn append_after_partial_tail_starts_a_fresh_line() {
        // A file left without a trailing newline by a killed writer must
        // not have the next record glued onto the partial tail.
        let path = temp_path("partial_tail");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, "{\"a\": 1}\n{\"b\": tr").unwrap();
        let mut w = JsonlWriter::append(&path).unwrap();
        w.write_line(r#"{"c": 3}"#).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines = parse_jsonl(&text);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].1.is_ok());
        assert!(lines[1].1.is_err(), "partial tail stays isolated");
        assert_eq!(
            lines[2].1.as_ref().unwrap().get("c").unwrap().as_u64(),
            Some(3)
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn blank_lines_are_skipped() {
        let lines = parse_jsonl("\n{\"a\": 1}\n\n");
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].0, 2);
    }
}

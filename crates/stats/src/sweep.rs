//! Sweep execution accounting: ordered result collection and pool
//! counters.
//!
//! `horse-sweep` runs independent experiments on a work-stealing pool, so
//! results complete in a nondeterministic order. [`OrderedCollector`]
//! re-assembles them by run index — the sweep's *output* is a pure
//! function of its plan, whatever the schedule did. [`SweepStats`] records
//! what the schedule did (per-worker runs, steals, busy time) so benches
//! can report utilization and speedup next to the results.

use crate::{json_f64, json_string};
use std::fmt::Write as _;

/// Collects `(index, value)` pairs produced in arbitrary order and hands
/// them back sorted by index. Duplicate or out-of-range indices are a
/// caller bug and panic.
#[derive(Debug)]
pub struct OrderedCollector<T> {
    slots: Vec<Option<T>>,
    received: usize,
}

impl<T> OrderedCollector<T> {
    /// A collector expecting exactly `n` results with indices `0..n`.
    pub fn new(n: usize) -> OrderedCollector<T> {
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        OrderedCollector { slots, received: 0 }
    }

    /// Records the result for `index`.
    pub fn insert(&mut self, index: usize, value: T) {
        let slot = self
            .slots
            .get_mut(index)
            .unwrap_or_else(|| panic!("result index {index} out of range"));
        assert!(slot.is_none(), "duplicate result for index {index}");
        *slot = Some(value);
        self.received += 1;
    }

    /// Results recorded so far.
    pub fn received(&self) -> usize {
        self.received
    }

    /// Results expected in total.
    pub fn expected(&self) -> usize {
        self.slots.len()
    }

    /// True once every index has a result.
    pub fn is_complete(&self) -> bool {
        self.received == self.slots.len()
    }

    /// The results in index order, or the list of indices that never got
    /// one. This is the completion path sweep executors should take: a
    /// worker that died without reporting becomes a diagnosable
    /// [`MissingResults`] instead of a panic deep in the collector.
    pub fn try_into_ordered(self) -> Result<Vec<T>, MissingResults> {
        if !self.is_complete() {
            let missing = self
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_none())
                .map(|(i, _)| i)
                .collect();
            return Err(MissingResults {
                missing,
                expected: self.slots.len(),
            });
        }
        Ok(self
            .slots
            .into_iter()
            .map(|s| s.expect("checked complete above"))
            .collect())
    }

    /// The results in index order. Panics unless complete; callers that
    /// can observe partial sweeps should use
    /// [`OrderedCollector::try_into_ordered`] instead.
    pub fn into_ordered(self) -> Vec<T> {
        self.try_into_ordered()
            .unwrap_or_else(|m| panic!("collector incomplete: {m}"))
    }
}

/// Indices an [`OrderedCollector`] never received, reported instead of
/// panicking so a sweep can name exactly which runs went missing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingResults {
    /// Run indices with no result, ascending.
    pub missing: Vec<usize>,
    /// Results the collector expected in total.
    pub expected: usize,
}

impl std::fmt::Display for MissingResults {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} of {} results missing (indices {:?})",
            self.missing.len(),
            self.expected,
            self.missing
        )
    }
}

impl std::error::Error for MissingResults {}

/// Per-worker counters from one sweep execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerStats {
    /// Runs this worker executed.
    pub runs: u64,
    /// Runs it stole from a sibling's queue.
    pub steals: u64,
    /// Runs whose closure panicked (contained; counted in `runs` too).
    pub failed: u64,
    /// Wall time spent inside run closures, in milliseconds.
    pub busy_ms: f64,
}

/// Counters from one sweep execution: how many workers, how the work
/// spread across them, and what that bought in wall time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepStats {
    /// Worker threads used (1 = serial in-place execution).
    pub threads: usize,
    /// Total runs executed.
    pub runs: usize,
    /// Wall time of the whole sweep, in milliseconds.
    pub elapsed_ms: f64,
    /// Per-worker counters, indexed by worker id.
    pub workers: Vec<WorkerStats>,
}

impl SweepStats {
    /// Sum of per-worker busy time — the serial-equivalent wall time of
    /// the run closures themselves (excludes plan/pool overhead).
    pub fn total_busy_ms(&self) -> f64 {
        self.workers.iter().map(|w| w.busy_ms).sum()
    }

    /// Total runs stolen across workers.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Total contained run panics across workers.
    pub fn total_failed(&self) -> u64 {
        self.workers.iter().map(|w| w.failed).sum()
    }

    /// Fraction of `threads × elapsed` spent inside run closures, in
    /// `[0, 1]` on an idle machine (oversubscription can push it lower,
    /// never meaningfully higher).
    pub fn utilization(&self) -> f64 {
        if self.threads == 0 || self.elapsed_ms <= 0.0 {
            return 0.0;
        }
        self.total_busy_ms() / (self.threads as f64 * self.elapsed_ms)
    }

    /// Estimated speedup over running the same closures serially: total
    /// busy time divided by actual elapsed time. On one worker this is
    /// ≤ 1 (pool overhead); with N workers and enough work it approaches
    /// N on an N-core machine.
    pub fn speedup_vs_serial(&self) -> f64 {
        if self.elapsed_ms <= 0.0 {
            return 0.0;
        }
        self.total_busy_ms() / self.elapsed_ms
    }

    /// JSON object with the counters and derived ratios.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"threads\": {}, \"runs\": {}, \"elapsed_ms\": {}, ",
            self.threads,
            self.runs,
            json_f64(self.elapsed_ms)
        );
        let _ = write!(
            out,
            "\"busy_ms\": {}, \"steals\": {}, \"failed\": {}, \"utilization\": {}, \"speedup_vs_serial\": {}, ",
            json_f64(self.total_busy_ms()),
            self.total_steals(),
            self.total_failed(),
            json_f64(self.utilization()),
            json_f64(self.speedup_vs_serial())
        );
        out.push_str("\"workers\": [");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{{}: {}, {}: {}, {}: {}, {}: {}}}",
                json_string("runs"),
                w.runs,
                json_string("steals"),
                w.steals,
                json_string("failed"),
                w.failed,
                json_string("busy_ms"),
                json_f64(w.busy_ms)
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_reorders() {
        let mut c = OrderedCollector::new(4);
        c.insert(2, "c");
        c.insert(0, "a");
        assert!(!c.is_complete());
        c.insert(3, "d");
        c.insert(1, "b");
        assert!(c.is_complete());
        assert_eq!(c.into_ordered(), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn try_into_ordered_lists_missing_indices() {
        let mut c = OrderedCollector::new(5);
        c.insert(1, "b");
        c.insert(3, "d");
        let err = c.try_into_ordered().unwrap_err();
        assert_eq!(err.missing, vec![0, 2, 4]);
        assert_eq!(err.expected, 5);
        assert!(err.to_string().contains("3 of 5"));

        let mut c = OrderedCollector::new(2);
        c.insert(0, 1);
        c.insert(1, 2);
        assert_eq!(c.try_into_ordered().unwrap(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "duplicate result")]
    fn collector_rejects_duplicates() {
        let mut c = OrderedCollector::new(2);
        c.insert(0, 1);
        c.insert(0, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn collector_rejects_out_of_range() {
        let mut c: OrderedCollector<i32> = OrderedCollector::new(1);
        c.insert(1, 7);
    }

    #[test]
    fn stats_ratios() {
        let s = SweepStats {
            threads: 2,
            runs: 4,
            elapsed_ms: 100.0,
            workers: vec![
                WorkerStats {
                    runs: 3,
                    steals: 1,
                    failed: 1,
                    busy_ms: 90.0,
                },
                WorkerStats {
                    runs: 1,
                    steals: 0,
                    failed: 0,
                    busy_ms: 70.0,
                },
            ],
        };
        assert!((s.total_busy_ms() - 160.0).abs() < 1e-9);
        assert_eq!(s.total_steals(), 1);
        assert_eq!(s.total_failed(), 1);
        assert!((s.utilization() - 0.8).abs() < 1e-9);
        assert!((s.speedup_vs_serial() - 1.6).abs() < 1e-9);
        let j = s.to_json();
        assert!(j.contains("\"threads\": 2"));
        assert!(j.contains("\"steals\": 1"));
        assert!(j.contains("\"failed\": 1"));
        assert!(j.contains("\"workers\": ["));
    }

    #[test]
    fn empty_stats_are_finite() {
        let s = SweepStats::default();
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.speedup_vs_serial(), 0.0);
        assert!(s.to_json().contains("\"runs\": 0"));
    }
}

//! # horse-stats — metrics collection for experiments
//!
//! Horse's demo ends each run with "a graph of the aggregated rate of all
//! flows arriving at the hosts for each TE case". This crate provides the
//! plumbing: [`TimeSeries`] (timestamped samples with summary statistics),
//! [`SeriesSet`] (named series, CSV/JSON export) and [`Histogram`] (for
//! latency/throughput distributions in the extended benchmarks).

use horse_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt::Write as _;

mod json;
mod jsonl;
mod sweep;
pub use json::Json;
pub use jsonl::{parse_jsonl, JsonlWriter};
pub use sweep::{MissingResults, OrderedCollector, SweepStats, WorkerStats};

/// A time-ordered sequence of `(time, value)` samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Appends a sample. Samples must arrive in non-decreasing time order;
    /// out-of-order samples are clamped to the latest time seen (the
    /// collectors all sample from the monotonic simulation clock, so this
    /// only defends against misuse).
    pub fn push(&mut self, t: SimTime, v: f64) {
        let t = match self.points.last() {
            Some((last, _)) if *last > t => *last,
            _ => t,
        };
        self.points.push((t, v));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// The last sample.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.last().copied()
    }

    /// Maximum value.
    pub fn max(&self) -> Option<f64> {
        self.points.iter().map(|(_, v)| *v).fold(None, |m, v| {
            Some(match m {
                None => v,
                Some(m) => m.max(v),
            })
        })
    }

    /// Arithmetic mean of the values (unweighted by time).
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().map(|(_, v)| v).sum::<f64>() / self.points.len() as f64)
    }

    /// Time-weighted average between the first and last sample (each value
    /// holds until the next sample). This is the honest "average rate over
    /// the run" number.
    pub fn time_weighted_mean(&self) -> Option<f64> {
        if self.points.len() < 2 {
            return self.points.first().map(|(_, v)| *v);
        }
        let mut acc = 0.0;
        for w in self.points.windows(2) {
            let dt = w[1].0.duration_since(w[0].0).as_secs_f64();
            acc += w[0].1 * dt;
        }
        let span = self
            .points
            .last()
            .expect("non-empty")
            .0
            .duration_since(self.points[0].0)
            .as_secs_f64();
        if span <= 0.0 {
            return self.mean();
        }
        Some(acc / span)
    }

    /// The value in force at time `t` (last sample at or before `t`).
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.points.partition_point(|(pt, _)| *pt <= t) {
            0 => None,
            i => Some(self.points[i - 1].1),
        }
    }

    /// Downsamples to one point per `interval` (keeping the last value of
    /// each bucket) — for plotting long runs compactly.
    pub fn resample(&self, interval: SimDuration) -> TimeSeries {
        if interval.is_zero() || self.points.is_empty() {
            return self.clone();
        }
        let mut out = TimeSeries::new();
        let mut bucket_end = self.points[0].0 + interval;
        let mut pending: Option<(SimTime, f64)> = None;
        for (t, v) in &self.points {
            while *t >= bucket_end {
                if let Some(p) = pending.take() {
                    out.points.push(p);
                }
                bucket_end += interval;
            }
            pending = Some((*t, *v));
        }
        if let Some(p) = pending {
            out.points.push(p);
        }
        out
    }
}

/// A named collection of series with export helpers.
#[derive(Debug, Clone, Default)]
pub struct SeriesSet {
    series: BTreeMap<String, TimeSeries>,
}

impl SeriesSet {
    /// An empty set.
    pub fn new() -> SeriesSet {
        SeriesSet::default()
    }

    /// Appends a sample to the named series (created on first use).
    pub fn push(&mut self, name: &str, t: SimTime, v: f64) {
        self.series.entry(name.to_string()).or_default().push(t, v);
    }

    /// The named series.
    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// All series names.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// Long-format CSV: `series,time_s,value`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,time_s,value\n");
        for (name, s) in &self.series {
            for (t, v) in s.points() {
                let _ = writeln!(out, "{name},{:.6},{v}", t.as_secs_f64());
            }
        }
        out
    }

    /// JSON export (series name → [[t, v], …]), hand-rolled so the crate
    /// carries no serialization dependency.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (name, s)) in self.series.iter().enumerate() {
            let _ = write!(out, "  {}: [", json_string(name));
            for (j, (t, v)) in s.points().iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{}, {}]", json_f64(t.as_secs_f64()), json_f64(*v));
            }
            out.push(']');
            if i + 1 < self.series.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push('}');
        out
    }
}

/// Escapes a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Infinity, so those
/// are emitted as `null`).
pub fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return String::from("null");
    }
    if v == v.trunc() && v.abs() < 1e15 {
        // Keep integral values readable ("5.0" not "5").
        format!("{v:.1}")
    } else {
        // Shortest round-trippable representation.
        format!("{v}")
    }
}

/// A simple fixed-bucket histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// `n` equal buckets over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Histogram {
        assert!(hi > lo && n > 0);
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Records a value.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.buckets.len();
            let idx = ((v - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.buckets[idx.min(n - 1)] += 1;
        }
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Approximate quantile (bucket-resolution; in-range values only).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let in_range: u64 = self.buckets.iter().sum();
        if in_range == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * in_range as f64).ceil() as u64;
        let mut acc = 0;
        for (i, c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target.max(1) {
                let w = (self.hi - self.lo) / self.buckets.len() as f64;
                return Some(self.lo + w * (i as f64 + 0.5));
            }
        }
        Some(self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn series_basics() {
        let mut s = TimeSeries::new();
        s.push(t(0), 1.0);
        s.push(t(1), 3.0);
        s.push(t(2), 2.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.max(), Some(3.0));
        assert_eq!(s.mean(), Some(2.0));
        assert_eq!(s.last(), Some((t(2), 2.0)));
    }

    #[test]
    fn out_of_order_clamped() {
        let mut s = TimeSeries::new();
        s.push(t(5), 1.0);
        s.push(t(3), 2.0);
        assert_eq!(s.points()[1].0, t(5));
    }

    #[test]
    fn time_weighted_mean_weights_by_duration() {
        let mut s = TimeSeries::new();
        s.push(t(0), 10.0); // holds 1s
        s.push(t(1), 0.0); // holds 9s
        s.push(t(10), 0.0);
        // (10*1 + 0*9) / 10 = 1.0
        assert!((s.time_weighted_mean().unwrap() - 1.0).abs() < 1e-9);
        // Plain mean would say 3.33.
        assert!((s.mean().unwrap() - 10.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn value_at_steps() {
        let mut s = TimeSeries::new();
        s.push(t(1), 5.0);
        s.push(t(3), 7.0);
        assert_eq!(s.value_at(t(0)), None);
        assert_eq!(s.value_at(t(1)), Some(5.0));
        assert_eq!(s.value_at(t(2)), Some(5.0));
        assert_eq!(s.value_at(t(3)), Some(7.0));
        assert_eq!(s.value_at(t(99)), Some(7.0));
    }

    #[test]
    fn resample_keeps_bucket_last() {
        let mut s = TimeSeries::new();
        for ms in 0..1000u64 {
            s.push(SimTime::from_millis(ms), ms as f64);
        }
        let r = s.resample(SimDuration::from_millis(100));
        assert!(r.len() <= 11, "got {}", r.len());
        assert_eq!(r.last().unwrap().1, 999.0);
    }

    #[test]
    fn series_set_csv_and_json() {
        let mut set = SeriesSet::new();
        set.push("a", t(0), 1.5);
        set.push("a", t(1), 2.5);
        set.push("b", t(0), 9.0);
        let csv = set.to_csv();
        assert!(csv.starts_with("series,time_s,value\n"));
        assert!(csv.contains("a,0.000000,1.5"));
        assert!(csv.contains("b,0.000000,9"));
        let json = set.to_json();
        assert!(json.contains("\"a\""));
        assert_eq!(set.names(), vec!["a", "b"]);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean().unwrap() - 49.5).abs() < 1e-9);
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 - 50.0).abs() <= 1.0, "{p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= 97.0, "{p99}");
    }

    #[test]
    fn histogram_out_of_range() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-5.0);
        h.record(50.0);
        h.record(5.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.5), Some(5.5));
    }
}

//! A small self-contained JSON value type with parser — the workspace
//! builds offline, so report (de)serialization cannot lean on serde.
//! Handles the full JSON grammar; numbers are kept as `f64` (exact for
//! integers below 2^53, which covers every counter the reports emit).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document (must be a single value plus whitespace).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && *n == n.trunc() && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogate pairs are not emitted by our writers;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::Json;

    #[test]
    fn scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e3").unwrap(), Json::Num(-2500.0));
        assert_eq!(
            Json::parse("\"a\\nb\\u0041\"").unwrap(),
            Json::Str("a\nbA".into())
        );
    }

    #[test]
    fn nested() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_u64(), Some(2));
        assert!(arr[2].get("b").unwrap().is_null());
    }

    #[test]
    fn round_trips_own_writer() {
        let mut set = crate::SeriesSet::new();
        set.push("agg regate\"x", horse_sim::SimTime::from_millis(1500), 2.5);
        let v = Json::parse(&set.to_json()).unwrap();
        let pts = v.get("agg regate\"x").unwrap().as_array().unwrap();
        assert_eq!(pts[0].as_array().unwrap()[0].as_f64(), Some(1.5));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
    }
}

//! # horse-bench — figure-reproduction harnesses
//!
//! One binary per paper artifact (see DESIGN.md §4):
//!
//! | Binary | Artifact |
//! |---|---|
//! | `fig1_modes` | Figure 1 — DES↔FTI transitions, two BGP routers |
//! | `fig3_execution_time` | Figure 3 — Horse vs Mininet execution time, fat-trees k = 4/6/8 |
//! | `demo_goodput` | In-demo goodput graph — aggregate arrival rate per TE approach |
//! | `ablation_fti` | A1/A2 — FTI increment & quiescence sweeps |
//! | `ablation_fluid` | A3 — fluid vs packet-level data plane |
//!
//! plus `benches/micro.rs`, the Criterion micro-benchmarks over the hot
//! data structures.
//!
//! Every binary prints a human-readable table and writes JSON/CSV into
//! `bench_results/` at the workspace root.

use std::path::PathBuf;

/// Directory where harnesses drop their machine-readable outputs.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("HORSE_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("bench_results"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a string artifact into the results directory.
pub fn write_result(name: &str, contents: &str) {
    let path = results_dir().join(name);
    std::fs::write(&path, contents).expect("write result file");
    eprintln!("[wrote {}]", path.display());
}

/// Average shortest-path hop count for a set of host pairs — used by the
/// Mininet packet-hop estimate.
pub fn avg_hops(
    topo: &horse_net::topology::Topology,
    pairs: &[horse_topo::pattern::TrafficPair],
) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let total: usize = pairs
        .iter()
        .map(|p| topo.hop_distance(p.src, p.dst).unwrap_or(0))
        .sum();
    total as f64 / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use horse_topo::fattree::{FatTree, SwitchRole};
    use horse_topo::pattern::TrafficPattern;

    #[test]
    fn avg_hops_on_fattree() {
        let ft = FatTree::build(4, SwitchRole::OpenFlow, 1e9, 0);
        let pairs = TrafficPattern::RandomPermutation.pairs(&ft.hosts, 1);
        let h = avg_hops(&ft.topo, &pairs);
        // Fat-tree paths: 2 (same edge), 4 (same pod) or 6 (inter-pod).
        assert!((2.0..=6.0).contains(&h), "{h}");
    }
}

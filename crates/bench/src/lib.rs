//! # horse-bench — figure-reproduction harnesses
//!
//! One binary per paper artifact (see DESIGN.md §4):
//!
//! | Binary | Artifact |
//! |---|---|
//! | `fig1_modes` | Figure 1 — DES↔FTI transitions, two BGP routers |
//! | `fig3_execution_time` | Figure 3 — Horse vs Mininet execution time, fat-trees k = 4/6/8 |
//! | `demo_goodput` | In-demo goodput graph — aggregate arrival rate per TE approach |
//! | `ablation_fti` | A1/A2 — FTI increment & quiescence sweeps |
//! | `ablation_fluid` | A3 — fluid vs packet-level data plane |
//!
//! plus `benches/micro.rs`, the Criterion micro-benchmarks over the hot
//! data structures.
//!
//! Every binary prints a human-readable table and writes JSON/CSV into
//! `bench_results/` at the workspace root.

use horse_stats::{json_f64, json_string, SweepStats};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Directory where harnesses drop their machine-readable outputs
/// (`HORSE_RESULTS_DIR`, via [`horse_core::RunConfig`] — the single
/// `HORSE_*` parse point).
pub fn results_dir() -> PathBuf {
    let dir = horse_core::RunConfig::from_env().results_dir;
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a string artifact into the results directory.
pub fn write_result(name: &str, contents: &str) {
    let path = results_dir().join(name);
    std::fs::write(&path, contents).expect("write result file");
    eprintln!("[wrote {}]", path.display());
}

/// Wraps a harness's result rows in the standard pool envelope. Every
/// bin that executes its runs on the `horse-sweep` pool emits
///
/// ```json
/// {"threads": N, "wall_ms": …, "speedup_vs_serial": …,
///  "pool": {…counters…},
///  "runs": [{"label": …, "worker": …, "wall_ms": …}, …],
///  "rows": <the bin's own rows, unchanged shape>}
/// ```
///
/// so plotting scripts find a bin's data under `rows` and the execution
/// metadata in one place. `runs` are `(label, worker, wall_ms)` in plan
/// order; `rows` must already be valid JSON (array or object).
pub fn pool_envelope(stats: &SweepStats, runs: &[(String, usize, f64)], rows: &str) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"threads\": {},\n  \"wall_ms\": {},\n  \"speedup_vs_serial\": {},",
        stats.threads,
        json_f64(stats.elapsed_ms),
        json_f64(stats.speedup_vs_serial())
    );
    let _ = writeln!(out, "  \"pool\": {},", stats.to_json());
    out.push_str("  \"runs\": [\n");
    for (i, (label, worker, wall_ms)) in runs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"label\": {}, \"worker\": {}, \"wall_ms\": {}}}",
            json_string(label),
            worker,
            json_f64(*wall_ms)
        );
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let _ = write!(out, "  \"rows\": {rows}\n}}\n");
    out
}

// ---------------------------------------------------------------------------
// Shared argv parsing
//
// Every bin speaks one of three tiny positional grammars; the parsers
// below replace the per-bin `parse().unwrap()` copies so a typo'd
// argument produces the same `error: …` + `usage: …` on stderr and
// exit status 2 everywhere, instead of a raw panic backtrace.
// ---------------------------------------------------------------------------

/// Parses `[duration_s] [pods…]` — a leading fractional duration in
/// seconds, then zero or more pod counts (`fig3_execution_time`,
/// `sweep_scaling`).
pub fn try_duration_then_pods(
    args: impl Iterator<Item = String>,
    default_duration: f64,
    default_pods: &[usize],
) -> Result<(f64, Vec<usize>), String> {
    let mut args = args.peekable();
    let duration = match args.next() {
        None => default_duration,
        Some(a) => a
            .parse::<f64>()
            .map_err(|_| format!("invalid duration {a:?} (want seconds, e.g. 60 or 0.5)"))?,
    };
    if !duration.is_finite() || duration <= 0.0 {
        return Err(format!("invalid duration {duration:?} (must be > 0)"));
    }
    Ok((duration, parse_pods(args, default_pods)?))
}

/// Parses `[pods…]` — zero or more pod counts (`scaling`,
/// `pump_scaling`).
pub fn try_pods_list(
    args: impl Iterator<Item = String>,
    default_pods: &[usize],
) -> Result<Vec<usize>, String> {
    parse_pods(args, default_pods)
}

/// Parses `[k]` — at most one pod count (`rib_churn`, `solver_churn`).
pub fn try_single_k(
    mut args: impl Iterator<Item = String>,
    default_k: usize,
) -> Result<usize, String> {
    let k = match args.next() {
        None => default_k,
        Some(a) => parse_pod_count(&a)?,
    };
    if let Some(extra) = args.next() {
        return Err(format!("unexpected extra argument {extra:?}"));
    }
    Ok(k)
}

/// Parses `[k] [prefix_count]` — an optional pod count then an optional
/// synthetic-table size (`table_scale`).
pub fn try_k_then_prefixes(
    mut args: impl Iterator<Item = String>,
    default_k: usize,
    default_prefixes: usize,
) -> Result<(usize, usize), String> {
    let k = match args.next() {
        None => default_k,
        Some(a) => parse_pod_count(&a)?,
    };
    let prefixes = match args.next() {
        None => default_prefixes,
        Some(a) => parse_prefix_count(&a)?,
    };
    if let Some(extra) = args.next() {
        return Err(format!("unexpected extra argument {extra:?}"));
    }
    Ok((k, prefixes))
}

fn parse_prefix_count(arg: &str) -> Result<usize, String> {
    let n: usize = arg
        .parse()
        .map_err(|_| format!("invalid prefix count {arg:?} (want a positive integer)"))?;
    if n == 0 {
        return Err("invalid prefix count 0 (must be ≥ 1)".to_string());
    }
    Ok(n)
}

fn parse_pods(
    args: impl Iterator<Item = String>,
    default_pods: &[usize],
) -> Result<Vec<usize>, String> {
    let pods: Vec<usize> = args
        .map(|a| parse_pod_count(&a))
        .collect::<Result<_, _>>()?;
    Ok(if pods.is_empty() {
        default_pods.to_vec()
    } else {
        pods
    })
}

fn parse_pod_count(arg: &str) -> Result<usize, String> {
    let k: usize = arg
        .parse()
        .map_err(|_| format!("invalid pod count {arg:?} (want an even integer ≥ 2, e.g. 4)"))?;
    if k < 2 || !k.is_multiple_of(2) {
        return Err(format!(
            "invalid pod count {k} (fat-trees need an even k ≥ 2)"
        ));
    }
    Ok(k)
}

fn usage_exit(usage: &str, err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!("usage: {usage}");
    std::process::exit(2);
}

/// [`try_duration_then_pods`] over the real argv, exiting with status 2
/// and the bin's usage line on a parse failure.
pub fn duration_then_pods(
    usage: &str,
    default_duration: f64,
    default_pods: &[usize],
) -> (f64, Vec<usize>) {
    try_duration_then_pods(std::env::args().skip(1), default_duration, default_pods)
        .unwrap_or_else(|e| usage_exit(usage, &e))
}

/// [`try_pods_list`] over the real argv; exits 2 on failure.
pub fn pods_list(usage: &str, default_pods: &[usize]) -> Vec<usize> {
    try_pods_list(std::env::args().skip(1), default_pods).unwrap_or_else(|e| usage_exit(usage, &e))
}

/// [`try_single_k`] over the real argv; exits 2 on failure.
pub fn single_k(usage: &str, default_k: usize) -> usize {
    try_single_k(std::env::args().skip(1), default_k).unwrap_or_else(|e| usage_exit(usage, &e))
}

/// [`try_k_then_prefixes`] over the real argv; exits 2 on failure.
pub fn k_then_prefixes(usage: &str, default_k: usize, default_prefixes: usize) -> (usize, usize) {
    try_k_then_prefixes(std::env::args().skip(1), default_k, default_prefixes)
        .unwrap_or_else(|e| usage_exit(usage, &e))
}

/// Average shortest-path hop count for a set of host pairs — used by the
/// Mininet packet-hop estimate.
pub fn avg_hops(
    topo: &horse_net::topology::Topology,
    pairs: &[horse_topo::pattern::TrafficPair],
) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let total: usize = pairs
        .iter()
        .map(|p| topo.hop_distance(p.src, p.dst).unwrap_or(0))
        .sum();
    total as f64 / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use horse_topo::fattree::{FatTree, SwitchRole};
    use horse_topo::pattern::TrafficPattern;

    fn argv(items: &[&str]) -> impl Iterator<Item = String> {
        items
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn duration_then_pods_defaults_and_overrides() {
        assert_eq!(
            try_duration_then_pods(argv(&[]), 60.0, &[4, 6, 8]),
            Ok((60.0, vec![4, 6, 8]))
        );
        assert_eq!(
            try_duration_then_pods(argv(&["2.5", "4", "10"]), 60.0, &[4, 6, 8]),
            Ok((2.5, vec![4, 10]))
        );
        // Duration alone keeps the default grid.
        assert_eq!(
            try_duration_then_pods(argv(&["5"]), 60.0, &[4]),
            Ok((5.0, vec![4]))
        );
    }

    #[test]
    fn bad_arguments_name_the_offender() {
        let e = try_duration_then_pods(argv(&["fast"]), 60.0, &[4]).unwrap_err();
        assert!(e.contains("invalid duration \"fast\""), "{e}");
        let e = try_duration_then_pods(argv(&["-1"]), 60.0, &[4]).unwrap_err();
        assert!(e.contains("must be > 0"), "{e}");
        let e = try_pods_list(argv(&["4", "nope"]), &[4]).unwrap_err();
        assert!(e.contains("invalid pod count \"nope\""), "{e}");
        let e = try_pods_list(argv(&["7"]), &[4]).unwrap_err();
        assert!(e.contains("even k"), "{e}");
        let e = try_single_k(argv(&["8", "10"]), 8).unwrap_err();
        assert!(e.contains("unexpected extra argument \"10\""), "{e}");
        let e = try_k_then_prefixes(argv(&["8", "lots"]), 8, 1000).unwrap_err();
        assert!(e.contains("invalid prefix count \"lots\""), "{e}");
        let e = try_k_then_prefixes(argv(&["8", "0"]), 8, 1000).unwrap_err();
        assert!(e.contains("must be ≥ 1"), "{e}");
        let e = try_k_then_prefixes(argv(&["8", "10", "2"]), 8, 1000).unwrap_err();
        assert!(e.contains("unexpected extra argument \"2\""), "{e}");
        let e = try_k_then_prefixes(argv(&["9"]), 8, 1000).unwrap_err();
        assert!(e.contains("even k"), "{e}");
    }

    #[test]
    fn k_then_prefixes_defaults_and_overrides() {
        assert_eq!(try_k_then_prefixes(argv(&[]), 16, 4096), Ok((16, 4096)));
        assert_eq!(try_k_then_prefixes(argv(&["8"]), 16, 4096), Ok((8, 4096)));
        assert_eq!(
            try_k_then_prefixes(argv(&["8", "100000"]), 16, 4096),
            Ok((8, 100_000))
        );
    }

    #[test]
    fn pods_and_single_k_parse() {
        assert_eq!(try_pods_list(argv(&[]), &[4, 8]), Ok(vec![4, 8]));
        assert_eq!(try_pods_list(argv(&["12"]), &[4, 8]), Ok(vec![12]));
        assert_eq!(try_single_k(argv(&[]), 8), Ok(8));
        assert_eq!(try_single_k(argv(&["6"]), 8), Ok(6));
    }

    #[test]
    fn avg_hops_on_fattree() {
        let ft = FatTree::build(4, SwitchRole::OpenFlow, 1e9, 0);
        let pairs = TrafficPattern::RandomPermutation.pairs(&ft.hosts, 1);
        let h = avg_hops(&ft.topo, &pairs);
        // Fat-tree paths: 2 (same edge), 4 (same pod) or 6 (inter-pod).
        assert!((2.0..=6.0).contains(&h), "{h}");
    }
}

//! # horse-bench — figure-reproduction harnesses
//!
//! One binary per paper artifact (see DESIGN.md §4):
//!
//! | Binary | Artifact |
//! |---|---|
//! | `fig1_modes` | Figure 1 — DES↔FTI transitions, two BGP routers |
//! | `fig3_execution_time` | Figure 3 — Horse vs Mininet execution time, fat-trees k = 4/6/8 |
//! | `demo_goodput` | In-demo goodput graph — aggregate arrival rate per TE approach |
//! | `ablation_fti` | A1/A2 — FTI increment & quiescence sweeps |
//! | `ablation_fluid` | A3 — fluid vs packet-level data plane |
//!
//! plus `benches/micro.rs`, the Criterion micro-benchmarks over the hot
//! data structures.
//!
//! Every binary prints a human-readable table and writes JSON/CSV into
//! `bench_results/` at the workspace root.

use horse_stats::{json_f64, json_string, SweepStats};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Directory where harnesses drop their machine-readable outputs
/// (`HORSE_RESULTS_DIR`, via [`horse_core::RunConfig`] — the single
/// `HORSE_*` parse point).
pub fn results_dir() -> PathBuf {
    let dir = horse_core::RunConfig::from_env().results_dir;
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a string artifact into the results directory.
pub fn write_result(name: &str, contents: &str) {
    let path = results_dir().join(name);
    std::fs::write(&path, contents).expect("write result file");
    eprintln!("[wrote {}]", path.display());
}

/// Wraps a harness's result rows in the standard pool envelope. Every
/// bin that executes its runs on the `horse-sweep` pool emits
///
/// ```json
/// {"threads": N, "wall_ms": …, "speedup_vs_serial": …,
///  "pool": {…counters…},
///  "runs": [{"label": …, "worker": …, "wall_ms": …}, …],
///  "rows": <the bin's own rows, unchanged shape>}
/// ```
///
/// so plotting scripts find a bin's data under `rows` and the execution
/// metadata in one place. `runs` are `(label, worker, wall_ms)` in plan
/// order; `rows` must already be valid JSON (array or object).
pub fn pool_envelope(stats: &SweepStats, runs: &[(String, usize, f64)], rows: &str) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"threads\": {},\n  \"wall_ms\": {},\n  \"speedup_vs_serial\": {},",
        stats.threads,
        json_f64(stats.elapsed_ms),
        json_f64(stats.speedup_vs_serial())
    );
    let _ = writeln!(out, "  \"pool\": {},", stats.to_json());
    out.push_str("  \"runs\": [\n");
    for (i, (label, worker, wall_ms)) in runs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"label\": {}, \"worker\": {}, \"wall_ms\": {}}}",
            json_string(label),
            worker,
            json_f64(*wall_ms)
        );
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let _ = write!(out, "  \"rows\": {rows}\n}}\n");
    out
}

/// Average shortest-path hop count for a set of host pairs — used by the
/// Mininet packet-hop estimate.
pub fn avg_hops(
    topo: &horse_net::topology::Topology,
    pairs: &[horse_topo::pattern::TrafficPair],
) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let total: usize = pairs
        .iter()
        .map(|p| topo.hop_distance(p.src, p.dst).unwrap_or(0))
        .sum();
    total as f64 / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use horse_topo::fattree::{FatTree, SwitchRole};
    use horse_topo::pattern::TrafficPattern;

    #[test]
    fn avg_hops_on_fattree() {
        let ft = FatTree::build(4, SwitchRole::OpenFlow, 1e9, 0);
        let pairs = TrafficPattern::RandomPermutation.pairs(&ft.hosts, 1);
        let h = avg_hops(&ft.topo, &pairs);
        // Fat-tree paths: 2 (same edge), 4 (same pod) or 6 (inter-pod).
        assert!((2.0..=6.0).contains(&h), "{h}");
    }
}

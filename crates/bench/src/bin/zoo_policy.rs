//! X6 — Topology Zoo × BGP-policy sweep (the corpus-scale artifact).
//!
//! One `SweepPlan` converges real-world WAN graphs from the vendored
//! Topology Zoo corpus under each policy scenario (baseline, local-pref
//! traffic engineering, Gao–Rexford roles) and writes
//! `bench_results/zoo_policy.json`: one row per (topology, scenario)
//! with the convergence time (last DES↔FTI mode transition), control
//! message and table-write counters, and the run wall time, plus a
//! sweep-level FNV-1a digest of the semantic report — the
//! worker-count-independence key CI compares across 1/2/4 workers.
//!
//! ```text
//! usage: zoo_policy [topologies] [scenarios] [horizon_s]
//! ```
//!
//! `topologies` caps how many corpus graphs the plan sweeps (0 = all,
//! default 50, ordered by corpus name); `scenarios` takes the first N
//! of baseline/local-pref-te/gao-rexford (default 3); `horizon_s` is
//! the per-run horizon (default 10 s). CI's smoke job runs
//! `zoo_policy 10 1` twice at different `HORSE_THREADS` and diffs the
//! digests. The sweep executes on the crash-safe checkpoint path, so
//! `HORSE_SWEEP_MAX_RUNS` / `HORSE_CHECKPOINT_DIR` resume partial
//! corpus sweeps exactly like `sweep_resume`.

use horse_core::config::RunConfig;
use horse_core::report::ExperimentReport;
use horse_core::TeApproach;
use horse_sweep::{fnv1a64, CheckpointedRun, SweepPlan, TopologySpec, ALL_SCENARIOS};
use horse_topo::ZooCorpus;
use std::fmt::Write as _;

fn usage_exit(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!("usage: zoo_policy [topologies] [scenarios] [horizon_s]");
    std::process::exit(2);
}

fn parse_args() -> (usize, usize, f64) {
    let mut args = std::env::args().skip(1);
    let topologies = match args.next() {
        None => 50,
        Some(a) => match a.parse::<usize>() {
            Ok(n) => n,
            Err(_) => usage_exit(&format!("invalid topology count {a:?}")),
        },
    };
    let scenarios = match args.next() {
        None => ALL_SCENARIOS.len(),
        Some(a) => match a.parse::<usize>() {
            Ok(n) if (1..=ALL_SCENARIOS.len()).contains(&n) => n,
            _ => usage_exit(&format!(
                "invalid scenario count {a:?} (want 1..={})",
                ALL_SCENARIOS.len()
            )),
        },
    };
    let horizon_s = match args.next() {
        None => 10.0,
        Some(a) => match a.parse::<f64>() {
            Ok(h) if h.is_finite() && h > 0.0 => h,
            _ => usage_exit(&format!("invalid horizon {a:?} (want seconds > 0)")),
        },
    };
    if let Some(extra) = args.next() {
        usage_exit(&format!("unexpected extra argument {extra:?}"));
    }
    (topologies, scenarios, horizon_s)
}

fn plan(topologies: usize, scenarios: usize, horizon_s: f64) -> SweepPlan {
    let corpus = ZooCorpus::vendored();
    let names: Vec<&String> = if topologies == 0 {
        corpus.names().iter().collect()
    } else {
        corpus.names().iter().take(topologies).collect()
    };
    assert!(!names.is_empty(), "vendored zoo corpus is empty");
    SweepPlan::new(4242)
        .topologies(
            names
                .iter()
                .map(|n| TopologySpec::Zoo { name: (*n).clone() }),
        )
        .policies(ALL_SCENARIOS[..scenarios].to_vec())
        .approaches([TeApproach::BgpEcmp])
        .horizon_secs(horizon_s)
}

/// One (topology, scenario) row distilled from a run's semantic report.
fn row(run: &CheckpointedRun, semantic: &str) -> String {
    let report = ExperimentReport::from_json(semantic)
        .unwrap_or_else(|e| panic!("unparseable semantic report for {}: {e}", run.label));
    let converged_ns = report.transitions.last().map(|t| t.at.as_nanos());
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"label\": {}, \"run_index\": {}, \"converged_ns\": {}, \
         \"transitions\": {}, \"control_msgs\": {}, \"table_writes\": {}, \
         \"events_processed\": {}, \"wall_ms\": {}}}",
        horse_stats::json_string(&run.label),
        run.index,
        converged_ns.map_or("null".to_string(), |n| n.to_string()),
        report.transitions.len(),
        report.control_msgs,
        report.table_writes,
        report.events_processed,
        horse_stats::json_f64(run.wall_ms),
    );
    out
}

fn main() {
    let (topologies, scenarios, horizon_s) = parse_args();
    let cfg = RunConfig::from_env();
    let plan = plan(topologies, scenarios, horizon_s);
    let n_runs = plan.expand().len();
    println!(
        "zoo_policy: plan hash {:016x}, {} topologies x {} scenarios = {} runs, threads {}",
        plan.plan_hash(),
        if topologies == 0 {
            ZooCorpus::vendored().len()
        } else {
            topologies.min(ZooCorpus::vendored().len())
        },
        scenarios,
        n_runs,
        cfg.threads()
    );

    let sweep = match plan.execute_resumable(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "restored {}, executed {}, failed {}, pending {} (checkpoint {})",
        sweep.restored,
        sweep.executed,
        sweep.failed(),
        sweep.pending.len(),
        sweep.path.display()
    );
    if !sweep.is_complete() {
        println!("incomplete — rerun without HORSE_SWEEP_MAX_RUNS to finish");
        std::process::exit(3);
    }
    if sweep.failed() > 0 {
        eprintln!(
            "error: {} runs failed (see checkpoint records)",
            sweep.failed()
        );
        std::process::exit(1);
    }

    // The determinism contract's comparison key: identical across
    // worker counts and across interrupted-then-resumed invocations.
    let semantic = sweep.semantic_json();
    let digest = fnv1a64(semantic.as_bytes());

    let mut rows = String::from("[\n");
    for (i, run) in sweep.runs.iter().enumerate() {
        let horse_sweep::RunOutcome::Ok(sem) = &run.outcome else {
            unreachable!("failed runs rejected above");
        };
        rows.push_str("    ");
        rows.push_str(&row(run, sem));
        rows.push_str(if i + 1 < sweep.runs.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    rows.push_str("  ]");

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"plan_hash\": \"{:016x}\",", plan.plan_hash());
    let _ = writeln!(out, "  \"semantic_digest\": \"{digest:016x}\",");
    let _ = writeln!(out, "  \"threads\": {},", cfg.threads());
    let _ = writeln!(out, "  \"topologies\": {},", n_runs / scenarios);
    let _ = writeln!(out, "  \"scenarios\": {},", scenarios);
    let _ = writeln!(
        out,
        "  \"horizon_ns\": {},",
        horse_sim::SimDuration::from_secs_f64(horizon_s).as_nanos()
    );
    let _ = writeln!(out, "  \"runs\": {},", sweep.runs.len());
    let _ = writeln!(out, "  \"rows\": {rows}");
    out.push_str("}\n");
    horse_bench::write_result("zoo_policy.json", &out);
    println!("semantic digest {digest:016x}");
}

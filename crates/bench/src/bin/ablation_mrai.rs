//! **Ablation A4**: the MRAI timer — a real control-plane experiment of
//! the kind Horse exists to accelerate.
//!
//! BGP's MinRouteAdvertisementInterval trades convergence speed against
//! message load: a longer hold-down batches the transient announcements of
//! path hunting (fewer UPDATEs) but delays the propagation of good news
//! (slower convergence). The classic result (Griffin & Premore, ICNP'01)
//! is a U-shaped convergence curve with message count falling as MRAI
//! grows. This harness sweeps MRAI over the demo's k=4 BGP fat-tree and
//! over a WAN link-failure scenario — each run is an *emulated* BGP
//! network of 20–25 daemons that executes in milliseconds of wall time.
//!
//! All nine sweep points run together on the `horse-sweep` pool
//! (`HORSE_THREADS=1` for serial).
//!
//! Run: `cargo run --release -p horse-bench --bin ablation_mrai`

use horse_core::{ControlBuild, Experiment, ExperimentReport, TeApproach};
use horse_net::flow::FlowSpec;
use horse_sim::{SimDuration, SimTime};
use horse_sweep::{run_indexed, threads_from_env, TopoCache, TopologySpec};
use horse_topo::pattern::demo_tuple;
use horse_topo::{bgp_setups_for, waxman_wan};
use std::fmt::Write as _;

fn set_mrai(e: &mut Experiment, mrai: SimDuration) {
    if let ControlBuild::Bgp(setups) = &mut e.control {
        for s in setups.values_mut() {
            s.config.timers.mrai = mrai;
        }
    }
}

fn wan_failure(mrai_ms: u64) -> Experiment {
    let (topo, hosts, routers) = waxman_wan(25, 0.4, 0.2, 10e9, 7);
    let setups = bgp_setups_for(
        &topo,
        horse_bgp::session::TimerConfig {
            hold_time: SimDuration::from_secs(90),
            connect_retry: SimDuration::from_secs(1),
            mrai: SimDuration::from_millis(mrai_ms),
        },
    );
    // Cut a link on the (initial) path between the flow's endpoints:
    // use the direct neighbor link of the source router if present,
    // else the first router-router link.
    let src = hosts[0];
    let dst = hosts[13];
    let victim = topo
        .neighbors(routers[0])
        .into_iter()
        .find(|(_, _, n)| routers.contains(n))
        .map(|(lid, _, _)| lid)
        .expect("router-router link");
    let tuple = demo_tuple(&topo, src, dst, 0);
    let mut e = Experiment::new(topo)
        .flow(SimTime::ZERO, FlowSpec::cbr(src, dst, tuple, 1e9))
        .horizon_secs(40.0)
        .link_down(SimTime::from_secs(10), victim)
        .label("wan-mrai");
    e.control = ControlBuild::Bgp(setups);
    e
}

const FATTREE_MRAI_MS: [u64; 5] = [0, 100, 500, 1000, 5000];
const WAN_MRAI_MS: [u64; 4] = [0, 100, 1000, 5000];

enum Task {
    FatTreeConvergence { mrai_ms: u64 },
    WanFailure { mrai_ms: u64 },
}

impl Task {
    fn label(&self) -> String {
        match self {
            Task::FatTreeConvergence { mrai_ms } => format!("a4a-mrai{mrai_ms}ms"),
            Task::WanFailure { mrai_ms } => format!("a4b-mrai{mrai_ms}ms"),
        }
    }
}

fn main() {
    let threads = threads_from_env();
    let tasks: Vec<Task> = FATTREE_MRAI_MS
        .iter()
        .map(|&mrai_ms| Task::FatTreeConvergence { mrai_ms })
        .chain(
            WAN_MRAI_MS
                .iter()
                .map(|&mrai_ms| Task::WanFailure { mrai_ms }),
        )
        .collect();

    let cache = TopoCache::new();
    let (results, stats) = run_indexed(tasks.len(), threads, |i| match tasks[i] {
        Task::FatTreeConvergence { mrai_ms } => {
            let bt = cache.built(
                &TopologySpec::FatTree { k: 4 },
                TeApproach::BgpEcmp.switch_role(),
            );
            let mut e = Experiment::on_built(&bt, TeApproach::BgpEcmp, 42).horizon_secs(30.0);
            set_mrai(&mut e, SimDuration::from_millis(mrai_ms));
            e.run()
        }
        Task::WanFailure { mrai_ms } => wan_failure(mrai_ms).run(),
    });
    let reports: Vec<&ExperimentReport> = results.iter().map(|r| &r.value).collect();
    let (a4a, a4b) = reports.split_at(FATTREE_MRAI_MS.len());

    let mut rows = String::from("{\n    \"fattree_initial_convergence\": [\n");
    println!("== A4a: MRAI sweep — initial convergence, k=4 BGP fat-tree ==");
    println!(
        "{:>11} {:>14} {:>12} {:>12}",
        "mrai [ms]", "converged [s]", "msgs", "FTI [ms]"
    );
    for (mrai_ms, report) in FATTREE_MRAI_MS.iter().zip(a4a) {
        let conv = report
            .all_routed_at
            .map(|t| t.as_secs_f64())
            .unwrap_or(f64::NAN);
        println!(
            "{:>11} {:>14.3} {:>12} {:>12.1}",
            mrai_ms,
            conv,
            report.control_msgs,
            report.fti_time.as_millis_f64()
        );
        let _ = writeln!(
            rows,
            "      {{\"mrai_ms\": {mrai_ms}, \"converged_s\": {conv}, \
             \"msgs\": {}, \"fti_ms\": {}}},",
            report.control_msgs,
            report.fti_time.as_millis_f64()
        );
    }
    if rows.ends_with(",\n") {
        rows.truncate(rows.len() - 2);
        rows.push('\n');
    }
    rows.push_str("    ],\n    \"wan_failure_reconvergence\": [\n");

    println!();
    println!("== A4b: MRAI sweep — reconvergence after a WAN link failure ==");
    println!("(25-router Waxman WAN, victim link cut at t=10 s, one 1 Gbps flow)");
    println!(
        "{:>11} {:>16} {:>12}",
        "mrai [ms]", "restored by [s]", "msgs"
    );
    for (mrai_ms, report) in WAN_MRAI_MS.iter().zip(a4b) {
        // When did goodput return to full rate after the cut?
        let series = report.goodput.get("aggregate").expect("series");
        let mut restored = f64::NAN;
        let mut t = 10.0;
        while t <= 40.0 {
            let v = series.value_at(SimTime::from_secs_f64(t)).unwrap_or(0.0);
            if v > 0.99e9 {
                restored = t;
                break;
            }
            t += 0.1;
        }
        println!(
            "{:>11} {:>16.1} {:>12}",
            mrai_ms, restored, report.control_msgs
        );
        let _ = writeln!(
            rows,
            "      {{\"mrai_ms\": {mrai_ms}, \"restored_by_s\": {restored}, \
             \"msgs\": {}}},",
            report.control_msgs
        );
    }
    if rows.ends_with(",\n") {
        rows.truncate(rows.len() - 2);
        rows.push('\n');
    }
    rows.push_str("    ]\n  }");

    println!();
    println!(
        "reading: (a) initial convergence has no path hunting — every\n\
         announcement is news — so MRAI only adds latency (linear in the\n\
         hold-down) without saving messages; (b) failure reconvergence DOES\n\
         hunt, and the hold-down suppresses the transient announcements\n\
         (fewer UPDATEs) while withdrawals, being exempt, keep repair fast.\n\
         The canonical BGP timer trade-off, measured across dozens of\n\
         emulated daemons in milliseconds of wall time per run."
    );
    let runs: Vec<(String, usize, f64)> = tasks
        .iter()
        .zip(&results)
        .map(|(t, r)| (t.label(), r.worker, r.wall_ms))
        .collect();
    horse_bench::write_result(
        "ablation_mrai.json",
        &horse_bench::pool_envelope(&stats, &runs, &rows),
    );
}

//! **Flow scale**: the arena flow plane vs the map-keyed oracle shape
//! under flow churn, plus a concurrent-flow scaling curve.
//!
//! Two phases:
//!
//! 1. **Scaling curve** (runs first so per-row peak-RSS resets aren't
//!    floored by the replay state). Disjoint-rail topologies carry
//!    10k→100k concurrent flows through the arena
//!    [`FluidNetwork`]: one deferred mega-burst solves every rail
//!    component (sharded across `HORSE_RUN_THREADS` when > 1), then a
//!    stop/start churn loop with lazy completion draining measures the
//!    steady-state per-event cost. Each row records walls, the solver's
//!    cost counters (heap pushes/stale pops, accrual settles, scratch
//!    reuses, parallel rounds) and a per-row peak RSS.
//!
//! 2. **Differential replay** (the `HORSE_FLOW_MIN_SPEEDUP` gate). An
//!    identical randomized flow-churn script — bounded/unbounded starts,
//!    stops, link flaps, completion drains — runs through both shapes:
//!
//!    * **fast** — the arena [`FluidNetwork`]: dense slots, lazy byte
//!      accrual, completion min-heap, pooled waterfill scratch;
//!    * **oracle** — [`NaiveFluidNetwork`], the pre-refactor shape
//!      preserved verbatim: `BTreeMap` flow table, eager `advance` over
//!      every active flow, full-scan `next_completion`.
//!
//!    The replay asserts identical logical work (solves, flows/links
//!    touched, seed dlinks), identical completion sequences, matching
//!    rates, and a ≥ 3× reduction in per-event flow-plane work
//!    (accrual touches + completion-scan visits). The fast shape also
//!    replays once at `HORSE_RUN_THREADS` and once serially and must
//!    produce bitwise-identical rates — the parallel-component
//!    determinism contract.
//!
//! The JSON carries honest `cores` and `run_threads` fields; the
//! `HORSE_FLOW_MIN_SPEEDUP` wall gate is enforced only on multi-core
//! hosts (wall ratios on one core are scheduler noise).
//!
//! Run: `cargo run --release -p horse-bench --bin flow_scale --
//! [churn_ops] [max_flows]` (defaults: 600, 100000). Writes
//! `bench_results/flow_scale.json`.

use horse_core::RunConfig;
use horse_net::flow::{FiveTuple, FlowId, FlowSpec};
use horse_net::fluid::{Dirty, FluidNetwork, SolverStats};
use horse_net::fluid_naive::NaiveFluidNetwork;
use horse_net::topology::{LinkId, NodeId, Topology};
use horse_sim::SimTime;
use std::fmt::Write as _;
use std::net::Ipv4Addr;

const GBPS: f64 = 1e9;

/// Deterministic xorshift64* — the script must be identical across
/// shapes, reps and hosts.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

struct Rail {
    a: NodeId,
    b: NodeId,
    link: LinkId,
}

/// `n` disjoint host pairs, each joined by one 1 Gbps link — every rail
/// is an independent max–min component, so multi-rail bursts exercise
/// the parallel component shard.
fn rails_topo(n: usize) -> (Topology, Vec<Rail>) {
    let mut t = Topology::new();
    let sn: horse_net::addr::Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
    let mut rails = Vec::with_capacity(n);
    for i in 0..n {
        let hi = (i >> 8) as u8;
        let lo = (i & 0xff) as u8;
        let a = t.add_host(format!("a{i}"), Ipv4Addr::new(10, hi, lo, 1), sn);
        let b = t.add_host(format!("b{i}"), Ipv4Addr::new(10, hi, lo, 2), sn);
        let (link, ..) = t.add_link(a, b, GBPS, 0);
        rails.push(Rail { a, b, link });
    }
    (t, rails)
}

fn tuple_for(rail: usize, key: u16) -> FiveTuple {
    FiveTuple::udp(
        Ipv4Addr::new(10, (rail >> 8) as u8, (rail & 0xff) as u8, 1),
        key,
        Ipv4Addr::new(10, (rail >> 8) as u8, (rail & 0xff) as u8, 2),
        9,
    )
}

// ---------------------------------------------------------------------
// Phase 2: differential replay, oracle vs arena
// ---------------------------------------------------------------------

/// One scripted control-plane mutation (times are implicit: op `i` fires
/// at `i + 1` ms).
enum TraceOp {
    /// Start a flow on `rail` (`size` None = unbounded CBR).
    Start {
        rail: usize,
        demand: f64,
        size: Option<u64>,
        key: u16,
    },
    /// Retire the oldest still-active flow on `rail` (no-op when empty).
    StopOldest { rail: usize },
    /// Toggle `rail`'s link state.
    Flap { rail: usize },
}

fn build_script(n_rails: usize, ops: usize) -> Vec<TraceOp> {
    let mut rng = Rng(0x5eed_f10e_u64 | 1);
    let mut key = 1u16;
    (0..ops)
        .map(|_| {
            let rail = rng.below(n_rails as u64) as usize;
            match rng.below(100) {
                0..=59 => {
                    key = key.wrapping_add(1).max(1);
                    TraceOp::Start {
                        rail,
                        demand: (1 + rng.below(10)) as f64 * 1e8,
                        // ~70% bounded; 2–40 MB so completions interleave
                        // with the churn instead of piling up at the end.
                        size: (rng.below(10) < 7).then(|| (2 + rng.below(39)) * 1_000_000),
                        key,
                    }
                }
                60..=84 => TraceOp::StopOldest { rail },
                _ => TraceOp::Flap { rail },
            }
        })
        .collect()
}

/// The solver surface the replay needs — implemented by both shapes so
/// one replay function drives the identical logic through each.
trait FlowPlane {
    fn start_deferred(
        &mut self,
        now: SimTime,
        spec: FlowSpec,
        path: Vec<LinkId>,
        topo: &Topology,
    ) -> FlowId;
    fn flush(&mut self, topo: &Topology);
    fn stop(&mut self, now: SimTime, id: FlowId, topo: &Topology);
    fn advance(&mut self, now: SimTime);
    fn next_completion(&mut self) -> Option<(SimTime, FlowId)>;
    fn is_complete(&self, id: FlowId) -> bool;
    fn rate_of(&self, id: FlowId) -> Option<f64>;
    fn recompute_incremental(&mut self, topo: &Topology, dirty: &[Dirty]);
    fn flow_ids_vec(&self) -> Vec<FlowId>;
    fn solver_stats(&self) -> SolverStats;
}

macro_rules! impl_flow_plane {
    ($ty:ty) => {
        impl FlowPlane for $ty {
            fn start_deferred(
                &mut self,
                now: SimTime,
                spec: FlowSpec,
                path: Vec<LinkId>,
                topo: &Topology,
            ) -> FlowId {
                <$ty>::start_deferred(self, now, spec, path, topo).expect("valid flow")
            }
            fn flush(&mut self, topo: &Topology) {
                <$ty>::flush(self, topo);
            }
            fn stop(&mut self, now: SimTime, id: FlowId, topo: &Topology) {
                let _ = <$ty>::stop(self, now, id, topo);
            }
            fn advance(&mut self, now: SimTime) {
                <$ty>::advance(self, now);
            }
            fn next_completion(&mut self) -> Option<(SimTime, FlowId)> {
                <$ty>::next_completion(self)
            }
            fn is_complete(&self, id: FlowId) -> bool {
                <$ty>::is_complete(self, id)
            }
            fn rate_of(&self, id: FlowId) -> Option<f64> {
                <$ty>::rate_of(self, id)
            }
            fn recompute_incremental(&mut self, topo: &Topology, dirty: &[Dirty]) {
                let _ = <$ty>::recompute_incremental(self, topo, dirty);
            }
            fn flow_ids_vec(&self) -> Vec<FlowId> {
                self.flow_ids().collect()
            }
            fn solver_stats(&self) -> SolverStats {
                <$ty>::solver_stats(self)
            }
        }
    };
}

impl_flow_plane!(FluidNetwork);
impl_flow_plane!(NaiveFluidNetwork);

struct ReplayOut {
    stats: SolverStats,
    wall_secs: f64,
    /// (flow id, completion ns) in drain order.
    completions: Vec<(u64, u64)>,
    /// Final (flow id, rate bps) in ascending-id order.
    rates: Vec<(u64, f64)>,
}

fn replay<N: FlowPlane>(
    net: &mut N,
    base: &Topology,
    rails: &[Rail],
    script: &[TraceOp],
) -> ReplayOut {
    let mut topo = base.clone();
    // Oldest-first per-rail queues; completions remove by id.
    let mut by_rail: Vec<Vec<FlowId>> = vec![Vec::new(); rails.len()];
    let mut rail_of: Vec<usize> = Vec::new();
    let mut completions = Vec::new();
    let start = std::time::Instant::now();
    for (i, op) in script.iter().enumerate() {
        let now = SimTime::from_millis(i as u64 + 1);
        // Drain completions due before this op, exactly as the runner's
        // completion events would have fired.
        while let Some((tc, fid)) = net.next_completion() {
            if tc > now {
                break;
            }
            net.advance(tc);
            if !net.is_complete(fid) {
                continue; // refreshed prediction; re-query
            }
            net.stop(tc, fid, &topo);
            completions.push((fid.0, tc.as_nanos()));
            let r = rail_of[fid.0 as usize];
            by_rail[r].retain(|f| *f != fid);
        }
        match op {
            TraceOp::Start {
                rail,
                demand,
                size,
                key,
            } => {
                let r = &rails[*rail];
                let tuple = tuple_for(*rail, *key);
                let spec = match size {
                    Some(bytes) => FlowSpec::transfer(r.a, r.b, tuple, *demand, *bytes),
                    None => FlowSpec::cbr(r.a, r.b, tuple, *demand),
                };
                let fid = net.start_deferred(now, spec, vec![r.link], &topo);
                net.flush(&topo);
                by_rail[*rail].push(fid);
                if fid.0 as usize >= rail_of.len() {
                    rail_of.resize(fid.0 as usize + 1, usize::MAX);
                }
                rail_of[fid.0 as usize] = *rail;
            }
            TraceOp::StopOldest { rail } => {
                if !by_rail[*rail].is_empty() {
                    let fid = by_rail[*rail].remove(0);
                    net.stop(now, fid, &topo);
                }
            }
            TraceOp::Flap { rail } => {
                let lid = rails[*rail].link;
                let up = !topo.link(lid).up;
                topo.link_mut(lid).up = up;
                net.advance(now);
                net.recompute_incremental(&topo, &[Dirty::Link(lid)]);
            }
        }
    }
    let wall_secs = start.elapsed().as_secs_f64();
    let rates = net
        .flow_ids_vec()
        .into_iter()
        .map(|f| (f.0, net.rate_of(f).expect("active")))
        .collect();
    ReplayOut {
        stats: net.solver_stats(),
        wall_secs,
        completions,
        rates,
    }
}

/// Asserts the two replays computed the same experiment.
fn assert_differential(fast: &ReplayOut, naive: &ReplayOut) {
    assert_eq!(
        fast.completions.len(),
        naive.completions.len(),
        "completion counts diverge"
    );
    for (i, (f, n)) in fast.completions.iter().zip(&naive.completions).enumerate() {
        assert_eq!(f.0, n.0, "completion #{i}: different flow");
        assert!(
            f.1.abs_diff(n.1) <= 1_000,
            "completion #{i} (flow {}): {} ns vs {} ns",
            f.0,
            f.1,
            n.1
        );
    }
    assert_eq!(fast.rates.len(), naive.rates.len(), "active sets diverge");
    for ((fid, fr), (nid, nr)) in fast.rates.iter().zip(&naive.rates) {
        assert_eq!(fid, nid, "active sets diverge");
        assert!((fr - nr).abs() < 1.0, "flow {fid}: {fr} bps vs {nr} bps");
    }
    // Identical logical work: the closures, seeds and solve counts must
    // match exactly — only the bookkeeping shape differs.
    let (f, n) = (&fast.stats, &naive.stats);
    assert_eq!(f.solves, n.solves, "solve counts diverge");
    assert_eq!(f.full_solves, n.full_solves, "full-solve counts diverge");
    assert_eq!(f.seed_dlinks, n.seed_dlinks, "seed sets diverge");
    assert_eq!(f.flows_touched, n.flows_touched, "closures diverge");
    assert_eq!(f.links_touched, n.links_touched, "closures diverge");
}

// ---------------------------------------------------------------------
// Phase 1: concurrent-flow scaling curve (arena shape)
// ---------------------------------------------------------------------

struct CurveRow {
    flows: usize,
    rails: usize,
    setup_wall_secs: f64,
    churn_wall_secs: f64,
    churn_events: usize,
    completions: usize,
    stats: SolverStats,
    peak_rss_bytes: u64,
    rss_reset: bool,
}

fn run_curve_row(n_flows: usize, run_threads: usize) -> CurveRow {
    let n_rails = 256.min(n_flows / 4).max(1);
    let (topo, rails) = rails_topo(n_rails);
    let rss_reset = horse_core::report::reset_peak_rss();
    let mut net = FluidNetwork::new();
    net.set_run_threads(run_threads);
    let mut rng = Rng(0xcafe_0000 | n_flows as u64 | 1);

    // One deferred mega-burst: every rail is an independent component,
    // solved in one flush (sharded when run_threads > 1).
    let t0 = SimTime::from_millis(1);
    let setup_start = std::time::Instant::now();
    let mut active: Vec<FlowId> = Vec::with_capacity(n_flows);
    for i in 0..n_flows {
        let rail = i % n_rails;
        let r = &rails[rail];
        let tuple = tuple_for(rail, (i / n_rails + 1) as u16);
        let demand = (1 + rng.below(10)) as f64 * 1e8;
        // 1 in 5 bounded: enough completion traffic to exercise the heap
        // at scale without draining the experiment.
        let spec = if i % 5 == 0 {
            FlowSpec::transfer(
                r.a,
                r.b,
                tuple,
                demand,
                20_000_000 + rng.below(80) * 1_000_000,
            )
        } else {
            FlowSpec::cbr(r.a, r.b, tuple, demand)
        };
        active.push(
            net.start_deferred(t0, spec, vec![r.link], &topo)
                .expect("valid flow"),
        );
    }
    net.flush(&topo);
    let setup_wall_secs = setup_start.elapsed().as_secs_f64();

    // Steady-state churn: retire + replace one flow per event, draining
    // completions as they come due.
    let churn_events = 2_000.min(n_flows / 2);
    let mut completions = 0usize;
    let mut retired = vec![false; active.len() + churn_events];
    let churn_start = std::time::Instant::now();
    let mut key = 60_000u16;
    for e in 0..churn_events {
        let now = SimTime::from_millis(2 + e as u64);
        while let Some((tc, fid)) = net.next_completion() {
            if tc > now {
                break;
            }
            net.advance(tc);
            if !net.is_complete(fid) {
                continue;
            }
            let _ = net.stop(tc, fid, &topo);
            retired[fid.0 as usize] = true;
            completions += 1;
        }
        // Round-robin victim; skip ids already gone.
        let victim = active[(e * 7919) % active.len()];
        if !retired[victim.0 as usize] {
            let _ = net.stop(now, victim, &topo);
            retired[victim.0 as usize] = true;
        }
        let rail = e % n_rails;
        let r = &rails[rail];
        key = key.wrapping_add(1).max(1);
        let spec = FlowSpec::cbr(
            r.a,
            r.b,
            tuple_for(rail, key),
            (1 + rng.below(10)) as f64 * 1e8,
        );
        let fid = net
            .start_deferred(now, spec, vec![r.link], &topo)
            .expect("valid flow");
        net.flush(&topo);
        if fid.0 as usize >= retired.len() {
            retired.resize(fid.0 as usize + 1, false);
        }
    }
    let churn_wall_secs = churn_start.elapsed().as_secs_f64();
    CurveRow {
        flows: n_flows,
        rails: n_rails,
        setup_wall_secs,
        churn_wall_secs,
        churn_events,
        completions,
        stats: net.solver_stats(),
        peak_rss_bytes: horse_core::report::peak_rss_bytes(),
        rss_reset,
    }
}

fn stats_json(s: &SolverStats) -> String {
    format!(
        "{{\"solves\": {}, \"full_solves\": {}, \"flows_touched\": {}, \
         \"links_touched\": {}, \"iterations\": {}, \"work\": {}, \
         \"seed_dlinks\": {}, \"advance_touches\": {}, \"completion_visits\": {}, \
         \"heap_pushes\": {}, \"heap_stale_pops\": {}, \"scratch_reuses\": {}, \
         \"parallel_rounds\": {}, \"parallel_components\": {}}}",
        s.solves,
        s.full_solves,
        s.flows_touched,
        s.links_touched,
        s.iterations,
        s.work,
        s.seed_dlinks,
        s.advance_touches,
        s.completion_visits,
        s.heap_pushes,
        s.heap_stale_pops,
        s.scratch_reuses,
        s.parallel_rounds,
        s.parallel_components,
    )
}

fn parse_args() -> (usize, usize) {
    let usage = "flow_scale [churn_ops] [max_flows]";
    let mut args = std::env::args().skip(1);
    let mut next = |default: usize, what: &str| match args.next() {
        None => default,
        Some(a) => match a.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("error: invalid {what} {a:?} (want a positive integer)");
                eprintln!("usage: {usage}");
                std::process::exit(2);
            }
        },
    };
    let ops = next(600, "churn_ops");
    let max_flows = next(100_000, "max_flows");
    if let Some(extra) = args.next() {
        eprintln!("error: unexpected extra argument {extra:?}");
        eprintln!("usage: {usage}");
        std::process::exit(2);
    }
    (ops, max_flows)
}

fn main() {
    let cfg = RunConfig::from_env();
    let (churn_ops, max_flows) = parse_args();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let run_threads = cfg.run_threads();

    println!("== Flow scale: arena flow plane vs map-keyed oracle ==");

    // ---- Phase 1: concurrent-flow curve (runs first for clean RSS) ----
    println!("phase 1: run_threads={run_threads} (HORSE_RUN_THREADS), cores={cores}");
    println!(
        "{:>8} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8} {:>9}",
        "flows", "rails", "setup (s)", "churn (s)", "ev/s", "stale", "settles", "par", "rss MiB"
    );
    let points: Vec<usize> = [10_000, 25_000, 50_000, 100_000]
        .into_iter()
        .filter(|n| *n <= max_flows)
        .collect();
    let points = if points.is_empty() {
        vec![max_flows]
    } else {
        points
    };
    let mut rows = Vec::new();
    for n in points {
        let row = run_curve_row(n, run_threads);
        println!(
            "{:>8} {:>6} {:>10.3} {:>10.3} {:>10.0} {:>10} {:>10} {:>8} {:>9.1}",
            row.flows,
            row.rails,
            row.setup_wall_secs,
            row.churn_wall_secs,
            row.churn_events as f64 / row.churn_wall_secs.max(1e-9),
            row.stats.heap_stale_pops,
            row.stats.advance_touches,
            row.stats.parallel_rounds,
            row.peak_rss_bytes as f64 / (1024.0 * 1024.0),
        );
        rows.push(row);
    }
    if !rows[0].rss_reset {
        println!("  note: /proc/self/clear_refs reset unavailable; rss is lifetime peak");
    }

    // ---- Phase 2: differential replay, oracle vs arena ----
    let n_rails = 16;
    let (topo, rails) = rails_topo(n_rails);
    let script = build_script(n_rails, churn_ops);

    // Thread-count invariance first: serial and sharded arena replays
    // must agree bitwise on every allocation.
    let mut serial_net = FluidNetwork::new();
    let serial = replay(&mut serial_net, &topo, &rails, &script);
    if run_threads > 1 {
        let mut par_net = FluidNetwork::new();
        par_net.set_run_threads(run_threads);
        let par = replay(&mut par_net, &topo, &rails, &script);
        assert_eq!(
            serial.completions, par.completions,
            "thread count changed completions"
        );
        for ((fid, sr), (pid, pr)) in serial.rates.iter().zip(&par.rates) {
            assert_eq!(fid, pid);
            assert_eq!(
                sr.to_bits(),
                pr.to_bits(),
                "flow {fid}: rate not bitwise thread-invariant"
            );
        }
    }

    // Interleaved min-wall pairs reject scheduler bursts.
    let mut fast_wall = f64::INFINITY;
    let mut naive_wall = f64::INFINITY;
    let mut fast_out = None;
    let mut naive_out = None;
    for _ in 0..2 {
        let mut fnet = FluidNetwork::new();
        fnet.set_run_threads(run_threads);
        let f = replay(&mut fnet, &topo, &rails, &script);
        let mut nnet = NaiveFluidNetwork::new();
        let n = replay(&mut nnet, &topo, &rails, &script);
        fast_wall = fast_wall.min(f.wall_secs);
        naive_wall = naive_wall.min(n.wall_secs);
        fast_out = Some(f);
        naive_out = Some(n);
    }
    let fast = fast_out.expect("ran");
    let naive = naive_out.expect("ran");
    assert_differential(&fast, &naive);

    let fast_work = fast.stats.advance_touches + fast.stats.completion_visits;
    let naive_work = naive.stats.advance_touches + naive.stats.completion_visits;
    let work_ratio = naive_work as f64 / fast_work.max(1) as f64;
    let wall_ratio = naive_wall / fast_wall.max(1e-9);

    println!();
    println!(
        "phase 2: {n_rails} rails, {churn_ops} ops, {} completions, {} final flows",
        fast.completions.len(),
        fast.rates.len()
    );
    println!(
        "  fast (arena):   {:>8.2} ms   accrual {:>9}  completion-visits {:>9}",
        fast_wall * 1e3,
        fast.stats.advance_touches,
        fast.stats.completion_visits
    );
    println!(
        "  oracle (maps):  {:>8.2} ms   accrual {:>9}  completion-visits {:>9}",
        naive_wall * 1e3,
        naive.stats.advance_touches,
        naive.stats.completion_visits
    );
    println!("  per-event work ratio (oracle/arena): {work_ratio:.1}x");
    println!("  wall ratio (oracle/arena): {wall_ratio:.2}x");
    if cores == 1 {
        println!("  note: single-core host; wall numbers carry scheduler noise");
    }
    assert!(
        work_ratio >= 3.0,
        "expected >=3x less per-event flow-plane work, got {work_ratio:.2}x"
    );

    let gate_applied = cfg.flow_min_speedup.is_some() && cores > 1;
    let mut rows_json = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            rows_json.push_str(", ");
        }
        let _ = write!(
            rows_json,
            "{{\"flows\": {}, \"rails\": {}, \"setup_wall_secs\": {}, \
             \"churn_wall_secs\": {}, \"churn_events\": {}, \"completions\": {}, \
             \"mem_peak_rss_bytes\": {}, \"rss_reset\": {}, \"stats\": {}}}",
            r.flows,
            r.rails,
            r.setup_wall_secs,
            r.churn_wall_secs,
            r.churn_events,
            r.completions,
            r.peak_rss_bytes,
            r.rss_reset,
            stats_json(&r.stats),
        );
    }
    rows_json.push(']');
    let gate_json = match cfg.flow_min_speedup {
        Some(min) => format!("{min}"),
        None => "null".into(),
    };
    let json = format!(
        "{{\n  \"cores\": {cores},\n  \"run_threads\": {run_threads},\n  \
         \"flow_min_speedup\": {gate_json},\n  \"gate_applied\": {gate_applied},\n  \
         \"differential\": {{\"rails\": {n_rails}, \"ops\": {churn_ops}, \
         \"completions\": {}, \"final_flows\": {}, \
         \"fast_wall_secs\": {fast_wall}, \"naive_wall_secs\": {naive_wall}, \
         \"wall_ratio\": {wall_ratio}, \"work_ratio\": {work_ratio}, \
         \"fast\": {}, \"naive\": {}}},\n  \"rows\": {rows_json}\n}}\n",
        fast.completions.len(),
        fast.rates.len(),
        stats_json(&fast.stats),
        stats_json(&naive.stats),
    );
    horse_bench::write_result("flow_scale.json", &json);

    if let Some(min) = cfg.flow_min_speedup {
        if gate_applied {
            assert!(
                wall_ratio >= min,
                "flow-plane speedup {wall_ratio:.2}x below HORSE_FLOW_MIN_SPEEDUP={min}"
            );
        } else {
            println!("  HORSE_FLOW_MIN_SPEEDUP={min} skipped: cores={cores} (must be > 1)");
        }
    }
}

//! Checkpoint/resume smoke harness — exercises the crash-safe sweep
//! path end to end so CI can prove resume byte-identity without a real
//! SIGKILL:
//!
//! 1. `HORSE_CHECKPOINT_DIR=ckpt HORSE_SWEEP_MAX_RUNS=2 sweep_resume`
//!    executes two runs, flushes their JSONL records, and exits with
//!    status 3 (incomplete).
//! 2. A second invocation without the cap restores those records,
//!    executes only the remainder, and writes `sweep_resume.json`.
//! 3. A clean run into a different checkpoint dir must produce a
//!    byte-identical `sweep_resume.json` (CI diffs the two).
//!
//! The plan is small but heterogeneous — a fat-tree and a zoo WAN on
//! the topology axis, baseline and Gao–Rexford policies, and a
//! percentile link failure (the topology-generic victim selector) — so
//! the semantic report actually depends on run identity and the
//! checkpoint path covers every new grid axis.

use horse_core::config::RunConfig;
use horse_core::TeApproach;
use horse_sim::SimTime;
use horse_sweep::{FailureScenario, PolicyScenario, SweepPlan, TopologySpec};

fn plan() -> SweepPlan {
    SweepPlan::new(42)
        .topologies([
            TopologySpec::FatTree { k: 4 },
            TopologySpec::Zoo {
                name: "Abilene".to_string(),
            },
        ])
        .policies([PolicyScenario::Baseline, PolicyScenario::GaoRexford])
        .approaches([TeApproach::BgpEcmp])
        .failures([
            FailureScenario::None,
            FailureScenario::LinkPercentile {
                pct: 50,
                at: SimTime::from_secs(1),
                restore: None,
            },
        ])
        .horizon_secs(2.0)
}

fn main() {
    let cfg = RunConfig::from_env();
    let plan = plan();
    println!(
        "plan hash {:016x}, {} runs, threads {}",
        plan.plan_hash(),
        plan.expand().len(),
        cfg.threads()
    );

    let sweep = match plan.execute_resumable(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "restored {}, executed {}, failed {}, pending {} (checkpoint {})",
        sweep.restored,
        sweep.executed,
        sweep.failed(),
        sweep.pending.len(),
        sweep.path.display()
    );
    for run in &sweep.runs {
        let origin = if run.restored { "restored" } else { "ran" };
        println!("  [{origin}] #{:<3} {}", run.index, run.label);
    }

    if !sweep.is_complete() {
        println!("incomplete — rerun without HORSE_SWEEP_MAX_RUNS to finish");
        std::process::exit(3);
    }
    horse_bench::write_result("sweep_resume.json", &sweep.semantic_json());
}

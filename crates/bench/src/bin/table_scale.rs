//! **Table scale**: compact-id arenas vs address-keyed maps as routing
//! tables grow, plus a node/prefix scaling curve for the memory shape.
//!
//! Two phases:
//!
//! 1. **Decide-path speedup** (the `HORSE_TABLE_MIN_SPEEDUP` gate). A
//!    k-pod BGP fat-tree whose edge routers originate a synthetic prefix
//!    table runs to convergence plus two agg–core session flaps on the
//!    live speakers, with every decoded UPDATE and session transition
//!    tapped. The identical trace is then replayed through two RIBs with
//!    the same logical read pattern (memoized decide per affected prefix,
//!    per-peer export cache):
//!
//!    * **new** — the compact-id [`LocRib`]: interned `PrefixId`s, dense
//!      `Vec` candidate arenas, `Vec` decision cache, exports keyed by raw
//!      attr-id integers;
//!    * **old** — [`BtreeRib`], the pre-refactor shape preserved verbatim:
//!      `BTreeMap<Ipv4Prefix, …>` candidate index and decision cache,
//!      `BTreeMap<(peer, AttrId), …>` export cache.
//!
//!    Only the keying differs, so the wall ratio isolates the memory
//!    shape: id-indexed loads vs tree walks over struct keys.
//!
//! 2. **Scaling curve**. Deterministic PoP WANs
//!    ([`horse_topo::pop_wan`]) of ~100, ~250 and 1000 routers, whose
//!    leaf routers originate shares of a synthetic /24 table (up to
//!    ~100k prefixes at the top point), converge through the real
//!    [`horse_core::Experiment`] readiness pump — the same code path a
//!    user's run takes, including `HORSE_RUN_THREADS` drain sharding and
//!    the per-run shared attribute/prefix pools. Each row records wall
//!    seconds, messages, RIB work counters, pool sizes, parallel-pump
//!    counters and a *per-row* peak RSS (the kernel's high-water mark is
//!    reset before each row via `/proc/self/clear_refs`; a `rss_reset`
//!    flag in the JSON says whether that worked). The curve executes
//!    *before* phase 1: the reset can only drop the high-water mark to
//!    the current RSS, so an earlier phase's retained allocations would
//!    floor every row's reported peak.
//!
//! The JSON carries honest `cores` and `run_threads` fields so
//! multi-core CI gates and laptop runs read comparably: a 1-core host
//! can record `run_threads: 4` wall numbers, but only a multi-core one
//! may gate on them.
//!
//! Run: `cargo run --release -p horse-bench --bin table_scale -- [k]
//! [prefix_count]` (defaults: 16, 100000). Writes
//! `bench_results/table_scale.json`. Set `HORSE_TABLE_MIN_SPEEDUP` to
//! gate on the phase-1 wall ratio, and `HORSE_RUN_MIN_SPEEDUP` (with
//! `HORSE_RUN_THREADS` > 1 on a multi-core host) to gate on the phase-2
//! parallel-pump speedup over a serial rerun of the middle row.

use horse_bgp::msg::{Message, UpdateMsg};
use horse_bgp::rib::{AttrId, Decision, LocRib, RibStats};
use horse_bgp::session::TimerConfig;
use horse_bgp::speaker::{BgpSpeaker, SpeakerOutput};
use horse_bgp::BtreeRib;
use horse_core::{ControlBuild, Experiment, RunConfig};
use horse_net::addr::Ipv4Prefix;
use horse_net::intern::PrefixId;
use horse_net::topology::{NodeId, Topology};
use horse_sim::{SimDuration, SimTime};
use horse_topo::fattree::{BgpNodeSetup, FatTree, SwitchRole};
use horse_topo::{bgp_setups_with_networks, pop_wan};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt::Write as _;
use std::net::Ipv4Addr;

/// The `g`-th synthetic /24 (32.0.0.0/3 space — room for 2M groups
/// without colliding with the 10/8 and 172.16/12 pools the topologies
/// use).
fn synth_prefix(g: u32) -> Ipv4Prefix {
    Ipv4Prefix::new(Ipv4Addr::from(0x2000_0000 | (g << 8)), 24)
}

fn timers() -> TimerConfig {
    TimerConfig {
        // Zero disables keepalives; the phase-1 FIFO harness never polls
        // timers, so sessions live for the whole run.
        hold_time: SimDuration::ZERO,
        connect_retry: SimDuration::from_secs(1),
        mrai: SimDuration::ZERO,
    }
}

/// Phase-2 timers: a nonzero MRAI batches announcements into synchronous
/// rounds, so WAN path exploration is bounded by the topology diameter
/// instead of hunting through every transient path (RFC 4271 §9.2.1.1 —
/// exactly why the knob exists). Without it the 1000-node row explodes
/// into millions of transient UPDATEs.
fn timers_wan() -> TimerConfig {
    TimerConfig {
        hold_time: SimDuration::ZERO,
        connect_retry: SimDuration::from_secs(1),
        mrai: SimDuration::from_millis(100),
    }
}

/// One tapped event at a node, in global delivery order.
enum Ev {
    Up(Ipv4Addr),
    Down(Ipv4Addr),
    Update(Ipv4Addr, UpdateMsg),
}

/// The live network: one real speaker per router, bytes shuttled over an
/// in-memory FIFO.
struct Net {
    speakers: BTreeMap<NodeId, BgpSpeaker>,
    owner: BTreeMap<Ipv4Addr, NodeId>,
}

impl Net {
    fn build(setups: &BTreeMap<NodeId, BgpNodeSetup>) -> Net {
        let mut speakers = BTreeMap::new();
        let mut owner = BTreeMap::new();
        for (node, setup) in setups {
            for p in &setup.config.peers {
                owner.insert(p.local_addr, *node);
            }
            speakers.insert(*node, BgpSpeaker::new(setup.config.clone()));
        }
        Net { speakers, owner }
    }

    /// Starts every speaker and brings every transport up.
    fn start_all(&mut self, now: SimTime) {
        for s in self.speakers.values_mut() {
            s.start(now);
        }
        let ups: Vec<(NodeId, Vec<Ipv4Addr>)> = self
            .speakers
            .iter()
            .map(|(n, s)| (*n, s.config.peers.iter().map(|p| p.peer_addr).collect()))
            .collect();
        for (n, peers) in ups {
            for p in peers {
                self.speakers
                    .get_mut(&n)
                    .expect("node")
                    .on_transport_up(p, now);
            }
        }
    }

    /// Shuttles bytes until quiescent. With a tap, every decoded inbound
    /// UPDATE and session transition is appended (the phase-1 replay
    /// trace); without, the wire bytes move undecoded.
    fn drain(&mut self, now: SimTime, mut tap: Option<&mut Vec<(NodeId, Ev)>>) -> bool {
        let nodes: Vec<NodeId> = self.speakers.keys().copied().collect();
        let mut moved_any = false;
        loop {
            let mut moved = false;
            for n in &nodes {
                let outs = self.speakers.get_mut(n).expect("node").take_outputs();
                for out in outs {
                    match out {
                        SpeakerOutput::SendBytes { peer, bytes } => {
                            let to = self.owner[&peer];
                            let from = self.speakers[n]
                                .config
                                .peers
                                .iter()
                                .find(|p| p.peer_addr == peer)
                                .expect("configured peer")
                                .local_addr;
                            if let Some(trace) = tap.as_deref_mut() {
                                let mut off = 0;
                                while off < bytes.len() {
                                    let (m, used) = Message::decode(&bytes[off..])
                                        .expect("valid wire bytes")
                                        .expect("complete message");
                                    off += used;
                                    if let Message::Update(u) = m {
                                        trace.push((to, Ev::Update(from, u)));
                                    }
                                }
                            }
                            self.speakers
                                .get_mut(&to)
                                .expect("node")
                                .on_bytes(from, now, &bytes);
                            moved = true;
                        }
                        SpeakerOutput::SessionUp { peer } => {
                            if let Some(trace) = tap.as_deref_mut() {
                                trace.push((*n, Ev::Up(peer)));
                            }
                        }
                        SpeakerOutput::SessionDown { peer } => {
                            if let Some(trace) = tap.as_deref_mut() {
                                trace.push((*n, Ev::Down(peer)));
                            }
                        }
                        SpeakerOutput::RouteChanged { .. } => {}
                    }
                }
            }
            if !moved {
                return moved_any;
            }
            moved_any = true;
        }
    }
}

/// Replay state over the compact-id RIB, mirroring the speaker's read
/// path: memoized decide per affected id, per-peer export cache keyed by
/// the raw attr-id integer.
struct NewNode {
    rib: LocRib,
    asn: u16,
    established: BTreeSet<Ipv4Addr>,
    remote_as: BTreeMap<Ipv4Addr, u16>,
    local_addr: BTreeMap<Ipv4Addr, Ipv4Addr>,
    export: HashMap<(Ipv4Addr, u32), Option<AttrId>>,
}

impl NewNode {
    fn export(&mut self, peer: Ipv4Addr, d: &Decision) {
        if d.best.peer == peer {
            return; // split horizon, outside the cache
        }
        let key = (peer, d.best.attr_id.index());
        if self.export.contains_key(&key) {
            return;
        }
        let val = if d.best.attrs.contains_asn(self.remote_as[&peer]) {
            None
        } else {
            let mut out = d.best.attrs.prepended(self.asn);
            out.next_hop = self.local_addr[&peer];
            out.local_pref = None;
            out.med = None;
            Some(self.rib.intern_attrs(out))
        };
        self.export.insert(key, val);
    }

    fn sync(&mut self, ids: &[PrefixId]) {
        let peers: Vec<Ipv4Addr> = self.established.iter().copied().collect();
        for &id in ids {
            let _ = self.rib.decide_id(id);
            for q in &peers {
                if let Some(d) = self.rib.decide_id(id) {
                    self.export(*q, &d);
                }
            }
        }
    }
}

/// Replay state over the address-keyed baseline — the identical logical
/// read pattern, keyed by the structs themselves.
struct OldNode {
    rib: BtreeRib,
    asn: u16,
    established: BTreeSet<Ipv4Addr>,
    remote_as: BTreeMap<Ipv4Addr, u16>,
    local_addr: BTreeMap<Ipv4Addr, Ipv4Addr>,
    export: BTreeMap<(Ipv4Addr, AttrId), Option<AttrId>>,
}

impl OldNode {
    fn export(&mut self, peer: Ipv4Addr, d: &Decision) {
        if d.best.peer == peer {
            return;
        }
        let key = (peer, d.best.attr_id);
        if self.export.contains_key(&key) {
            return;
        }
        let val = if d.best.attrs.contains_asn(self.remote_as[&peer]) {
            None
        } else {
            let mut out = d.best.attrs.prepended(self.asn);
            out.next_hop = self.local_addr[&peer];
            out.local_pref = None;
            out.med = None;
            Some(self.rib.intern_attrs(out))
        };
        self.export.insert(key, val);
    }

    fn sync(&mut self, prefixes: &BTreeSet<Ipv4Prefix>) {
        let peers: Vec<Ipv4Addr> = self.established.iter().copied().collect();
        for p in prefixes {
            let _ = self.rib.decide(*p);
            for q in &peers {
                if let Some(d) = self.rib.decide(*p) {
                    self.export(*q, &d);
                }
            }
        }
    }
}

fn replay_new(setups: &BTreeMap<NodeId, BgpNodeSetup>, trace: &[(NodeId, Ev)]) -> (RibStats, f64) {
    let mut nodes: BTreeMap<NodeId, NewNode> = setups
        .iter()
        .map(|(n, s)| {
            let mut rib = LocRib::new(s.config.asn, s.config.multipath);
            for net in &s.config.networks {
                rib.originate(*net, s.config.router_id);
            }
            (
                *n,
                NewNode {
                    rib,
                    asn: s.config.asn,
                    established: BTreeSet::new(),
                    remote_as: s
                        .config
                        .peers
                        .iter()
                        .map(|p| (p.peer_addr, p.remote_as))
                        .collect(),
                    local_addr: s
                        .config
                        .peers
                        .iter()
                        .map(|p| (p.peer_addr, p.local_addr))
                        .collect(),
                    export: HashMap::new(),
                },
            )
        })
        .collect();
    let start = std::time::Instant::now();
    for (at, ev) in trace {
        let node = nodes.get_mut(at).expect("node");
        match ev {
            Ev::Up(peer) => {
                node.established.insert(*peer);
                let all = node.rib.live_prefix_ids();
                for &id in &all {
                    if let Some(d) = node.rib.decide_id(id) {
                        node.export(*peer, &d);
                    }
                }
            }
            Ev::Down(peer) => {
                node.established.remove(peer);
                let affected = node.rib.drop_peer(*peer);
                node.sync(&affected);
            }
            Ev::Update(from, u) => {
                let affected = node.rib.update_from_peer(*from, true, u);
                node.sync(&affected);
            }
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let mut total = RibStats::default();
    for n in nodes.values() {
        total.merge(&n.rib.stats());
    }
    (total, wall)
}

fn replay_old(setups: &BTreeMap<NodeId, BgpNodeSetup>, trace: &[(NodeId, Ev)]) -> (RibStats, f64) {
    let mut nodes: BTreeMap<NodeId, OldNode> = setups
        .iter()
        .map(|(n, s)| {
            let mut rib = BtreeRib::new(s.config.asn, s.config.multipath);
            for net in &s.config.networks {
                rib.originate(*net, s.config.router_id);
            }
            (
                *n,
                OldNode {
                    rib,
                    asn: s.config.asn,
                    established: BTreeSet::new(),
                    remote_as: s
                        .config
                        .peers
                        .iter()
                        .map(|p| (p.peer_addr, p.remote_as))
                        .collect(),
                    local_addr: s
                        .config
                        .peers
                        .iter()
                        .map(|p| (p.peer_addr, p.local_addr))
                        .collect(),
                    export: BTreeMap::new(),
                },
            )
        })
        .collect();
    let start = std::time::Instant::now();
    for (at, ev) in trace {
        let node = nodes.get_mut(at).expect("node");
        match ev {
            Ev::Up(peer) => {
                node.established.insert(*peer);
                let all = node.rib.prefixes();
                for p in &all {
                    if let Some(d) = node.rib.decide(*p) {
                        node.export(*peer, &d);
                    }
                }
            }
            Ev::Down(peer) => {
                node.established.remove(peer);
                let affected = node.rib.drop_peer(*peer);
                node.sync(&affected);
            }
            Ev::Update(from, u) => {
                let affected = node.rib.update_from_peer(*from, true, u);
                node.sync(&affected);
            }
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let mut total = RibStats::default();
    for n in nodes.values() {
        total.merge(&n.rib.stats());
    }
    (total, wall)
}

/// One scaling-curve row: a PoP WAN converging a synthetic table through
/// the real experiment pump, over shared per-run attribute/prefix pools.
struct RowResult {
    pops: usize,
    leaves: usize,
    nodes: usize,
    prefixes: usize,
    wall_secs: f64,
    msgs: u64,
    decide_calls: u64,
    candidate_touches: u64,
    attr_interns: u64,
    attr_reuses: u64,
    pool_entries: u64,
    pool_bytes_est: u64,
    prefix_ids: u64,
    peer_ids: u64,
    peak_rss_bytes: u64,
    rss_reset: bool,
    parallel_rounds: u64,
    parallel_nodes: u64,
}

fn run_row(pops: usize, leaves_per_pop: usize, prefixes: usize, run_threads: usize) -> RowResult {
    let (topo, _cores, leaves): (Topology, Vec<NodeId>, Vec<NodeId>) =
        pop_wan(pops, leaves_per_pop, 1e9);
    let mut networks_of: BTreeMap<NodeId, Vec<Ipv4Prefix>> = BTreeMap::new();
    for (j, leaf) in leaves.iter().enumerate() {
        let lo = j * prefixes / leaves.len();
        let hi = (j + 1) * prefixes / leaves.len();
        networks_of.insert(*leaf, (lo..hi).map(|g| synth_prefix(g as u32)).collect());
    }
    let setups = bgp_setups_with_networks(&topo, timers_wan(), &networks_of);
    let nodes = topo.node_count();
    // Per-row peak: drop the previous row's high-water mark first.
    let rss_reset = horse_core::report::reset_peak_rss();
    let mut e = Experiment::new(topo)
        // Convergence under a 100 ms MRAI takes a few virtual seconds;
        // after quiescence the DES clock jumps straight to the horizon,
        // so the slack costs nothing.
        .horizon_secs(30.0)
        .sample_every(SimDuration::from_secs(10))
        .run_threads(run_threads)
        .label(format!("table-scale-{pops}x{leaves_per_pop}"));
    e.control = ControlBuild::Bgp(setups);
    let report = e.run();
    // Full propagation: every router installed every *remote* prefix at
    // least once (locally originated routes resolve to the router's own
    // id, which maps to no port, so they never count as FIB writes).
    assert!(
        report.table_writes >= ((nodes - 1) * prefixes) as u64,
        "row {pops}x{leaves_per_pop}: incomplete convergence \
         ({} FIB writes < {} expected)",
        report.table_writes,
        (nodes - 1) * prefixes
    );
    RowResult {
        pops,
        leaves: leaves_per_pop,
        nodes,
        prefixes,
        wall_secs: report.wall_run_secs,
        msgs: report.control_msgs,
        decide_calls: report.rib_decide_calls,
        candidate_touches: report.rib_candidate_touches,
        attr_interns: report.rib_attr_interns,
        attr_reuses: report.rib_attr_reuses,
        pool_entries: report.mem_attr_entries,
        pool_bytes_est: report.mem_attr_bytes_est,
        prefix_ids: report.mem_prefix_ids,
        peer_ids: report.mem_peer_ids,
        peak_rss_bytes: horse_core::report::peak_rss_bytes(),
        rss_reset,
        parallel_rounds: report.pump_parallel_rounds,
        parallel_nodes: report.pump_parallel_nodes,
    }
}

fn main() {
    let cfg = RunConfig::from_env();
    let (k, prefix_count) =
        horse_bench::k_then_prefixes("table_scale [k] [prefix_count]", 16, 100_000);
    let cores_avail = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!("== Table scale: compact-id arenas vs address-keyed maps ==");

    // ---- Phase 2: scaling curve through the real pump, shared pools ----
    //
    // Runs *first*: each row's peak RSS is read after a
    // `reset_peak_rss()`, but the kernel can only reset the high-water
    // mark down to the process's *current* RSS, and the allocator
    // retains freed memory — so any phase that ran earlier sets a floor
    // under every row's reported peak. With phase 2 first, the ~1 GiB
    // 100-node row reports its own footprint instead of phase 1's ~5 GiB
    // replay state.
    let run_threads = cfg.run_threads();
    let specs: [(usize, usize, usize); 3] = [
        (10, 9, prefix_count / 10),
        (10, 24, prefix_count / 4),
        (40, 24, prefix_count),
    ];
    println!("phase 2: run_threads={run_threads} (HORSE_RUN_THREADS), cores={cores_avail}");
    println!(
        "{:>6} {:>6} {:>9} {:>10} {:>12} {:>10} {:>12} {:>10} {:>8}",
        "nodes", "pops", "prefixes", "wall (s)", "msgs", "pool", "pool MiB", "rss MiB", "par"
    );
    let mut rows = Vec::new();
    for (pops, leaves, prefixes) in specs {
        let row = run_row(pops, leaves, prefixes.max(1), run_threads);
        println!(
            "{:>6} {:>6} {:>9} {:>10.2} {:>12} {:>10} {:>12.1} {:>10.1} {:>8}",
            row.nodes,
            row.pops,
            row.prefixes,
            row.wall_secs,
            row.msgs,
            row.pool_entries,
            row.pool_bytes_est as f64 / (1024.0 * 1024.0),
            row.peak_rss_bytes as f64 / (1024.0 * 1024.0),
            row.parallel_rounds,
        );
        rows.push(row);
    }
    if !rows[0].rss_reset {
        println!("  note: /proc/self/clear_refs reset unavailable; rss is lifetime peak");
    }

    // Parallel-pump speedup: rerun the middle row serially and compare.
    // Only meaningful when the drain actually sharded across real cores,
    // so the gate (and the measurement) needs both knobs > 1.
    let run_speedup = if run_threads > 1 && cores_avail > 1 {
        let (pops, leaves, prefixes) = specs[1];
        let serial = run_row(pops, leaves, prefixes.max(1), 1);
        let par = &rows[1];
        let speedup = serial.wall_secs / par.wall_secs.max(1e-9);
        println!(
            "  parallel pump: {:.2}s serial vs {:.2}s at {run_threads} threads = {speedup:.2}x",
            serial.wall_secs, par.wall_secs
        );
        Some((serial.wall_secs, par.wall_secs, speedup))
    } else {
        None
    };

    // ---- Phase 1: decide-path replay, compact ids vs address keys ----
    let ft = FatTree::build(k, SwitchRole::BgpRouter, 1e9, 1_000);
    let mut setups = ft.bgp_setups(timers());
    // Edge routers share a synthetic table (capped: the live tap decodes
    // and stores every UPDATE, so this phase sizes the table for replay
    // fidelity, not for the scaling curve).
    let p1 = prefix_count.min(8_192);
    for (e, edge) in ft.edges.iter().enumerate() {
        let lo = e * p1 / ft.edges.len();
        let hi = (e + 1) * p1 / ft.edges.len();
        let nets = &mut setups.get_mut(edge).expect("edge setup").config.networks;
        nets.extend((lo..hi).map(|g| synth_prefix(g as u32)));
    }

    let mut net = Net::build(&setups);
    let mut trace: Vec<(NodeId, Ev)> = Vec::new();
    let mut t = 0u64;
    let now = SimTime::from_millis;
    net.start_all(now(t));
    net.drain(now(t), Some(&mut trace));
    assert!(
        net.speakers[&ft.edges[0]].rib().prefix_count() >= p1,
        "phase-1 convergence incomplete"
    );

    // Two agg–core flaps: invalidation + re-decide churn over the table.
    let core_set: BTreeSet<NodeId> = ft.cores.iter().copied().collect();
    let flaps = 2usize;
    for i in 0..flaps {
        let agg = ft.aggs[(i * ft.aggs.len()) / flaps % ft.aggs.len()];
        let (peer_addr, local_addr) = setups[&agg]
            .config
            .peers
            .iter()
            .find(|p| core_set.contains(&net.owner[&p.peer_addr]))
            .map(|p| (p.peer_addr, p.local_addr))
            .expect("agg has a core-facing peer");
        let core = net.owner[&peer_addr];
        t += 1;
        net.speakers
            .get_mut(&agg)
            .expect("agg")
            .on_transport_down(peer_addr, now(t));
        net.speakers
            .get_mut(&core)
            .expect("core")
            .on_transport_down(local_addr, now(t));
        net.drain(now(t), Some(&mut trace));
        t += 1;
        net.speakers
            .get_mut(&agg)
            .expect("agg")
            .on_transport_up(peer_addr, now(t));
        net.speakers
            .get_mut(&core)
            .expect("core")
            .on_transport_up(local_addr, now(t));
        net.drain(now(t), Some(&mut trace));
    }
    let updates = trace
        .iter()
        .filter(|(_, e)| matches!(e, Ev::Update(..)))
        .count();

    // Interleaved replay pairs; min wall per side rejects scheduler
    // bursts without needing many iterations on a big trace.
    let mut new_wall = f64::INFINITY;
    let mut old_wall = f64::INFINITY;
    let mut new_stats = RibStats::default();
    let mut old_stats = RibStats::default();
    for _ in 0..2 {
        let (ns, nw) = replay_new(&setups, &trace);
        let (os, ow) = replay_old(&setups, &trace);
        new_wall = new_wall.min(nw);
        old_wall = old_wall.min(ow);
        new_stats = ns;
        old_stats = os;
    }
    let wall_ratio = old_wall / new_wall.max(1e-9);
    let work_ratio = old_stats.decision_work() as f64 / new_stats.decision_work().max(1) as f64;

    println!();
    println!(
        "phase 1: fat-tree k={k}, {} speakers, {} synthetic prefixes, {} trace events ({updates} updates), {flaps} flaps",
        setups.len(),
        p1,
        trace.len(),
    );
    println!(
        "  new (compact-id): {:>8.2} ms   work {}",
        new_wall * 1e3,
        new_stats.decision_work()
    );
    println!(
        "  old (btree-key):  {:>8.2} ms   work {}",
        old_wall * 1e3,
        old_stats.decision_work()
    );
    println!("  wall ratio (old/new): {wall_ratio:.2}x   work ratio: {work_ratio:.2}x");
    if cores_avail == 1 {
        println!("  note: single-core host; wall numbers carry scheduler noise");
    }

    let mut rows_json = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            rows_json.push_str(", ");
        }
        let _ = write!(
            rows_json,
            "{{\"nodes\": {}, \"pops\": {}, \"leaves_per_pop\": {}, \"prefixes\": {}, \
             \"wall_secs\": {}, \"msgs\": {}, \"decide_calls\": {}, \
             \"candidate_touches\": {}, \"attr_interns\": {}, \"attr_reuses\": {}, \
             \"attr_pool_entries\": {}, \"attr_pool_bytes_est\": {}, \
             \"prefix_ids\": {}, \"peer_ids\": {}, \"mem_peak_rss_bytes\": {}, \
             \"rss_reset\": {}, \"pump_parallel_rounds\": {}, \
             \"pump_parallel_nodes\": {}}}",
            r.nodes,
            r.pops,
            r.leaves,
            r.prefixes,
            r.wall_secs,
            r.msgs,
            r.decide_calls,
            r.candidate_touches,
            r.attr_interns,
            r.attr_reuses,
            r.pool_entries,
            r.pool_bytes_est,
            r.prefix_ids,
            r.peer_ids,
            r.peak_rss_bytes,
            r.rss_reset,
            r.parallel_rounds,
            r.parallel_nodes,
        );
    }
    rows_json.push(']');

    let speedup_json = match run_speedup {
        Some((serial, par, ratio)) => format!(
            "{{\"serial_wall_secs\": {serial}, \"parallel_wall_secs\": {par}, \
             \"speedup\": {ratio}}}"
        ),
        None => "null".into(),
    };
    let json = format!(
        "{{\n  \"cores\": {cores_avail},\n  \"run_threads\": {run_threads},\n  \
         \"phase1\": {{\"k\": {k}, \"speakers\": {}, \
         \"prefixes\": {p1}, \"trace_events\": {}, \"updates\": {updates}, \
         \"flaps\": {flaps}, \"new_wall_secs\": {new_wall}, \"old_wall_secs\": {old_wall}, \
         \"wall_ratio\": {wall_ratio}, \"new_work\": {}, \"old_work\": {}, \
         \"work_ratio\": {work_ratio}}},\n  \"run_speedup\": {speedup_json},\n  \
         \"rows\": {rows_json}\n}}\n",
        setups.len(),
        trace.len(),
        new_stats.decision_work(),
        old_stats.decision_work(),
    );
    horse_bench::write_result("table_scale.json", &json);

    if let Some(min) = cfg.table_min_speedup {
        assert!(
            wall_ratio >= min,
            "decide-path speedup {wall_ratio:.2}x below HORSE_TABLE_MIN_SPEEDUP={min}"
        );
    }
    if let Some(min) = cfg.run_min_speedup {
        match run_speedup {
            Some((_, _, speedup)) => assert!(
                speedup >= min,
                "parallel-pump speedup {speedup:.2}x below HORSE_RUN_MIN_SPEEDUP={min} \
                 (run_threads={run_threads}, cores={cores_avail})"
            ),
            // A 1-core host (or a serial run) can't demonstrate parallel
            // speedup; skipping keeps the gate honest instead of failing
            // on hardware that can't pass it.
            None => println!(
                "  HORSE_RUN_MIN_SPEEDUP={min} skipped: run_threads={run_threads}, \
                 cores={cores_avail} (both must be > 1)"
            ),
        }
    }
}

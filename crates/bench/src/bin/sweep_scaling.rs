//! **Sweep-engine scaling**: the fig3 suite at 1/2/4/8 workers.
//!
//! Runs the same sweep plan (fat-tree sizes × the three TE approaches,
//! virtual pacing) at increasing worker counts and reports wall time,
//! utilization, steals, and speedup. Also re-checks the determinism
//! contract on every rung: the semantic reports must be byte-identical
//! to the serial run's.
//!
//! Speedup is machine-dependent — on a single-core container every rung
//! collapses to ~1×, which the recorded `cores` field makes explicit.
//! Set `HORSE_SWEEP_MIN_SPEEDUP=<x>` to make the harness fail unless the
//! best rung reaches `x`× (useful on known multi-core CI runners).
//!
//! Run: `cargo run --release -p horse-bench --bin sweep_scaling -- \
//!       [duration_s] [pods...]`   (defaults: 10 s, pods 4 6 8)

use horse_core::RunConfig;
use horse_stats::json_f64;
use horse_sweep::SweepPlan;
use std::fmt::Write as _;

const WORKER_RUNGS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let cfg = RunConfig::from_env();
    let (duration, pods) =
        horse_bench::duration_then_pods("sweep_scaling [duration_s] [pods…]", 10.0, &[4, 6, 8]);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let plan = SweepPlan::new(42).pods(pods.clone()).horizon_secs(duration);
    let n_runs = plan.expand().len();

    println!("== Sweep-engine scaling: fig3 suite across worker counts ==");
    println!(
        "({n_runs} runs: pods {pods:?} x 3 TE approaches, {duration} s horizon, \
         virtual pacing; machine has {cores} core(s))"
    );
    println!();
    println!(
        "{:>8} {:>12} {:>10} {:>8} {:>12} {:>13}",
        "threads", "wall [ms]", "util", "steals", "vs serial", "vs busy-time"
    );

    let mut serial_wall_ms = f64::NAN;
    let mut serial_semantic = String::new();
    let mut rows = String::from("[\n");
    let mut best_speedup: f64 = 0.0;
    for threads in WORKER_RUNGS {
        let out = plan.execute(threads);
        let semantic = out.semantic_json();
        if threads == 1 {
            serial_wall_ms = out.stats.elapsed_ms;
            serial_semantic = semantic;
        } else {
            assert_eq!(
                serial_semantic, semantic,
                "determinism contract violated at {threads} workers"
            );
        }
        let speedup_measured = serial_wall_ms / out.stats.elapsed_ms.max(1e-9);
        best_speedup = best_speedup.max(speedup_measured);
        println!(
            "{:>8} {:>12.1} {:>10.3} {:>8} {:>11.2}x {:>12.2}x",
            out.stats.threads,
            out.stats.elapsed_ms,
            out.stats.utilization(),
            out.stats.total_steals(),
            speedup_measured,
            out.stats.speedup_vs_serial(),
        );
        let _ = writeln!(
            rows,
            "    {{\"threads\": {}, \"wall_ms\": {}, \"utilization\": {}, \
             \"steals\": {}, \"speedup_vs_measured_serial\": {}, \
             \"speedup_vs_serial\": {}, \"pool\": {}}},",
            out.stats.threads,
            json_f64(out.stats.elapsed_ms),
            json_f64(out.stats.utilization()),
            out.stats.total_steals(),
            json_f64(speedup_measured),
            json_f64(out.stats.speedup_vs_serial()),
            out.stats.to_json()
        );
    }
    if rows.ends_with(",\n") {
        rows.truncate(rows.len() - 2);
        rows.push('\n');
    }
    rows.push_str("  ]");

    println!();
    println!(
        "determinism: all worker counts produced byte-identical semantic \
         reports (checked)."
    );
    println!(
        "reading: speedup tracks min(threads, cores, independent runs); on a \
         {cores}-core machine the curve flattens there, and utilization \
         falls as workers outnumber cores."
    );

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"cores\": {cores},\n  \"runs\": {n_runs},\n  \"duration_s\": {duration},\n  \
         \"pods\": {pods:?},\n  \"best_speedup_vs_measured_serial\": {},",
        json_f64(best_speedup)
    );
    let _ = write!(json, "  \"rows\": {rows}\n}}\n");
    horse_bench::write_result("sweep_scaling.json", &json);

    if let Some(min) = cfg.sweep_min_speedup {
        assert!(
            best_speedup >= min,
            "best speedup {best_speedup:.2}x below required {min}x \
             (machine has {cores} cores)"
        );
        println!("speedup gate passed: {best_speedup:.2}x >= {min}x");
    }
}

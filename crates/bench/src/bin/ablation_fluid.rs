//! **Ablation A3**: fluid-rate vs packet-level data plane.
//!
//! Horse's speed comes from replacing per-packet simulation with a fluid
//! model that re-solves rates only at flow events. This harness runs the
//! *same* workload (permutation CBR flows on a fat-tree, fixed ECMP paths)
//! through both engines and compares events processed, wall time, and the
//! goodput they report — speed should differ by orders of magnitude while
//! the aggregate goodput agrees.
//!
//! The two engines run concurrently on the `horse-sweep` pool over the
//! same flow set (`HORSE_THREADS=1` for serial).
//!
//! Run: `cargo run --release -p horse-bench --bin ablation_fluid -- \
//!       [pods] [duration_ms]`   (defaults: 4, 200)

use horse_baseline::{PacketFlow, PacketLevelSim, PacketSimConfig};
use horse_dataplane::hash::{EcmpHasher, HashMode};
use horse_net::flow::{FiveTuple, FlowSpec};
use horse_net::fluid::FluidNetwork;
use horse_net::topology::{LinkId, NodeId};
use horse_sim::SimTime;
use horse_sweep::{run_indexed, threads_from_env};
use horse_topo::fattree::{FatTree, SwitchRole};
use horse_topo::pattern::{demo_tuple, TrafficPattern};
use std::fmt::Write as _;

struct EngineResult {
    events: u64,
    wall_s: f64,
    goodput_bps: f64,
    dropped: u64,
}

fn run_fluid(
    ft: &FatTree,
    flows: &[(FiveTuple, NodeId, NodeId, Vec<LinkId>)],
    horizon: SimTime,
) -> EngineResult {
    let wall = std::time::Instant::now();
    let mut fluid = FluidNetwork::new();
    let mut solves = 0u64;
    for (tuple, src, dst, path) in flows {
        let spec = FlowSpec::cbr(*src, *dst, *tuple, 1e9);
        fluid
            .start(SimTime::ZERO, spec, path.clone(), &ft.topo)
            .expect("valid path");
        solves += 1;
    }
    fluid.advance(horizon);
    EngineResult {
        events: solves,
        wall_s: wall.elapsed().as_secs_f64(),
        goodput_bps: fluid.total_arrival_rate(),
        dropped: 0,
    }
}

fn run_packet(
    ft: &FatTree,
    flows: &[(FiveTuple, NodeId, NodeId, Vec<LinkId>)],
    horizon: SimTime,
) -> EngineResult {
    let pkt_flows: Vec<PacketFlow> = flows
        .iter()
        .map(|(_, src, dst, path)| PacketFlow {
            src: *src,
            dst: *dst,
            path: path.clone(),
            rate_bps: 1e9,
            start: SimTime::ZERO,
        })
        .collect();
    let mut pkt = PacketLevelSim::new(
        (*ft.topo).clone(),
        pkt_flows,
        PacketSimConfig {
            horizon,
            ..PacketSimConfig::default()
        },
    );
    let pr = pkt.run();
    EngineResult {
        events: pr.events,
        wall_s: pr.wall_secs,
        goodput_bps: pr.goodput_bps,
        dropped: pr.dropped,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let pods: usize = args.next().map(|a| a.parse().unwrap()).unwrap_or(4);
    let duration_ms: u64 = args.next().map(|a| a.parse().unwrap()).unwrap_or(200);
    let horizon = SimTime::from_millis(duration_ms);
    let seed = 42;
    let threads = threads_from_env();

    let ft = FatTree::build(pods, SwitchRole::OpenFlow, 1e9, 1_000);
    let pairs = TrafficPattern::RandomPermutation.pairs(&ft.hosts, seed);
    let hasher = EcmpHasher::new(HashMode::FiveTuple, seed);

    // Shared path selection: hash over equal-cost shortest paths.
    let mut flows = Vec::new();
    for (i, p) in pairs.iter().enumerate() {
        let tuple = demo_tuple(&ft.topo, p.src, p.dst, i as u16);
        let paths = ft.topo.all_shortest_paths(p.src, p.dst);
        let path = paths[hasher.select(&tuple, paths.len())].clone();
        flows.push((tuple, p.src, p.dst, path));
    }

    let (results, stats) = run_indexed(2, threads, |i| {
        if i == 0 {
            run_fluid(&ft, &flows, horizon)
        } else {
            run_packet(&ft, &flows, horizon)
        }
    });
    let fluid = &results[0].value;
    let packet = &results[1].value;

    println!("== A3: fluid vs packet-level data plane ==");
    println!(
        "(k={pods}, {} flows x 1 Gbps, {} ms of traffic, identical ECMP paths)",
        flows.len(),
        duration_ms
    );
    println!();
    println!(
        "{:<16} {:>14} {:>14} {:>14}",
        "engine", "events", "wall [s]", "goodput [G]"
    );
    println!(
        "{:<16} {:>14} {:>14.4} {:>14.2}",
        "fluid (Horse)",
        fluid.events,
        fluid.wall_s,
        fluid.goodput_bps / 1e9
    );
    println!(
        "{:<16} {:>14} {:>14.4} {:>14.2}",
        "packet-level",
        packet.events,
        packet.wall_s,
        packet.goodput_bps / 1e9
    );
    let event_ratio = packet.events as f64 / fluid.events.max(1) as f64;
    let wall_ratio = packet.wall_s / fluid.wall_s.max(1e-9);
    println!();
    println!(
        "packet engine does {event_ratio:.0}x the events and takes \
         {wall_ratio:.0}x the wall time"
    );
    println!(
        "goodput agreement: fluid {:.2} G vs packet {:.2} G (fluid max-min vs\n\
         FIFO tail-drop differ where queues overload; shapes track)",
        fluid.goodput_bps / 1e9,
        packet.goodput_bps / 1e9
    );

    let mut rows = String::new();
    let _ = write!(
        rows,
        "{{\"pods\": {pods}, \"duration_ms\": {duration_ms}, \
         \"fluid_events\": {}, \"fluid_wall_s\": {}, \
         \"fluid_goodput_bps\": {}, \
         \"packet_events\": {}, \"packet_wall_s\": {}, \
         \"packet_goodput_bps\": {}, \"packet_drops\": {}}}",
        fluid.events,
        fluid.wall_s,
        fluid.goodput_bps,
        packet.events,
        packet.wall_s,
        packet.goodput_bps,
        packet.dropped
    );
    let runs: Vec<(String, usize, f64)> = results
        .iter()
        .zip(["fluid", "packet"])
        .map(|(r, label)| (label.to_string(), r.worker, r.wall_ms))
        .collect();
    horse_bench::write_result(
        "ablation_fluid.json",
        &horse_bench::pool_envelope(&stats, &runs, &rows),
    );
}

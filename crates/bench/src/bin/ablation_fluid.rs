//! **Ablation A3**: fluid-rate vs packet-level data plane.
//!
//! Horse's speed comes from replacing per-packet simulation with a fluid
//! model that re-solves rates only at flow events. This harness runs the
//! *same* workload (permutation CBR flows on a fat-tree, fixed ECMP paths)
//! through both engines and compares events processed, wall time, and the
//! goodput they report — speed should differ by orders of magnitude while
//! the aggregate goodput agrees.
//!
//! Run: `cargo run --release -p horse-bench --bin ablation_fluid -- \
//!       [pods] [duration_ms]`   (defaults: 4, 200)

use horse_baseline::{PacketFlow, PacketLevelSim, PacketSimConfig};
use horse_dataplane::hash::{EcmpHasher, HashMode};
use horse_net::flow::FlowSpec;
use horse_net::fluid::FluidNetwork;
use horse_sim::SimTime;
use horse_topo::fattree::{FatTree, SwitchRole};
use horse_topo::pattern::{demo_tuple, TrafficPattern};
use std::fmt::Write as _;

fn main() {
    let mut args = std::env::args().skip(1);
    let pods: usize = args.next().map(|a| a.parse().unwrap()).unwrap_or(4);
    let duration_ms: u64 = args.next().map(|a| a.parse().unwrap()).unwrap_or(200);
    let horizon = SimTime::from_millis(duration_ms);
    let seed = 42;

    let ft = FatTree::build(pods, SwitchRole::OpenFlow, 1e9, 1_000);
    let pairs = TrafficPattern::RandomPermutation.pairs(&ft.hosts, seed);
    let hasher = EcmpHasher::new(HashMode::FiveTuple, seed);

    // Shared path selection: hash over equal-cost shortest paths.
    let mut flows = Vec::new();
    for (i, p) in pairs.iter().enumerate() {
        let tuple = demo_tuple(&ft.topo, p.src, p.dst, i as u16);
        let paths = ft.topo.all_shortest_paths(p.src, p.dst);
        let path = paths[hasher.select(&tuple, paths.len())].clone();
        flows.push((tuple, p.src, p.dst, path));
    }

    // ----- Fluid engine. -----
    let wall = std::time::Instant::now();
    let mut fluid = FluidNetwork::new();
    let mut solves = 0u64;
    for (tuple, src, dst, path) in &flows {
        let spec = FlowSpec::cbr(*src, *dst, *tuple, 1e9);
        fluid
            .start(SimTime::ZERO, spec, path.clone(), &ft.topo)
            .expect("valid path");
        solves += 1;
    }
    fluid.advance(horizon);
    let fluid_goodput = fluid.total_arrival_rate();
    let fluid_wall = wall.elapsed().as_secs_f64();

    // ----- Packet engine. -----
    let pkt_flows: Vec<PacketFlow> = flows
        .iter()
        .map(|(_, src, dst, path)| PacketFlow {
            src: *src,
            dst: *dst,
            path: path.clone(),
            rate_bps: 1e9,
            start: SimTime::ZERO,
        })
        .collect();
    let mut pkt = PacketLevelSim::new(
        ft.topo.clone(),
        pkt_flows,
        PacketSimConfig {
            horizon,
            ..PacketSimConfig::default()
        },
    );
    let pr = pkt.run();

    println!("== A3: fluid vs packet-level data plane ==");
    println!(
        "(k={pods}, {} flows x 1 Gbps, {} ms of traffic, identical ECMP paths)",
        flows.len(),
        duration_ms
    );
    println!();
    println!(
        "{:<16} {:>14} {:>14} {:>14}",
        "engine", "events", "wall [s]", "goodput [G]"
    );
    println!(
        "{:<16} {:>14} {:>14.4} {:>14.2}",
        "fluid (Horse)",
        solves,
        fluid_wall,
        fluid_goodput / 1e9
    );
    println!(
        "{:<16} {:>14} {:>14.4} {:>14.2}",
        "packet-level",
        pr.events,
        pr.wall_secs,
        pr.goodput_bps / 1e9
    );
    let event_ratio = pr.events as f64 / solves.max(1) as f64;
    let wall_ratio = pr.wall_secs / fluid_wall.max(1e-9);
    println!();
    println!(
        "packet engine does {event_ratio:.0}x the events and takes \
         {wall_ratio:.0}x the wall time"
    );
    println!(
        "goodput agreement: fluid {:.2} G vs packet {:.2} G (fluid max-min vs\n\
         FIFO tail-drop differ where queues overload; shapes track)",
        fluid_goodput / 1e9,
        pr.goodput_bps / 1e9
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"pods\": {pods}, \"duration_ms\": {duration_ms}, \
         \"fluid_events\": {solves}, \"fluid_wall_s\": {fluid_wall}, \
         \"fluid_goodput_bps\": {fluid_goodput}, \
         \"packet_events\": {}, \"packet_wall_s\": {}, \
         \"packet_goodput_bps\": {}, \"packet_drops\": {}}}",
        pr.events, pr.wall_secs, pr.goodput_bps, pr.dropped
    );
    horse_bench::write_result("ablation_fluid.json", &json);
}

//! **RIB cost**: indexed/memoized vs naive decision process on a BGP
//! fat-tree convergence + link-flap workload.
//!
//! A k-pod fat-tree runs real [`BgpSpeaker`]s (every switch a router,
//! eBGP everywhere, MRAI zero) through full convergence and then eight
//! agg–core session flaps, with messages shuttled over an in-memory FIFO.
//! The harness taps the wire: every decoded inbound UPDATE and every
//! session transition becomes a trace event. The identical trace is then
//! replayed through both RIB implementations with their respective read
//! patterns:
//!
//! * **new** — the indexed [`LocRib`]: inverted candidate index, interned
//!   attributes, memoized decisions read once per affected prefix, and the
//!   speaker's `(peer, AttrId)` export cache;
//! * **old** — [`NaiveRib`], the pre-index model: per-peer probe loop on
//!   every decide, double decide in reconcile, a fresh export clone per
//!   (prefix, peer), and `prefixes()` union rebuilds on session-up.
//!
//! Cost is compared two ways:
//!
//! * **decision work** — `decide calls + candidates touched`, the RIBs'
//!   own machine-independent counters ([`RibStats::decision_work`] vs
//!   [`NaiveStats::decision_work`]);
//! * **wall time** — elapsed seconds for each replay (both replays run
//!   the same trace through the same loop; only the RIB differs).
//!
//! A final phase measures the structured-tracing layer's cost: the live
//! convergence replay runs in interleaved back-to-back pairs with
//! per-speaker ring sinks enabled vs the default null tracer, and the
//! overhead is the median of the per-pair wall ratios (robust against
//! scheduler bursts on a ~10 ms replay). This is a deliberate stress case —
//! the replay records roughly one event per microsecond of work, ~1000x
//! the event rate of a normal traced experiment — so the fractional
//! overhead here vastly overstates an experiment's; the printed ns/event
//! is the workload-independent figure. `HORSE_TRACE_MAX_OVERHEAD` (via
//! [`RunConfig`]) gates the fractional overhead as a regression backstop
//! (e.g. an accidental allocation or full stats snapshot on the record
//! path shows up as 3-4x the normal reading). Since even enabled tracing
//! stays within the bound, the disabled (null-sink) path — one enum
//! discriminant check per site — is bounded a fortiori.
//!
//! Run: `cargo run --release -p horse-bench --bin rib_churn -- [pods]`
//! (default: 8). Writes `bench_results/rib_churn.json`. Set
//! `HORSE_RIB_MIN_SPEEDUP` to also gate on the wall ratio (CI runners).

use horse_bgp::msg::{Message, UpdateMsg};
use horse_bgp::naive::{clone_units, NaiveRib, NaiveStats};
use horse_bgp::rib::{AttrId, Decision, LocRib, RibStats};
use horse_bgp::session::TimerConfig;
use horse_bgp::speaker::{BgpSpeaker, SpeakerOutput};
use horse_core::RunConfig;
use horse_net::intern::PrefixId;
use horse_net::topology::NodeId;
use horse_sim::{SimDuration, SimTime};
use horse_topo::fattree::{BgpNodeSetup, FatTree, SwitchRole};
use horse_trace::{Component, TraceOptions, Tracer};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// One trace event at a node, in global delivery order.
enum Ev {
    /// Session to `peer` reached Established.
    Up(Ipv4Addr),
    /// Session to `peer` went down.
    Down(Ipv4Addr),
    /// An UPDATE arrived from `peer`.
    Update(Ipv4Addr, UpdateMsg),
}

/// The live network: one real speaker per switch.
struct Net {
    speakers: BTreeMap<NodeId, BgpSpeaker>,
    /// Session-local address → owning node, for routing wire bytes.
    owner: BTreeMap<Ipv4Addr, NodeId>,
}

impl Net {
    fn build(setups: &BTreeMap<NodeId, BgpNodeSetup>) -> Net {
        let mut speakers = BTreeMap::new();
        let mut owner = BTreeMap::new();
        for (node, setup) in setups {
            for p in &setup.config.peers {
                owner.insert(p.local_addr, *node);
            }
            speakers.insert(*node, BgpSpeaker::new(setup.config.clone()));
        }
        Net { speakers, owner }
    }

    /// Shuttles bytes until quiescent, appending decoded events to `trace`.
    fn drain(&mut self, now: SimTime, trace: &mut Vec<(NodeId, Ev)>) {
        let nodes: Vec<NodeId> = self.speakers.keys().copied().collect();
        loop {
            let mut moved = false;
            for n in &nodes {
                let outs = self.speakers.get_mut(n).expect("node").take_outputs();
                for out in outs {
                    match out {
                        SpeakerOutput::SendBytes { peer, bytes } => {
                            let to = self.owner[&peer];
                            let from = self.speakers[n]
                                .config
                                .peers
                                .iter()
                                .find(|p| p.peer_addr == peer)
                                .expect("configured peer")
                                .local_addr;
                            let mut off = 0;
                            while off < bytes.len() {
                                let (m, used) = Message::decode(&bytes[off..])
                                    .expect("valid wire bytes")
                                    .expect("complete message");
                                off += used;
                                if let Message::Update(u) = m {
                                    trace.push((to, Ev::Update(from, u)));
                                }
                            }
                            self.speakers
                                .get_mut(&to)
                                .expect("node")
                                .on_bytes(from, now, &bytes);
                            moved = true;
                        }
                        SpeakerOutput::SessionUp { peer } => trace.push((*n, Ev::Up(peer))),
                        SpeakerOutput::SessionDown { peer } => trace.push((*n, Ev::Down(peer))),
                        SpeakerOutput::RouteChanged { .. } => {}
                    }
                }
            }
            if !moved {
                return;
            }
        }
    }
}

/// Per-node replay state for the indexed RIB, mirroring the speaker's
/// read path (memoized decide per affected prefix, export cache).
struct NewNode {
    rib: LocRib,
    asn: u16,
    established: BTreeSet<Ipv4Addr>,
    remote_as: BTreeMap<Ipv4Addr, u16>,
    local_addr: BTreeMap<Ipv4Addr, Ipv4Addr>,
    export: BTreeMap<(Ipv4Addr, AttrId), Option<AttrId>>,
    export_hits: u64,
    export_misses: u64,
}

impl NewNode {
    fn export(&mut self, peer: Ipv4Addr, d: &Decision) {
        if d.best.peer == peer {
            return; // split horizon, outside the cache
        }
        let key = (peer, d.best.attr_id);
        if self.export.contains_key(&key) {
            self.export_hits += 1;
            return;
        }
        self.export_misses += 1;
        let val = if d.best.attrs.contains_asn(self.remote_as[&peer]) {
            None
        } else {
            let mut out = d.best.attrs.prepended(self.asn);
            out.next_hop = self.local_addr[&peer];
            out.local_pref = None;
            out.med = None;
            Some(self.rib.intern_attrs(out))
        };
        self.export.insert(key, val);
    }

    /// Reconcile + per-peer sync for one batch of affected prefix ids.
    fn sync(&mut self, ids: &[PrefixId]) {
        let peers: Vec<Ipv4Addr> = self.established.iter().copied().collect();
        for &id in ids {
            // Reconcile: one memoized read covers best + next-hops.
            let _ = self.rib.decide_id(id);
            // Each established peer's sync re-reads the memo.
            for q in &peers {
                if let Some(d) = self.rib.decide_id(id) {
                    self.export(*q, &d);
                }
            }
        }
    }
}

/// Per-node replay state for the naive RIB, mirroring the old read path.
struct OldNode {
    rib: NaiveRib,
    established: BTreeSet<Ipv4Addr>,
    remote_as: BTreeMap<Ipv4Addr, u16>,
}

impl OldNode {
    /// Old reconcile (decide for best, decide again for next-hops) plus
    /// the old per-peer sync (probe-loop decide per peer, deep export
    /// clone per announced prefix).
    fn sync(&mut self, prefixes: &BTreeSet<horse_net::addr::Ipv4Prefix>) {
        for p in prefixes {
            let _ = self.rib.decide(*p);
            let _ = self.rib.next_hops(*p);
            for q in &self.established {
                if let Some(d) = self.rib.decide(*p) {
                    if d.best.peer != *q && !d.best.attrs.contains_asn(self.remote_as[q]) {
                        // export_attrs built a fresh prepended copy.
                        let units = clone_units(&d.best.attrs) + 1;
                        self.rib.add_clone_units(units);
                    }
                }
            }
        }
    }
}

fn replay_new(setups: &BTreeMap<NodeId, BgpNodeSetup>, trace: &[(NodeId, Ev)]) -> (RibStats, f64) {
    let mut nodes: BTreeMap<NodeId, NewNode> = setups
        .iter()
        .map(|(n, s)| {
            let mut rib = LocRib::new(s.config.asn, s.config.multipath);
            for net in &s.config.networks {
                rib.originate(*net, s.config.router_id);
            }
            (
                *n,
                NewNode {
                    rib,
                    asn: s.config.asn,
                    established: BTreeSet::new(),
                    remote_as: s
                        .config
                        .peers
                        .iter()
                        .map(|p| (p.peer_addr, p.remote_as))
                        .collect(),
                    local_addr: s
                        .config
                        .peers
                        .iter()
                        .map(|p| (p.peer_addr, p.local_addr))
                        .collect(),
                    export: BTreeMap::new(),
                    export_hits: 0,
                    export_misses: 0,
                },
            )
        })
        .collect();
    let start = std::time::Instant::now();
    for (at, ev) in trace {
        let node = nodes.get_mut(at).expect("node");
        match ev {
            Ev::Up(peer) => {
                node.established.insert(*peer);
                // Newly-up sync reads the persistent live-prefix index.
                let all = node.rib.live_prefix_ids();
                for &id in &all {
                    if let Some(d) = node.rib.decide_id(id) {
                        node.export(*peer, &d);
                    }
                }
            }
            Ev::Down(peer) => {
                node.established.remove(peer);
                let affected = node.rib.drop_peer(*peer);
                node.sync(&affected);
            }
            Ev::Update(from, u) => {
                let affected = node.rib.update_from_peer(*from, true, u);
                node.sync(&affected);
            }
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let mut total = RibStats::default();
    for n in nodes.values() {
        let mut s = n.rib.stats();
        s.export_cache_hits = n.export_hits;
        s.export_cache_misses = n.export_misses;
        total.merge(&s);
    }
    (total, wall)
}

fn replay_old(
    setups: &BTreeMap<NodeId, BgpNodeSetup>,
    trace: &[(NodeId, Ev)],
) -> (NaiveStats, f64) {
    let mut nodes: BTreeMap<NodeId, OldNode> = setups
        .iter()
        .map(|(n, s)| {
            let mut rib = NaiveRib::new(s.config.asn, s.config.multipath);
            for net in &s.config.networks {
                rib.originate(*net, s.config.router_id);
            }
            (
                *n,
                OldNode {
                    rib,
                    established: BTreeSet::new(),
                    remote_as: s
                        .config
                        .peers
                        .iter()
                        .map(|p| (p.peer_addr, p.remote_as))
                        .collect(),
                },
            )
        })
        .collect();
    let start = std::time::Instant::now();
    for (at, ev) in trace {
        let node = nodes.get_mut(at).expect("node");
        match ev {
            Ev::Up(peer) => {
                node.established.insert(*peer);
                // Old newly-up sync: union rebuild over every per-peer
                // table, then a probe-loop decide + export clone per prefix.
                let all = node.rib.prefixes();
                for p in &all {
                    if let Some(d) = node.rib.decide(*p) {
                        if d.best.peer != *peer && !d.best.attrs.contains_asn(node.remote_as[peer])
                        {
                            let units = clone_units(&d.best.attrs) + 1;
                            node.rib.add_clone_units(units);
                        }
                    }
                }
            }
            Ev::Down(peer) => {
                node.established.remove(peer);
                let affected = node.rib.drop_peer(*peer);
                node.sync(&affected);
            }
            Ev::Update(from, u) => {
                let affected = node.rib.update_from_peer(*from, true, u);
                node.sync(&affected);
            }
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let mut total = NaiveStats::default();
    for n in nodes.values() {
        let s = n.rib.stats();
        total.decide_calls += s.decide_calls;
        total.candidate_touches += s.candidate_touches;
        total.attr_clone_units += s.attr_clone_units;
        total.union_work += s.union_work;
    }
    (total, wall)
}

/// One full live-speaker convergence (build, start, transports up, drain),
/// optionally with ring tracing on every speaker. Returns the wall seconds
/// for the timed replay (sink setup and teardown excluded) and the number
/// of trace events the run recorded.
fn convergence_wall(
    setups: &BTreeMap<NodeId, BgpNodeSetup>,
    trace: Option<TraceOptions>,
) -> (f64, u64) {
    let mut net = Net::build(setups);
    let nodes: Vec<NodeId> = net.speakers.keys().copied().collect();
    if let Some(opts) = trace {
        let epoch = std::time::Instant::now();
        for node in &nodes {
            net.speakers
                .get_mut(node)
                .expect("node")
                .set_tracer(Tracer::ring(Component::Bgp(node.0), opts.capacity, epoch));
        }
    }
    let now = SimTime::ZERO;
    let start = std::time::Instant::now();
    for s in net.speakers.values_mut() {
        s.start(now);
    }
    let ups: Vec<(NodeId, Vec<Ipv4Addr>)> = net
        .speakers
        .iter()
        .map(|(n, s)| (*n, s.config.peers.iter().map(|p| p.peer_addr).collect()))
        .collect();
    for (n, peers) in ups {
        for p in peers {
            net.speakers
                .get_mut(&n)
                .expect("node")
                .on_transport_up(p, now);
        }
    }
    let mut sink = Vec::new();
    net.drain(now, &mut sink);
    let wall = start.elapsed().as_secs_f64();
    let mut events = 0;
    for node in &nodes {
        if let Some(log) = net.speakers.get_mut(node).expect("node").take_trace_log() {
            events += log.events.len() as u64 + log.dropped;
        }
    }
    (wall, events)
}

fn main() {
    let cfg = RunConfig::from_env();
    let k = horse_bench::single_k("rib_churn [k]", 8);
    let ft = FatTree::build(k, SwitchRole::BgpRouter, 1e9, 1_000);
    let timers = TimerConfig {
        // Zero disables keepalives; the FIFO harness never polls timers,
        // so sessions live for the whole replay.
        hold_time: SimDuration::ZERO,
        connect_retry: SimDuration::from_secs(1),
        mrai: SimDuration::ZERO,
    };
    let setups = ft.bgp_setups(timers);

    // Phase 1: full convergence on the live speakers, tapped.
    let mut net = Net::build(&setups);
    let mut trace: Vec<(NodeId, Ev)> = Vec::new();
    let mut t = 0u64;
    let now = |t: u64| SimTime::from_millis(t);
    for s in net.speakers.values_mut() {
        s.start(now(t));
    }
    let ups: Vec<(NodeId, Vec<Ipv4Addr>)> = net
        .speakers
        .iter()
        .map(|(n, s)| (*n, s.config.peers.iter().map(|p| p.peer_addr).collect()))
        .collect();
    for (n, peers) in ups {
        for p in peers {
            net.speakers
                .get_mut(&n)
                .expect("node")
                .on_transport_up(p, now(t));
        }
    }
    net.drain(now(t), &mut trace);
    let edge0 = ft.edges[0];
    assert!(
        net.speakers[&edge0].rib().prefix_count() >= ft.edges.len(),
        "convergence incomplete: edge knows {} prefixes",
        net.speakers[&edge0].rib().prefix_count()
    );

    // Phase 2: eight agg–core session flaps (down, drain, up, drain).
    let cores: BTreeSet<NodeId> = ft.cores.iter().copied().collect();
    let flaps = 8usize;
    for i in 0..flaps {
        let agg = ft.aggs[(i * ft.aggs.len()) / flaps % ft.aggs.len()];
        let (peer_addr, local_addr) = setups[&agg]
            .config
            .peers
            .iter()
            .find(|p| cores.contains(&net.owner[&p.peer_addr]))
            .map(|p| (p.peer_addr, p.local_addr))
            .expect("agg has a core-facing peer");
        let core = net.owner[&peer_addr];
        t += 1;
        net.speakers
            .get_mut(&agg)
            .expect("agg")
            .on_transport_down(peer_addr, now(t));
        net.speakers
            .get_mut(&core)
            .expect("core")
            .on_transport_down(local_addr, now(t));
        net.drain(now(t), &mut trace);
        t += 1;
        net.speakers
            .get_mut(&agg)
            .expect("agg")
            .on_transport_up(peer_addr, now(t));
        net.speakers
            .get_mut(&core)
            .expect("core")
            .on_transport_up(local_addr, now(t));
        net.drain(now(t), &mut trace);
    }

    let mut speaker_rib = RibStats::default();
    for s in net.speakers.values() {
        speaker_rib.merge(&s.rib_stats());
    }
    let updates = trace
        .iter()
        .filter(|(_, e)| matches!(e, Ev::Update(..)))
        .count();
    let session_events = trace.len() - updates;

    // Phase 3: replay the identical trace through both RIB models.
    let (new_stats, new_wall) = replay_new(&setups, &trace);
    let (old_stats, old_wall) = replay_old(&setups, &trace);

    let work_ratio = old_stats.decision_work() as f64 / new_stats.decision_work().max(1) as f64;
    let wall_ratio = old_wall / new_wall.max(1e-9);

    println!("== RIB cost: indexed/memoized vs naive (fat-tree k={k}, BGP) ==");
    println!(
        "workload: {} speakers, {} trace events ({updates} updates, {session_events} session transitions), {flaps} agg-core flaps",
        net.speakers.len(),
        trace.len(),
    );
    println!();
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>12} {:>10}",
        "rib", "decide calls", "cand touches", "work", "clone units", "wall (ms)"
    );
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>12} {:>10.2}",
        "new",
        new_stats.decide_calls,
        new_stats.candidate_touches,
        new_stats.decision_work(),
        new_stats.attr_interns, // distinct sets interned, not copies
        new_wall * 1e3
    );
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>12} {:>10.2}",
        "old",
        old_stats.decide_calls,
        old_stats.candidate_touches,
        old_stats.decision_work(),
        old_stats.attr_clone_units,
        old_wall * 1e3
    );
    println!();
    println!(
        "cache: {} hits / {} recomputes, {} invalidations; attrs: {} interned, {} reused; export cache: {} hits / {} misses",
        new_stats.decide_cache_hits,
        new_stats.decide_recomputes,
        new_stats.invalidations,
        new_stats.attr_interns,
        new_stats.attr_reuses,
        new_stats.export_cache_hits,
        new_stats.export_cache_misses,
    );
    println!("work ratio (old/new): {work_ratio:.1}x");
    println!("wall ratio (old/new): {wall_ratio:.1}x");
    assert!(
        work_ratio >= 3.0,
        "expected >=3x less decision work, got {work_ratio:.2}x"
    );
    if let Some(min) = cfg.rib_min_speedup {
        assert!(
            wall_ratio >= min,
            "wall speedup {wall_ratio:.2}x below HORSE_RIB_MIN_SPEEDUP={min}"
        );
    }

    // Phase 4: tracing overhead on the live-speaker convergence. The replay
    // is ~10 ms, and one-off scheduler bursts swing single samples by 10%+,
    // so a min-vs-min comparison is unstable. Instead each iteration runs a
    // back-to-back pair — which therefore shares load conditions — in
    // alternating order (so warm-up drift cancels too), and the overhead is
    // the median of the per-pair traced/untraced ratios: robust to bursts
    // that poison a few pairs outright.
    //
    // Note this replay is a stress case for the sink: the speakers record
    // roughly one event per microsecond of replay work (vs hundreds of
    // events over whole seconds in a normal traced experiment), so the
    // fractional overhead here is ~1000x an experiment's. The per-event
    // cost printed below is the workload-independent figure.
    //
    // ~225 events land per speaker: a right-sized ring keeps per-run sink
    // construction from sweeping tens of MB through the cache, which would
    // otherwise dominate a replay this short.
    let trace_opts = TraceOptions::with_capacity(1024);
    convergence_wall(&setups, None); // warmup: fault in code + allocator
    let mut untraced_wall = f64::INFINITY;
    let mut traced_wall = f64::INFINITY;
    let mut trace_events = 0;
    let mut ratios = Vec::new();
    for i in 0..15 {
        let (untraced, traced) = if i % 2 == 0 {
            let (u, _) = convergence_wall(&setups, None);
            let (t, n) = convergence_wall(&setups, Some(trace_opts));
            trace_events = n;
            (u, t)
        } else {
            let (t, n) = convergence_wall(&setups, Some(trace_opts));
            let (u, _) = convergence_wall(&setups, None);
            trace_events = n;
            (u, t)
        };
        untraced_wall = untraced_wall.min(untraced);
        traced_wall = traced_wall.min(traced);
        ratios.push(traced / untraced.max(1e-9));
    }
    ratios.sort_by(f64::total_cmp);
    let trace_overhead = ratios[ratios.len() / 2] - 1.0;
    let trace_ns_per_event =
        (traced_wall - untraced_wall).max(0.0) * 1e9 / trace_events.max(1) as f64;
    println!(
        "trace overhead: {:+.2}% (median of {} interleaved pairs; best traced {:.2} ms vs untraced {:.2} ms; {} events, ~{:.0} ns/event)",
        trace_overhead * 1e2,
        ratios.len(),
        traced_wall * 1e3,
        untraced_wall * 1e3,
        trace_events,
        trace_ns_per_event
    );
    if let Some(max) = cfg.trace_max_overhead {
        assert!(
            trace_overhead <= max,
            "tracing overhead {:.4} above HORSE_TRACE_MAX_OVERHEAD={max}",
            trace_overhead
        );
    }

    let new_json = format!(
        "{{\"decide_calls\": {}, \"decide_cache_hits\": {}, \"decide_recomputes\": {}, \
         \"invalidations\": {}, \"candidate_touches\": {}, \"attr_interns\": {}, \
         \"attr_reuses\": {}, \"attr_store_size\": {}, \"export_cache_hits\": {}, \
         \"export_cache_misses\": {}, \"decision_work\": {}, \"wall_secs\": {new_wall}}}",
        new_stats.decide_calls,
        new_stats.decide_cache_hits,
        new_stats.decide_recomputes,
        new_stats.invalidations,
        new_stats.candidate_touches,
        new_stats.attr_interns,
        new_stats.attr_reuses,
        new_stats.attr_store_size,
        new_stats.export_cache_hits,
        new_stats.export_cache_misses,
        new_stats.decision_work(),
    );
    let old_json = format!(
        "{{\"decide_calls\": {}, \"candidate_touches\": {}, \"attr_clone_units\": {}, \
         \"union_work\": {}, \"decision_work\": {}, \"wall_secs\": {old_wall}}}",
        old_stats.decide_calls,
        old_stats.candidate_touches,
        old_stats.attr_clone_units,
        old_stats.union_work,
        old_stats.decision_work(),
    );
    let speaker_json = format!(
        "{{\"decide_calls\": {}, \"decide_cache_hits\": {}, \"invalidations\": {}, \
         \"candidate_touches\": {}, \"attr_interns\": {}, \"attr_reuses\": {}, \
         \"attr_store_size\": {}, \"export_cache_hits\": {}, \"export_cache_misses\": {}}}",
        speaker_rib.decide_calls,
        speaker_rib.decide_cache_hits,
        speaker_rib.invalidations,
        speaker_rib.candidate_touches,
        speaker_rib.attr_interns,
        speaker_rib.attr_reuses,
        speaker_rib.attr_store_size,
        speaker_rib.export_cache_hits,
        speaker_rib.export_cache_misses,
    );
    let json = format!(
        "{{\n  \"topology\": \"fat-tree k={k} (BGP)\",\n  \"speakers\": {},\n  \
         \"trace_events\": {},\n  \"updates\": {updates},\n  \
         \"session_events\": {session_events},\n  \"flaps\": {flaps},\n  \
         \"new\": {new_json},\n  \"old\": {old_json},\n  \
         \"speaker_rib\": {speaker_json},\n  \
         \"work_ratio\": {work_ratio},\n  \"wall_ratio\": {wall_ratio},\n  \
         \"trace_wall_traced_secs\": {traced_wall},\n  \
         \"trace_wall_untraced_secs\": {untraced_wall},\n  \
         \"trace_overhead\": {trace_overhead},\n  \
         \"trace_ns_per_event\": {trace_ns_per_event}\n}}\n",
        net.speakers.len(),
        trace.len(),
    );
    horse_bench::write_result("rib_churn.json", &json);
}

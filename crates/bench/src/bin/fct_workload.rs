//! **Extension**: flow-level workloads and FCT distributions.
//!
//! The paper cites fs-sdn (Gupta et al., HotSDN'13) as prior work on fast
//! flow-level SDN simulation. This harness runs that style of workload on
//! Horse: Poisson arrivals of elastic (TCP-like) transfers with heavy-
//! tailed sizes on a fat-tree, comparing the flow-completion-time
//! distribution under reactive 5-tuple ECMP vs Hedera scheduling.
//!
//! The two schedulers run concurrently on the `horse-sweep` pool over a
//! shared `Arc` of the same fat-tree (`HORSE_THREADS=1` for serial).
//!
//! Run: `cargo run --release -p horse-bench --bin fct_workload -- \
//!       [pods] [lambda_per_host] [seed]`   (defaults: 4, 4.0, 42)

use horse_controller::HederaConfig;
use horse_core::{ControlBuild, Experiment, PoissonWorkload, SizeDist};
use horse_sim::SimTime;
use horse_sweep::{run_indexed, threads_from_env, TopoCache};
use horse_topo::fattree::{FatTree, SwitchRole};
use std::fmt::Write as _;
use std::sync::Arc;

fn run(ft: &FatTree, lambda: f64, seed: u64, hedera: bool) -> horse_core::ExperimentReport {
    let workload = PoissonWorkload {
        lambda_per_host: lambda,
        sizes: SizeDist::BoundedPareto {
            min_bytes: 1e5, // 100 kB mice
            max_bytes: 2e9, // 2 GB elephants
            alpha: 1.05,    // heavy tail: most bytes live in the elephants
        },
        until: SimTime::from_secs(20),
        seed,
    };
    let traffic = workload.generate(&ft.topo, &ft.hosts.clone());
    let mut e = Experiment::new(Arc::clone(&ft.topo))
        .horizon_secs(40.0) // tail time for elephants to finish
        .label(if hedera { "fct-hedera" } else { "fct-ecmp" });
    e.traffic = traffic;
    e.seed = seed;
    e.control = if hedera {
        ControlBuild::Hedera(HederaConfig::default())
    } else {
        ControlBuild::SdnEcmp
    };
    e.run()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let pods: usize = args.next().map(|a| a.parse().unwrap()).unwrap_or(4);
    let lambda: f64 = args.next().map(|a| a.parse().unwrap()).unwrap_or(4.0);
    let seed: u64 = args.next().map(|a| a.parse().unwrap()).unwrap_or(42);
    let threads = threads_from_env();

    println!("== FCT under a Poisson flow-level workload (fs-sdn style) ==");
    println!(
        "(k={pods}, {lambda} flows/s/host for 20 s, bounded-Pareto sizes 100 kB–2 GB, α=1.05)"
    );
    println!();

    let cache = TopoCache::new();
    let (results, stats) = run_indexed(2, threads, |i| {
        let ft = cache.fattree(pods, SwitchRole::OpenFlow);
        run(&ft, lambda, seed, i == 1)
    });

    println!(
        "{:<12} {:>8} {:>10} | {:>10} {:>10} {:>10} {:>10}",
        "scheduler", "flows", "completed", "p50 [s]", "p95 [s]", "p99 [s]", "mean [s]"
    );
    let mut rows = String::from("[\n");
    for r in &results {
        let report = &r.value;
        let n = report.flow_completion_secs.len();
        let mean = if n > 0 {
            report.flow_completion_secs.iter().sum::<f64>() / n as f64
        } else {
            f64::NAN
        };
        let q = |p: f64| report.fct_quantile(p).unwrap_or(f64::NAN);
        println!(
            "{:<12} {:>8} {:>10} | {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            report.label,
            report.flows_requested,
            n,
            q(0.5),
            q(0.95),
            q(0.99),
            mean
        );
        let _ = writeln!(
            rows,
            "    {{\"scheduler\": \"{}\", \"flows\": {}, \"completed\": {n}, \
             \"p50_s\": {}, \"p95_s\": {}, \"p99_s\": {}, \"mean_s\": {mean}, \
             \"moves\": {}}},",
            report.label,
            report.flows_requested,
            q(0.5),
            q(0.95),
            q(0.99),
            report.scheduler_moves
        );
    }
    if rows.ends_with(",\n") {
        rows.truncate(rows.len() - 2);
        rows.push('\n');
    }
    rows.push_str("  ]");

    println!();
    println!(
        "reading: mice (p50) finish in milliseconds either way; the tail\n\
         (p95/p99) is where elephant placement matters, which is exactly\n\
         the population Hedera re-places every 5 s."
    );
    let runs: Vec<(String, usize, f64)> = results
        .iter()
        .map(|r| (r.value.label.clone(), r.worker, r.wall_ms))
        .collect();
    horse_bench::write_result(
        "fct_workload.json",
        &horse_bench::pool_envelope(&stats, &runs, &rows),
    );
}

//! **Solver cost**: incremental (scoped) vs full fluid re-solves on the
//! Figure-3 convergence workload.
//!
//! The demo's convergence phase on a k = 8 fat-tree is a burst-heavy
//! churn: the control plane installs rules and 128 permutation flows come
//! up in batches; afterwards link failures/repairs reroute the affected
//! flows. Before this optimization every mutation re-ran the global
//! water-fill over all flows and links; the incremental solver re-solves
//! only the component of flows transitively sharing a directed link with
//! the change.
//!
//! Both arms replay the *identical* mutation sequence; only the solver
//! differs. Cost is compared two ways:
//!
//! * **FLOP-equivalents** — [`SolverStats::work`], the solver's own count
//!   of flow/link visits in its water-fill rounds (machine-independent);
//! * **wall time** — elapsed seconds for the whole replay.
//!
//! Run: `cargo run --release -p horse-bench --bin solver_churn -- [pods]`
//! (default: 8). Writes `bench_results/solver_churn.json`.

use horse_dataplane::hash::{EcmpHasher, HashMode};
use horse_net::flow::FlowSpec;
use horse_net::fluid::{Dirty, FluidNetwork, SolverStats};
use horse_net::topology::LinkId;
use horse_sim::SimTime;
use horse_topo::fattree::{FatTree, SwitchRole};
use horse_topo::pattern::{demo_tuple, TrafficPattern};

const SEED: u64 = 42;
/// Flows the control plane routes per pump step during convergence.
const BURST: usize = 8;

/// One replayable control-plane mutation.
enum Op {
    /// A burst of flow starts (one control burst → one solve).
    StartBurst(Vec<(FlowSpec, Vec<LinkId>)>),
    /// A link state flip; flows crossing it re-resolve their paths.
    LinkToggle(LinkId),
}

/// Builds the convergence + link-churn script for a k-pod fat-tree.
fn build_script(ft: &FatTree) -> Vec<Op> {
    let pairs = TrafficPattern::RandomPermutation.pairs(&ft.hosts, SEED);
    let hasher = EcmpHasher::new(HashMode::FiveTuple, SEED);
    let mut ops = Vec::new();
    for chunk in pairs.chunks(BURST) {
        let burst = chunk
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let tuple = demo_tuple(&ft.topo, p.src, p.dst, (ops.len() * BURST + i) as u16);
                let paths = ft.topo.all_shortest_paths(p.src, p.dst);
                let path = paths[hasher.select(&tuple, paths.len())].clone();
                (FlowSpec::cbr(p.src, p.dst, tuple, 1e9), path)
            })
            .collect();
        ops.push(Op::StartBurst(burst));
    }
    // Fail and repair a handful of spread-out fabric links (each toggle
    // appears twice: down, then up).
    let fabric: Vec<LinkId> = ft
        .topo
        .link_ids()
        .filter(|l| {
            let link = ft.topo.link(*l);
            ft.topo.node(link.a.node).kind != horse_net::topology::NodeKind::Host
                && ft.topo.node(link.b.node).kind != horse_net::topology::NodeKind::Host
        })
        .collect();
    for i in 0..8 {
        let lid = fabric[(i * fabric.len()) / 11 % fabric.len()];
        ops.push(Op::LinkToggle(lid));
        ops.push(Op::LinkToggle(lid));
    }
    ops
}

/// Replays the script; `full` forces a global re-solve per mutation
/// (the pre-optimization behavior), otherwise the scoped solver runs.
fn replay(ft: &FatTree, ops: &[Op], full: bool) -> (SolverStats, f64, f64) {
    let mut topo = (*ft.topo).clone();
    let hasher = EcmpHasher::new(HashMode::FiveTuple, SEED);
    let mut net = FluidNetwork::new();
    let mut t = 0u64;
    let start = std::time::Instant::now();
    for op in ops {
        t += 1;
        let now = SimTime::from_millis(t);
        match op {
            Op::StartBurst(burst) => {
                for (spec, path) in burst {
                    net.start_deferred(now, *spec, path.clone(), &topo)
                        .expect("valid flow");
                }
                if full {
                    net.recompute(&topo);
                } else {
                    net.flush(&topo);
                }
            }
            Op::LinkToggle(lid) => {
                let up = !topo.link(*lid).up;
                topo.link_mut(*lid).up = up;
                net.advance(now);
                // Affected flows re-resolve, as the runner's
                // on_tables_changed does after the control plane reacts.
                let crossing: Vec<_> = net
                    .flow_ids()
                    .filter(|f| net.path(*f).is_some_and(|p| p.contains(lid)))
                    .collect();
                for f in crossing {
                    let spec = *net.spec(f).expect("active");
                    let paths = topo.all_shortest_paths(spec.src, spec.dst);
                    if paths.is_empty() {
                        continue;
                    }
                    let path = paths[hasher.select(&spec.tuple, paths.len())].clone();
                    let _ = net.reroute_deferred(now, f, path, &topo);
                }
                if full {
                    net.recompute(&topo);
                } else {
                    net.recompute_incremental(&topo, &[Dirty::Link(*lid)]);
                }
            }
        }
    }
    let wall = start.elapsed().as_secs_f64();
    (net.solver_stats(), wall, net.total_arrival_rate())
}

fn main() {
    let k = horse_bench::single_k("solver_churn [k]", 8);
    let ft = FatTree::build(k, SwitchRole::OpenFlow, 1e9, 1_000);
    let ops = build_script(&ft);
    let n_bursts = ops
        .iter()
        .filter(|o| matches!(o, Op::StartBurst(_)))
        .count();
    let n_toggles = ops.len() - n_bursts;

    let (inc, inc_wall, inc_rate) = replay(&ft, &ops, false);
    let (full, full_wall, full_rate) = replay(&ft, &ops, true);
    assert!(
        (inc_rate - full_rate).abs() < 1.0,
        "solvers disagree: incremental {inc_rate} vs full {full_rate}"
    );

    let work_ratio = full.work as f64 / inc.work.max(1) as f64;
    let wall_ratio = full_wall / inc_wall.max(1e-9);

    println!("== Solver cost: incremental vs full (fat-tree k={k}) ==");
    println!(
        "workload: {} hosts, {} flow-start bursts of {BURST}, {n_toggles} link events",
        ft.hosts.len(),
        n_bursts
    );
    println!();
    println!(
        "{:<12} {:>14} {:>12} {:>10} {:>12} {:>10}",
        "solver", "work (FLOPeq)", "iterations", "solves", "full solves", "wall (ms)"
    );
    for (name, s, wall) in [("incremental", &inc, inc_wall), ("full", &full, full_wall)] {
        println!(
            "{:<12} {:>14} {:>12} {:>10} {:>12} {:>10.2}",
            name,
            s.work,
            s.iterations,
            s.solves,
            s.full_solves,
            wall * 1e3
        );
    }
    println!();
    println!("work ratio (full/incremental): {work_ratio:.1}x");
    println!("wall ratio (full/incremental): {wall_ratio:.1}x");
    assert!(
        work_ratio >= 2.0,
        "expected >=2x fewer FLOP-equivalents, got {work_ratio:.2}x"
    );

    let stats_json = |s: &SolverStats, wall: f64| {
        format!(
            "{{\"work\": {}, \"iterations\": {}, \"solves\": {}, \"full_solves\": {}, \
             \"flows_touched\": {}, \"links_touched\": {}, \"wall_secs\": {wall}}}",
            s.work, s.iterations, s.solves, s.full_solves, s.flows_touched, s.links_touched
        )
    };
    let json = format!(
        "{{\n  \"topology\": \"fat-tree k={k}\",\n  \"hosts\": {},\n  \
         \"flow_bursts\": {n_bursts},\n  \"burst_size\": {BURST},\n  \
         \"link_events\": {n_toggles},\n  \"incremental\": {},\n  \"full\": {},\n  \
         \"work_ratio\": {work_ratio},\n  \"wall_ratio\": {wall_ratio}\n}}\n",
        ft.hosts.len(),
        stats_json(&inc, inc_wall),
        stats_json(&full, full_wall),
    );
    horse_bench::write_result("solver_churn.json", &json);
}

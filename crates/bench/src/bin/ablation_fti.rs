//! **Ablations A1/A2**: the two user-tunable knobs of the hybrid clock.
//!
//! * **A1 — FTI increment sweep** (two-router BGP scenario): smaller
//!   increments give the emulated control plane finer-grained virtual
//!   time at the cost of more engine steps; the table shows the work/
//!   fidelity trade-off.
//! * **A2 — quiescence timeout sweep** (Hedera scenario, periodic control
//!   traffic every 5 s): the timeout decides how long after the last
//!   control message the clock lingers in FTI. Longer timeouts burn
//!   virtual time in FTI; at ≥ 5 s the clock *never* returns to DES
//!   between Hedera polls and the experiment effectively runs in
//!   fixed-increment mode throughout — the regime where Horse degenerates
//!   to an ordinary time-stepped emulator.
//!
//! Both sweeps' points are independent and run together on the
//! `horse-sweep` pool (`HORSE_THREADS=1` for serial).
//!
//! Run: `cargo run --release -p horse-bench --bin ablation_fti`

use horse_core::{ControlBuild, Experiment, ExperimentReport, TeApproach};
use horse_net::addr::Ipv4Prefix;
use horse_net::flow::{FiveTuple, FlowSpec};
use horse_net::topology::Topology;
use horse_sim::{SimDuration, SimTime};
use horse_sweep::{run_indexed, threads_from_env, TopoCache, TopologySpec};
use horse_topo::bgp_setups_for;
use std::fmt::Write as _;
use std::net::Ipv4Addr;

fn two_router(increment_ms: f64, quiescence_ms: f64) -> Experiment {
    let mut topo = Topology::new();
    let sn1: Ipv4Prefix = "10.0.1.0/24".parse().unwrap();
    let sn2: Ipv4Prefix = "10.0.2.0/24".parse().unwrap();
    let h1 = topo.add_host("h1", Ipv4Addr::new(10, 0, 1, 2), sn1);
    let h2 = topo.add_host("h2", Ipv4Addr::new(10, 0, 2, 2), sn2);
    let r1 = topo.add_router("r1", Ipv4Addr::new(10, 0, 1, 1));
    let r2 = topo.add_router("r2", Ipv4Addr::new(10, 0, 2, 1));
    topo.add_link(h1, r1, 1e9, 1_000);
    topo.add_link(r1, r2, 1e9, 5_000);
    topo.add_link(r2, h2, 1e9, 1_000);
    let setups = bgp_setups_for(
        &topo,
        horse_bgp::session::TimerConfig {
            hold_time: SimDuration::from_secs(30),
            connect_retry: SimDuration::from_secs(1),
            mrai: SimDuration::ZERO,
        },
    );
    let tuple = FiveTuple::udp(
        Ipv4Addr::new(10, 0, 1, 2),
        5000,
        Ipv4Addr::new(10, 0, 2, 2),
        5001,
    );
    let mut e = Experiment::new(topo)
        .flow(SimTime::ZERO, FlowSpec::cbr(h1, h2, tuple, 0.5e9))
        .horizon_secs(10.0)
        .fti(
            SimDuration::from_secs_f64(increment_ms / 1e3),
            SimDuration::from_secs_f64(quiescence_ms / 1e3),
        )
        .label("a1");
    e.control = ControlBuild::Bgp(setups);
    e
}

const A1_INCREMENTS_MS: [f64; 4] = [0.1, 1.0, 10.0, 100.0];
const A2_QUIESCENCE_MS: [f64; 4] = [50.0, 200.0, 1000.0, 5000.0];

enum Task {
    A1 { incr_ms: f64 },
    A2 { quiesce_ms: f64 },
}

impl Task {
    fn label(&self) -> String {
        match self {
            Task::A1 { incr_ms } => format!("a1-incr{incr_ms}ms"),
            Task::A2 { quiesce_ms } => format!("a2-quiesce{quiesce_ms}ms"),
        }
    }
}

fn main() {
    let threads = threads_from_env();
    let tasks: Vec<Task> = A1_INCREMENTS_MS
        .iter()
        .map(|&incr_ms| Task::A1 { incr_ms })
        .chain(
            A2_QUIESCENCE_MS
                .iter()
                .map(|&quiesce_ms| Task::A2 { quiesce_ms }),
        )
        .collect();

    let cache = TopoCache::new();
    let (results, stats) = run_indexed(tasks.len(), threads, |i| match tasks[i] {
        Task::A1 { incr_ms } => two_router(incr_ms, 100.0).run(),
        Task::A2 { quiesce_ms } => {
            let bt = cache.built(
                &TopologySpec::FatTree { k: 4 },
                TeApproach::Hedera.switch_role(),
            );
            Experiment::on_built(&bt, TeApproach::Hedera, 42)
                .horizon_secs(15.0)
                .fti(
                    SimDuration::from_millis(1),
                    SimDuration::from_secs_f64(quiesce_ms / 1e3),
                )
                .run()
        }
    });
    let reports: Vec<&ExperimentReport> = results.iter().map(|r| &r.value).collect();
    let (a1, a2) = reports.split_at(A1_INCREMENTS_MS.len());

    let mut rows = String::from("{\n    \"a1_increment_sweep\": [\n");
    println!("== A1: FTI increment sweep (two-router BGP, quiescence 100 ms) ==");
    println!(
        "{:>12} {:>10} {:>12} {:>12} {:>12}",
        "incr [ms]", "wall [s]", "FTI [ms]", "events", "converged[s]"
    );
    for (incr_ms, report) in A1_INCREMENTS_MS.iter().zip(a1) {
        println!(
            "{:>12.1} {:>10.4} {:>12.1} {:>12} {:>12.4}",
            incr_ms,
            report.wall_run_secs,
            report.fti_time.as_millis_f64(),
            report.events_processed,
            report
                .all_routed_at
                .map(|t| t.as_secs_f64())
                .unwrap_or(-1.0),
        );
        let _ = writeln!(
            rows,
            "      {{\"increment_ms\": {incr_ms}, \"wall_s\": {}, \"fti_ms\": {}, \
             \"events\": {}}},",
            report.wall_run_secs,
            report.fti_time.as_millis_f64(),
            report.events_processed
        );
    }
    if rows.ends_with(",\n") {
        rows.truncate(rows.len() - 2);
        rows.push('\n');
    }
    rows.push_str("    ],\n    \"a2_quiescence_sweep\": [\n");

    println!();
    println!("== A2: quiescence sweep (Hedera k=4, polls every 5 s, 15 s run) ==");
    println!(
        "{:>14} {:>12} {:>12} {:>12}",
        "quiesce [ms]", "FTI frac", "transitions", "wall [s]"
    );
    for (quiesce_ms, report) in A2_QUIESCENCE_MS.iter().zip(a2) {
        println!(
            "{:>14.0} {:>12.3} {:>12} {:>12.4}",
            quiesce_ms,
            report.fti_fraction(),
            report.transition_count(),
            report.wall_run_secs,
        );
        let _ = writeln!(
            rows,
            "      {{\"quiescence_ms\": {quiesce_ms}, \"fti_fraction\": {}, \
             \"transitions\": {}, \"wall_s\": {}}},",
            report.fti_fraction(),
            report.transition_count(),
            report.wall_run_secs
        );
    }
    if rows.ends_with(",\n") {
        rows.truncate(rows.len() - 2);
        rows.push('\n');
    }
    rows.push_str("    ]\n  }");

    println!();
    println!(
        "reading: A1 — increment only affects engine-step count (work), not\n\
         what converges; A2 — FTI occupancy grows with the timeout until, at\n\
         timeout >= poll interval, the clock never demotes to DES and the\n\
         speed advantage evaporates. Pick the smallest timeout your control\n\
         plane's inter-message gaps tolerate."
    );

    let runs: Vec<(String, usize, f64)> = tasks
        .iter()
        .zip(&results)
        .map(|(t, r)| (t.label(), r.worker, r.wall_ms))
        .collect();
    horse_bench::write_result(
        "ablation_fti.json",
        &horse_bench::pool_envelope(&stats, &runs, &rows),
    );
}

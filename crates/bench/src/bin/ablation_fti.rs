//! **Ablations A1/A2**: the two user-tunable knobs of the hybrid clock.
//!
//! * **A1 — FTI increment sweep** (two-router BGP scenario): smaller
//!   increments give the emulated control plane finer-grained virtual
//!   time at the cost of more engine steps; the table shows the work/
//!   fidelity trade-off.
//! * **A2 — quiescence timeout sweep** (Hedera scenario, periodic control
//!   traffic every 5 s): the timeout decides how long after the last
//!   control message the clock lingers in FTI. Longer timeouts burn
//!   virtual time in FTI; at ≥ 5 s the clock *never* returns to DES
//!   between Hedera polls and the experiment effectively runs in
//!   fixed-increment mode throughout — the regime where Horse degenerates
//!   to an ordinary time-stepped emulator.
//!
//! Run: `cargo run --release -p horse-bench --bin ablation_fti`

use horse_core::{ControlBuild, Experiment, TeApproach};
use horse_net::addr::Ipv4Prefix;
use horse_net::flow::{FiveTuple, FlowSpec};
use horse_net::topology::Topology;
use horse_sim::{SimDuration, SimTime};
use horse_topo::bgp_setups_for;
use std::fmt::Write as _;
use std::net::Ipv4Addr;

fn two_router(increment_ms: f64, quiescence_ms: f64) -> Experiment {
    let mut topo = Topology::new();
    let sn1: Ipv4Prefix = "10.0.1.0/24".parse().unwrap();
    let sn2: Ipv4Prefix = "10.0.2.0/24".parse().unwrap();
    let h1 = topo.add_host("h1", Ipv4Addr::new(10, 0, 1, 2), sn1);
    let h2 = topo.add_host("h2", Ipv4Addr::new(10, 0, 2, 2), sn2);
    let r1 = topo.add_router("r1", Ipv4Addr::new(10, 0, 1, 1));
    let r2 = topo.add_router("r2", Ipv4Addr::new(10, 0, 2, 1));
    topo.add_link(h1, r1, 1e9, 1_000);
    topo.add_link(r1, r2, 1e9, 5_000);
    topo.add_link(r2, h2, 1e9, 1_000);
    let setups = bgp_setups_for(
        &topo,
        horse_bgp::session::TimerConfig {
            hold_time: SimDuration::from_secs(30),
            connect_retry: SimDuration::from_secs(1),
            mrai: SimDuration::ZERO,
        },
    );
    let tuple = FiveTuple::udp(
        Ipv4Addr::new(10, 0, 1, 2),
        5000,
        Ipv4Addr::new(10, 0, 2, 2),
        5001,
    );
    let mut e = Experiment::new(topo)
        .flow(SimTime::ZERO, FlowSpec::cbr(h1, h2, tuple, 0.5e9))
        .horizon_secs(10.0)
        .fti(
            SimDuration::from_secs_f64(increment_ms / 1e3),
            SimDuration::from_secs_f64(quiescence_ms / 1e3),
        )
        .label("a1");
    e.control = ControlBuild::Bgp(setups);
    e
}

fn main() {
    let mut json = String::from("{\n  \"a1_increment_sweep\": [\n");

    println!("== A1: FTI increment sweep (two-router BGP, quiescence 100 ms) ==");
    println!(
        "{:>12} {:>10} {:>12} {:>12} {:>12}",
        "incr [ms]", "wall [s]", "FTI [ms]", "events", "converged[s]"
    );
    for incr_ms in [0.1, 1.0, 10.0, 100.0] {
        let report = two_router(incr_ms, 100.0).run();
        println!(
            "{:>12.1} {:>10.4} {:>12.1} {:>12} {:>12.4}",
            incr_ms,
            report.wall_run_secs,
            report.fti_time.as_millis_f64(),
            report.events_processed,
            report
                .all_routed_at
                .map(|t| t.as_secs_f64())
                .unwrap_or(-1.0),
        );
        let _ = writeln!(
            json,
            "    {{\"increment_ms\": {incr_ms}, \"wall_s\": {}, \"fti_ms\": {}, \
             \"events\": {}}},",
            report.wall_run_secs,
            report.fti_time.as_millis_f64(),
            report.events_processed
        );
    }
    if json.ends_with(",\n") {
        json.truncate(json.len() - 2);
        json.push('\n');
    }
    json.push_str("  ],\n  \"a2_quiescence_sweep\": [\n");

    println!();
    println!("== A2: quiescence sweep (Hedera k=4, polls every 5 s, 15 s run) ==");
    println!(
        "{:>14} {:>12} {:>12} {:>12}",
        "quiesce [ms]", "FTI frac", "transitions", "wall [s]"
    );
    for quiesce_ms in [50.0, 200.0, 1000.0, 5000.0] {
        let report = Experiment::demo(4, TeApproach::Hedera, 42)
            .horizon_secs(15.0)
            .fti(
                SimDuration::from_millis(1),
                SimDuration::from_secs_f64(quiesce_ms / 1e3),
            )
            .run();
        println!(
            "{:>14.0} {:>12.3} {:>12} {:>12.4}",
            quiesce_ms,
            report.fti_fraction(),
            report.transition_count(),
            report.wall_run_secs,
        );
        let _ = writeln!(
            json,
            "    {{\"quiescence_ms\": {quiesce_ms}, \"fti_fraction\": {}, \
             \"transitions\": {}, \"wall_s\": {}}},",
            report.fti_fraction(),
            report.transition_count(),
            report.wall_run_secs
        );
    }
    if json.ends_with(",\n") {
        json.truncate(json.len() - 2);
        json.push('\n');
    }
    json.push_str("  ]\n}\n");

    println!();
    println!(
        "reading: A1 — increment only affects engine-step count (work), not\n\
         what converges; A2 — FTI occupancy grows with the timeout until, at\n\
         timeout >= poll interval, the clock never demotes to DES and the\n\
         speed advantage evaporates. Pick the smallest timeout your control\n\
         plane's inter-message gaps tolerate."
    );

    horse_bench::write_result("ablation_fti.json", &json);
}

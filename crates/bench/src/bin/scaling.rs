//! **Extension**: Horse scaling beyond the paper's largest topology.
//!
//! The demo stops at 8 pods (128 hosts) because Mininet on a 4-core VM
//! could not go further in reasonable time. Horse has no such wall: this
//! harness runs the demo workload on fat-trees up to 14 pods (686 hosts,
//! 245 switches) and reports wall time, events and control-message counts
//! per TE approach — the scalability argument of the paper, extended.
//!
//! Run: `cargo run --release -p horse-bench --bin scaling -- [pods...]`
//! (defaults: 4 6 8 10 12)

use horse_core::{Experiment, TeApproach};
use horse_topo::fattree::{FatTree, SwitchRole};
use std::fmt::Write as _;

fn main() {
    let pods: Vec<usize> = {
        let rest: Vec<usize> = std::env::args()
            .skip(1)
            .map(|a| a.parse().unwrap())
            .collect();
        if rest.is_empty() {
            vec![4, 6, 8, 10, 12]
        } else {
            rest
        }
    };
    let duration = 20.0;
    let seed = 42;

    println!("== Scaling: Horse wall time vs fat-tree size (demo workload, {duration} s) ==");
    println!();
    println!(
        "{:<5} {:>6} {:>8} | {:>11} {:>11} {:>11} | {:>10} {:>10}",
        "pods", "hosts", "links", "bgp [s]", "hedera [s]", "sdn [s]", "ctl msgs", "goodput%"
    );
    let mut json = String::from("[\n");
    for &k in &pods {
        let ft = FatTree::build(k, SwitchRole::OpenFlow, 1e9, 1_000);
        let hosts = ft.hosts.len();
        let links = ft.topo.link_count();
        let ideal = hosts as f64 * 1e9;
        let mut walls = Vec::new();
        let mut msgs = 0u64;
        let mut goodput_frac = 0.0;
        for te in [TeApproach::BgpEcmp, TeApproach::Hedera, TeApproach::SdnEcmp] {
            let report = Experiment::demo(k, te, seed).horizon_secs(duration).run();
            assert_eq!(report.flows_routed, hosts, "k={k} {te:?}");
            walls.push(report.wall_setup_secs + report.wall_run_secs);
            msgs += report.control_msgs;
            if te == TeApproach::SdnEcmp {
                goodput_frac = report.goodput_final_bps() / ideal;
            }
        }
        println!(
            "{:<5} {:>6} {:>8} | {:>11.3} {:>11.3} {:>11.3} | {:>10} {:>9.0}%",
            k,
            hosts,
            links,
            walls[0],
            walls[1],
            walls[2],
            msgs,
            goodput_frac * 100.0
        );
        let _ = writeln!(
            json,
            "  {{\"pods\": {k}, \"hosts\": {hosts}, \"bgp_s\": {}, \"hedera_s\": {}, \
             \"sdn_s\": {}, \"ctl_msgs\": {msgs}}},",
            walls[0], walls[1], walls[2]
        );
    }
    if json.ends_with(",\n") {
        json.truncate(json.len() - 2);
        json.push('\n');
    }
    json.push_str("]\n");

    println!();
    println!(
        "reading: wall time grows polynomially with fabric size (fluid\n\
         re-solves dominate), but even 12 pods — 432 hosts, 180 emulated\n\
         BGP daemons — finish a 20 s experiment in seconds, far past where\n\
         a single-machine emulator stops being usable."
    );
    horse_bench::write_result("scaling.json", &json);
}

//! **Extension**: Horse scaling beyond the paper's largest topology.
//!
//! The demo stops at 8 pods (128 hosts) because Mininet on a 4-core VM
//! could not go further in reasonable time. Horse has no such wall: this
//! harness runs the demo workload on fat-trees up to 14 pods (686 hosts,
//! 245 switches) and reports wall time, events and control-message counts
//! per TE approach — the scalability argument of the paper, extended.
//!
//! Runs execute on the `horse-sweep` pool (`HORSE_THREADS` workers;
//! `HORSE_THREADS=1` for the serial path); per-approach wall times are
//! measured inside each run and unaffected by the pool.
//!
//! Run: `cargo run --release -p horse-bench --bin scaling -- [pods...]`
//! (defaults: 4 6 8 10 12)

use horse_core::{Experiment, TeApproach};
use horse_sweep::{run_indexed, threads_from_env, TopoCache, TopologySpec};
use std::fmt::Write as _;

const APPROACHES: [TeApproach; 3] = [TeApproach::BgpEcmp, TeApproach::Hedera, TeApproach::SdnEcmp];

fn main() {
    let pods = horse_bench::pods_list("scaling [pods…]", &[4, 6, 8, 10, 12]);
    let duration = 20.0;
    let seed = 42;
    let threads = threads_from_env();

    let tasks: Vec<(usize, TeApproach)> = pods
        .iter()
        .flat_map(|&k| APPROACHES.into_iter().map(move |te| (k, te)))
        .collect();

    println!(
        "== Scaling: Horse wall time vs fat-tree size (demo workload, {duration} s, \
         {threads} worker(s)) =="
    );
    println!();

    let cache = TopoCache::new();
    let (results, stats) = run_indexed(tasks.len(), threads, |i| {
        let (k, te) = tasks[i];
        let bt = cache.built(&TopologySpec::FatTree { k }, te.switch_role());
        let hosts = bt.fat_tree.as_ref().expect("fat-tree spec").hosts.len();
        let report = Experiment::on_built(&bt, te, seed)
            .horizon_secs(duration)
            .run();
        assert_eq!(report.flows_routed, hosts, "k={k} {te:?}");
        report
    });

    println!(
        "{:<5} {:>6} {:>8} | {:>11} {:>11} {:>11} | {:>10} {:>10}",
        "pods", "hosts", "links", "bgp [s]", "hedera [s]", "sdn [s]", "ctl msgs", "goodput%"
    );
    let mut rows = String::from("[\n");
    for &k in &pods {
        // The three approaches of this size, in APPROACHES order.
        let of_k: Vec<_> = tasks
            .iter()
            .zip(&results)
            .filter(|((tk, _), _)| *tk == k)
            .map(|(_, r)| &r.value)
            .collect();
        let ft = cache.fattree(k, horse_topo::fattree::SwitchRole::OpenFlow);
        let hosts = ft.hosts.len();
        let links = ft.topo.link_count();
        let ideal = hosts as f64 * 1e9;
        let walls: Vec<f64> = of_k
            .iter()
            .map(|r| r.wall_setup_secs + r.wall_run_secs)
            .collect();
        let msgs: u64 = of_k.iter().map(|r| r.control_msgs).sum();
        let goodput_frac = of_k[2].goodput_final_bps() / ideal; // SdnEcmp
        println!(
            "{:<5} {:>6} {:>8} | {:>11.3} {:>11.3} {:>11.3} | {:>10} {:>9.0}%",
            k,
            hosts,
            links,
            walls[0],
            walls[1],
            walls[2],
            msgs,
            goodput_frac * 100.0
        );
        let _ = writeln!(
            rows,
            "    {{\"pods\": {k}, \"hosts\": {hosts}, \"bgp_s\": {}, \"hedera_s\": {}, \
             \"sdn_s\": {}, \"ctl_msgs\": {msgs}}},",
            walls[0], walls[1], walls[2]
        );
    }
    if rows.ends_with(",\n") {
        rows.truncate(rows.len() - 2);
        rows.push('\n');
    }
    rows.push_str("  ]");

    println!();
    println!(
        "reading: wall time grows polynomially with fabric size (fluid\n\
         re-solves dominate), but even 12 pods — 432 hosts, 180 emulated\n\
         BGP daemons — finish a 20 s experiment in seconds, far past where\n\
         a single-machine emulator stops being usable."
    );
    let runs: Vec<(String, usize, f64)> = tasks
        .iter()
        .zip(&results)
        .map(|((k, te), r)| (format!("{}-k{k}", te.label()), r.worker, r.wall_ms))
        .collect();
    horse_bench::write_result(
        "scaling.json",
        &horse_bench::pool_envelope(&stats, &runs, &rows),
    );
}

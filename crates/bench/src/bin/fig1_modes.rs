//! **Figure 1**: transition between execution modes in a scenario with two
//! BGP routers.
//!
//! Reproduces the paper's conceptual figure with measured data: two BGP
//! routers (VR1/VR2 in the paper) establish a session and exchange routes;
//! the experiment clock starts in DES, switches to FTI when the session
//! activity begins, and returns to DES after the quiescence timeout once
//! the routers have converged. A second phase injects a route flap at
//! t = 5 s to show the clock re-entering FTI mid-experiment.
//!
//! Run: `cargo run --release -p horse-bench --bin fig1_modes`

use horse_core::{ControlBuild, Experiment};
use horse_net::addr::Ipv4Prefix;
use horse_net::flow::{FiveTuple, FlowSpec};
use horse_net::topology::Topology;
use horse_sim::{SimDuration, SimTime};
use horse_topo::bgp_setups_for;
use std::net::Ipv4Addr;

fn two_router_experiment(horizon: f64) -> Experiment {
    let mut topo = Topology::new();
    let sn1: Ipv4Prefix = "10.0.1.0/24".parse().unwrap();
    let sn2: Ipv4Prefix = "10.0.2.0/24".parse().unwrap();
    let h1 = topo.add_host("h1", Ipv4Addr::new(10, 0, 1, 2), sn1);
    let h2 = topo.add_host("h2", Ipv4Addr::new(10, 0, 2, 2), sn2);
    let r1 = topo.add_router("r1", Ipv4Addr::new(10, 0, 1, 1));
    let r2 = topo.add_router("r2", Ipv4Addr::new(10, 0, 2, 1));
    topo.add_link(h1, r1, 1e9, 1_000);
    topo.add_link(r1, r2, 1e9, 5_000);
    topo.add_link(r2, h2, 1e9, 1_000);
    let setups = bgp_setups_for(
        &topo,
        horse_bgp::session::TimerConfig {
            hold_time: SimDuration::from_secs(30),
            connect_retry: SimDuration::from_secs(1),
            mrai: SimDuration::ZERO,
        },
    );
    let tuple = FiveTuple::udp(
        Ipv4Addr::new(10, 0, 1, 2),
        5000,
        Ipv4Addr::new(10, 0, 2, 2),
        5001,
    );
    let mut e = Experiment::new(topo)
        .flow(SimTime::ZERO, FlowSpec::cbr(h1, h2, tuple, 0.5e9))
        .horizon_secs(horizon)
        .label("fig1");
    e.control = ControlBuild::Bgp(setups);
    e
}

fn main() {
    let report = two_router_experiment(10.0).run();

    println!("== Figure 1: DES <-> FTI transitions (two BGP routers) ==");
    println!();
    println!("{:<12} {:<6}", "t [s]", "mode");
    for (t, mode) in report.transition_rows() {
        println!("{t:<12.4} {mode}");
    }
    println!();
    println!(
        "control messages: {}   routes installed: {}",
        report.control_msgs, report.table_writes
    );
    println!(
        "virtual time in FTI: {:.1} ms ({:.2}% of the run)",
        report.fti_time.as_millis_f64(),
        report.fti_fraction() * 100.0
    );
    println!(
        "virtual time in DES: {:.3} s",
        report.des_time.as_secs_f64()
    );
    println!(
        "wall time: {:.4} s for {:.0} s of experiment (speed-up {:.0}x)",
        report.wall_run_secs,
        report.horizon.as_secs_f64(),
        report.horizon.as_secs_f64() / report.wall_run_secs.max(1e-9)
    );
    println!();
    println!(
        "paper shape check: starts DES -> FTI during session establishment/\n\
         updates -> DES after convergence + quiescence timeout: {}",
        if report.transitions.len() >= 3 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );

    horse_bench::write_result("fig1_modes.json", &report.to_json());
}

//! **Pump cost**: readiness-driven vs poll-everyone control-plane pump on
//! the Figure-3 BGP convergence workload.
//!
//! The legacy pump touched every emulated node every engine step: polled
//! each BGP speaker's timers, drained each switch agent, and walked each
//! flow table looking for expired rules — O(all nodes) per step even when
//! one message was in flight. The readiness pump touches only nodes with
//! something to do (a delivery, a fired timer-wheel deadline, a transport
//! event), making a step O(active nodes).
//!
//! Both arms run the *identical* experiment (same seed, `Pacing::Virtual`)
//! and must produce byte-identical reports modulo cost counters; only the
//! scheduling differs. Cost is compared two ways:
//!
//! * **pump work** — `PumpStats`' own counters: speaker polls / agent
//!   drains plus full table walks (machine-independent);
//! * **wall time** — elapsed seconds for the run (min over repetitions).
//!
//! Run: `cargo run --release -p horse-bench --bin pump_scaling -- [k...]`
//! (default: 4 8 10 12; assertions apply at k=8, or the largest k run).
//! Writes `bench_results/pump_scaling.json`.

use horse_core::{Experiment, ExperimentReport, PumpMode, TeApproach};

const SEED: u64 = 42;
/// Repetitions at the assertion size (wall time is min-of-reps; the work
/// counters are deterministic, so one rep decides those).
const REPS: usize = 3;

struct Arm {
    report: ExperimentReport,
    wall: f64,
}

fn run_arm(k: usize, mode: PumpMode, reps: usize) -> Arm {
    let mut best: Option<Arm> = None;
    for _ in 0..reps {
        let report = Experiment::for_spec(k, TeApproach::BgpEcmp, SEED)
            .pump_mode(mode)
            .run();
        let wall = report.wall_run_secs;
        if best.as_ref().is_none_or(|b| wall < b.wall) {
            best = Some(Arm { report, wall });
        }
    }
    best.expect("reps >= 1")
}

fn work_of(r: &ExperimentReport) -> u64 {
    r.pump_nodes_touched + r.pump_table_scans
}

fn main() {
    let ks = horse_bench::pods_list("pump_scaling [pods…]", &[4, 8, 10, 12]);
    let assert_k = if ks.contains(&8) {
        8
    } else {
        *ks.iter().max().expect("at least one k")
    };

    println!("== Pump cost: readiness vs full poll (fig-3 BGP convergence, seed {SEED}) ==");
    println!();
    println!(
        "{:<5} {:>7} {:>9} {:>13} {:>13} {:>11} {:>11} {:>11} {:>10}",
        "k",
        "nodes",
        "steps",
        "touched(rdy)",
        "touched(poll)",
        "scans(rdy)",
        "work ratio",
        "wall(rdy)",
        "wall(poll)"
    );

    let mut rows = Vec::new();
    for &k in &ks {
        let reps = if k == assert_k { REPS } else { 1 };
        let ready = run_arm(k, PumpMode::Readiness, reps);
        let polled = run_arm(k, PumpMode::FullPoll, reps);
        assert_eq!(
            ready.report.semantic_json(),
            polled.report.semantic_json(),
            "k={k}: pump modes must be observably identical"
        );
        let work_ratio = work_of(&polled.report) as f64 / work_of(&ready.report).max(1) as f64;
        let wall_ratio = polled.wall / ready.wall.max(1e-9);
        let nodes = polled.report.pump_nodes_total / polled.report.pump_steps.max(1);
        println!(
            "{:<5} {:>7} {:>9} {:>13} {:>13} {:>11} {:>10.1}x {:>10.4}s {:>9.4}s",
            k,
            nodes,
            ready.report.pump_steps,
            ready.report.pump_nodes_touched,
            polled.report.pump_nodes_touched,
            ready.report.pump_table_scans,
            work_ratio,
            ready.wall,
            polled.wall
        );

        if k == assert_k {
            assert!(
                work_ratio >= 5.0,
                "k={k}: expected >=5x less pump work, got {work_ratio:.2}x \
                 (readiness {}, full poll {})",
                work_of(&ready.report),
                work_of(&polled.report)
            );
            assert!(
                ready.wall < polled.wall,
                "k={k}: readiness must be faster: {:.4}s vs {:.4}s",
                ready.wall,
                polled.wall
            );
        }

        let arm_json = |a: &Arm| {
            format!(
                "{{\"nodes_touched\": {}, \"table_scans\": {}, \"work\": {}, \"wall_secs\": {}}}",
                a.report.pump_nodes_touched,
                a.report.pump_table_scans,
                work_of(&a.report),
                a.wall
            )
        };
        rows.push(format!(
            "    {{\"k\": {k}, \"nodes\": {nodes}, \"pump_steps\": {}, \
             \"readiness\": {}, \"full_poll\": {}, \
             \"work_ratio\": {work_ratio}, \"wall_ratio\": {wall_ratio}}}",
            ready.report.pump_steps,
            arm_json(&ready),
            arm_json(&polled),
        ));
    }

    println!();
    println!("(work = nodes touched + table walks; both modes produce byte-identical reports)");

    let json = format!(
        "{{\n  \"workload\": \"bgp-ecmp demo, seed {SEED}\",\n  \"assert_k\": {assert_k},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    horse_bench::write_result("pump_scaling.json", &json);
}

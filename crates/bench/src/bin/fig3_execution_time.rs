//! **Figure 3**: execution time of the demonstration on Horse and Mininet.
//!
//! For each fat-tree size (4, 6, 8 pods) this measures, exactly as the
//! demo does, (a) the time required to create the topology and (b) the
//! consolidated time to execute the three TE approaches (BGP+ECMP, Hedera,
//! SDN 5-tuple ECMP), each running the permutation workload for the same
//! experiment duration.
//!
//! Horse appears in two flavors:
//!
//! * **virtual** — FTI steps run as fast as possible (deterministic; what
//!   you use for batch experiments);
//! * **real-time** — FTI is paced against the wall clock, as the paper's
//!   prototype does so its emulated daemons see realistic timing. This is
//!   the apples-to-apples column for the paper's Figure 3.
//!
//! Mininet's numbers come from the calibrated cost model in
//! `horse-baseline` (namespace/bridge/veth creation; real-time execution
//! stretched by software-forwarding saturation, capped by sender
//! load-shedding) — see DESIGN.md §1 for the substitution argument.
//!
//! The 18 runs (3 sizes × 2 pacings × 3 TE approaches) are independent,
//! so they execute on the `horse-sweep` pool; set `HORSE_THREADS=1` for
//! the serial path. Real-time runs parallelize too — each worker paces
//! its own run against the wall clock.
//!
//! Run: `cargo run --release -p horse-bench --bin fig3_execution_time -- \
//!       [duration_s] [pods...]`   (defaults: 60 s, pods 4 6 8)

use horse_baseline::MininetModel;
use horse_core::{Experiment, TeApproach};
use horse_sim::Pacing;
use horse_sweep::{run_indexed, threads_from_env, TopoCache, TopologySpec};
use horse_topo::fattree::SwitchRole;
use horse_topo::pattern::TrafficPattern;
use std::fmt::Write as _;

struct Task {
    k: usize,
    pacing: Pacing,
    te: TeApproach,
}

fn pacing_tag(p: Pacing) -> &'static str {
    match p {
        Pacing::Virtual => "virt",
        Pacing::RealTime { .. } => "rt",
    }
}

fn main() {
    let (duration, pods) = horse_bench::duration_then_pods(
        "fig3_execution_time [duration_s] [pods…]",
        60.0,
        &[4, 6, 8],
    );
    let seed = 42;
    let mininet = MininetModel::default();
    let threads = threads_from_env();

    // One task per (size, pacing, approach); consolidated per (size,
    // pacing) after collection, exactly as the serial loop summed them.
    let tasks: Vec<Task> = pods
        .iter()
        .flat_map(|&k| {
            [Pacing::Virtual, Pacing::real_time()]
                .into_iter()
                .flat_map(move |pacing| {
                    [TeApproach::BgpEcmp, TeApproach::Hedera, TeApproach::SdnEcmp]
                        .into_iter()
                        .map(move |te| Task { k, pacing, te })
                })
        })
        .collect();

    println!("== Figure 3: execution time, Horse vs Mininet ==");
    println!(
        "(experiment duration {duration} s; three TE approaches per topology; \
         {} runs on {threads} worker(s))",
        tasks.len()
    );
    println!();

    let cache = TopoCache::new();
    let (results, stats) = run_indexed(tasks.len(), threads, |i| {
        let t = &tasks[i];
        let bt = cache.built(&TopologySpec::FatTree { k: t.k }, t.te.switch_role());
        let report = Experiment::on_built(&bt, t.te, seed)
            .horizon_secs(duration)
            .pacing(t.pacing)
            .run();
        assert_eq!(
            report.flows_routed, report.flows_requested,
            "k={} {:?}: all flows must route",
            t.k, t.te
        );
        (report.wall_setup_secs, report.wall_run_secs)
    });

    println!(
        "{:<5} {:>6} | {:>11} {:>11} | {:>10} {:>10} {:>10} | {:>8} {:>9}",
        "pods",
        "hosts",
        "horse-virt",
        "horse-rt",
        "mn-create",
        "mn-exec",
        "mn-total",
        "mn/rt",
        "mn/virt"
    );

    // Sum setup+run wall time over the three TE approaches of one
    // (size, pacing) cell.
    let cell = |k: usize, virt: bool| -> f64 {
        tasks
            .iter()
            .zip(&results)
            .filter(|(t, _)| t.k == k && matches!(t.pacing, Pacing::Virtual) == virt)
            .map(|(_, r)| r.value.0 + r.value.1)
            .sum()
    };

    let mut rows = String::from("[\n");
    for &k in &pods {
        let horse_virtual = cell(k, true);
        let horse_rt = cell(k, false);

        let ft = cache.fattree(k, SwitchRole::OpenFlow);
        let hosts = ft.hosts.len();
        let switches = ft.switches().len();
        let links = ft.topo.link_count();
        let pairs = TrafficPattern::RandomPermutation.pairs(&ft.hosts, seed);
        let hops = horse_bench::avg_hops(&ft.topo, &pairs);
        let packet_hops = MininetModel::packet_hops_for(hosts, 1e9, 1500, hops, duration);
        // The demo creates each topology once and runs three experiments.
        let mn_create = mininet.creation_time(hosts, switches, links);
        let mn_exec = 3.0 * mininet.execution_time(duration, packet_hops);
        let mn_total = mn_create + mn_exec;

        let ratio_rt = mn_total / horse_rt.max(1e-9);
        let ratio_virt = mn_total / horse_virtual.max(1e-9);
        println!(
            "{:<5} {:>6} | {:>11.3} {:>11.3} | {:>10.1} {:>10.1} {:>10.1} | {:>7.1}x {:>8.0}x",
            k, hosts, horse_virtual, horse_rt, mn_create, mn_exec, mn_total, ratio_rt, ratio_virt
        );
        let _ = writeln!(
            rows,
            "    {{\"pods\": {k}, \"hosts\": {hosts}, \
             \"horse_virtual_s\": {horse_virtual}, \"horse_realtime_s\": {horse_rt}, \
             \"mininet_create_s\": {mn_create}, \"mininet_exec_s\": {mn_exec}, \
             \"ratio_vs_realtime\": {ratio_rt}, \"ratio_vs_virtual\": {ratio_virt}}},"
        );
    }
    if rows.ends_with(",\n") {
        rows.truncate(rows.len() - 2);
        rows.push('\n');
    }
    rows.push_str("  ]");

    println!();
    println!(
        "paper shape check: Mininet takes several times longer than Horse in\n\
         both pacings and the absolute gap widens with topology size (the\n\
         paper reports ~5x at 8 pods for its C/Python prototype; this Rust\n\
         build spends far less wall time per FTI step, so the measured ratios\n\
         are larger — the *ordering and growth with size* are the reproduced\n\
         claims)."
    );

    let runs: Vec<(String, usize, f64)> = tasks
        .iter()
        .zip(&results)
        .map(|(t, r)| {
            (
                format!("{}-k{}-{}", t.te.label(), t.k, pacing_tag(t.pacing)),
                r.worker,
                r.wall_ms,
            )
        })
        .collect();
    horse_bench::write_result(
        "fig3_execution_time.json",
        &horse_bench::pool_envelope(&stats, &runs, &rows),
    );
}

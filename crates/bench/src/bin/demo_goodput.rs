//! **Demo goodput graph**: "at the end of each execution, we show a graph
//! of the aggregated rate of all flows arriving at the hosts for each TE
//! case."
//!
//! Runs the three TE approaches on a fat-tree and prints the aggregate
//! arrival-rate series side by side, plus summary rows. CSV lands in
//! `bench_results/` for plotting.
//!
//! Run: `cargo run --release -p horse-bench --bin demo_goodput -- \
//!       [pods] [seed] [horizon_s]`   (defaults: 4, 42, 20)

use horse_core::{Experiment, TeApproach};
use horse_sim::{SimDuration, SimTime};
use std::fmt::Write as _;

fn main() {
    let mut args = std::env::args().skip(1);
    let pods: usize = args.next().map(|a| a.parse().unwrap()).unwrap_or(4);
    let seed: u64 = args.next().map(|a| a.parse().unwrap()).unwrap_or(42);
    let horizon: f64 = args.next().map(|a| a.parse().unwrap()).unwrap_or(20.0);
    let max_gbps = (pods * pods * pods / 4) as f64;

    let approaches = [TeApproach::BgpEcmp, TeApproach::Hedera, TeApproach::SdnEcmp];
    let reports: Vec<_> = approaches
        .iter()
        .map(|te| {
            Experiment::for_spec(pods, *te, seed)
                .horizon_secs(horizon)
                .sample_every(SimDuration::from_millis(250))
                .run()
        })
        .collect();

    println!("== Demo goodput: aggregate arrival rate per TE approach ==");
    println!("(k={pods} fat-tree, {max_gbps:.0} Gbps ideal, seed {seed})");
    println!();
    print!("{:>7}", "t[s]");
    for te in &approaches {
        print!(" {:>12}", te.label());
    }
    println!();
    let mut csv = String::from("t_s,bgp_ecmp_gbps,hedera_gbps,sdn_ecmp_gbps\n");
    let mut t = 0.0;
    while t <= horizon + 1e-9 {
        print!("{t:>7.1}");
        let _ = write!(csv, "{t:.1}");
        for r in &reports {
            let v = r
                .goodput
                .get("aggregate")
                .and_then(|s| s.value_at(SimTime::from_secs_f64(t)))
                .unwrap_or(0.0)
                / 1e9;
            print!(" {v:>12.2}");
            let _ = write!(csv, ",{v:.3}");
        }
        println!();
        csv.push('\n');
        t += 1.0;
    }

    println!();
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "approach", "final[G]", "mean[G]", "peak[G]", "moves", "FTI[ms]"
    );
    for (te, r) in approaches.iter().zip(&reports) {
        println!(
            "{:<10} {:>12.2} {:>12.2} {:>12.2} {:>10} {:>8.1}",
            te.label(),
            r.goodput_final_bps() / 1e9,
            r.goodput_mean_bps() / 1e9,
            r.goodput_peak_bps() / 1e9,
            r.scheduler_moves,
            r.fti_time.as_millis_f64(),
        );
    }
    println!();
    println!(
        "paper shape check: SDN 5-tuple ECMP >= BGP src/dst ECMP (finer hash,\n\
         fewer collisions); Hedera improves on its base placement at the 5 s\n\
         scheduling rounds."
    );

    horse_bench::write_result(&format!("demo_goodput_k{pods}.csv"), &csv);
}

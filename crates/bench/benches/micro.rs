//! Criterion micro-benchmarks over Horse's hot data structures:
//! the event queue, the LPM trie, the fluid max–min solver, both wire
//! codecs, ECMP hashing, topology construction and demand estimation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use horse_bgp::msg::{Message, PathAttributes, UpdateMsg};
use horse_controller::estimate_demands;
use horse_dataplane::fib::{Fib, NextHop, RouteEntry, RouteOrigin};
use horse_dataplane::hash::{EcmpHasher, HashMode};
use horse_net::addr::Ipv4Prefix;
use horse_net::flow::{FiveTuple, FlowSpec};
use horse_net::fluid::FluidNetwork;
use horse_net::topology::{NodeId, PortId};
use horse_openflow::wire::{FlowMod, FlowModCommand, OfAction, OfMessage, OfPacket, OFPP_NONE};
use horse_sim::{EventQueue, SimTime};
use horse_topo::fattree::{FatTree, SwitchRole};
use horse_topo::pattern::{demo_tuple, TrafficPattern};
use std::net::Ipv4Addr;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                // Pseudo-random interleaved times.
                q.push(SimTime::from_nanos((i * 2_654_435_761) % 1_000_000), i);
            }
            let mut count = 0;
            while q.pop().is_some() {
                count += 1;
            }
            black_box(count)
        })
    });
}

fn bench_fib(c: &mut Criterion) {
    // A FIB with 1k routes, looked up at line rate.
    let mut fib = Fib::new();
    for i in 0..1024u32 {
        let addr = Ipv4Addr::from(0x0a00_0000 | (i << 8));
        fib.insert(
            Ipv4Prefix::new(addr, 24),
            RouteEntry::new(
                vec![NextHop {
                    port: PortId((i % 4) as u16),
                    gateway: Ipv4Addr::UNSPECIFIED,
                }],
                RouteOrigin::Bgp,
            ),
        );
    }
    c.bench_function("fib/lookup_1k_routes", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(2_654_435_761);
            let dst = Ipv4Addr::from(0x0a00_0000 | ((i % 1024) << 8) | 5);
            black_box(fib.lookup(dst))
        })
    });
    c.bench_function("fib/insert_1k_routes", |b| {
        b.iter(|| {
            let mut fib = Fib::new();
            for i in 0..1024u32 {
                let addr = Ipv4Addr::from(0x0a00_0000 | (i << 8));
                fib.insert(
                    Ipv4Prefix::new(addr, 24),
                    RouteEntry::new(
                        vec![NextHop {
                            port: PortId(0),
                            gateway: Ipv4Addr::UNSPECIFIED,
                        }],
                        RouteOrigin::Bgp,
                    ),
                );
            }
            black_box(fib.len())
        })
    });
}

fn bench_fluid_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("fluid/solve_permutation");
    for k in [4usize, 8] {
        let ft = FatTree::build(k, SwitchRole::OpenFlow, 1e9, 1_000);
        let pairs = TrafficPattern::RandomPermutation.pairs(&ft.hosts, 42);
        let hasher = EcmpHasher::new(HashMode::FiveTuple, 42);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let mut fluid = FluidNetwork::new();
                for (i, p) in pairs.iter().enumerate() {
                    let tuple = demo_tuple(&ft.topo, p.src, p.dst, i as u16);
                    let paths = ft.topo.all_shortest_paths(p.src, p.dst);
                    let path = paths[hasher.select(&tuple, paths.len())].clone();
                    fluid
                        .start(
                            SimTime::ZERO,
                            FlowSpec::cbr(p.src, p.dst, tuple, 1e9),
                            path,
                            &ft.topo,
                        )
                        .unwrap();
                }
                black_box(fluid.total_arrival_rate())
            })
        });
    }
    group.finish();
}

fn bench_fluid_incremental(c: &mut Criterion) {
    // One flow of a saturated k=8 permutation flaps between its two ECMP
    // paths; the scoped solver re-solves only the touched component, the
    // full solver re-runs the global water-fill. Same mutation, different
    // solver — the steady-state churn cost of the hybrid runner.
    let k = 8;
    let ft = FatTree::build(k, SwitchRole::OpenFlow, 1e9, 1_000);
    let pairs = TrafficPattern::RandomPermutation.pairs(&ft.hosts, 42);
    let hasher = EcmpHasher::new(HashMode::FiveTuple, 42);
    let build = || {
        let mut fluid = FluidNetwork::new();
        let mut ids = Vec::new();
        for (i, p) in pairs.iter().enumerate() {
            let tuple = demo_tuple(&ft.topo, p.src, p.dst, i as u16);
            let paths = ft.topo.all_shortest_paths(p.src, p.dst);
            let path = paths[hasher.select(&tuple, paths.len())].clone();
            let (id, _) = fluid
                .start(
                    SimTime::ZERO,
                    FlowSpec::cbr(p.src, p.dst, tuple, 1e9),
                    path,
                    &ft.topo,
                )
                .unwrap();
            ids.push(id);
        }
        (fluid, ids)
    };
    let (mut fluid, ids) = build();
    let victim = ids[0];
    let spec = *fluid.spec(victim).unwrap();
    let alts = ft.topo.all_shortest_paths(spec.src, spec.dst);
    assert!(alts.len() >= 2, "fat-tree pairs have ECMP choice");

    let mut group = c.benchmark_group("fluid/reroute_one_of_permutation");
    group.bench_function(BenchmarkId::new("incremental", k), |b| {
        let mut flip = 0usize;
        b.iter(|| {
            flip ^= 1;
            black_box(
                fluid
                    .reroute(SimTime::ZERO, victim, alts[flip].clone(), &ft.topo)
                    .unwrap(),
            )
        })
    });
    let (mut fluid, _) = build();
    group.bench_function(BenchmarkId::new("full", k), |b| {
        let mut flip = 0usize;
        b.iter(|| {
            flip ^= 1;
            fluid
                .reroute_deferred(SimTime::ZERO, victim, alts[flip].clone(), &ft.topo)
                .unwrap();
            black_box(fluid.recompute(&ft.topo))
        })
    });
    group.finish();
}

fn bench_bgp_codec(c: &mut Criterion) {
    let update = Message::Update(UpdateMsg {
        withdrawn: vec![],
        attrs: Some(std::sync::Arc::new(
            PathAttributes::originated(Ipv4Addr::new(10, 0, 0, 1)).prepended(64512),
        )),
        nlri: (0..16)
            .map(|i| Ipv4Prefix::new(Ipv4Addr::new(10, i, 0, 0), 16))
            .collect(),
    });
    let bytes = update.encode();
    c.bench_function("bgp/encode_update_16_nlri", |b| {
        b.iter(|| black_box(update.encode()))
    });
    c.bench_function("bgp/decode_update_16_nlri", |b| {
        b.iter(|| black_box(Message::decode(&bytes).unwrap()))
    });
}

fn bench_of_codec(c: &mut Criterion) {
    let tuple = FiveTuple::udp(
        Ipv4Addr::new(10, 0, 0, 2),
        10_000,
        Ipv4Addr::new(10, 1, 0, 2),
        20_000,
    );
    let fm = OfPacket::new(
        7,
        OfMessage::FlowMod(FlowMod {
            matcher: horse_dataplane::flowtable::Match::exact(tuple),
            cookie: 0,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 100,
            buffer_id: 0xffff_ffff,
            out_port: OFPP_NONE,
            flags: 0,
            actions: vec![OfAction::Output {
                port: 2,
                max_len: 0,
            }],
        }),
    );
    let bytes = fm.encode();
    c.bench_function("openflow/encode_flow_mod", |b| {
        b.iter(|| black_box(fm.encode()))
    });
    c.bench_function("openflow/decode_flow_mod", |b| {
        b.iter(|| black_box(OfPacket::decode(&bytes).unwrap()))
    });
}

fn bench_ecmp_hash(c: &mut Criterion) {
    let hasher = EcmpHasher::new(HashMode::FiveTuple, 1);
    let tuple = FiveTuple::udp(
        Ipv4Addr::new(10, 0, 0, 2),
        10_000,
        Ipv4Addr::new(10, 1, 0, 2),
        20_000,
    );
    c.bench_function("ecmp/five_tuple_hash", |b| {
        b.iter(|| black_box(hasher.select(&tuple, 4)))
    });
}

fn bench_fattree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("topo/fattree_build");
    for k in [4usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(FatTree::build(k, SwitchRole::OpenFlow, 1e9, 1_000)))
        });
    }
    group.finish();
}

fn bench_demand_estimation(c: &mut Criterion) {
    // 128-host permutation plus some fan-in.
    let mut flows = Vec::new();
    for i in 0..128u32 {
        flows.push((NodeId(i), NodeId((i + 1) % 128)));
        if i % 4 == 0 {
            flows.push((NodeId(i), NodeId(0)));
        }
    }
    c.bench_function("hedera/demand_estimation_160_flows", |b| {
        b.iter(|| black_box(estimate_demands(&flows)))
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_fib,
    bench_fluid_solver,
    bench_fluid_incremental,
    bench_bgp_codec,
    bench_of_codec,
    bench_ecmp_hash,
    bench_fattree_build,
    bench_demand_estimation,
);
criterion_main!(benches);

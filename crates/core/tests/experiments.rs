//! End-to-end experiments on small fat-trees: the three TE approaches of
//! the demo, exercised through the public `Experiment` API.

use horse_core::{Experiment, TeApproach};
use horse_sim::ClockMode;

const GBPS: f64 = 1e9;

#[test]
fn sdn_ecmp_demo_k4_routes_all_flows() {
    let report = Experiment::demo(4, TeApproach::SdnEcmp, 42)
        .horizon_secs(3.0)
        .run();
    assert_eq!(report.flows_requested, 16);
    assert_eq!(
        report.flows_routed, 16,
        "all flows placed by the controller"
    );
    assert!(report.all_routed_at.is_some());
    // Goodput: 16 hosts × ≤1 Gbps; collisions make it less than 16 but it
    // must be a substantial fraction.
    let final_bps = report.goodput_final_bps();
    assert!(
        final_bps > 8.0 * GBPS && final_bps <= 16.0 * GBPS + 1.0,
        "final goodput {final_bps}"
    );
    // Control plane spoke OpenFlow.
    assert!(report.control_msgs > 50, "msgs: {}", report.control_msgs);
    assert!(report.table_writes > 0);
    // The experiment entered FTI during rule installation and returned to
    // DES afterwards.
    assert!(report.fti_time.as_nanos() > 0);
    assert!(report.transition_count() >= 2, "{:?}", report.transitions);
    assert_eq!(
        report.transitions.last().map(|t| t.mode),
        Some(ClockMode::Des),
        "quiescent at the end"
    );
}

#[test]
fn bgp_ecmp_demo_k4_converges_and_routes() {
    let report = Experiment::demo(4, TeApproach::BgpEcmp, 42)
        .horizon_secs(5.0)
        .run();
    assert_eq!(report.flows_requested, 16);
    assert_eq!(
        report.flows_routed, 16,
        "all flows routed once BGP converged (routed={}, at={:?})",
        report.flows_routed, report.all_routed_at
    );
    let converged = report.all_routed_at.expect("convergence time recorded");
    assert!(
        converged.as_secs_f64() < 2.0,
        "BGP fat-tree convergence should be fast in virtual time: {converged}"
    );
    assert!(report.goodput_final_bps() > 8.0 * GBPS);
    assert!(
        report.control_msgs > 100,
        "BGP chatter: {}",
        report.control_msgs
    );
    assert!(
        report.table_writes > 20,
        "FIB installs: {}",
        report.table_writes
    );
    assert!(report.fti_time.as_nanos() > 0);
}

#[test]
fn hedera_demo_k4_runs_scheduling_rounds() {
    let report = Experiment::demo(4, TeApproach::Hedera, 42)
        .horizon_secs(12.0)
        .run();
    assert_eq!(report.flows_routed, 16);
    // Two polling rounds fit in 12 s (t=5, t=10): the 5-second polls keep
    // producing control traffic, so FTI recurs late in the run.
    let late_fti = report
        .transitions
        .iter()
        .any(|t| t.mode == ClockMode::Fti && t.at.as_secs_f64() > 4.5);
    assert!(
        late_fti,
        "Hedera polls must wake FTI: {:?}",
        report.transitions
    );
    assert!(report.goodput_final_bps() > 8.0 * GBPS);
}

#[test]
fn hedera_goodput_not_worse_than_plain_ecmp() {
    // Same seed → same permutation and same initial hash placement; Hedera
    // then re-places elephants. Greedy global-first-fit with estimated
    // demands can lose on an individual permutation, so the claim that
    // holds is the averaged one: across seeds, Hedera's steady-state
    // goodput must be at least ECMP's.
    let mut hedera_total = 0.0;
    let mut ecmp_total = 0.0;
    for seed in [1, 2, 3, 4, 5] {
        ecmp_total += Experiment::demo(4, TeApproach::SdnEcmp, seed)
            .horizon_secs(11.0)
            .run()
            .goodput_final_bps();
        hedera_total += Experiment::demo(4, TeApproach::Hedera, seed)
            .horizon_secs(11.0)
            .run()
            .goodput_final_bps();
    }
    assert!(
        hedera_total >= ecmp_total - 1.0,
        "hedera {hedera_total} < ecmp {ecmp_total}"
    );
}

#[test]
fn reports_are_deterministic_in_virtual_pacing() {
    let a = Experiment::demo(4, TeApproach::SdnEcmp, 9)
        .horizon_secs(2.0)
        .run();
    let b = Experiment::demo(4, TeApproach::SdnEcmp, 9)
        .horizon_secs(2.0)
        .run();
    assert_eq!(a.goodput.get("aggregate"), b.goodput.get("aggregate"));
    assert_eq!(a.transitions, b.transitions);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.control_msgs, b.control_msgs);
}

#[test]
fn different_seeds_differ() {
    let a = Experiment::demo(4, TeApproach::SdnEcmp, 1)
        .horizon_secs(2.0)
        .run();
    let b = Experiment::demo(4, TeApproach::SdnEcmp, 2)
        .horizon_secs(2.0)
        .run();
    // Different permutations → almost surely different goodput traces.
    assert_ne!(a.goodput.get("aggregate"), b.goodput.get("aggregate"));
}

#[test]
fn fti_des_split_reflects_workload() {
    // SDN ECMP: control activity only at the start → mostly DES.
    let report = Experiment::demo(4, TeApproach::SdnEcmp, 5)
        .horizon_secs(10.0)
        .run();
    assert!(
        report.fti_fraction() < 0.5,
        "ECMP should be mostly DES, got {:.2}",
        report.fti_fraction()
    );
}

//! Flow-level workload generation (à la fs / fs-sdn, which the paper cites
//! as prior work on fast SDN simulation).
//!
//! Instead of the demo's static permutation of CBR flows, these workloads
//! model data-center traffic as a stochastic process: each host starts
//! elastic (TCP-like) transfers with exponential inter-arrival times, to
//! uniformly chosen destinations, with sizes drawn from an exponential or
//! bounded-Pareto (heavy-tailed, mice-and-elephants) distribution. The
//! report's flow-completion-time distribution is the standard metric.

use crate::experiment::TrafficEvent;
use horse_net::flow::{FiveTuple, FlowSpec};
use horse_net::topology::{NodeId, Topology};
use horse_sim::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Transfer size distributions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeDist {
    /// Exponential with the given mean (bytes).
    Exponential {
        /// Mean size in bytes.
        mean_bytes: f64,
    },
    /// Bounded Pareto: heavy-tailed mice/elephants mix.
    BoundedPareto {
        /// Minimum transfer size (bytes).
        min_bytes: f64,
        /// Maximum transfer size (bytes).
        max_bytes: f64,
        /// Tail index (smaller = heavier tail; web traffic ≈ 1.1–1.3).
        alpha: f64,
    },
}

impl SizeDist {
    fn sample(&self, rng: &mut StdRng) -> u64 {
        match *self {
            SizeDist::Exponential { mean_bytes } => {
                let u: f64 = rng.gen_range(1e-12..1.0);
                (-u.ln() * mean_bytes).max(1.0) as u64
            }
            SizeDist::BoundedPareto {
                min_bytes,
                max_bytes,
                alpha,
            } => {
                // Inverse-CDF sampling of the bounded Pareto.
                let u: f64 = rng.gen_range(0.0..1.0);
                let l = min_bytes.powf(alpha);
                let h = max_bytes.powf(alpha);
                let x = (-(u * h - u * l - h) / (h * l)).powf(-1.0 / alpha);
                x.clamp(min_bytes, max_bytes) as u64
            }
        }
    }
}

/// Parameters of a Poisson flow-level workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonWorkload {
    /// Flow arrival rate per host, flows/second.
    pub lambda_per_host: f64,
    /// Transfer size distribution.
    pub sizes: SizeDist,
    /// Stop generating arrivals at this time (flows may finish later).
    pub until: SimTime,
    /// RNG seed.
    pub seed: u64,
}

impl PoissonWorkload {
    /// Generates the traffic events: every host starts elastic transfers
    /// at exponential intervals, each to a uniformly random *other* host.
    pub fn generate(&self, topo: &Topology, hosts: &[NodeId]) -> Vec<TrafficEvent> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        if hosts.len() < 2 || self.lambda_per_host <= 0.0 {
            return out;
        }
        let mut flow_idx: u16 = 0;
        for (hi, src) in hosts.iter().enumerate() {
            let mut t = 0.0f64;
            loop {
                let u: f64 = rng.gen_range(1e-12..1.0);
                t += -u.ln() / self.lambda_per_host;
                let start = SimTime::from_secs_f64(t);
                if start >= self.until {
                    break;
                }
                let mut di = rng.gen_range(0..hosts.len());
                if di == hi {
                    di = (di + 1) % hosts.len();
                }
                let dst = hosts[di];
                let size = self.sizes.sample(&mut rng);
                let tuple = FiveTuple::tcp(
                    topo.node(*src).ip,
                    30_000 + flow_idx,
                    topo.node(dst).ip,
                    5_201,
                );
                flow_idx = flow_idx.wrapping_add(1);
                out.push(TrafficEvent {
                    start,
                    spec: FlowSpec::elastic(*src, dst, tuple, Some(size)),
                    stop: None,
                });
            }
        }
        out.sort_by_key(|e| e.start);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use horse_topo::fattree::{FatTree, SwitchRole};

    fn workload(lambda: f64, seed: u64) -> (FatTree, Vec<TrafficEvent>) {
        let ft = FatTree::build(4, SwitchRole::OpenFlow, 1e9, 1_000);
        let w = PoissonWorkload {
            lambda_per_host: lambda,
            sizes: SizeDist::Exponential { mean_bytes: 1e6 },
            until: SimTime::from_secs(10),
            seed,
        };
        let events = w.generate(&ft.topo, &ft.hosts.clone());
        (ft, events)
    }

    #[test]
    fn arrival_count_matches_rate() {
        let (ft, events) = workload(2.0, 1);
        // 16 hosts × 2 flows/s × 10 s = 320 expected.
        let expect = ft.hosts.len() as f64 * 2.0 * 10.0;
        assert!(
            (events.len() as f64 - expect).abs() < expect * 0.3,
            "{} arrivals vs ~{expect}",
            events.len()
        );
        for e in &events {
            assert!(e.start < SimTime::from_secs(10));
            assert_ne!(e.spec.src, e.spec.dst);
            assert!(e.spec.size_bytes.is_some());
            assert!(e.spec.demand_bps.is_infinite(), "elastic transfers");
        }
    }

    #[test]
    fn events_sorted_and_deterministic() {
        let (_, a) = workload(1.0, 7);
        let (_, b) = workload(1.0, 7);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        let (_, c) = workload(1.0, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn exponential_sizes_have_roughly_right_mean() {
        let (_, events) = workload(5.0, 3);
        let mean = events
            .iter()
            .filter_map(|e| e.spec.size_bytes)
            .map(|s| s as f64)
            .sum::<f64>()
            / events.len() as f64;
        assert!((mean - 1e6).abs() < 0.2e6, "sample mean {mean} vs 1e6");
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let ft = FatTree::build(4, SwitchRole::OpenFlow, 1e9, 1_000);
        let w = PoissonWorkload {
            lambda_per_host: 5.0,
            sizes: SizeDist::BoundedPareto {
                min_bytes: 1e4,
                max_bytes: 1e9,
                alpha: 1.2,
            },
            until: SimTime::from_secs(5),
            seed: 2,
        };
        let events = w.generate(&ft.topo, &ft.hosts.clone());
        assert!(!events.is_empty());
        let sizes: Vec<f64> = events
            .iter()
            .filter_map(|e| e.spec.size_bytes)
            .map(|s| s as f64)
            .collect();
        for s in &sizes {
            assert!((1e4..=1e9).contains(s), "{s}");
        }
        // Heavy tail: the max should dwarf the median.
        let mut sorted = sizes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let max = sorted[sorted.len() - 1];
        assert!(max > median * 20.0, "median {median}, max {max}");
    }

    #[test]
    fn zero_rate_or_tiny_host_list_is_empty() {
        let ft = FatTree::build(4, SwitchRole::OpenFlow, 1e9, 1_000);
        let w = PoissonWorkload {
            lambda_per_host: 0.0,
            sizes: SizeDist::Exponential { mean_bytes: 1e6 },
            until: SimTime::from_secs(10),
            seed: 1,
        };
        assert!(w.generate(&ft.topo, &ft.hosts.clone()).is_empty());
        let w2 = PoissonWorkload {
            lambda_per_host: 1.0,
            ..w
        };
        assert!(w2.generate(&ft.topo, &[]).is_empty());
    }
}

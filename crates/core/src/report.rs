//! Experiment results.

use horse_net::flow::FlowId;
use horse_sim::{ClockMode, ModeTransition, SimDuration, SimTime};
use horse_stats::{json_f64, json_string, Json, SeriesSet};
use horse_trace::TraceSummary;

/// Peak resident set size of this process in bytes (Linux `VmHWM` from
/// `/proc/self/status`; 0 on other platforms or read failure). Process-wide
/// and monotone: in a sweep batch it reports the high-water mark across
/// every run so far, not this run's increment.
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
            return 0;
        };
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse()
                    .unwrap_or(0);
                return kb * 1024;
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// Resets the kernel's peak-RSS accounting to the *current* RSS by writing
/// `5` to `/proc/self/clear_refs`, so the next [`peak_rss_bytes`] reads a
/// per-phase high-water mark instead of a process-lifetime one. Without
/// this, the second and later rows of a multi-row benchmark inherit the
/// largest earlier row's peak and report garbage. Returns `false` where
/// the kernel doesn't support the reset (non-Linux, locked-down
/// containers) — callers should then treat peaks as lifetime-monotone.
pub fn reset_peak_rss() -> bool {
    #[cfg(target_os = "linux")]
    {
        std::fs::write("/proc/self/clear_refs", b"5").is_ok()
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

/// Everything a finished experiment reports — the inputs for the demo's
/// goodput graph (per TE approach) and for Figure 3's execution times.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Scenario label (e.g. `"sdn-ecmp-k4"`).
    pub label: String,
    /// Virtual time the experiment covered.
    pub horizon: SimTime,
    /// Time series; `"aggregate"` holds the total host arrival rate in
    /// bits/s (the demo's goodput graph).
    pub goodput: SeriesSet,
    /// DES↔FTI transitions (Figure 1's timeline).
    pub transitions: Vec<ModeTransition>,
    /// Virtual time spent in FTI mode.
    pub fti_time: SimDuration,
    /// Virtual time spent in DES mode.
    pub des_time: SimDuration,
    /// Wall-clock seconds spent building topology + control plane
    /// ("time required to create the topology").
    pub wall_setup_secs: f64,
    /// Wall-clock seconds spent executing the experiment.
    pub wall_run_secs: f64,
    /// Data-plane events processed by the engine.
    pub events_processed: u64,
    /// Control-plane messages exchanged.
    pub control_msgs: u64,
    /// FIB installs (BGP) or FLOW_MODs applied (SDN).
    pub table_writes: u64,
    /// Flows the workload requested.
    pub flows_requested: usize,
    /// Flows that obtained a path.
    pub flows_routed: usize,
    /// Bounded flows that completed, with completion times.
    pub completions: Vec<(FlowId, SimTime)>,
    /// Flow completion times (seconds from each flow's start) for bounded
    /// transfers — the FCT distribution flow-level workloads report.
    pub flow_completion_secs: Vec<f64>,
    /// When the last requested flow obtained a path (BGP convergence /
    /// SDN rule installation done).
    pub all_routed_at: Option<SimTime>,
    /// Hedera elephant moves (0 elsewhere).
    pub scheduler_moves: u64,
    /// Control-plane pump steps executed.
    pub pump_steps: u64,
    /// Cumulative emulated nodes across pump steps (`n × steps`) — the
    /// work a poll-everyone pump would do.
    pub pump_nodes_total: u64,
    /// Nodes the pump actually polled/drained.
    pub pump_nodes_touched: u64,
    /// Full flow-table walks (timeout checks + expiry sweeps).
    pub pump_table_scans: u64,
    /// Intra-run drain workers the pump was configured with (1 = serial;
    /// `HORSE_RUN_THREADS`). A cost/config field: runs at different
    /// worker counts must still be semantically identical.
    pub pump_run_threads: u64,
    /// Pump rounds whose drain ran on the work-stealing pool.
    pub pump_parallel_rounds: u64,
    /// Nodes drained inside parallel rounds.
    pub pump_parallel_nodes: u64,
    /// Fluid-solver invocations (scoped + full).
    pub fluid_solves: u64,
    /// Directed links seeding scoped solves (dirty-set size).
    pub fluid_seed_dlinks: u64,
    /// Flows visited by component closures across all solves.
    pub fluid_flows_touched: u64,
    /// Waterfill scratch buffers reused warm from the pool.
    pub fluid_scratch_reuses: u64,
    /// Completion predictions pushed onto the finish-time heap.
    pub fluid_heap_pushes: u64,
    /// Stale heap entries popped and dropped (lazy invalidation).
    pub fluid_heap_stale_pops: u64,
    /// Scoped solves whose components were sharded on the pool.
    pub fluid_parallel_rounds: u64,
    /// Components solved inside parallel rounds.
    pub fluid_parallel_components: u64,
    /// BGP decision-process invocations (all speakers).
    pub rib_decide_calls: u64,
    /// Decision calls answered from the per-prefix memo cache.
    pub rib_decide_cache_hits: u64,
    /// Cached decisions dropped by RIB mutations.
    pub rib_invalidations: u64,
    /// Candidates examined by decision recomputes.
    pub rib_candidate_touches: u64,
    /// Distinct path-attribute sets interned.
    pub rib_attr_interns: u64,
    /// Attribute-set intern hits (deep clones avoided).
    pub rib_attr_reuses: u64,
    /// Peak attribute-store size summed over speakers.
    pub rib_attr_store_peak: u64,
    /// Export-policy results served from per-peer caches.
    pub rib_export_cache_hits: u64,
    /// Export-policy computations (cache misses).
    pub rib_export_cache_misses: u64,
    /// Peak resident set size of the process in bytes (Linux `VmHWM`;
    /// 0 where unavailable). Process-wide, so sweep batches sharing a
    /// process see the max across runs so far.
    pub mem_peak_rss_bytes: u64,
    /// Distinct prefixes interned, summed over speakers.
    pub mem_prefix_ids: u64,
    /// Distinct peer addresses interned, summed over speakers.
    pub mem_peer_ids: u64,
    /// Entries in the run's shared path-attribute pool.
    pub mem_attr_entries: u64,
    /// Estimated bytes held by the shared path-attribute pool.
    pub mem_attr_bytes_est: u64,
    /// Trace totals for the run (all-zero when tracing was off).
    pub trace: TraceSummary,
}

impl ExperimentReport {
    /// Time-weighted mean of the aggregate goodput, bits/s.
    pub fn goodput_mean_bps(&self) -> f64 {
        self.goodput
            .get("aggregate")
            .and_then(|s| s.time_weighted_mean())
            .unwrap_or(0.0)
    }

    /// Final aggregate goodput sample, bits/s.
    pub fn goodput_final_bps(&self) -> f64 {
        self.goodput
            .get("aggregate")
            .and_then(|s| s.last())
            .map(|(_, v)| v)
            .unwrap_or(0.0)
    }

    /// Peak aggregate goodput, bits/s.
    pub fn goodput_peak_bps(&self) -> f64 {
        self.goodput
            .get("aggregate")
            .and_then(|s| s.max())
            .unwrap_or(0.0)
    }

    /// Fraction of virtual time spent in FTI mode.
    pub fn fti_fraction(&self) -> f64 {
        let total = self.fti_time.as_secs_f64() + self.des_time.as_secs_f64();
        if total <= 0.0 {
            0.0
        } else {
            self.fti_time.as_secs_f64() / total
        }
    }

    /// Number of mode transitions after the initial DES entry.
    pub fn transition_count(&self) -> usize {
        self.transitions.len().saturating_sub(1)
    }

    /// Renders the transition log as `(t, mode)` rows (Figure 1 data).
    pub fn transition_rows(&self) -> Vec<(f64, &'static str)> {
        self.transitions
            .iter()
            .map(|t| {
                (
                    t.at.as_secs_f64(),
                    match t.mode {
                        ClockMode::Des => "DES",
                        ClockMode::Fti => "FTI",
                    },
                )
            })
            .collect()
    }

    /// FCT percentile over completed transfers (`q` in `[0, 1]`); `None` when
    /// nothing completed.
    pub fn fct_quantile(&self, q: f64) -> Option<f64> {
        if self.flow_completion_secs.is_empty() {
            return None;
        }
        let mut v = self.flow_completion_secs.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN FCTs"));
        let idx = ((q.clamp(0.0, 1.0) * (v.len() - 1) as f64).round()) as usize;
        Some(v[idx])
    }

    /// JSON dump for the bench harnesses. Times are nanosecond integers so
    /// [`ExperimentReport::from_json`] round-trips exactly.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"label\": {},", json_string(&self.label));
        let _ = writeln!(out, "  \"horizon_ns\": {},", self.horizon.as_nanos());
        out.push_str("  \"goodput\": {");
        for (i, name) in self.goodput.names().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: [", json_string(name));
            let series = self.goodput.get(name).expect("name from names()");
            for (j, (t, v)) in series.points().iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{}, {}]", t.as_nanos(), json_f64(*v));
            }
            out.push(']');
        }
        out.push_str("\n  },\n");
        out.push_str("  \"transitions\": [");
        for (i, tr) in self.transitions.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let mode = match tr.mode {
                ClockMode::Des => "DES",
                ClockMode::Fti => "FTI",
            };
            let _ = write!(out, "[{}, \"{mode}\"]", tr.at.as_nanos());
        }
        out.push_str("],\n");
        let _ = writeln!(out, "  \"fti_time_ns\": {},", self.fti_time.as_nanos());
        let _ = writeln!(out, "  \"des_time_ns\": {},", self.des_time.as_nanos());
        let _ = writeln!(
            out,
            "  \"wall_setup_secs\": {},",
            json_f64(self.wall_setup_secs)
        );
        let _ = writeln!(
            out,
            "  \"wall_run_secs\": {},",
            json_f64(self.wall_run_secs)
        );
        let _ = writeln!(out, "  \"events_processed\": {},", self.events_processed);
        let _ = writeln!(out, "  \"control_msgs\": {},", self.control_msgs);
        let _ = writeln!(out, "  \"table_writes\": {},", self.table_writes);
        let _ = writeln!(out, "  \"flows_requested\": {},", self.flows_requested);
        let _ = writeln!(out, "  \"flows_routed\": {},", self.flows_routed);
        out.push_str("  \"completions\": [");
        for (i, (id, t)) in self.completions.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{}, {}]", id.0, t.as_nanos());
        }
        out.push_str("],\n");
        out.push_str("  \"flow_completion_secs\": [");
        for (i, s) in self.flow_completion_secs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_f64(*s));
        }
        out.push_str("],\n");
        match self.all_routed_at {
            Some(t) => {
                let _ = writeln!(out, "  \"all_routed_at_ns\": {},", t.as_nanos());
            }
            None => out.push_str("  \"all_routed_at_ns\": null,\n"),
        }
        let _ = writeln!(out, "  \"scheduler_moves\": {},", self.scheduler_moves);
        let _ = writeln!(out, "  \"pump_steps\": {},", self.pump_steps);
        let _ = writeln!(out, "  \"pump_nodes_total\": {},", self.pump_nodes_total);
        let _ = writeln!(
            out,
            "  \"pump_nodes_touched\": {},",
            self.pump_nodes_touched
        );
        let _ = writeln!(out, "  \"pump_table_scans\": {},", self.pump_table_scans);
        let _ = writeln!(out, "  \"pump_run_threads\": {},", self.pump_run_threads);
        let _ = writeln!(
            out,
            "  \"pump_parallel_rounds\": {},",
            self.pump_parallel_rounds
        );
        let _ = writeln!(
            out,
            "  \"pump_parallel_nodes\": {},",
            self.pump_parallel_nodes
        );
        let _ = writeln!(out, "  \"fluid_solves\": {},", self.fluid_solves);
        let _ = writeln!(out, "  \"fluid_seed_dlinks\": {},", self.fluid_seed_dlinks);
        let _ = writeln!(
            out,
            "  \"fluid_flows_touched\": {},",
            self.fluid_flows_touched
        );
        let _ = writeln!(
            out,
            "  \"fluid_scratch_reuses\": {},",
            self.fluid_scratch_reuses
        );
        let _ = writeln!(out, "  \"fluid_heap_pushes\": {},", self.fluid_heap_pushes);
        let _ = writeln!(
            out,
            "  \"fluid_heap_stale_pops\": {},",
            self.fluid_heap_stale_pops
        );
        let _ = writeln!(
            out,
            "  \"fluid_parallel_rounds\": {},",
            self.fluid_parallel_rounds
        );
        let _ = writeln!(
            out,
            "  \"fluid_parallel_components\": {},",
            self.fluid_parallel_components
        );
        let _ = writeln!(out, "  \"rib_decide_calls\": {},", self.rib_decide_calls);
        let _ = writeln!(
            out,
            "  \"rib_decide_cache_hits\": {},",
            self.rib_decide_cache_hits
        );
        let _ = writeln!(out, "  \"rib_invalidations\": {},", self.rib_invalidations);
        let _ = writeln!(
            out,
            "  \"rib_candidate_touches\": {},",
            self.rib_candidate_touches
        );
        let _ = writeln!(out, "  \"rib_attr_interns\": {},", self.rib_attr_interns);
        let _ = writeln!(out, "  \"rib_attr_reuses\": {},", self.rib_attr_reuses);
        let _ = writeln!(
            out,
            "  \"rib_attr_store_peak\": {},",
            self.rib_attr_store_peak
        );
        let _ = writeln!(
            out,
            "  \"rib_export_cache_hits\": {},",
            self.rib_export_cache_hits
        );
        let _ = writeln!(
            out,
            "  \"rib_export_cache_misses\": {},",
            self.rib_export_cache_misses
        );
        let _ = writeln!(
            out,
            "  \"mem_peak_rss_bytes\": {},",
            self.mem_peak_rss_bytes
        );
        let _ = writeln!(out, "  \"mem_prefix_ids\": {},", self.mem_prefix_ids);
        let _ = writeln!(out, "  \"mem_peer_ids\": {},", self.mem_peer_ids);
        let _ = writeln!(out, "  \"mem_attr_entries\": {},", self.mem_attr_entries);
        let _ = writeln!(
            out,
            "  \"mem_attr_bytes_est\": {},",
            self.mem_attr_bytes_est
        );
        let _ = writeln!(out, "  \"trace_events\": {},", self.trace.events);
        let _ = writeln!(out, "  \"trace_dropped\": {},", self.trace.dropped);
        let _ = writeln!(
            out,
            "  \"trace_fti_attributed_ns\": {},",
            self.trace.fti_attributed_ns
        );
        let _ = writeln!(
            out,
            "  \"trace_conversations\": {}",
            self.trace.conversations
        );
        out.push('}');
        out
    }

    /// Every cost-only `u64` counter in the report, as one table. This is
    /// the single place that decides what [`ExperimentReport::semantic_json`]
    /// zeroes: any counter that measures *how hard the engine worked* (pump
    /// effort, RIB caching, memory shape, trace volume) belongs here;
    /// anything describing *what the experiment computed* does not. Adding
    /// a counter to the struct without adding it here would leak it into
    /// semantic comparisons, so the unit test below checks every
    /// `pump_`/`rib_`/`mem_`/`trace_`-prefixed JSON key comes out zero.
    fn cost_counters_mut(&mut self) -> [&mut u64; 33] {
        [
            &mut self.pump_steps,
            &mut self.pump_nodes_total,
            &mut self.pump_nodes_touched,
            &mut self.pump_table_scans,
            &mut self.pump_run_threads,
            &mut self.pump_parallel_rounds,
            &mut self.pump_parallel_nodes,
            &mut self.fluid_solves,
            &mut self.fluid_seed_dlinks,
            &mut self.fluid_flows_touched,
            &mut self.fluid_scratch_reuses,
            &mut self.fluid_heap_pushes,
            &mut self.fluid_heap_stale_pops,
            &mut self.fluid_parallel_rounds,
            &mut self.fluid_parallel_components,
            &mut self.rib_decide_calls,
            &mut self.rib_decide_cache_hits,
            &mut self.rib_invalidations,
            &mut self.rib_candidate_touches,
            &mut self.rib_attr_interns,
            &mut self.rib_attr_reuses,
            &mut self.rib_attr_store_peak,
            &mut self.rib_export_cache_hits,
            &mut self.rib_export_cache_misses,
            &mut self.mem_peak_rss_bytes,
            &mut self.mem_prefix_ids,
            &mut self.mem_peer_ids,
            &mut self.mem_attr_entries,
            &mut self.mem_attr_bytes_est,
            &mut self.trace.events,
            &mut self.trace.dropped,
            &mut self.trace.fti_attributed_ns,
            &mut self.trace.conversations,
        ]
    }

    /// The cost-only wall-clock fields, zeroed alongside the counters.
    fn cost_walls_mut(&mut self) -> [&mut f64; 2] {
        [&mut self.wall_setup_secs, &mut self.wall_run_secs]
    }

    /// JSON with cost-only fields (wall times, pump counters) zeroed —
    /// two runs are semantically identical iff these strings are
    /// byte-identical, regardless of how the pump was scheduled.
    pub fn semantic_json(&self) -> String {
        let mut r = self.clone();
        for wall in r.cost_walls_mut() {
            *wall = 0.0;
        }
        for counter in r.cost_counters_mut() {
            *counter = 0;
        }
        r.to_json()
    }

    /// Parses a report produced by [`ExperimentReport::to_json`].
    pub fn from_json(text: &str) -> Result<ExperimentReport, String> {
        let v = Json::parse(text)?;
        let field = |k: &str| v.get(k).ok_or_else(|| format!("missing field '{k}'"));
        let num =
            |k: &str| -> Result<u64, String> { field(k)?.as_u64().ok_or(format!("bad '{k}'")) };
        let f64_of =
            |k: &str| -> Result<f64, String> { field(k)?.as_f64().ok_or(format!("bad '{k}'")) };
        let opt_num = |k: &str| -> u64 { v.get(k).and_then(|j| j.as_u64()).unwrap_or(0) };

        let mut goodput = SeriesSet::new();
        if let Json::Obj(series) = field("goodput")? {
            for (name, pts) in series {
                let pts = pts.as_array().ok_or("bad series")?;
                for p in pts {
                    let p = p.as_array().ok_or("bad point")?;
                    let t = p[0].as_u64().ok_or("bad point time")?;
                    let val = p[1].as_f64().ok_or("bad point value")?;
                    goodput.push(name, SimTime::from_nanos(t), val);
                }
            }
        } else {
            return Err("bad 'goodput'".into());
        }

        let mut transitions = Vec::new();
        for tr in field("transitions")?.as_array().ok_or("bad transitions")? {
            let tr = tr.as_array().ok_or("bad transition")?;
            let at = SimTime::from_nanos(tr[0].as_u64().ok_or("bad transition time")?);
            let mode = match tr[1].as_str() {
                Some("DES") => ClockMode::Des,
                Some("FTI") => ClockMode::Fti,
                other => return Err(format!("bad transition mode {other:?}")),
            };
            transitions.push(ModeTransition { at, mode });
        }

        let mut completions = Vec::new();
        for c in field("completions")?.as_array().ok_or("bad completions")? {
            let c = c.as_array().ok_or("bad completion")?;
            completions.push((
                FlowId(c[0].as_u64().ok_or("bad completion id")?),
                SimTime::from_nanos(c[1].as_u64().ok_or("bad completion time")?),
            ));
        }

        let flow_completion_secs = field("flow_completion_secs")?
            .as_array()
            .ok_or("bad flow_completion_secs")?
            .iter()
            .map(|s| s.as_f64().ok_or("bad fct"))
            .collect::<Result<Vec<f64>, _>>()?;

        let all_routed_at = match field("all_routed_at_ns")? {
            Json::Null => None,
            other => Some(SimTime::from_nanos(
                other.as_u64().ok_or("bad all_routed_at_ns")?,
            )),
        };

        Ok(ExperimentReport {
            label: field("label")?.as_str().ok_or("bad label")?.to_string(),
            horizon: SimTime::from_nanos(num("horizon_ns")?),
            goodput,
            transitions,
            fti_time: SimDuration::from_nanos(num("fti_time_ns")?),
            des_time: SimDuration::from_nanos(num("des_time_ns")?),
            wall_setup_secs: f64_of("wall_setup_secs")?,
            wall_run_secs: f64_of("wall_run_secs")?,
            events_processed: num("events_processed")?,
            control_msgs: num("control_msgs")?,
            table_writes: num("table_writes")?,
            flows_requested: num("flows_requested")? as usize,
            flows_routed: num("flows_routed")? as usize,
            completions,
            flow_completion_secs,
            all_routed_at,
            scheduler_moves: num("scheduler_moves")?,
            // Absent in pre-pump-stats dumps: default to 0.
            pump_steps: opt_num("pump_steps"),
            pump_nodes_total: opt_num("pump_nodes_total"),
            pump_nodes_touched: opt_num("pump_nodes_touched"),
            pump_table_scans: opt_num("pump_table_scans"),
            // Absent in pre-parallel-pump dumps: default to 0.
            pump_run_threads: opt_num("pump_run_threads"),
            pump_parallel_rounds: opt_num("pump_parallel_rounds"),
            pump_parallel_nodes: opt_num("pump_parallel_nodes"),
            // Absent in pre-flow-arena dumps: default to 0.
            fluid_solves: opt_num("fluid_solves"),
            fluid_seed_dlinks: opt_num("fluid_seed_dlinks"),
            fluid_flows_touched: opt_num("fluid_flows_touched"),
            fluid_scratch_reuses: opt_num("fluid_scratch_reuses"),
            fluid_heap_pushes: opt_num("fluid_heap_pushes"),
            fluid_heap_stale_pops: opt_num("fluid_heap_stale_pops"),
            fluid_parallel_rounds: opt_num("fluid_parallel_rounds"),
            fluid_parallel_components: opt_num("fluid_parallel_components"),
            // Absent in pre-rib-stats dumps: default to 0.
            rib_decide_calls: opt_num("rib_decide_calls"),
            rib_decide_cache_hits: opt_num("rib_decide_cache_hits"),
            rib_invalidations: opt_num("rib_invalidations"),
            rib_candidate_touches: opt_num("rib_candidate_touches"),
            rib_attr_interns: opt_num("rib_attr_interns"),
            rib_attr_reuses: opt_num("rib_attr_reuses"),
            rib_attr_store_peak: opt_num("rib_attr_store_peak"),
            rib_export_cache_hits: opt_num("rib_export_cache_hits"),
            rib_export_cache_misses: opt_num("rib_export_cache_misses"),
            // Absent in pre-mem-stats dumps: default to 0.
            mem_peak_rss_bytes: opt_num("mem_peak_rss_bytes"),
            mem_prefix_ids: opt_num("mem_prefix_ids"),
            mem_peer_ids: opt_num("mem_peer_ids"),
            mem_attr_entries: opt_num("mem_attr_entries"),
            mem_attr_bytes_est: opt_num("mem_attr_bytes_est"),
            // Absent in pre-trace dumps: default to 0.
            trace: TraceSummary {
                events: opt_num("trace_events"),
                dropped: opt_num("trace_dropped"),
                fti_attributed_ns: opt_num("trace_fti_attributed_ns"),
                conversations: opt_num("trace_conversations"),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ExperimentReport {
        ExperimentReport {
            label: "t".to_string(),
            horizon: SimTime::from_millis(10),
            goodput: SeriesSet::new(),
            transitions: vec![ModeTransition {
                at: SimTime::ZERO,
                mode: ClockMode::Des,
            }],
            fti_time: SimDuration::from_millis(3),
            des_time: SimDuration::from_millis(7),
            wall_setup_secs: 1.5,
            wall_run_secs: 2.5,
            events_processed: 11,
            control_msgs: 22,
            table_writes: 33,
            flows_requested: 4,
            flows_routed: 4,
            completions: Vec::new(),
            flow_completion_secs: Vec::new(),
            all_routed_at: None,
            scheduler_moves: 0,
            pump_steps: 1,
            pump_nodes_total: 2,
            pump_nodes_touched: 3,
            pump_table_scans: 4,
            pump_run_threads: 23,
            pump_parallel_rounds: 24,
            pump_parallel_nodes: 25,
            fluid_solves: 26,
            fluid_seed_dlinks: 27,
            fluid_flows_touched: 28,
            fluid_scratch_reuses: 29,
            fluid_heap_pushes: 30,
            fluid_heap_stale_pops: 31,
            fluid_parallel_rounds: 32,
            fluid_parallel_components: 33,
            rib_decide_calls: 5,
            rib_decide_cache_hits: 6,
            rib_invalidations: 7,
            rib_candidate_touches: 8,
            rib_attr_interns: 9,
            rib_attr_reuses: 10,
            rib_attr_store_peak: 11,
            rib_export_cache_hits: 12,
            rib_export_cache_misses: 13,
            mem_peak_rss_bytes: 18,
            mem_prefix_ids: 19,
            mem_peer_ids: 20,
            mem_attr_entries: 21,
            mem_attr_bytes_est: 22,
            trace: TraceSummary {
                events: 14,
                dropped: 15,
                fti_attributed_ns: 16,
                conversations: 17,
            },
        }
    }

    #[test]
    fn semantic_json_zeroes_every_cost_key() {
        let sem = sample_report().semantic_json();
        let v = Json::parse(&sem).expect("semantic_json parses");
        let Json::Obj(fields) = &v else {
            panic!("semantic_json is not an object");
        };
        let mut checked = 0;
        for (key, value) in fields {
            let is_cost = key.starts_with("pump_")
                || key.starts_with("fluid_")
                || key.starts_with("rib_")
                || key.starts_with("mem_")
                || key.starts_with("trace_")
                || key.starts_with("wall_");
            if !is_cost {
                continue;
            }
            checked += 1;
            assert_eq!(
                value.as_f64(),
                Some(0.0),
                "cost key {key:?} not zeroed in semantic_json"
            );
        }
        // 33 counters + 2 wall times; a miscount here means a counter was
        // added to the struct but not to `cost_counters_mut`.
        assert_eq!(checked, 35, "unexpected number of cost keys");
    }

    #[test]
    fn trace_summary_round_trips_through_json() {
        let r = sample_report();
        let parsed = ExperimentReport::from_json(&r.to_json()).expect("parse");
        assert_eq!(parsed.trace, r.trace);
        // Pre-trace dumps (no trace_* keys) default to zero.
        let legacy = sample_report().semantic_json();
        let parsed = ExperimentReport::from_json(&legacy).expect("parse");
        assert_eq!(parsed.trace, TraceSummary::default());
    }
}

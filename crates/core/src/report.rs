//! Experiment results.

use horse_net::flow::FlowId;
use horse_sim::{ClockMode, ModeTransition, SimDuration, SimTime};
use horse_stats::SeriesSet;
use serde::{Deserialize, Serialize};

/// Everything a finished experiment reports — the inputs for the demo's
/// goodput graph (per TE approach) and for Figure 3's execution times.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Scenario label (e.g. `"sdn-ecmp-k4"`).
    pub label: String,
    /// Virtual time the experiment covered.
    pub horizon: SimTime,
    /// Time series; `"aggregate"` holds the total host arrival rate in
    /// bits/s (the demo's goodput graph).
    pub goodput: SeriesSet,
    /// DES↔FTI transitions (Figure 1's timeline).
    pub transitions: Vec<ModeTransition>,
    /// Virtual time spent in FTI mode.
    pub fti_time: SimDuration,
    /// Virtual time spent in DES mode.
    pub des_time: SimDuration,
    /// Wall-clock seconds spent building topology + control plane
    /// ("time required to create the topology").
    pub wall_setup_secs: f64,
    /// Wall-clock seconds spent executing the experiment.
    pub wall_run_secs: f64,
    /// Data-plane events processed by the engine.
    pub events_processed: u64,
    /// Control-plane messages exchanged.
    pub control_msgs: u64,
    /// FIB installs (BGP) or FLOW_MODs applied (SDN).
    pub table_writes: u64,
    /// Flows the workload requested.
    pub flows_requested: usize,
    /// Flows that obtained a path.
    pub flows_routed: usize,
    /// Bounded flows that completed, with completion times.
    pub completions: Vec<(FlowId, SimTime)>,
    /// Flow completion times (seconds from each flow's start) for bounded
    /// transfers — the FCT distribution flow-level workloads report.
    pub flow_completion_secs: Vec<f64>,
    /// When the last requested flow obtained a path (BGP convergence /
    /// SDN rule installation done).
    pub all_routed_at: Option<SimTime>,
    /// Hedera elephant moves (0 elsewhere).
    pub scheduler_moves: u64,
}

impl ExperimentReport {
    /// Time-weighted mean of the aggregate goodput, bits/s.
    pub fn goodput_mean_bps(&self) -> f64 {
        self.goodput
            .get("aggregate")
            .and_then(|s| s.time_weighted_mean())
            .unwrap_or(0.0)
    }

    /// Final aggregate goodput sample, bits/s.
    pub fn goodput_final_bps(&self) -> f64 {
        self.goodput
            .get("aggregate")
            .and_then(|s| s.last())
            .map(|(_, v)| v)
            .unwrap_or(0.0)
    }

    /// Peak aggregate goodput, bits/s.
    pub fn goodput_peak_bps(&self) -> f64 {
        self.goodput
            .get("aggregate")
            .and_then(|s| s.max())
            .unwrap_or(0.0)
    }

    /// Fraction of virtual time spent in FTI mode.
    pub fn fti_fraction(&self) -> f64 {
        let total = self.fti_time.as_secs_f64() + self.des_time.as_secs_f64();
        if total <= 0.0 {
            0.0
        } else {
            self.fti_time.as_secs_f64() / total
        }
    }

    /// Number of mode transitions after the initial DES entry.
    pub fn transition_count(&self) -> usize {
        self.transitions.len().saturating_sub(1)
    }

    /// Renders the transition log as `(t, mode)` rows (Figure 1 data).
    pub fn transition_rows(&self) -> Vec<(f64, &'static str)> {
        self.transitions
            .iter()
            .map(|t| {
                (
                    t.at.as_secs_f64(),
                    match t.mode {
                        ClockMode::Des => "DES",
                        ClockMode::Fti => "FTI",
                    },
                )
            })
            .collect()
    }

    /// FCT percentile over completed transfers (`q` in `[0, 1]`); `None` when
    /// nothing completed.
    pub fn fct_quantile(&self, q: f64) -> Option<f64> {
        if self.flow_completion_secs.is_empty() {
            return None;
        }
        let mut v = self.flow_completion_secs.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN FCTs"));
        let idx = ((q.clamp(0.0, 1.0) * (v.len() - 1) as f64).round()) as usize;
        Some(v[idx])
    }

    /// JSON dump for the bench harnesses.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

//! Typed run configuration — the single parse point for every `HORSE_*`
//! environment variable.
//!
//! Historically each bench bin and the sweep pool read its own env var
//! inline (`HORSE_THREADS` in the pool, `HORSE_RESULTS_DIR` in the bench
//! lib, the `*_MIN_SPEEDUP` gates in individual bins). [`RunConfig`]
//! replaces that sprawl: [`RunConfig::from_env`] parses everything once,
//! and callers thread the struct (or read a field) instead of touching
//! `std::env` themselves. The env vars still work — they are honored in
//! exactly one place.
//!
//! | Variable | Field | Meaning |
//! |---|---|---|
//! | `HORSE_THREADS` | [`RunConfig::threads`] | Sweep worker count (1 = serial path) |
//! | `HORSE_RUN_THREADS` | [`RunConfig::run_threads`] | Intra-run pump worker count (default 1 = serial pump) |
//! | `HORSE_RUN_MIN_SPEEDUP` | [`RunConfig::run_min_speedup`] | `table_scale` intra-run parallel wall-ratio gate (multi-core only) |
//! | `HORSE_RESULTS_DIR` | [`RunConfig::results_dir`] | Bench output directory |
//! | `HORSE_RIB_MIN_SPEEDUP` | [`RunConfig::rib_min_speedup`] | `rib_churn` wall-ratio gate |
//! | `HORSE_TABLE_MIN_SPEEDUP` | [`RunConfig::table_min_speedup`] | `table_scale` wall-ratio gate |
//! | `HORSE_SWEEP_MIN_SPEEDUP` | [`RunConfig::sweep_min_speedup`] | `sweep_scaling` gate |
//! | `HORSE_FLOW_MIN_SPEEDUP` | [`RunConfig::flow_min_speedup`] | `flow_scale` wall-ratio gate (multi-core only) |
//! | `HORSE_TRACE_MAX_OVERHEAD` | [`RunConfig::trace_max_overhead`] | Tracing overhead gate (`rib_churn`) |
//! | `HORSE_PUMP_MODE` | [`RunConfig::pump_mode`] | `readiness` (default) or `fullpoll` |
//! | `HORSE_TRACE` | [`RunConfig::trace`]`.enabled` | Enable structured tracing |
//! | `HORSE_TRACE_CAPACITY` | [`RunConfig::trace`]`.capacity` | Per-component ring capacity |
//! | `HORSE_CHECKPOINT_DIR` | [`RunConfig::checkpoint_dir`] | Sweep checkpoint directory (unset = results dir) |
//! | `HORSE_SWEEP_MAX_RUNS` | [`RunConfig::sweep_max_runs`] | Cap runs per invocation (resume smoke / staged campaigns) |
//! | `HORSE_RETRY_FAILED` | [`RunConfig::retry_failed`] | Re-run checkpointed `failed` records (`1`/`true`) |

use crate::control::PumpMode;
use horse_trace::TraceOptions;
use std::path::PathBuf;

/// Typed configuration for experiment execution, replacing scattered
/// `HORSE_*` env reads. Construct with [`RunConfig::from_env`] (the env
/// vars keep working) or build a value directly in tests.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Sweep worker count; `None` means "use available parallelism".
    /// `Some(1)` forces the pool's inline serial path.
    pub threads: Option<usize>,
    /// Intra-run pump worker count; `None` means 1 (serial pump). Unlike
    /// sweep [`RunConfig::threads`], parallelism inside a single run is
    /// opt-in: the default must not oversubscribe cores when runs already
    /// execute in parallel under a sweep, and the serial pump is the
    /// baseline every parallel result is byte-compared against.
    pub run_threads: Option<usize>,
    /// Minimum intra-run parallel wall speedup `table_scale` must
    /// demonstrate (parallel pump vs `run_threads = 1`), if gating.
    /// Benches enforce it only when the machine actually has more than
    /// one core — the honest-`cores` discipline.
    pub run_min_speedup: Option<f64>,
    /// Where bench harnesses drop machine-readable outputs.
    pub results_dir: PathBuf,
    /// Minimum wall speedup `rib_churn` must demonstrate, if gating.
    pub rib_min_speedup: Option<f64>,
    /// Minimum decide-path wall speedup `table_scale` must demonstrate
    /// (compact-id RIB vs the address-keyed baseline), if gating.
    pub table_min_speedup: Option<f64>,
    /// Minimum parallel speedup `sweep_scaling` must demonstrate.
    pub sweep_min_speedup: Option<f64>,
    /// Minimum wall speedup `flow_scale` must demonstrate (arena flow
    /// plane vs the map-keyed oracle shape), if gating. Like the other
    /// wall gates, enforced only when the machine has more than one core.
    pub flow_min_speedup: Option<f64>,
    /// Maximum fractional wall overhead the tracing layer may add
    /// (e.g. `0.15` = 15%), enforced by the `rib_churn` smoke, which times
    /// the live convergence replay traced vs untraced. That replay records
    /// ~one event per microsecond of work — a deliberate stress case, so
    /// the bound is a backstop against record-path regressions rather than
    /// a statement about normal runs (a real experiment records a few
    /// hundred events over seconds, where the same per-event cost is
    /// unmeasurable). Bounding the *enabled* cost bounds the disabled
    /// (null-sink) path a fortiori.
    pub trace_max_overhead: Option<f64>,
    /// Control-plane pump scheduling mode.
    pub pump_mode: PumpMode,
    /// Structured-tracing options for traced runs.
    pub trace: TraceOptions,
    /// Directory for sweep checkpoint files (`sweep-<plan_hash>.jsonl`);
    /// `None` means "use [`RunConfig::results_dir`]". Checkpointing
    /// itself is chosen by the caller (`execute_checkpointed` vs
    /// `execute`), not by this knob.
    pub checkpoint_dir: Option<PathBuf>,
    /// Execute at most this many sweep runs per invocation, leaving the
    /// rest pending in the checkpoint — the in-process stand-in for
    /// "killed partway" (CI resume smoke) and a lever for staging very
    /// long campaigns.
    pub sweep_max_runs: Option<usize>,
    /// Re-execute checkpointed runs whose record says `failed` instead
    /// of carrying the failure into the merged report.
    pub retry_failed: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            threads: None,
            run_threads: None,
            run_min_speedup: None,
            results_dir: PathBuf::from("bench_results"),
            rib_min_speedup: None,
            table_min_speedup: None,
            sweep_min_speedup: None,
            flow_min_speedup: None,
            trace_max_overhead: None,
            pump_mode: PumpMode::Readiness,
            trace: TraceOptions::default(),
            checkpoint_dir: None,
            sweep_max_runs: None,
            retry_failed: false,
        }
    }
}

impl RunConfig {
    /// Parses the process environment. This is the only place in the
    /// workspace that reads `HORSE_*` variables.
    pub fn from_env() -> RunConfig {
        Self::from_lookup(|k| std::env::var(k).ok())
    }

    /// Parses from an arbitrary key→value lookup (tests pass closures so
    /// they never touch the process-global environment).
    ///
    /// Panics on unparsable values — a typo'd override silently falling
    /// back to a default is worse than a crash.
    pub fn from_lookup(get: impl Fn(&str) -> Option<String>) -> RunConfig {
        let threads = get("HORSE_THREADS").map(|s| match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("HORSE_THREADS must be a positive integer, got {s:?}"),
        });
        let run_threads = get("HORSE_RUN_THREADS").map(|s| match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("HORSE_RUN_THREADS must be a positive integer, got {s:?}"),
        });
        let results_dir = get("HORSE_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("bench_results"));
        let float = |key: &str| {
            get(key).map(|s| {
                s.trim()
                    .parse::<f64>()
                    .unwrap_or_else(|_| panic!("{key} must be a number, got {s:?}"))
            })
        };
        let pump_mode = match get("HORSE_PUMP_MODE").as_deref().map(str::trim) {
            None => PumpMode::Readiness,
            Some("readiness") => PumpMode::Readiness,
            Some("fullpoll") => PumpMode::FullPoll,
            Some(other) => {
                panic!("HORSE_PUMP_MODE must be \"readiness\" or \"fullpoll\", got {other:?}")
            }
        };
        let flag = |key: &str| match get(key).as_deref().map(str::trim) {
            None | Some("0") | Some("false") | Some("") => false,
            Some("1") | Some("true") => true,
            Some(other) => panic!("{key} must be 0/1/true/false, got {other:?}"),
        };
        let trace_enabled = flag("HORSE_TRACE");
        let mut trace = if trace_enabled {
            TraceOptions::enabled()
        } else {
            TraceOptions::default()
        };
        if let Some(s) = get("HORSE_TRACE_CAPACITY") {
            match s.trim().parse::<usize>() {
                Ok(n) if n >= 1 => trace.capacity = n,
                _ => panic!("HORSE_TRACE_CAPACITY must be a positive integer, got {s:?}"),
            }
        }
        let sweep_max_runs = get("HORSE_SWEEP_MAX_RUNS").map(|s| match s.trim().parse::<usize>() {
            Ok(n) => n,
            Err(_) => panic!("HORSE_SWEEP_MAX_RUNS must be a non-negative integer, got {s:?}"),
        });
        RunConfig {
            threads,
            run_threads,
            run_min_speedup: float("HORSE_RUN_MIN_SPEEDUP"),
            results_dir,
            rib_min_speedup: float("HORSE_RIB_MIN_SPEEDUP"),
            table_min_speedup: float("HORSE_TABLE_MIN_SPEEDUP"),
            sweep_min_speedup: float("HORSE_SWEEP_MIN_SPEEDUP"),
            flow_min_speedup: float("HORSE_FLOW_MIN_SPEEDUP"),
            trace_max_overhead: float("HORSE_TRACE_MAX_OVERHEAD"),
            pump_mode,
            trace,
            checkpoint_dir: get("HORSE_CHECKPOINT_DIR").map(PathBuf::from),
            sweep_max_runs,
            retry_failed: flag("HORSE_RETRY_FAILED"),
        }
    }

    /// The worker count to actually use: the configured override, else
    /// the machine's available parallelism (1 when unknown).
    pub fn threads(&self) -> usize {
        self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }

    /// The intra-run pump worker count: the configured override, else 1
    /// (serial pump — see [`RunConfig::run_threads`] for why the default
    /// differs from sweep [`RunConfig::threads`]).
    pub fn run_threads(&self) -> usize {
        self.run_threads.unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |k| {
            pairs
                .iter()
                .find(|(key, _)| *key == k)
                .map(|(_, v)| v.to_string())
        }
    }

    #[test]
    fn empty_env_gives_defaults() {
        let cfg = RunConfig::from_lookup(|_| None);
        assert_eq!(cfg, RunConfig::default());
        assert!(cfg.threads() >= 1);
        assert!(!cfg.trace.enabled);
    }

    #[test]
    fn all_keys_parse() {
        let cfg = RunConfig::from_lookup(lookup(&[
            ("HORSE_THREADS", "4"),
            ("HORSE_RUN_THREADS", "2"),
            ("HORSE_RUN_MIN_SPEEDUP", "3"),
            ("HORSE_RESULTS_DIR", "/tmp/out"),
            ("HORSE_RIB_MIN_SPEEDUP", "1.5"),
            ("HORSE_TABLE_MIN_SPEEDUP", "2"),
            ("HORSE_SWEEP_MIN_SPEEDUP", "3"),
            ("HORSE_FLOW_MIN_SPEEDUP", "1.2"),
            ("HORSE_TRACE_MAX_OVERHEAD", "0.02"),
            ("HORSE_PUMP_MODE", "fullpoll"),
            ("HORSE_TRACE", "1"),
            ("HORSE_TRACE_CAPACITY", "1024"),
            ("HORSE_CHECKPOINT_DIR", "/tmp/ckpt"),
            ("HORSE_SWEEP_MAX_RUNS", "12"),
            ("HORSE_RETRY_FAILED", "true"),
        ]));
        assert_eq!(cfg.threads, Some(4));
        assert_eq!(cfg.threads(), 4);
        assert_eq!(cfg.run_threads, Some(2));
        assert_eq!(cfg.run_threads(), 2);
        assert_eq!(cfg.run_min_speedup, Some(3.0));
        assert_eq!(cfg.results_dir, PathBuf::from("/tmp/out"));
        assert_eq!(cfg.rib_min_speedup, Some(1.5));
        assert_eq!(cfg.table_min_speedup, Some(2.0));
        assert_eq!(cfg.sweep_min_speedup, Some(3.0));
        assert_eq!(cfg.flow_min_speedup, Some(1.2));
        assert_eq!(cfg.trace_max_overhead, Some(0.02));
        assert_eq!(cfg.pump_mode, PumpMode::FullPoll);
        assert!(cfg.trace.enabled);
        assert_eq!(cfg.trace.capacity, 1024);
        assert_eq!(cfg.checkpoint_dir, Some(PathBuf::from("/tmp/ckpt")));
        assert_eq!(cfg.sweep_max_runs, Some(12));
        assert!(cfg.retry_failed);
    }

    #[test]
    fn checkpoint_knobs_default_off() {
        let cfg = RunConfig::from_lookup(|_| None);
        assert_eq!(cfg.checkpoint_dir, None);
        assert_eq!(cfg.sweep_max_runs, None);
        assert!(!cfg.retry_failed);
    }

    #[test]
    #[should_panic(expected = "HORSE_SWEEP_MAX_RUNS must be a non-negative integer")]
    fn bad_max_runs_panics() {
        let _ = RunConfig::from_lookup(lookup(&[("HORSE_SWEEP_MAX_RUNS", "few")]));
    }

    #[test]
    #[should_panic(expected = "HORSE_RETRY_FAILED must be 0/1/true/false")]
    fn bad_retry_flag_panics() {
        let _ = RunConfig::from_lookup(lookup(&[("HORSE_RETRY_FAILED", "maybe")]));
    }

    #[test]
    fn trace_capacity_applies_without_enabling() {
        let cfg = RunConfig::from_lookup(lookup(&[("HORSE_TRACE_CAPACITY", "64")]));
        assert!(!cfg.trace.enabled);
        assert_eq!(cfg.trace.capacity, 64);
    }

    #[test]
    fn run_threads_defaults_to_serial_pump() {
        let cfg = RunConfig::from_lookup(|_| None);
        assert_eq!(cfg.run_threads, None);
        assert_eq!(cfg.run_threads(), 1, "intra-run parallelism is opt-in");
        assert_eq!(cfg.run_min_speedup, None);
    }

    #[test]
    #[should_panic(expected = "HORSE_THREADS must be a positive integer")]
    fn bad_threads_panics() {
        let _ = RunConfig::from_lookup(lookup(&[("HORSE_THREADS", "zero")]));
    }

    #[test]
    #[should_panic(expected = "HORSE_RUN_THREADS must be a positive integer")]
    fn bad_run_threads_panics() {
        let _ = RunConfig::from_lookup(lookup(&[("HORSE_RUN_THREADS", "many")]));
    }

    #[test]
    #[should_panic(expected = "HORSE_RUN_THREADS must be a positive integer")]
    fn zero_run_threads_panics() {
        let _ = RunConfig::from_lookup(lookup(&[("HORSE_RUN_THREADS", "0")]));
    }

    #[test]
    #[should_panic(expected = "HORSE_RUN_MIN_SPEEDUP must be a number")]
    fn bad_run_gate_panics() {
        let _ = RunConfig::from_lookup(lookup(&[("HORSE_RUN_MIN_SPEEDUP", "plenty")]));
    }

    #[test]
    #[should_panic(expected = "HORSE_THREADS must be a positive integer")]
    fn zero_threads_panics() {
        let _ = RunConfig::from_lookup(lookup(&[("HORSE_THREADS", "0")]));
    }

    #[test]
    #[should_panic(expected = "HORSE_PUMP_MODE")]
    fn bad_pump_mode_panics() {
        let _ = RunConfig::from_lookup(lookup(&[("HORSE_PUMP_MODE", "sometimes")]));
    }

    #[test]
    #[should_panic(expected = "HORSE_RIB_MIN_SPEEDUP must be a number")]
    fn bad_gate_panics() {
        let _ = RunConfig::from_lookup(lookup(&[("HORSE_RIB_MIN_SPEEDUP", "fast")]));
    }

    #[test]
    fn flow_gate_defaults_off() {
        let cfg = RunConfig::from_lookup(|_| None);
        assert_eq!(cfg.flow_min_speedup, None);
    }

    #[test]
    #[should_panic(expected = "HORSE_FLOW_MIN_SPEEDUP must be a number")]
    fn bad_flow_gate_panics() {
        let _ = RunConfig::from_lookup(lookup(&[("HORSE_FLOW_MIN_SPEEDUP", "warp")]));
    }
}

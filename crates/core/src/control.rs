//! Control-plane adapters: the Connection Manager's runtime side.
//!
//! The runner is control-plane-agnostic; it owns a [`ControlPlane`] and
//! calls [`ControlPlane::pump`] once per engine step. A pump delivers the
//! bytes queued on the previous step (so each message hop costs one FTI
//! increment of virtual time — the same latency granularity the paper's
//! CM provides), polls protocol timers, applies control decisions to the
//! simulated data plane, and reports whether any control activity happened
//! — the signal that holds the experiment clock in FTI mode.
//!
//! ## Readiness-driven scheduling
//!
//! A pump step costs O(nodes with something to do), not O(all nodes). The
//! CM keeps, per control plane:
//!
//! * a **dirty set** of nodes that received bytes this step, emitted
//!   events since the last drain, or saw a transport/link change;
//! * a [`TimerWheel`] indexing one deadline per node — a BGP speaker's
//!   earliest protocol timer (re-registered whenever the speaker reports
//!   its deadline moved), or a switch flow table's earliest idle/hard
//!   expiry (re-registered whenever the table or its `last_hit` state
//!   changes).
//!
//! Only dirty or fired nodes get `poll_timers` / `take_outputs` /
//! `take_events`; untouched nodes cannot hold queued work, because every
//! path that gives a node work also marks it dirty. `next_deadline()` is
//! the wheel's O(1) minimum instead of a linear scan. The legacy
//! poll-everyone behavior survives as [`PumpMode::FullPoll`] — a debug
//! mode whose observable semantics are identical (same deliveries, same
//! sweep instants, same outputs) and whose only difference is cost, which
//! [`PumpStats`] makes visible.
//!
//! ## Deterministic intra-run parallelism
//!
//! With `HORSE_RUN_THREADS > 1` the BGP pump shards each round's ready
//! set across the work-stealing pool. The round splits into three phases:
//! a serial prologue (build the ready set, route deliveries, advance the
//! wheel, record pump-reason trace events), a parallel **drain** (each
//! worker delivers/polls/drains a disjoint subset of ready speakers and
//! returns a per-node result tuple), and a serial **merge** that applies
//! those tuples in ascending [`NodeId`] order — exactly the order the
//! serial drain uses. Workers never touch CM state; speakers are disjoint
//! `&mut`s whose only shared state is the lock-light per-run pools, whose
//! id values are proven non-semantic. Outputs therefore queue, install,
//! and trace byte-identically at any worker count.

use horse_bgp::rib::{AttrPool, RibStats};
use horse_bgp::speaker::{BgpSpeaker, SpeakerOutput};
use horse_cm::FibInstaller;
use horse_controller::{EcmpApp, HederaApp};
use horse_dataplane::flowtable::{FlowEntry as DpFlowEntry, FlowKey};
use horse_dataplane::path::DataPlane;
use horse_net::flow::FiveTuple;
use horse_net::fluid::FluidNetwork;
use horse_net::intern::PrefixPool;
use horse_net::topology::{NodeId, PortId, Topology};
use horse_openflow::agent::{AgentEvent, SwitchAgent};
use horse_openflow::controller::{Controller, ControllerApp, ControllerEvent};
use horse_openflow::wire::{FlowMod, FlowModCommand, FlowStatsEntry, OfAction, PortDesc};
use horse_pool::{lock_unpoisoned, run_indexed};
use horse_sim::{SimTime, TimerWheel};
use horse_topo::fattree::BgpNodeSetup;
use horse_trace::{Component, ComponentLog, PumpReason, TraceData, TraceOptions, Tracer};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;
use std::sync::Mutex;
use std::time::Instant;

/// MTU used to derive packet estimates from fluid byte counts (the fluid
/// model moves bits, not packets; OF counters want both).
const MTU_BYTES: u64 = 1_500;

/// Minimum ready-set size before the pump shards a round across workers;
/// below this the scoped-spawn and steal overhead outweighs the per-node
/// protocol work and the round runs serially (still byte-identical).
const PAR_MIN_NODES: usize = 4;

/// What one pump step did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpOutcome {
    /// Any control-plane message moved or state changed (→ FTI).
    pub activity: bool,
    /// Forwarding state changed (→ re-resolve flows).
    pub tables_changed: bool,
}

/// How the Connection Manager schedules per-node pump work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PumpMode {
    /// Touch only nodes with something to do (dirty set + timer wheel).
    #[default]
    Readiness,
    /// Touch every node every step (the legacy behavior; observably
    /// identical, kept as the differential-testing and costing baseline).
    FullPoll,
}

/// Pump cost counters, wired into `ExperimentReport` so the scheduling
/// win is observable. "Work" is `nodes_touched + table_scans`: speaker
/// polls / agent drains plus full flow-table walks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpStats {
    /// Pump steps executed.
    pub steps: u64,
    /// Cumulative emulated nodes across steps (`n × steps`): what a
    /// polled pump would have touched.
    pub nodes_total: u64,
    /// Nodes actually polled/drained.
    pub nodes_touched: u64,
    /// Full flow-table walks (timeout checks and expiry sweeps).
    pub table_scans: u64,
    /// Rounds whose drain ran on the work-stealing pool (0 when
    /// `HORSE_RUN_THREADS` is 1 or every round stayed under the sharding
    /// threshold).
    pub parallel_rounds: u64,
    /// Nodes drained inside parallel rounds (a subset of `nodes_touched`).
    pub parallel_nodes: u64,
}

impl PumpStats {
    /// Total per-node pump work performed.
    pub fn work(&self) -> u64 {
        self.nodes_touched + self.table_scans
    }
}

/// The SDN application running on the controller.
pub enum SdnApp {
    /// Reactive 5-tuple ECMP.
    Ecmp(EcmpApp),
    /// Hedera flow scheduling.
    Hedera(HederaApp),
}

impl SdnApp {
    fn as_dyn(&mut self) -> &mut dyn ControllerApp {
        match self {
            SdnApp::Ecmp(a) => a,
            SdnApp::Hedera(a) => a,
        }
    }

    /// Flows placed so far (both apps track this).
    pub fn placed(&self) -> usize {
        match self {
            SdnApp::Ecmp(a) => a.placed.len(),
            SdnApp::Hedera(a) => a.placement().len(),
        }
    }

    /// Hedera scheduling moves (0 for plain ECMP).
    pub fn moves(&self) -> u64 {
        match self {
            SdnApp::Ecmp(_) => 0,
            SdnApp::Hedera(a) => a.moves,
        }
    }
}

/// The experiment's control plane.
pub enum ControlPlane {
    /// No control plane: forwarding state is static (installed by hand).
    None,
    /// One emulated BGP daemon per router.
    Bgp(Box<BgpControl>),
    /// An OpenFlow controller plus one switch agent per switch.
    Sdn(Box<SdnControl>),
}

impl ControlPlane {
    /// Selects the pump scheduling mode (before [`ControlPlane::start`]).
    pub fn set_pump_mode(&mut self, mode: PumpMode) {
        match self {
            ControlPlane::None => {}
            ControlPlane::Bgp(b) => b.mode = mode,
            ControlPlane::Sdn(s) => s.mode = mode,
        }
    }

    /// Sets the intra-run drain worker count (1 = serial pump). Only the
    /// BGP pump shards; the SDN pump's controller round-trips are serial
    /// by construction and ignore this.
    pub fn set_run_threads(&mut self, threads: usize) {
        if let ControlPlane::Bgp(b) = self {
            b.run_threads = threads.max(1);
        }
    }

    /// Installs ring-buffer tracers on the pump and every instrumented
    /// sub-component (speakers, the OpenFlow controller). `epoch` is the
    /// run's shared wall-clock origin.
    pub fn set_tracers(&mut self, opts: &TraceOptions, epoch: Instant) {
        if !opts.enabled {
            return;
        }
        match self {
            ControlPlane::None => {}
            ControlPlane::Bgp(b) => {
                b.tracer = Tracer::ring(Component::Pump, opts.capacity, epoch);
                for (node, s) in &mut b.speakers {
                    s.set_tracer(Tracer::ring(Component::Bgp(node.0), opts.capacity, epoch));
                }
            }
            ControlPlane::Sdn(s) => {
                s.tracer = Tracer::ring(Component::Pump, opts.capacity, epoch);
                s.controller.set_tracer(Tracer::ring(
                    Component::OfController,
                    opts.capacity,
                    epoch,
                ));
            }
        }
    }

    /// Drains every component's trace buffer (empty when tracing is off).
    pub fn take_trace_logs(&mut self) -> Vec<ComponentLog> {
        let mut logs = Vec::new();
        match self {
            ControlPlane::None => {}
            ControlPlane::Bgp(b) => {
                logs.extend(b.tracer.take_log());
                for s in b.speakers.values_mut() {
                    logs.extend(s.take_trace_log());
                }
            }
            ControlPlane::Sdn(s) => {
                logs.extend(s.tracer.take_log());
                logs.extend(s.controller.take_trace_log());
            }
        }
        logs
    }

    /// Pump cost counters accumulated so far.
    pub fn pump_stats(&self) -> PumpStats {
        match self {
            ControlPlane::None => PumpStats::default(),
            ControlPlane::Bgp(b) => b.stats,
            ControlPlane::Sdn(s) => s.stats,
        }
    }

    /// RIB work counters summed over all BGP speakers (zero for non-BGP
    /// control planes).
    pub fn rib_stats(&self) -> RibStats {
        match self {
            ControlPlane::Bgp(b) => b.rib_stats(),
            ControlPlane::None | ControlPlane::Sdn(_) => RibStats::default(),
        }
    }

    /// Memory-shape counters `(prefix_ids, peer_ids, attr_entries,
    /// attr_bytes_est)` — zero for non-BGP control planes.
    pub fn mem_stats(&self) -> (u64, u64, u64, u64) {
        match self {
            ControlPlane::Bgp(b) => b.mem_stats(),
            ControlPlane::None | ControlPlane::Sdn(_) => (0, 0, 0, 0),
        }
    }

    /// Starts daemons/handshakes at time `now`.
    pub fn start(&mut self, now: SimTime, dp: &mut DataPlane) {
        match self {
            ControlPlane::None => {}
            ControlPlane::Bgp(b) => b.start(now, dp),
            ControlPlane::Sdn(s) => s.start(now),
        }
    }

    /// One engine step of control-plane work.
    pub fn pump(&mut self, now: SimTime, dp: &mut DataPlane, fluid: &FluidNetwork) -> PumpOutcome {
        match self {
            ControlPlane::None => PumpOutcome::default(),
            ControlPlane::Bgp(b) => b.pump(now, dp),
            ControlPlane::Sdn(s) => s.pump(now, dp, fluid),
        }
    }

    /// Earliest pending control-plane timer (keepalives, Hedera polls,
    /// flow-rule expiries) — the DES clock must not jump past it.
    pub fn next_deadline(&self) -> Option<SimTime> {
        match self {
            ControlPlane::None => None,
            ControlPlane::Bgp(b) => b.next_deadline(),
            ControlPlane::Sdn(s) => s.next_deadline(),
        }
    }

    /// True while messages are queued for delivery or nodes hold undrained
    /// work (the step must stay "busy" even if the event queue is empty).
    pub fn has_pending(&self) -> bool {
        match self {
            ControlPlane::None => false,
            ControlPlane::Bgp(b) => !b.in_flight.is_empty() || !b.dirty.is_empty(),
            ControlPlane::Sdn(s) => {
                !s.to_agents.is_empty() || !s.to_controller.is_empty() || !s.dirty.is_empty()
            }
        }
    }

    /// Total control messages exchanged (for reports).
    pub fn msgs_total(&self) -> u64 {
        match self {
            ControlPlane::None => 0,
            ControlPlane::Bgp(b) => b.speakers.values().map(|s| s.msgs_sent()).sum(),
            ControlPlane::Sdn(s) => {
                s.controller.msgs_sent
                    + s.controller.msgs_received
                    + s.agents.values().map(|a| a.msgs_sent).sum::<u64>()
            }
        }
    }

    /// The SDN app, when present (for report details).
    pub fn sdn_app(&self) -> Option<&SdnApp> {
        match self {
            ControlPlane::Sdn(s) => Some(&s.app),
            _ => None,
        }
    }

    /// True when every BGP session is Established (always true otherwise).
    pub fn sessions_converged(&self) -> bool {
        match self {
            ControlPlane::Bgp(b) => b.speakers.values().all(|s| s.fully_converged_sessions()),
            _ => true,
        }
    }

    /// A link changed state. BGP sessions riding the link see their
    /// transport drop (down) or come back (up) and reconverge; OpenFlow
    /// switches report PORT_STATUS to the controller, whose apps re-place
    /// affected flows over the surviving paths.
    pub fn on_link_change(
        &mut self,
        link: horse_net::topology::LinkId,
        up: bool,
        topo: &Topology,
        now: SimTime,
    ) {
        match self {
            ControlPlane::Bgp(b) => b.on_link_change(link, up, topo, now),
            ControlPlane::Sdn(s) => s.on_link_change(link, up, topo, now),
            ControlPlane::None => {}
        }
    }

    /// A fluid flow stopped or completed. The CM credits the rules the
    /// flow was using with traffic up to this instant (`last_hit = now`),
    /// so idle expiry counts from when the traffic actually ceased — the
    /// event-driven replacement for re-walking every table every step.
    pub fn on_flow_retired(
        &mut self,
        tuple: &FiveTuple,
        nodes: &[NodeId],
        now: SimTime,
        dp: &mut DataPlane,
    ) {
        if let ControlPlane::Sdn(s) = self {
            s.on_flow_retired(tuple, nodes, now, dp);
        }
    }
}

/// The BGP control plane: one speaker per router, wired over the CM.
pub struct BgpControl {
    /// Speakers by router node.
    pub speakers: BTreeMap<NodeId, BgpSpeaker>,
    /// `(node, its local addr)` → node on the other end of that session.
    route_of_addr: BTreeMap<(NodeId, Ipv4Addr), NodeId>,
    /// `(node, peer addr)` → our local addr on that session — precomputed
    /// so queueing a message is a map hit, not a peer-list scan.
    local_addr_of: BTreeMap<(NodeId, Ipv4Addr), Ipv4Addr>,
    /// `(node, peer addr)` → the link that session rides (failure scoping).
    link_of_session: BTreeMap<(NodeId, Ipv4Addr), horse_net::topology::LinkId>,
    installer: FibInstaller,
    connected: Vec<(NodeId, horse_net::addr::Ipv4Prefix, PortId)>,
    /// Messages awaiting delivery next step: (dst node, from-addr, bytes).
    in_flight: Vec<(NodeId, Ipv4Addr, bytes::Bytes)>,
    /// Nodes woken outside the pump (start, transport/link events).
    dirty: BTreeSet<NodeId>,
    /// Earliest protocol deadline per speaker.
    wheel: TimerWheel<NodeId>,
    mode: PumpMode,
    /// Pump cost counters.
    pub stats: PumpStats,
    /// FIB route installs performed.
    pub installs: u64,
    /// Structured trace sink for pump-level events (per-node pump reasons,
    /// link changes).
    tracer: Tracer,
    /// The run-wide shared attribute pool every speaker interns into —
    /// each distinct attribute set is stored once per run, not once per
    /// speaker.
    attr_pool: AttrPool,
    /// The run-wide shared prefix-id table, seeded serially from every
    /// node's configured networks before the first pump: each prefix is
    /// interned once per run (not once per speaker), and round-time
    /// lookups are read-lock hits with ids fixed at seed time.
    prefix_pool: PrefixPool,
    /// Intra-run drain workers (1 = serial pump, the default).
    run_threads: usize,
}

/// One ready speaker's drained round result: its outputs in emission
/// order, plus `Some(new)` when its earliest deadline moved (`None` inner
/// = no deadline left).
type DrainedNode = (NodeId, Vec<SpeakerOutput>, Option<Option<SimTime>>);

/// A claimed drain task: one ready speaker and its pending deliveries.
type DrainTask<'a> = (NodeId, &'a mut BgpSpeaker, Vec<(Ipv4Addr, bytes::Bytes)>);

/// Delivers, polls and drains one ready speaker — the per-node work both
/// drain paths share. Under the parallel pump this runs on a worker
/// thread, so it must not touch CM state: everything the merge needs
/// comes back in the [`DrainedNode`] tuple.
fn drain_one(
    node: NodeId,
    s: &mut BgpSpeaker,
    msgs: Vec<(Ipv4Addr, bytes::Bytes)>,
    now: SimTime,
) -> DrainedNode {
    for (from_addr, bytes) in msgs {
        s.on_bytes(from_addr, now, &bytes);
    }
    s.poll_timers(now);
    let outputs = s.take_outputs();
    let deadline = s.take_deadline_dirty().then(|| s.next_deadline());
    (node, outputs, deadline)
}

impl BgpControl {
    /// Builds from per-router setups (e.g. [`horse_topo::FatTree::bgp_setups`]).
    pub fn new(topo: &Topology, setups: BTreeMap<NodeId, BgpNodeSetup>) -> BgpControl {
        let mut speakers = BTreeMap::new();
        let mut route_of_addr = BTreeMap::new();
        let mut local_addr_of = BTreeMap::new();
        let mut link_of_session = BTreeMap::new();
        let mut installer = FibInstaller::new();
        let mut connected = Vec::new();
        let attr_pool = AttrPool::new();
        let prefix_pool = PrefixPool::new();
        // Seed the shared prefix table serially, in deterministic node
        // order, before any speaker (or drain worker) exists. Every prefix
        // a run can announce comes from some node's configured networks,
        // so round-time interns are read-lock hits on ids fixed here —
        // identical at any worker count.
        for setup in setups.values() {
            for pfx in &setup.config.networks {
                prefix_pool.intern(*pfx);
            }
        }
        for (node, setup) in &setups {
            installer.register(*node, setup.addr_to_port.clone());
            for (pfx, port) in &setup.connected {
                connected.push((*node, *pfx, *port));
            }
            // peer_addr → port → link → other node; the *peer's* local addr
            // is our peer_addr, so sending to peer_addr means delivering to
            // that node.
            for peer in &setup.config.peers {
                let port = setup.addr_to_port[&peer.peer_addr];
                let lid = topo.link_at(*node, port).expect("peer port wired");
                let other = topo.link(lid).other(*node);
                route_of_addr.insert((*node, peer.peer_addr), other);
                local_addr_of.insert((*node, peer.peer_addr), peer.local_addr);
                link_of_session.insert((*node, peer.peer_addr), lid);
            }
            speakers.insert(
                *node,
                BgpSpeaker::new_with_pools(
                    setup.config.clone(),
                    attr_pool.clone(),
                    prefix_pool.clone(),
                ),
            );
        }
        BgpControl {
            speakers,
            route_of_addr,
            local_addr_of,
            link_of_session,
            installer,
            connected,
            in_flight: Vec::new(),
            dirty: BTreeSet::new(),
            wheel: TimerWheel::new(),
            mode: PumpMode::default(),
            stats: PumpStats::default(),
            installs: 0,
            tracer: Tracer::default(),
            attr_pool,
            prefix_pool,
            run_threads: 1,
        }
    }

    /// RIB + export-cache work counters summed over every speaker. Sharers
    /// report `attr_store_size = 0`; the pool's table is counted here once.
    pub fn rib_stats(&self) -> RibStats {
        let mut out = RibStats::default();
        for s in self.speakers.values() {
            out.merge(&s.rib_stats());
        }
        out.attr_store_size += self.attr_pool.len() as u64;
        out
    }

    /// Memory-shape figures for the report: summed interner sizes across
    /// speakers plus the shared pool's entry count and byte estimate.
    pub fn mem_stats(&self) -> (u64, u64, u64, u64) {
        // Speakers share the prefix pool and report 0 for it; count the
        // pool's table here exactly once.
        let mut prefix_ids = self.prefix_pool.len() as u64;
        let mut peer_ids = 0u64;
        for s in self.speakers.values() {
            let (p, n) = s.rib().interner_sizes();
            prefix_ids += p as u64;
            peer_ids += n as u64;
        }
        (
            prefix_ids,
            peer_ids,
            self.attr_pool.len() as u64,
            self.attr_pool.bytes_estimate(),
        )
    }

    fn start(&mut self, now: SimTime, dp: &mut DataPlane) {
        // Connected (host-facing) routes exist before BGP does.
        for (node, pfx, port) in self.connected.clone() {
            self.installer.install_connected(dp, node, pfx, port);
        }
        for s in self.speakers.values_mut() {
            s.start(now);
        }
        // The CM wires all transports immediately (the harness "dials").
        let nodes: Vec<NodeId> = self.speakers.keys().copied().collect();
        for node in nodes {
            let peers: Vec<Ipv4Addr> = self.speakers[&node]
                .config
                .peers
                .iter()
                .map(|p| p.peer_addr)
                .collect();
            for p in peers {
                self.speakers
                    .get_mut(&node)
                    .expect("known node")
                    .on_transport_up(p, now);
            }
        }
        // Every speaker has startup output queued: register its deadline
        // and put it on the ready list for the first pump.
        for (node, s) in &mut self.speakers {
            let _ = s.take_deadline_dirty();
            if let Some(d) = s.next_deadline() {
                self.wheel.schedule(*node, d);
            }
            self.dirty.insert(*node);
        }
    }

    fn pump(&mut self, now: SimTime, dp: &mut DataPlane) -> PumpOutcome {
        self.stats.steps += 1;
        self.stats.nodes_total += self.speakers.len() as u64;
        let mut out = PumpOutcome::default();
        // 1. Ready set: last step's message destinations, fired deadlines,
        // and nodes woken by transport/link events.
        let mut ready = std::mem::take(&mut self.dirty);
        if self.tracer.enabled() {
            for node in &ready {
                self.tracer.record(
                    now,
                    TraceData::PumpNode {
                        node: node.0,
                        reason: PumpReason::LinkEvent,
                    },
                );
            }
        }
        let deliveries = std::mem::take(&mut self.in_flight);
        if !deliveries.is_empty() {
            out.activity = true;
        }
        let mut by_dst: BTreeMap<NodeId, Vec<(Ipv4Addr, bytes::Bytes)>> = BTreeMap::new();
        for (dst, from_addr, bytes) in deliveries {
            ready.insert(dst);
            by_dst.entry(dst).or_default().push((from_addr, bytes));
        }
        if self.tracer.enabled() {
            for node in by_dst.keys() {
                self.tracer.record(
                    now,
                    TraceData::PumpNode {
                        node: node.0,
                        reason: PumpReason::Delivery,
                    },
                );
            }
        }
        for (node, _) in self.wheel.advance(now) {
            self.tracer.record(
                now,
                TraceData::PumpNode {
                    node: node.0,
                    reason: PumpReason::Deadline,
                },
            );
            ready.insert(node);
        }
        if self.mode == PumpMode::FullPoll {
            ready.extend(self.speakers.keys().copied());
        }
        // 2. Deliver, poll and drain only the ready speakers. A clean
        // speaker cannot hold queued outputs or a moved deadline: both
        // only change when the speaker is touched, and every touch marks
        // it ready.
        //
        // With workers configured and enough ready nodes to amortize the
        // scoped spawn, the drain shards across the work-stealing pool:
        // speakers are disjoint `&mut`s whose only shared state is the
        // lock-light per-run pools, and workers never touch CM state —
        // they only produce per-node result tuples. Both paths emit those
        // tuples in ascending `NodeId` order, so the step-3 merge below is
        // byte-identical at any worker count.
        let parallel = self.run_threads > 1 && ready.len() >= PAR_MIN_NODES;
        let drained: Vec<DrainedNode> = if parallel {
            // O(speakers) pointer walk to gather disjoint `&mut`s in
            // ascending node order — cheap next to the protocol work, and
            // it needs no unsafe splitting of the map.
            let slots: Vec<Mutex<Option<DrainTask<'_>>>> = self
                .speakers
                .iter_mut()
                .filter(|(node, _)| ready.contains(node))
                .map(|(node, s)| {
                    Mutex::new(Some((*node, s, by_dst.remove(node).unwrap_or_default())))
                })
                .collect();
            let (results, _) = run_indexed(slots.len(), self.run_threads, |i| {
                let (node, s, msgs) = lock_unpoisoned(&slots[i])
                    .take()
                    .expect("each drain slot is claimed exactly once");
                drain_one(node, s, msgs, now)
            });
            results.into_iter().map(|r| r.value).collect()
        } else {
            let mut drained = Vec::with_capacity(ready.len());
            for node in &ready {
                let Some(s) = self.speakers.get_mut(node) else {
                    continue;
                };
                let msgs = by_dst.remove(node).unwrap_or_default();
                drained.push(drain_one(*node, s, msgs, now));
            }
            drained
        };
        self.stats.nodes_touched += drained.len() as u64;
        if parallel {
            self.stats.parallel_rounds += 1;
            self.stats.parallel_nodes += drained.len() as u64;
        }
        // 3. Merge on this thread in ascending node order: re-register
        // deadlines, queue bytes for next step, apply routes now.
        for (node, outputs, deadline) in drained {
            if let Some(moved) = deadline {
                match moved {
                    Some(d) => self.wheel.schedule(node, d),
                    None => {
                        self.wheel.cancel(node);
                    }
                }
            }
            for o in outputs {
                match o {
                    SpeakerOutput::SendBytes { peer, bytes } => {
                        out.activity = true;
                        // `peer` is the remote's address on this session;
                        // our local address on it is what the remote knows
                        // us by.
                        let from = self.local_addr_of[&(node, peer)];
                        if let Some(dst) = self.route_of_addr.get(&(node, peer)) {
                            self.in_flight.push((*dst, from, bytes));
                        }
                    }
                    SpeakerOutput::RouteChanged { prefix, next_hops } => {
                        out.activity = true;
                        if self.installer.apply(dp, node, prefix, &next_hops) {
                            out.tables_changed = true;
                            self.installs += 1;
                        }
                    }
                    SpeakerOutput::SessionUp { .. } | SpeakerOutput::SessionDown { .. } => {
                        out.activity = true;
                    }
                }
            }
        }
        out
    }

    fn next_deadline(&self) -> Option<SimTime> {
        match self.mode {
            // O(1): the wheel's per-level occupancy bitmaps.
            PumpMode::Readiness => self.wheel.next_deadline(),
            // Legacy cost on purpose: scan every speaker. Same value as
            // the wheel — the wheel re-indexes on every touch.
            PumpMode::FullPoll => self
                .speakers
                .values()
                .filter_map(|s| s.next_deadline())
                .min(),
        }
    }

    /// Drops (or restores) the transports of every session riding `link`.
    fn on_link_change(
        &mut self,
        link: horse_net::topology::LinkId,
        up: bool,
        topo: &Topology,
        now: SimTime,
    ) {
        self.tracer
            .record(now, TraceData::LinkChange { link: link.0, up });
        let l = topo.link(link);
        for node in [l.a.node, l.b.node] {
            let Some(speaker) = self.speakers.get(&node) else {
                continue;
            };
            // Only the session(s) riding exactly this link are affected —
            // parallel links between the same routers carry independent
            // sessions.
            let peers: Vec<Ipv4Addr> = speaker
                .config
                .peers
                .iter()
                .map(|p| p.peer_addr)
                .filter(|pa| self.link_of_session.get(&(node, *pa)) == Some(&link))
                .collect();
            let speaker = self.speakers.get_mut(&node).expect("checked");
            for peer in peers {
                if up {
                    speaker.on_transport_up(peer, now);
                } else {
                    speaker.on_transport_down(peer, now);
                }
            }
            let _ = speaker.take_deadline_dirty();
            match speaker.next_deadline() {
                Some(d) => self.wheel.schedule(node, d),
                None => {
                    self.wheel.cancel(node);
                }
            }
            self.dirty.insert(node);
        }
        if !up {
            // In-flight messages on the dead link are lost. The receiver of
            // a queued `(dst, from, _)` keys that session by the sender's
            // address `from`, so the session's link is
            // `link_of_session[(dst, from)]`.
            self.in_flight
                .retain(|(dst, from, _)| self.link_of_session.get(&(*dst, *from)) != Some(&link));
        }
    }
}

/// The SDN control plane: controller + per-switch agents over the CM.
pub struct SdnControl {
    /// The controller core.
    pub controller: Controller,
    /// The application.
    pub app: SdnApp,
    /// Switch agents by node.
    pub agents: BTreeMap<NodeId, SwitchAgent>,
    /// Bytes queued controller → agent (by node).
    to_agents: Vec<(NodeId, bytes::Bytes)>,
    /// Bytes queued agent → controller (by conn id).
    to_controller: Vec<(u32, bytes::Bytes)>,
    /// Pending app wake-up.
    wake_at: Option<SimTime>,
    conn_of_node: BTreeMap<NodeId, u32>,
    node_of_conn: BTreeMap<u32, NodeId>,
    /// Agents holding undrained events (deliveries, packet-ins, replies
    /// queued after the last drain, port status, expiry reports).
    dirty: BTreeSet<NodeId>,
    /// Earliest flow-entry expiry per switch table.
    expiry_wheel: TimerWheel<NodeId>,
    mode: PumpMode,
    /// Pump cost counters.
    pub stats: PumpStats,
    /// FLOW_MODs applied to simulated tables.
    pub flow_mods_applied: u64,
    /// Structured trace sink for pump-level and agent-side OpenFlow events
    /// (the agent API is wall-clock-free, so the CM records on its behalf).
    tracer: Tracer,
}

impl SdnControl {
    /// Builds a controller + agents for every switch in `topo`.
    pub fn new(topo: &Topology, app: SdnApp) -> SdnControl {
        let mut agents = BTreeMap::new();
        let mut conn_of_node = BTreeMap::new();
        let mut node_of_conn = BTreeMap::new();
        for node in topo.node_ids() {
            if topo.node(node).kind == horse_net::topology::NodeKind::Switch {
                let ports: Vec<PortDesc> = (0..topo.node(node).port_count() as u16)
                    .map(|p| PortDesc {
                        port_no: p,
                        hw_addr: horse_net::addr::MacAddr::for_port(node.0, p),
                        name: format!("eth{p}"),
                    })
                    .collect();
                agents.insert(node, SwitchAgent::new(u64::from(node.0), ports));
                conn_of_node.insert(node, node.0);
                node_of_conn.insert(node.0, node);
            }
        }
        SdnControl {
            controller: Controller::new(),
            app,
            agents,
            to_agents: Vec::new(),
            to_controller: Vec::new(),
            wake_at: None,
            conn_of_node,
            node_of_conn,
            dirty: BTreeSet::new(),
            expiry_wheel: TimerWheel::new(),
            mode: PumpMode::default(),
            stats: PumpStats::default(),
            flow_mods_applied: 0,
            tracer: Tracer::default(),
        }
    }

    fn start(&mut self, _now: SimTime) {
        for (node, agent) in &mut self.agents {
            agent.on_connect();
            self.controller.on_switch_connected(self.conn_of_node[node]);
            // The handshake bytes the agent queued drain at the first pump.
            self.dirty.insert(*node);
        }
    }

    /// Lets the runner hand a table-miss packet to the right agent.
    pub fn packet_in(&mut self, node: NodeId, in_port: u16, data: bytes::Bytes, now: SimTime) {
        if let Some(agent) = self.agents.get_mut(&node) {
            self.tracer.record(
                now,
                TraceData::OfPacketIn {
                    node: node.0,
                    port: u32::from(in_port),
                },
            );
            agent.send_packet_in(in_port, horse_openflow::wire::OFPR_NO_MATCH, data);
            self.dirty.insert(node);
        }
    }

    fn pump(&mut self, now: SimTime, dp: &mut DataPlane, fluid: &FluidNetwork) -> PumpOutcome {
        self.stats.steps += 1;
        self.stats.nodes_total += self.agents.len() as u64;
        let mut out = PumpOutcome::default();
        // 0. App timer due?
        if let Some(t) = self.wake_at {
            if now >= t {
                self.wake_at = None;
                self.controller.on_timer(now, self.app.as_dyn());
                out.activity = true;
            }
        }
        // 1. Deliver queued bytes (one hop per step).
        let to_agents = std::mem::take(&mut self.to_agents);
        let to_controller = std::mem::take(&mut self.to_controller);
        if !to_agents.is_empty() || !to_controller.is_empty() {
            out.activity = true;
        }
        for (node, bytes) in to_agents {
            if let Some(agent) = self.agents.get_mut(&node) {
                self.tracer.record(
                    now,
                    TraceData::PumpNode {
                        node: node.0,
                        reason: PumpReason::Delivery,
                    },
                );
                agent.on_bytes(&bytes);
                self.dirty.insert(node);
            }
        }
        for (conn, bytes) in to_controller {
            if let Some(node) = self.node_of_conn.get(&conn) {
                self.tracer.record(
                    now,
                    TraceData::PumpNode {
                        node: node.0,
                        reason: PumpReason::Delivery,
                    },
                );
            }
            self.controller
                .on_bytes(conn, now, &bytes, self.app.as_dyn());
        }
        // 2. Expire timed-out flow entries — but only in tables whose
        // earliest-expiry deadline has been reached; quiet tables cost
        // nothing. Both modes sweep at the same instants (the full poll
        // re-derives due-ness from each table instead of the wheel).
        let due: Vec<NodeId> = match self.mode {
            PumpMode::Readiness => self
                .expiry_wheel
                .advance(now)
                .into_iter()
                .map(|(node, _)| node)
                .collect(),
            PumpMode::FullPoll => {
                let _ = self.expiry_wheel.advance(now);
                let mut v = Vec::new();
                for node in self.agents.keys().copied() {
                    let Some(table) = dp.table(node) else {
                        continue;
                    };
                    if table.is_empty() {
                        continue;
                    }
                    // Legacy cost on purpose: a full walk per table per
                    // step to find out nothing is due.
                    self.stats.table_scans += 1;
                    if table.next_expiry().is_some_and(|d| d <= now) {
                        v.push(node);
                    }
                }
                v
            }
        };
        for node in due {
            self.tracer.record(
                now,
                TraceData::PumpNode {
                    node: node.0,
                    reason: PumpReason::Deadline,
                },
            );
            let (activity, tables_changed) = self.sweep_table(node, now, dp, fluid);
            out.activity |= activity;
            out.tables_changed |= tables_changed;
        }
        // 3. Drain agent events — only agents holding work.
        let drain: Vec<NodeId> = match self.mode {
            PumpMode::Readiness => std::mem::take(&mut self.dirty).into_iter().collect(),
            PumpMode::FullPoll => {
                self.dirty.clear();
                self.agents.keys().copied().collect()
            }
        };
        for node in drain {
            if !self.agents.contains_key(&node) {
                continue;
            }
            self.stats.nodes_touched += 1;
            let events = self.agents.get_mut(&node).expect("agent").take_events();
            let mut table_touched = false;
            for ev in events {
                match ev {
                    AgentEvent::SendBytes(bytes) => {
                        out.activity = true;
                        self.to_controller.push((self.conn_of_node[&node], bytes));
                    }
                    AgentEvent::FlowMod(fm) => {
                        out.activity = true;
                        if Self::apply_flow_mod(dp, node, &fm, now) {
                            self.tracer
                                .record(now, TraceData::OfFlowMod { node: node.0 });
                            out.tables_changed = true;
                            table_touched = true;
                            self.flow_mods_applied += 1;
                        }
                    }
                    AgentEvent::FlowStatsRequest { xid, .. } => {
                        out.activity = true;
                        let entries = Self::flow_stats_of(dp, node, fluid, now);
                        self.tracer.record(
                            now,
                            TraceData::OfStatsReply {
                                node: node.0,
                                entries: entries.len() as u32,
                            },
                        );
                        self.agents
                            .get_mut(&node)
                            .expect("agent")
                            .send_flow_stats(xid, entries);
                    }
                    AgentEvent::PortStatsRequest { xid, .. } => {
                        out.activity = true;
                        self.agents
                            .get_mut(&node)
                            .expect("agent")
                            .send_port_stats(xid, vec![]);
                    }
                    AgentEvent::PacketOut(_) => {
                        // The fluid model has no packets to re-inject; the
                        // first packet of each flow is synthetic.
                        out.activity = true;
                    }
                    AgentEvent::ProtocolError(_) => {
                        out.activity = true;
                    }
                }
            }
            // Replies queued while handling events (stats responses) drain
            // next step, keeping the one-hop-per-step delivery latency.
            if self.agents[&node].has_events() {
                self.dirty.insert(node);
            }
            if table_touched {
                self.reindex_expiry(node, dp);
            }
        }
        // 4. Drain controller events.
        for ev in self.controller.take_events() {
            match ev {
                ControllerEvent::SendBytes { conn, bytes } => {
                    out.activity = true;
                    if let Some(node) = self.node_of_conn.get(&conn) {
                        self.to_agents.push((*node, bytes));
                    }
                }
                ControllerEvent::WakeAt(t) => {
                    self.wake_at = Some(match self.wake_at {
                        Some(cur) => cur.min(t),
                        None => t,
                    });
                }
                ControllerEvent::ProtocolError { .. } => {
                    out.activity = true;
                }
            }
        }
        out
    }

    /// One table's expiry sweep: credit entries whose flows are actually
    /// moving bits (the CM stands in for the per-packet counters a real
    /// switch would have), expire the rest, report each expiry as a
    /// FLOW_REMOVED (OFPFF_SEND_FLOW_REM is implied in this model), and
    /// re-index the table's next deadline.
    fn sweep_table(
        &mut self,
        node: NodeId,
        now: SimTime,
        dp: &mut DataPlane,
        fluid: &FluidNetwork,
    ) -> (bool, bool) {
        let Some(table) = dp.table_mut(node) else {
            return (false, false);
        };
        self.stats.table_scans += 1;
        if table.entries().iter().any(|e| !e.idle_timeout.is_zero()) {
            // The fluid model's flow index stands in for per-packet
            // counters: an entry whose 5-tuple maps to a flow that is
            // actually moving bits counts as recently hit.
            let tuples: Vec<FiveTuple> = table
                .entries()
                .iter()
                .filter_map(|e| horse_controller::hedera::tuple_of_match(&e.matcher))
                .collect();
            for tuple in tuples {
                let Some(fid) = fluid.flow_by_tuple(&tuple) else {
                    continue;
                };
                if fluid.rate_of(fid).unwrap_or(0.0) <= 0.0 {
                    continue;
                }
                let key = FlowKey::ipv4(None, tuple);
                if let Some(e) = table.lookup_mut(&key) {
                    e.last_hit = now;
                }
            }
        }
        let expired = table.expire(now);
        let next = table.next_expiry();
        match next {
            Some(d) => self.expiry_wheel.schedule(node, d),
            None => {
                self.expiry_wheel.cancel(node);
            }
        }
        if expired.is_empty() {
            return (false, false);
        }
        self.tracer.record(
            now,
            TraceData::FlowRemoved {
                node: node.0,
                entries: expired.len() as u32,
            },
        );
        let agent = self.agents.get_mut(&node).expect("agent");
        for e in expired {
            let idle =
                !e.idle_timeout.is_zero() && now.duration_since(e.last_hit) >= e.idle_timeout;
            agent.send_flow_removed(horse_openflow::wire::FlowRemoved {
                matcher: e.matcher,
                cookie: e.cookie,
                priority: e.priority,
                reason: if idle { 0 } else { 1 },
                duration_sec: now.duration_since(e.installed).as_secs_f64() as u32,
                idle_timeout: e.idle_timeout.as_secs_f64() as u16,
                packet_count: e.packet_count,
                byte_count: e.byte_count,
            });
        }
        self.dirty.insert(node);
        (true, true)
    }

    /// Re-registers `node`'s earliest table expiry in the wheel.
    fn reindex_expiry(&mut self, node: NodeId, dp: &DataPlane) {
        let next = dp.table(node).and_then(|t| t.next_expiry());
        match next {
            Some(d) => self.expiry_wheel.schedule(node, d),
            None => {
                self.expiry_wheel.cancel(node);
            }
        }
    }

    /// A fluid flow stopped: refresh the idle timers of the rules it was
    /// using along its path, so expiry counts from traffic cessation.
    fn on_flow_retired(
        &mut self,
        tuple: &FiveTuple,
        nodes: &[NodeId],
        now: SimTime,
        dp: &mut DataPlane,
    ) {
        let key = FlowKey::ipv4(None, *tuple);
        for node in nodes {
            if !self.agents.contains_key(node) {
                continue;
            }
            let Some(table) = dp.table_mut(*node) else {
                continue;
            };
            let Some(e) = table.lookup_mut(&key) else {
                continue;
            };
            if e.idle_timeout.is_zero() {
                continue;
            }
            e.last_hit = now;
            self.reindex_expiry(*node, dp);
        }
    }

    /// Applies a FLOW_MOD to the node's simulated table. Returns true if
    /// the table changed.
    fn apply_flow_mod(dp: &mut DataPlane, node: NodeId, fm: &FlowMod, now: SimTime) -> bool {
        let Some(table) = dp.table_mut(node) else {
            return false;
        };
        match fm.command {
            FlowModCommand::Add | FlowModCommand::Modify | FlowModCommand::ModifyStrict => {
                let actions = fm
                    .actions
                    .iter()
                    .map(|a| match a {
                        OfAction::Output { port, .. } => {
                            if *port == horse_openflow::wire::OFPP_CONTROLLER {
                                horse_dataplane::flowtable::Action::Controller
                            } else {
                                horse_dataplane::flowtable::Action::Output(PortId(*port))
                            }
                        }
                    })
                    .collect();
                let mut entry = DpFlowEntry::new(fm.matcher, fm.priority, actions);
                entry.cookie = fm.cookie;
                entry.idle_timeout = horse_sim::SimDuration::from_secs(u64::from(fm.idle_timeout));
                entry.hard_timeout = horse_sim::SimDuration::from_secs(u64::from(fm.hard_timeout));
                table.add(entry, now);
                true
            }
            FlowModCommand::DeleteStrict => table.delete_strict(&fm.matcher, fm.priority).is_some(),
            FlowModCommand::Delete => table.delete_matching(&fm.matcher) > 0,
        }
    }

    /// Builds flow-stats entries from the node's table, with byte counts
    /// taken from the fluid model's per-flow progress (the CM's job: the
    /// simulated data plane is the source of truth for counters) and a
    /// packet estimate derived at MTU granularity, so demand estimators
    /// see byte and packet counters that agree.
    fn flow_stats_of(
        dp: &DataPlane,
        node: NodeId,
        fluid: &FluidNetwork,
        now: SimTime,
    ) -> Vec<FlowStatsEntry> {
        let Some(table) = dp.table(node) else {
            return Vec::new();
        };
        table
            .entries()
            .iter()
            .filter_map(|e| {
                let tuple = horse_controller::hedera::tuple_of_match(&e.matcher)?;
                let bytes = fluid
                    .flow_by_tuple(&tuple)
                    .and_then(|fid| fluid.progress(fid))
                    .map(|p| p.bytes_sent as u64)
                    .unwrap_or(0);
                Some(FlowStatsEntry {
                    matcher: e.matcher,
                    duration_sec: now.duration_since(e.installed).as_secs_f64() as u32,
                    priority: e.priority,
                    idle_timeout: 0,
                    hard_timeout: 0,
                    cookie: e.cookie,
                    // At least the flow's first (synthetic) packet exists.
                    packet_count: bytes.div_ceil(MTU_BYTES).max(1),
                    byte_count: bytes,
                    actions: vec![],
                })
            })
            .collect()
    }

    fn next_deadline(&self) -> Option<SimTime> {
        // The wheel holds each table's earliest expiry in both modes (the
        // full poll keeps it registered too, so the engine lands on the
        // same instants); the app timer rides alongside.
        let expiry = self.expiry_wheel.next_deadline();
        match (self.wake_at, expiry) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// A link changed state: every attached switch reports PORT_STATUS.
    fn on_link_change(
        &mut self,
        link: horse_net::topology::LinkId,
        up: bool,
        topo: &Topology,
        now: SimTime,
    ) {
        self.tracer
            .record(now, TraceData::LinkChange { link: link.0, up });
        let l = topo.link(link);
        for ep in [l.a, l.b] {
            if let Some(agent) = self.agents.get_mut(&ep.node) {
                agent.send_port_status(ep.port.0, !up);
                self.dirty.insert(ep.node);
            }
        }
    }
}

//! The hybrid runner: Horse's main loop.
//!
//! One iteration of the loop is one "step" of the experiment:
//!
//! 1. **Pump the control plane** (deliver queued protocol bytes, poll
//!    timers, apply RIB→FIB installs and FLOW_MODs). Any movement is
//!    control activity → the clock is promoted to (or held in) FTI mode.
//! 2. **React to table changes**: retry unrouted flows, re-resolve routed
//!    flows whose forwarding state changed (rerouting them in the fluid
//!    model).
//! 3. **Advance the clock**: in FTI, one fixed increment (paced against
//!    wall time under [`Pacing::RealTime`]); in DES, jump straight to the
//!    next event — including pending control-plane timer deadlines
//!    (keepalives, Hedera's 5 s polls), so protocol timing survives the
//!    jumps.
//! 4. **Execute due data-plane events**: flow starts/stops, fluid-model
//!    completions, goodput samples.

use crate::control::ControlPlane;
use crate::experiment::{LinkEvent, TrafficEvent};
use crate::report::ExperimentReport;
use horse_dataplane::path::{DataPlane, ResolveError};
use horse_net::addr::MacAddr;
use horse_net::flow::{FlowId, FlowSpec};
use horse_net::fluid::{Dirty, FluidNetwork};
use horse_net::packet::Packet;
use horse_net::topology::{NodeId, Topology};
use horse_sim::clock::Advance;
use horse_sim::{
    ClockMode, EventId, EventQueue, FtiConfig, HybridClock, Pacer, Pacing, SimDuration, SimTime,
};
use horse_stats::SeriesSet;
use horse_trace::{Component, TraceData, TraceLog, TraceOptions, TraceSummary, Tracer};
use std::collections::BTreeSet;
use std::sync::Arc;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Start traffic event `idx`.
    FlowStart(usize),
    /// Stop traffic event `idx` (if its flow is active).
    FlowStop(usize),
    /// A bounded flow may have completed.
    Completion(FlowId),
    /// Periodic goodput sample.
    Sample,
    /// A control-plane timer deadline (handled by the pump; the event only
    /// exists so DES jumps land on it).
    CtrlTick,
    /// Re-attempt pending (unrouted) flows — models hosts retransmitting
    /// the first packet of a flow that was dropped while the control plane
    /// was not ready yet.
    Retry,
    /// Apply scheduled link event `idx` (failure injection / repair).
    LinkChange(usize),
}

/// How often hosts "retransmit" a flow's first packet while unrouted.
const RETRY_INTERVAL: SimDuration = SimDuration::from_millis(50);

/// Stable label for an event variant, used in `EventDispatch` trace records.
fn ev_kind(ev: Ev) -> &'static str {
    match ev {
        Ev::FlowStart(_) => "flow_start",
        Ev::FlowStop(_) => "flow_stop",
        Ev::Completion(_) => "completion",
        Ev::Sample => "sample",
        Ev::CtrlTick => "ctrl_tick",
        Ev::Retry => "retry",
        Ev::LinkChange(_) => "link_change",
    }
}

/// The hybrid DES/FTI experiment executor.
pub struct Runner {
    /// Shared topology; copy-on-write on the first injected link change,
    /// so concurrent runs over the same `Arc` never observe each other.
    topo: Arc<Topology>,
    dp: DataPlane,
    control: ControlPlane,
    fluid: FluidNetwork,
    clock: HybridClock,
    queue: EventQueue<Ev>,
    pacer: Pacer,
    traffic: Vec<TrafficEvent>,
    link_events: Vec<LinkEvent>,
    horizon: SimTime,
    sample_interval: SimDuration,
    label: String,
    /// Intra-run drain workers configured for the pump (1 = serial);
    /// echoed into the report's `pump_run_threads`.
    run_threads: usize,

    /// Traffic events waiting for a route / rules, as a dense slab keyed
    /// by traffic index (ascending-index iteration matches the old
    /// `BTreeMap<usize, _>` order exactly).
    pending: Vec<Option<FlowSpec>>,
    pending_count: usize,
    /// Switches already sent a PACKET_IN for each traffic index (tiny
    /// per-flow lists — a flow's first packet misses at most a handful of
    /// hops before rules land).
    miss_sent: Vec<Vec<NodeId>>,
    /// Active flow per traffic index, dense.
    active_by_idx: Vec<Option<FlowId>>,
    active_count: usize,
    /// Traffic index per flow slot (`FlowId` values are dense u32s, never
    /// reused), grown on demand; ascending-slot iteration matches the old
    /// `BTreeMap<FlowId, _>` order exactly.
    idx_by_flow: Vec<Option<usize>>,
    completion_event: Option<(EventId, FlowId)>,
    ctrl_event: Option<(SimTime, EventId)>,
    retry_scheduled: bool,

    goodput: SeriesSet,
    completions: Vec<(FlowId, SimTime)>,
    fcts: Vec<f64>,
    all_routed_at: Option<SimTime>,
    events_processed: u64,

    /// Runner-side trace sink (mode transitions, event dispatches).
    tracer: Tracer,
    /// How many clock transitions have been mirrored into the trace.
    traced_transitions: usize,
    /// What drove the most recent control activity; becomes the `cause` of
    /// the next FTI promotion mirrored by [`Runner::trace_modes`].
    trace_cause: &'static str,
    /// The assembled trace, available via [`Runner::take_trace`] after
    /// [`Runner::run`].
    trace: Option<TraceLog>,
}

impl Runner {
    /// Builds a runner. Most users go through
    /// [`crate::Experiment::run`] instead.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        topo: Arc<Topology>,
        dp: DataPlane,
        control: ControlPlane,
        traffic: Vec<TrafficEvent>,
        link_events: Vec<LinkEvent>,
        fti: FtiConfig,
        pacing: Pacing,
        horizon: SimTime,
        sample_interval: SimDuration,
        label: String,
    ) -> Runner {
        let n = traffic.len();
        Runner {
            topo,
            dp,
            control,
            fluid: FluidNetwork::new(),
            clock: HybridClock::new(fti),
            queue: EventQueue::new(),
            pacer: Pacer::new(pacing, SimTime::ZERO),
            traffic,
            link_events,
            horizon,
            sample_interval,
            label,
            run_threads: 1,
            pending: vec![None; n],
            pending_count: 0,
            miss_sent: vec![Vec::new(); n],
            active_by_idx: vec![None; n],
            active_count: 0,
            idx_by_flow: Vec::new(),
            completion_event: None,
            ctrl_event: None,
            retry_scheduled: false,
            goodput: SeriesSet::new(),
            completions: Vec::new(),
            fcts: Vec::new(),
            all_routed_at: None,
            events_processed: 0,
            tracer: Tracer::default(),
            traced_transitions: 0,
            trace_cause: "start",
            trace: None,
        }
    }

    /// Enables structured tracing (call before [`Runner::run`]). Allocates
    /// one ring per component, all sharing a wall-clock epoch so exported
    /// wall timestamps line up across components.
    pub fn set_trace(&mut self, opts: &TraceOptions) {
        if !opts.enabled {
            return;
        }
        let epoch = std::time::Instant::now();
        self.tracer = Tracer::ring(Component::Runner, opts.capacity, epoch);
        self.control.set_tracers(opts, epoch);
    }

    /// The merged trace of the completed run (None when tracing was off or
    /// the run hasn't finished).
    pub fn take_trace(&mut self) -> Option<TraceLog> {
        self.trace.take()
    }

    /// Mirrors clock-mode transitions not yet seen into the trace, tagging
    /// FTI promotions with the activity that caused them.
    fn trace_modes(&mut self) {
        if !self.tracer.enabled() {
            return;
        }
        let transitions = self.clock.transitions();
        while self.traced_transitions < transitions.len() {
            let tr = transitions[self.traced_transitions];
            let fti = tr.mode == ClockMode::Fti;
            let cause = if self.traced_transitions == 0 {
                "start"
            } else if fti {
                self.trace_cause
            } else {
                "quiescence"
            };
            self.tracer
                .record(tr.at, TraceData::ModeEnter { fti, cause });
            self.traced_transitions += 1;
        }
    }

    /// Selects the pump scheduling mode (call before [`Runner::run`]).
    pub fn set_pump_mode(&mut self, mode: crate::control::PumpMode) {
        self.control.set_pump_mode(mode);
    }

    /// Sets the intra-run drain worker count (call before [`Runner::run`];
    /// 1 = serial pump, the default).
    pub fn set_run_threads(&mut self, threads: usize) {
        self.run_threads = threads.max(1);
        self.control.set_run_threads(threads);
        self.fluid.set_run_threads(threads);
    }

    // ---- dense flow-bookkeeping slabs --------------------------------

    fn pending_insert(&mut self, idx: usize, spec: FlowSpec) {
        if self.pending[idx].replace(spec).is_none() {
            self.pending_count += 1;
        }
    }

    fn pending_remove(&mut self, idx: usize) {
        if self.pending[idx].take().is_some() {
            self.pending_count -= 1;
        }
    }

    /// Pending (idx, spec) pairs in ascending traffic-index order.
    fn pending_snapshot(&self) -> Vec<(usize, FlowSpec)> {
        self.pending
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|s| (i, s)))
            .collect()
    }

    fn activate(&mut self, idx: usize, fid: FlowId) {
        if self.active_by_idx[idx].replace(fid).is_none() {
            self.active_count += 1;
        }
        let slot = fid.0 as usize;
        if slot >= self.idx_by_flow.len() {
            self.idx_by_flow.resize(slot + 1, None);
        }
        self.idx_by_flow[slot] = Some(idx);
    }

    fn deactivate_idx(&mut self, idx: usize) -> Option<FlowId> {
        let fid = self.active_by_idx[idx].take()?;
        self.active_count -= 1;
        self.idx_by_flow[fid.0 as usize] = None;
        Some(fid)
    }

    fn deactivate_flow(&mut self, fid: FlowId) -> Option<usize> {
        let idx = *self.idx_by_flow.get(fid.0 as usize)?.as_ref()?;
        self.idx_by_flow[fid.0 as usize] = None;
        self.active_by_idx[idx] = None;
        self.active_count -= 1;
        Some(idx)
    }

    /// Read access to the data plane (tests).
    pub fn dataplane(&self) -> &DataPlane {
        &self.dp
    }

    /// Read access to the fluid network (tests).
    pub fn fluid(&self) -> &FluidNetwork {
        &self.fluid
    }

    /// Executes the experiment to its horizon and builds the report.
    pub fn run(&mut self, wall_setup_secs: f64) -> ExperimentReport {
        let wall_start = std::time::Instant::now();
        self.control.start(SimTime::ZERO, &mut self.dp);
        for (idx, t) in self.traffic.iter().enumerate() {
            self.queue
                .push(t.start.min(self.horizon), Ev::FlowStart(idx));
            if let Some(stop) = t.stop {
                self.queue.push(stop.min(self.horizon), Ev::FlowStop(idx));
            }
        }
        for (idx, le) in self.link_events.iter().enumerate() {
            if le.at <= self.horizon {
                self.queue.push(le.at, Ev::LinkChange(idx));
            }
        }
        if !self.sample_interval.is_zero() {
            self.queue.push(SimTime::ZERO, Ev::Sample);
        }

        loop {
            let now = self.clock.now();
            let outcome = self.control.pump(now, &mut self.dp, &self.fluid);
            if outcome.activity {
                self.trace_cause = "pump";
                self.clock.on_control_activity();
            }
            if outcome.tables_changed {
                self.on_tables_changed(now);
            }
            self.sync_ctrl_event();
            if self.clock.now() >= self.horizon {
                break;
            }
            let next = self.queue.peek_time();
            let advance = self.clock.plan(next, self.horizon);
            self.trace_modes();
            match advance {
                Advance::RunTo(target) => {
                    if self.clock.mode() == ClockMode::Fti {
                        self.pacer.pace_to(target);
                    } else {
                        self.pacer.rebase(target);
                    }
                    self.step_to(target);
                }
                Advance::Idle => {
                    if self.control.has_pending() {
                        // Messages still queued: stay busy.
                        self.trace_cause = "pending";
                        self.clock.on_control_activity();
                        self.trace_modes();
                        continue;
                    }
                    break;
                }
            }
        }
        self.finish(wall_setup_secs, wall_start.elapsed().as_secs_f64())
    }

    fn step_to(&mut self, target: SimTime) {
        while let Some((time, ev)) = self.queue.pop_due(target) {
            self.clock.advance_to(time);
            self.events_processed += 1;
            self.tracer
                .record(time, TraceData::EventDispatch { kind: ev_kind(ev) });
            self.handle(time, ev);
        }
        self.clock.advance_to(target);
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::FlowStart(idx) => {
                let spec = self.traffic[idx].spec;
                self.try_start_flow(now, idx, spec);
                self.flush_fluid(now);
            }
            Ev::FlowStop(idx) => {
                if let Some(fid) = self.deactivate_idx(idx) {
                    self.notify_flow_retired(now, fid);
                    let _ = self.fluid.stop(now, fid, &self.topo);
                    self.resync_completion(now);
                    self.sample(now);
                }
                self.pending_remove(idx);
            }
            Ev::Completion(fid) => {
                // May be stale (rates changed since scheduling); re-check.
                if self.completion_event.map(|(_, f)| f) == Some(fid) {
                    self.completion_event = None;
                }
                self.fluid.advance(now);
                if self.fluid.is_complete(fid) {
                    if let Some(idx) = self.deactivate_flow(fid) {
                        self.fcts
                            .push(now.duration_since(self.traffic[idx].start).as_secs_f64());
                    }
                    self.notify_flow_retired(now, fid);
                    let _ = self.fluid.stop(now, fid, &self.topo);
                    self.completions.push((fid, now));
                    self.sample(now);
                }
                self.resync_completion(now);
            }
            Ev::Sample => {
                self.sample(now);
                let next = now + self.sample_interval;
                if next <= self.horizon {
                    self.queue.push(next, Ev::Sample);
                }
            }
            Ev::CtrlTick => {
                // The pump at the top of the loop does the work; the event
                // exists so the DES clock lands on the deadline.
                self.ctrl_event = None;
            }
            Ev::LinkChange(idx) => {
                let le = self.link_events[idx];
                if self.topo.link(le.link).up != le.up {
                    Arc::make_mut(&mut self.topo).link_mut(le.link).up = le.up;
                    // A failed link starves its flows immediately. Only the
                    // component sharing links with the changed one needs a
                    // new solution.
                    self.fluid.advance(now);
                    self.fluid
                        .recompute_incremental(&self.topo, &[Dirty::Link(le.link)]);
                    self.resync_completion(now);
                    self.sample(now);
                    // The control plane notices (BGP transports ride the
                    // link) and reconverges; this is control activity.
                    self.control.on_link_change(le.link, le.up, &self.topo, now);
                    self.trace_cause = "link-change";
                    self.clock.on_control_activity();
                    self.trace_modes();
                    // Surviving routes may offer alternate paths right away.
                    self.on_tables_changed(now);
                }
            }
            Ev::Retry => {
                self.retry_scheduled = false;
                // A fresh "first packet" may be punted again.
                for idx in 0..self.pending.len() {
                    if self.pending[idx].is_some() {
                        self.miss_sent[idx].clear();
                    }
                }
                for (idx, spec) in self.pending_snapshot() {
                    self.try_start_flow(now, idx, spec);
                }
                self.flush_fluid(now);
                self.ensure_retry(now);
            }
        }
    }

    /// Tells the control plane a flow is about to stop, with the switches
    /// its traffic crossed, so idle-timeout accounting can credit the
    /// rules up to this instant instead of re-walking tables every step.
    fn notify_flow_retired(&mut self, now: SimTime, fid: FlowId) {
        if !matches!(self.control, ControlPlane::Sdn(_)) {
            return;
        }
        let Some(spec) = self.fluid.spec(fid).copied() else {
            return;
        };
        let Some(path) = self.fluid.path(fid) else {
            return;
        };
        let mut nodes: BTreeSet<NodeId> = BTreeSet::new();
        for lid in path {
            let link = self.topo.link(*lid);
            nodes.insert(link.a.node);
            nodes.insert(link.b.node);
        }
        let nodes: Vec<NodeId> = nodes.into_iter().collect();
        self.control
            .on_flow_retired(&spec.tuple, &nodes, now, &mut self.dp);
    }

    /// Solves once for every flow start/reroute deferred since the last
    /// flush — one control burst, one solve.
    fn flush_fluid(&mut self, now: SimTime) {
        if self.fluid.has_pending() {
            self.fluid.flush(&self.topo);
            self.resync_completion(now);
            self.sample(now);
        }
    }

    /// Keeps a retry event scheduled while any flow is unrouted.
    fn ensure_retry(&mut self, now: SimTime) {
        if self.pending_count > 0 && !self.retry_scheduled {
            let at = (now + RETRY_INTERVAL).min(self.horizon);
            if at > now {
                self.queue.push(at, Ev::Retry);
                self.retry_scheduled = true;
            }
        }
    }

    fn try_start_flow(&mut self, now: SimTime, idx: usize, spec: FlowSpec) {
        match self.dp.resolve(&self.topo, spec.src, spec.dst, &spec.tuple) {
            Ok(path) => {
                // Deferred: the caller runs one fluid solve for the whole
                // burst of starts/reroutes via [`Runner::flush_fluid`].
                match self.fluid.start_deferred(now, spec, path, &self.topo) {
                    Ok(fid) => {
                        self.pending_remove(idx);
                        self.activate(idx, fid);
                        if self.pending_count == 0
                            && self.all_routed_at.is_none()
                            && self.active_count + self.completions.len() >= self.traffic.len()
                        {
                            self.all_routed_at = Some(now);
                        }
                    }
                    Err(_) => {
                        self.pending_insert(idx, spec);
                    }
                }
            }
            Err(ResolveError::TableMiss { node, in_port }) => {
                self.pending_insert(idx, spec);
                // Synthesize the flow's first packet and punt it — this is
                // the "control plane packets are actually sent to the data
                // plane" path of the paper's SDN mode.
                if !self.miss_sent[idx].contains(&node) {
                    self.miss_sent[idx].push(node);
                    if let ControlPlane::Sdn(sdn) = &mut self.control {
                        let pkt = Packet::first_of(
                            spec.tuple,
                            MacAddr::for_port(spec.src.0, 0),
                            MacAddr::for_port(spec.dst.0, 0),
                        );
                        sdn.packet_in(node, in_port.0, pkt.encode(), now);
                        self.trace_cause = "packet-in";
                        self.clock.on_control_activity();
                        self.trace_modes();
                    }
                }
            }
            Err(_) => {
                // No route yet (BGP still converging), link down, …: park.
                self.pending_insert(idx, spec);
            }
        }
        self.ensure_retry(now);
    }

    /// Forwarding state changed: retry pending flows, re-path active ones.
    /// All starts and reroutes triggered by one control burst are deferred
    /// into a single scoped fluid solve.
    fn on_tables_changed(&mut self, now: SimTime) {
        for (idx, spec) in self.pending_snapshot() {
            self.try_start_flow(now, idx, spec);
        }
        // Ascending flow-slot order == ascending FlowId order (slots are
        // never reused), matching the former `BTreeMap<FlowId, _>` walk.
        let active: Vec<(FlowId, FlowSpec)> = self
            .idx_by_flow
            .iter()
            .enumerate()
            .filter(|(_, idx)| idx.is_some())
            .filter_map(|(slot, _)| {
                let fid = FlowId(slot as u64);
                self.fluid.spec(fid).map(|s| (fid, *s))
            })
            .collect();
        for (fid, spec) in active {
            if let Ok(path) = self.dp.resolve(&self.topo, spec.src, spec.dst, &spec.tuple) {
                if self.fluid.path(fid) != Some(path.as_slice()) {
                    let _ = self.fluid.reroute_deferred(now, fid, path, &self.topo);
                }
            }
        }
        self.flush_fluid(now);
    }

    fn resync_completion(&mut self, _now: SimTime) {
        if let Some((id, _)) = self.completion_event.take() {
            self.queue.cancel(id);
        }
        if let Some((t, fid)) = self.fluid.next_completion() {
            let id = self
                .queue
                .push(t.max(self.clock.now()), Ev::Completion(fid));
            self.completion_event = Some((id, fid));
        }
    }

    fn sync_ctrl_event(&mut self) {
        let deadline = self.control.next_deadline().filter(|d| *d <= self.horizon);
        match (deadline, self.ctrl_event) {
            (Some(d), Some((t, _))) if d == t => {}
            (Some(d), prev) => {
                if let Some((_, id)) = prev {
                    self.queue.cancel(id);
                }
                let id = self.queue.push(d.max(self.clock.now()), Ev::CtrlTick);
                self.ctrl_event = Some((d, id));
            }
            (None, Some((_, id))) => {
                self.queue.cancel(id);
                self.ctrl_event = None;
            }
            (None, None) => {}
        }
    }

    fn sample(&mut self, now: SimTime) {
        self.fluid.advance(now);
        self.goodput
            .push("aggregate", now, self.fluid.total_arrival_rate());
        // Fabric utilization: the highest and mean per-direction link load
        // fraction. (The demo's goodput graph is the headline; these series
        // explain *why* — hash collisions show up as max_link_util pinned
        // at 1.0 while the mean stays low.)
        let loads = self.fluid.all_link_loads();
        let mut max_util = 0.0f64;
        let mut total_util = 0.0f64;
        for (dlink, load) in &loads {
            let link = self.topo.link(dlink.link);
            if !link.up {
                continue;
            }
            let u = load / link.capacity_bps;
            max_util = max_util.max(u);
            total_util += u;
        }
        self.goodput.push("max_link_util", now, max_util);
        // Mean over *all* directed links (idle ones included), so the
        // number reads as fabric occupancy.
        let dirs = 2 * self.topo.link_count();
        if dirs > 0 {
            self.goodput
                .push("mean_link_util", now, total_util / dirs as f64);
        }
    }

    fn finish(&mut self, wall_setup_secs: f64, wall_run_secs: f64) -> ExperimentReport {
        let end = self.clock.now().min(self.horizon);
        self.fluid.advance(end);
        self.sample(end);
        let pump = self.control.pump_stats();
        let rib = self.control.rib_stats();
        let mem = self.control.mem_stats();
        let fluid = self.fluid.solver_stats();
        let trace = if self.tracer.enabled() {
            self.trace_modes();
            let mut logs = Vec::new();
            if let Some(log) = self.tracer.take_log() {
                logs.push(log);
            }
            logs.extend(self.control.take_trace_logs());
            let log = TraceLog::assemble(logs, end);
            let summary = log.summary();
            self.trace = Some(log);
            summary
        } else {
            TraceSummary::default()
        };
        ExperimentReport {
            label: std::mem::take(&mut self.label),
            horizon: end,
            goodput: std::mem::take(&mut self.goodput),
            transitions: self.clock.transitions().to_vec(),
            fti_time: self.clock.fti_time(),
            des_time: self.clock.des_time(),
            wall_setup_secs,
            wall_run_secs,
            events_processed: self.events_processed,
            control_msgs: self.control.msgs_total(),
            table_writes: match &self.control {
                ControlPlane::Bgp(b) => b.installs,
                ControlPlane::Sdn(s) => s.flow_mods_applied,
                ControlPlane::None => 0,
            },
            flows_requested: self.traffic.len(),
            flows_routed: self.active_count + self.completions.len(),
            completions: std::mem::take(&mut self.completions),
            flow_completion_secs: std::mem::take(&mut self.fcts),
            all_routed_at: self.all_routed_at,
            scheduler_moves: self.control.sdn_app().map_or(0, |a| a.moves()),
            pump_steps: pump.steps,
            pump_nodes_total: pump.nodes_total,
            pump_nodes_touched: pump.nodes_touched,
            pump_table_scans: pump.table_scans,
            pump_run_threads: self.run_threads as u64,
            pump_parallel_rounds: pump.parallel_rounds,
            pump_parallel_nodes: pump.parallel_nodes,
            fluid_solves: fluid.solves,
            fluid_seed_dlinks: fluid.seed_dlinks,
            fluid_flows_touched: fluid.flows_touched,
            fluid_scratch_reuses: fluid.scratch_reuses,
            fluid_heap_pushes: fluid.heap_pushes,
            fluid_heap_stale_pops: fluid.heap_stale_pops,
            fluid_parallel_rounds: fluid.parallel_rounds,
            fluid_parallel_components: fluid.parallel_components,
            rib_decide_calls: rib.decide_calls,
            rib_decide_cache_hits: rib.decide_cache_hits,
            rib_invalidations: rib.invalidations,
            rib_candidate_touches: rib.candidate_touches,
            rib_attr_interns: rib.attr_interns,
            rib_attr_reuses: rib.attr_reuses,
            rib_attr_store_peak: rib.attr_store_size,
            rib_export_cache_hits: rib.export_cache_hits,
            rib_export_cache_misses: rib.export_cache_misses,
            mem_peak_rss_bytes: crate::report::peak_rss_bytes(),
            mem_prefix_ids: mem.0,
            mem_peer_ids: mem.1,
            mem_attr_entries: mem.2,
            mem_attr_bytes_est: mem.3,
            trace,
        }
    }
}

//! # horse-core — the Horse experiment engine
//!
//! This crate is the library a user of Horse actually drives (the role the
//! paper's Python API plays): describe a topology, attach an emulated
//! control plane (BGP daemons per router, or an OpenFlow controller with an
//! ECMP/Hedera app), declare traffic, and run. The hybrid runner executes
//! the simulated fluid data plane as a discrete-event simulation while the
//! control plane exchanges real protocol bytes; the clock switches between
//! DES and FTI modes exactly as §2 of the paper describes, driven by
//! control-plane activity observed by the Connection Manager.
//!
//! ```
//! use horse_core::{Experiment, TeApproach};
//!
//! // The paper's demo, one line per scenario: a 4-pod fat-tree where every
//! // host sends one 1 Gbps UDP flow, scheduled by SDN 5-tuple ECMP.
//! let report = Experiment::demo(4, TeApproach::SdnEcmp, 42)
//!     .horizon_secs(5.0)
//!     .run();
//! assert!(report.goodput_mean_bps() > 0.0);
//! ```

pub mod config;
pub mod control;
pub mod experiment;
pub mod report;
pub mod runner;
pub mod workload;

pub use config::RunConfig;
pub use control::{ControlPlane, PumpMode, PumpStats, SdnApp};
pub use experiment::{ControlBuild, Experiment, TeApproach, TrafficEvent};
pub use report::ExperimentReport;
pub use runner::Runner;
pub use workload::{PoissonWorkload, SizeDist};

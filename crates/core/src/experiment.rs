//! The experiment builder — Horse's user-facing API (the paper's Python
//! API, in Rust).

use crate::control::{BgpControl, ControlPlane, PumpMode, SdnApp, SdnControl};
use crate::report::ExperimentReport;
use crate::runner::Runner;
use horse_controller::{EcmpApp, FabricView, HederaApp, HederaConfig};
use horse_dataplane::hash::HashMode;
use horse_dataplane::path::DataPlane;
use horse_net::flow::FlowSpec;
use horse_net::topology::Topology;
use horse_sim::{FtiConfig, Pacing, SimDuration, SimTime};
use horse_topo::fattree::{BgpNodeSetup, FatTree, SwitchRole};
use horse_topo::pattern::{demo_tuple, TrafficPattern};
use horse_topo::spec::{BuiltTopology, TopologySpec};
use horse_topo::synth::{bgp_setups_with_networks, wan_timers};
use horse_trace::{TraceLog, TraceOptions};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The demo's three traffic-engineering approaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TeApproach {
    /// BGP routing with ECMP by hashing of IP source and destination.
    BgpEcmp,
    /// Hedera dynamic flow scheduling (stats poll every 5 s).
    Hedera,
    /// SDN reactive 5-tuple ECMP.
    SdnEcmp,
}

impl TeApproach {
    /// Short label used in reports and bench output.
    pub fn label(&self) -> &'static str {
        match self {
            TeApproach::BgpEcmp => "bgp-ecmp",
            TeApproach::Hedera => "hedera",
            TeApproach::SdnEcmp => "sdn-ecmp",
        }
    }

    /// The fat-tree switch role this approach needs.
    pub fn switch_role(&self) -> SwitchRole {
        match self {
            TeApproach::BgpEcmp => SwitchRole::BgpRouter,
            _ => SwitchRole::OpenFlow,
        }
    }
}

/// One traffic demand: start a flow, optionally stop it later.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficEvent {
    /// When the flow starts.
    pub start: SimTime,
    /// The flow.
    pub spec: FlowSpec,
    /// Optional hard stop (CBR flows in the demo run until the horizon).
    pub stop: Option<SimTime>,
}

/// A scheduled link state change (failure injection / repair).
///
/// On a link that carries a BGP session, the session's transport drops,
/// routes are withdrawn and the network reconverges — pulling the
/// experiment clock back into FTI mode mid-run. (SDN controllers in this
/// model have no port-status channel, so an SDN fabric blackholes the
/// affected flows until rules are reinstalled — see `horse-core::control`.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkEvent {
    /// When the change happens.
    pub at: SimTime,
    /// The link.
    pub link: horse_net::topology::LinkId,
    /// New state.
    pub up: bool,
}

/// Deferred control-plane description (built at [`Experiment::run`]).
pub enum ControlBuild {
    /// Static forwarding only.
    None,
    /// BGP daemons from per-router setups.
    Bgp(BTreeMap<horse_net::topology::NodeId, BgpNodeSetup>),
    /// SDN controller with reactive 5-tuple ECMP.
    SdnEcmp,
    /// SDN controller with Hedera.
    Hedera(HederaConfig),
}

/// A complete experiment description.
pub struct Experiment {
    /// The network, shared structurally: sweeps hand the same
    /// `Arc<Topology>` to every run over a given shape, so building an
    /// experiment never deep-copies the graph. Runs that inject link
    /// failures copy-on-write their private view at mutation time.
    pub topo: Arc<Topology>,
    /// Control-plane choice.
    pub control: ControlBuild,
    /// Traffic demands.
    pub traffic: Vec<TrafficEvent>,
    /// Scheduled link failures / repairs.
    pub link_events: Vec<LinkEvent>,
    /// FTI clock configuration.
    pub fti: FtiConfig,
    /// Pacing (Virtual for benches/tests, RealTime for live emulation).
    pub pacing: Pacing,
    /// Experiment end (virtual time).
    pub horizon: SimTime,
    /// Goodput sampling interval.
    pub sample_interval: SimDuration,
    /// Router ECMP hash mode (the demo's BGP case hashes src+dst IP).
    pub router_hash: HashMode,
    /// Seed for hashing/apps.
    pub seed: u64,
    /// Idle timeout (seconds) for SDN-installed flow rules; 0 = permanent.
    pub sdn_idle_timeout_s: u16,
    /// Pump scheduling mode (readiness-driven by default; `FullPoll` is
    /// the legacy cost model for differential tests and benches).
    pub pump_mode: PumpMode,
    /// Intra-run drain workers for the BGP pump (1 = serial, the
    /// default; `HORSE_RUN_THREADS`). Any value produces byte-identical
    /// reports and traces — this knob only buys wall-clock.
    pub run_threads: usize,
    /// Structured-tracing options (disabled by default; enabling records
    /// span events across runner, pump, BGP speakers and the controller).
    pub trace: TraceOptions,
    /// Report label.
    pub label: String,
}

impl Experiment {
    /// An experiment over `topo` with no control plane and no traffic.
    /// Accepts an owned [`Topology`] or a shared `Arc<Topology>`.
    pub fn new(topo: impl Into<Arc<Topology>>) -> Experiment {
        Experiment {
            topo: topo.into(),
            control: ControlBuild::None,
            traffic: Vec::new(),
            link_events: Vec::new(),
            fti: FtiConfig {
                increment: SimDuration::from_millis(1),
                quiescence: SimDuration::from_millis(100),
            },
            pacing: Pacing::Virtual,
            horizon: SimTime::from_secs(20),
            sample_interval: SimDuration::from_millis(100),
            router_hash: HashMode::SrcDst,
            seed: 1,
            sdn_idle_timeout_s: 0,
            pump_mode: PumpMode::default(),
            run_threads: 1,
            trace: TraceOptions::default(),
            label: String::from("experiment"),
        }
    }

    /// The paper's demo scenario: a `pods`-pod fat-tree with 1 Gbps links,
    /// every host sending one 1 Gbps UDP flow to another host (random
    /// permutation), scheduled by the chosen TE approach.
    pub fn demo(pods: usize, te: TeApproach, seed: u64) -> Experiment {
        let ft = FatTree::build(pods, te.switch_role(), 1e9, 1_000);
        Experiment::demo_on(&ft, te, seed)
    }

    /// Topology-generic entry point: builds the spec and delegates to
    /// [`Experiment::on_built`]. A bare pod count still works
    /// (`Experiment::for_spec(4, …)` is the old `demo(4, …)`); zoo and
    /// pop-wan specs give control-plane-only BGP convergence runs.
    pub fn for_spec(spec: impl Into<TopologySpec>, te: TeApproach, seed: u64) -> Experiment {
        let spec = spec.into();
        Experiment::on_built(&spec.build(te.switch_role()), te, seed)
    }

    /// The experiment for an already-built [`BuiltTopology`] — sweeps and
    /// benches build each shape once and hand it to many runs.
    ///
    /// Fat-tree shapes get the full demo workload ([`Experiment::demo_on`],
    /// byte-identical to the fat-tree-only path). Router-only WANs (zoo,
    /// pop-wan) get a traffic-less convergence experiment: every router
    /// runs BGP with WAN timers ([`wan_timers`]: hold disabled, 100 ms
    /// MRAI) and the shape's synthetic originations; convergence shows up
    /// in the report's mode-transition curve and table-write counters
    /// rather than flow goodput.
    pub fn on_built(bt: &BuiltTopology, te: TeApproach, seed: u64) -> Experiment {
        match &bt.fat_tree {
            Some(ft) => Experiment::demo_on(ft, te, seed),
            None => {
                assert_eq!(
                    te,
                    TeApproach::BgpEcmp,
                    "router-only WAN topologies have no OpenFlow switches; \
                     only the BGP approach applies"
                );
                let setups = bgp_setups_with_networks(&bt.topo, wan_timers(), &bt.originations);
                let mut e = Experiment::new(Arc::clone(&bt.topo));
                e.control = ControlBuild::Bgp(setups);
                e.seed = seed;
                e.label = format!("{}-{}", te.label(), bt.spec.tag());
                e
            }
        }
    }

    /// The demo scenario over an already-built fat-tree. The topology is
    /// shared structurally (`Arc`), so a sweep can build each tree shape
    /// once and hand it to many runs without per-run deep copies. The
    /// tree's switch role must match the TE approach (BGP needs routers,
    /// SDN needs OpenFlow switches).
    pub fn demo_on(ft: &FatTree, te: TeApproach, seed: u64) -> Experiment {
        assert_eq!(
            ft.role,
            te.switch_role(),
            "fat-tree switch role must match the TE approach"
        );
        let control = match te {
            TeApproach::BgpEcmp => {
                ControlBuild::Bgp(ft.bgp_setups(horse_bgp::session::TimerConfig {
                    hold_time: SimDuration::from_secs(30),
                    connect_retry: SimDuration::from_secs(1),
                    mrai: SimDuration::ZERO,
                }))
            }
            TeApproach::SdnEcmp => ControlBuild::SdnEcmp,
            TeApproach::Hedera => ControlBuild::Hedera(HederaConfig::default()),
        };
        let pairs = TrafficPattern::RandomPermutation.pairs(&ft.hosts, seed);
        let mut traffic = Vec::new();
        for (i, p) in pairs.iter().enumerate() {
            let tuple = demo_tuple(&ft.topo, p.src, p.dst, i as u16);
            traffic.push(TrafficEvent {
                start: SimTime::ZERO,
                spec: FlowSpec::cbr(p.src, p.dst, tuple, 1e9),
                stop: None,
            });
        }
        let mut e = Experiment::new(Arc::clone(&ft.topo));
        e.control = control;
        e.traffic = traffic;
        e.seed = seed;
        e.label = format!("{}-k{}", te.label(), ft.k);
        e
    }

    /// Adds a traffic event.
    pub fn flow(mut self, start: SimTime, spec: FlowSpec) -> Experiment {
        self.traffic.push(TrafficEvent {
            start,
            spec,
            stop: None,
        });
        self
    }

    /// Schedules a link failure at `at`.
    pub fn link_down(mut self, at: SimTime, link: horse_net::topology::LinkId) -> Experiment {
        self.link_events.push(LinkEvent {
            at,
            link,
            up: false,
        });
        self
    }

    /// Schedules a link repair at `at`.
    pub fn link_up(mut self, at: SimTime, link: horse_net::topology::LinkId) -> Experiment {
        self.link_events.push(LinkEvent { at, link, up: true });
        self
    }

    /// Adds a traffic event with an explicit stop time.
    pub fn flow_until(mut self, start: SimTime, spec: FlowSpec, stop: SimTime) -> Experiment {
        self.traffic.push(TrafficEvent {
            start,
            spec,
            stop: Some(stop),
        });
        self
    }

    /// Sets the experiment horizon in seconds.
    pub fn horizon_secs(mut self, secs: f64) -> Experiment {
        self.horizon = SimTime::from_secs_f64(secs);
        self
    }

    /// Sets the FTI increment and quiescence timeout.
    pub fn fti(mut self, increment: SimDuration, quiescence: SimDuration) -> Experiment {
        self.fti = FtiConfig {
            increment,
            quiescence,
        };
        self
    }

    /// Sets the pacing policy.
    pub fn pacing(mut self, pacing: Pacing) -> Experiment {
        self.pacing = pacing;
        self
    }

    /// Sets the goodput sampling interval.
    pub fn sample_every(mut self, interval: SimDuration) -> Experiment {
        self.sample_interval = interval;
        self
    }

    /// Sets the idle timeout of SDN-installed rules (0 = permanent).
    pub fn sdn_idle_timeout(mut self, secs: u16) -> Experiment {
        self.sdn_idle_timeout_s = secs;
        self
    }

    /// Sets the pump scheduling mode.
    pub fn pump_mode(mut self, mode: PumpMode) -> Experiment {
        self.pump_mode = mode;
        self
    }

    /// Sets the intra-run drain worker count (1 = serial pump).
    pub fn run_threads(mut self, threads: usize) -> Experiment {
        self.run_threads = threads.max(1);
        self
    }

    /// Sets the structured-tracing options (see [`horse_trace`]).
    pub fn trace(mut self, opts: TraceOptions) -> Experiment {
        self.trace = opts;
        self
    }

    /// Sets the report label.
    pub fn label(mut self, label: impl Into<String>) -> Experiment {
        self.label = label.into();
        self
    }

    /// Builds and runs the experiment, returning its report.
    pub fn run(self) -> ExperimentReport {
        self.run_traced().0
    }

    /// Builds and runs the experiment, returning the report and — when
    /// tracing was enabled via [`Experiment::trace`] — the merged
    /// [`TraceLog`] for export and analysis.
    pub fn run_traced(self) -> (ExperimentReport, Option<TraceLog>) {
        let setup_start = std::time::Instant::now();
        let dp = DataPlane::from_topology(&self.topo, self.router_hash, HashMode::FiveTuple);
        // The control plane is built from *shared* topology state: BGP
        // setups are moved (not cloned) out of the description, and SDN
        // fabrics clone the `Arc`, not the graph.
        let mut control = match self.control {
            ControlBuild::None => ControlPlane::None,
            ControlBuild::Bgp(setups) => {
                ControlPlane::Bgp(Box::new(BgpControl::new(&self.topo, setups)))
            }
            ControlBuild::SdnEcmp => {
                let fabric = FabricView::new(Arc::clone(&self.topo));
                ControlPlane::Sdn(Box::new(SdnControl::new(
                    &self.topo,
                    SdnApp::Ecmp(
                        EcmpApp::new(fabric, self.seed).with_idle_timeout(self.sdn_idle_timeout_s),
                    ),
                )))
            }
            ControlBuild::Hedera(cfg) => {
                let fabric = FabricView::new(Arc::clone(&self.topo));
                ControlPlane::Sdn(Box::new(SdnControl::new(
                    &self.topo,
                    SdnApp::Hedera(HederaApp::new(fabric, cfg, self.seed)),
                )))
            }
        };
        control.set_pump_mode(self.pump_mode);
        let wall_setup_secs = setup_start.elapsed().as_secs_f64();
        let mut runner = Runner::new(
            self.topo,
            dp,
            control,
            self.traffic,
            self.link_events,
            self.fti,
            self.pacing,
            self.horizon,
            self.sample_interval,
            self.label,
        );
        runner.set_run_threads(self.run_threads);
        runner.set_trace(&self.trace);
        let report = runner.run(wall_setup_secs);
        (report, runner.take_trace())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_spec_fat_tree_matches_demo() {
        let a = Experiment::for_spec(4, TeApproach::SdnEcmp, 42);
        let b = Experiment::demo(4, TeApproach::SdnEcmp, 42);
        assert_eq!(a.label, b.label);
        assert_eq!(a.traffic, b.traffic);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.topo.node_count(), b.topo.node_count());
    }

    #[test]
    fn zoo_spec_converges_control_only() {
        let spec = TopologySpec::Zoo {
            name: "Abilene".into(),
        };
        let report = Experiment::for_spec(spec, TeApproach::BgpEcmp, 1)
            .horizon_secs(10.0)
            .run();
        assert_eq!(report.label, "bgp-ecmp-zoo-Abilene");
        assert!(report.control_msgs > 0, "BGP must have spoken");
        assert!(report.table_writes > 0, "routes must have been installed");
        // The mode-transition curve is the convergence signal for
        // traffic-less runs: the network must go quiescent before the
        // horizon and stay there.
        let last = report
            .transitions
            .last()
            .expect("at least one mode transition");
        assert!(last.at < SimTime::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "only the BGP approach applies")]
    fn zoo_spec_rejects_sdn() {
        let spec = TopologySpec::Zoo {
            name: "Abilene".into(),
        };
        let _ = Experiment::for_spec(spec, TeApproach::SdnEcmp, 1);
    }
}

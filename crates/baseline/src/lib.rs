//! # horse-baseline — the comparison baselines
//!
//! Figure 3 of the paper compares Horse against Mininet. Mininet is a
//! container-based emulator: it cannot be reproduced inside a simulator, so
//! per the substitution policy (DESIGN.md §1) this crate models exactly the
//! two cost sources that shape Mininet's execution time:
//!
//! 1. **Topology creation** — Mininet creates a network namespace and veth
//!    pairs per host, an OVS bridge per switch, and a veth pair per link;
//!    each element costs wall-clock time ([`MininetModel`]).
//! 2. **Experiment execution** — an emulator runs in *real time* (60 s of
//!    experiment take at least 60 s of wall clock), and forwarding every
//!    packet in software costs CPU; when offered load exceeds the machine's
//!    forwarding capacity, execution stretches beyond real time.
//!
//! The packet counts that drive (2) come from [`PacketLevelSim`], a real
//! per-packet discrete-event simulator over the same topologies — which
//! doubles as the foil for the fluid-vs-packet ablation (A3): it measures
//! how many events a per-packet data plane must process where the fluid
//! model re-solves a handful of rate equations.

pub mod mininet;
pub mod packet_sim;

pub use mininet::MininetModel;
pub use packet_sim::{PacketFlow, PacketLevelSim, PacketSimConfig, PacketSimReport};

//! The Mininet execution-time model (Figure 3's right-hand bars).
//!
//! Mininet (Handigol et al., CoNEXT'12) emulates networks with Linux
//! namespaces, veth pairs and software switches on one machine. Two costs
//! dominate an experiment's wall-clock time:
//!
//! * **Creation**: each host is a namespace + veth (~`per_host_s`), each
//!   switch an OVS bridge with its ports (~`per_switch_s`), each link a
//!   veth pair + attachment (~`per_link_s`). The defaults are calibrated
//!   from published Mininet numbers (~1 s combined per element at the
//!   scale of tens of nodes on the paper's 4-core VM; creation is mostly
//!   serialized `ip`/`ovs-vsctl` invocations).
//! * **Execution**: the emulated experiment runs in real time — a 60 s
//!   workload takes ≥ 60 s — *and* every packet must be forwarded in
//!   software at every hop (~`per_packet_hop_us` of CPU each, shared over
//!   `cores`). When offered load exceeds forwarding capacity, execution
//!   stretches past real time: the emulator falls behind, which is exactly
//!   the regime the paper's 8-pod data point exposes.
//!
//! These constants make the *shape* of Figure 3 reproducible — who wins
//! and by roughly what factor as pod count grows — without pretending to
//! predict any particular machine's absolute numbers. Both knobs are
//! public: calibrate them against a real Mininet install if you have one.

/// Cost model for a Mininet-class container emulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MininetModel {
    /// Seconds to create one host (namespace + veth + config).
    pub per_host_s: f64,
    /// Seconds to create one switch (OVS bridge + controller conn).
    pub per_switch_s: f64,
    /// Seconds to create one link (veth pair + attach).
    pub per_link_s: f64,
    /// CPU microseconds to forward one packet across one hop in software.
    pub per_packet_hop_us: f64,
    /// CPU cores available for forwarding (the paper's VM had 4).
    pub cores: f64,
    /// Maximum time-dilation factor. A saturated emulator does not slow
    /// down without bound: the traffic generators themselves are starved
    /// and shed load (iperf UDP senders simply emit fewer packets), so
    /// wall time stretches only until sender back-pressure kicks in.
    pub max_dilation: f64,
}

impl Default for MininetModel {
    fn default() -> Self {
        MininetModel {
            per_host_s: 0.3,
            per_switch_s: 0.8,
            per_link_s: 0.15,
            per_packet_hop_us: 8.0,
            cores: 4.0,
            max_dilation: 4.0,
        }
    }
}

impl MininetModel {
    /// Wall-clock seconds to build the topology.
    pub fn creation_time(&self, hosts: usize, switches: usize, links: usize) -> f64 {
        hosts as f64 * self.per_host_s
            + switches as f64 * self.per_switch_s
            + links as f64 * self.per_link_s
    }

    /// Wall-clock seconds to execute an experiment of `duration_s` whose
    /// data plane moves `packet_hops` packet-hops in total.
    ///
    /// Real-time lower bound, stretched by CPU saturation: if forwarding
    /// needs more CPU-seconds than `cores × duration`, the emulator slows
    /// down proportionally (time dilation without virtual-time support —
    /// exactly the artifact VT-Mininet/Selena set out to fix).
    pub fn execution_time(&self, duration_s: f64, packet_hops: u64) -> f64 {
        let cpu_needed = packet_hops as f64 * self.per_packet_hop_us * 1e-6;
        let capacity = self.cores * duration_s;
        if cpu_needed <= capacity {
            duration_s
        } else {
            duration_s * (cpu_needed / capacity).min(self.max_dilation)
        }
    }

    /// Analytic packet-hop count for a CBR workload: `flows` each sending
    /// at `rate_bps` in `packet_size` frames over paths of `avg_hops` links
    /// for `duration_s`.
    pub fn packet_hops_for(
        flows: usize,
        rate_bps: f64,
        packet_size_bytes: u32,
        avg_hops: f64,
        duration_s: f64,
    ) -> u64 {
        let pps = rate_bps / (f64::from(packet_size_bytes) * 8.0);
        (flows as f64 * pps * duration_s * avg_hops) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creation_scales_linearly() {
        let m = MininetModel::default();
        let t1 = m.creation_time(16, 20, 48);
        let t2 = m.creation_time(32, 40, 96);
        assert!((t2 - 2.0 * t1).abs() < 1e-9);
        assert!(t1 > 10.0, "k=4 fat-tree creation is tens of seconds: {t1}");
    }

    #[test]
    fn execution_lower_bounded_by_real_time() {
        let m = MininetModel::default();
        assert_eq!(m.execution_time(60.0, 0), 60.0);
        assert_eq!(m.execution_time(60.0, 1000), 60.0);
    }

    #[test]
    fn saturation_stretches_execution() {
        let m = MininetModel::default();
        // 4 cores × 60 s = 240 CPU-s of capacity; ask for 480 CPU-s.
        let hops = (480.0 / (m.per_packet_hop_us * 1e-6)) as u64;
        let t = m.execution_time(60.0, hops);
        assert!((t - 120.0).abs() < 1.0, "2× overload → 2× time: {t}");
    }

    #[test]
    fn packet_hop_estimate() {
        // 16 flows × 1 Gbps × 1500 B × 6 hops × 60 s.
        let hops = MininetModel::packet_hops_for(16, 1e9, 1500, 6.0, 60.0);
        let pps = 1e9 / 12000.0; // ≈ 83_333
        let expect = (16.0 * pps * 60.0 * 6.0) as u64;
        assert_eq!(hops, expect);
    }

    #[test]
    fn dilation_capped_by_load_shedding() {
        let m = MininetModel::default();
        // Absurd load cannot stretch past max_dilation.
        let t = m.execution_time(60.0, u64::MAX / 1024);
        assert!((t - 60.0 * m.max_dilation).abs() < 1e-6, "{t}");
    }

    #[test]
    fn paper_scale_sanity_8_pods_is_slow() {
        // k=8: 128 hosts, 80 switches, 384 links; 128 × 1 Gbps flows over
        // ~6 hops for 60 s — far beyond 4 cores of software forwarding.
        let m = MininetModel::default();
        let creation = m.creation_time(128, 80, 384);
        let hops = MininetModel::packet_hops_for(128, 1e9, 1500, 6.0, 60.0);
        let exec = m.execution_time(60.0, hops);
        assert!(creation > 100.0, "creation {creation}");
        assert!(
            (exec - 60.0 * m.max_dilation).abs() < 1e-6,
            "saturated to the dilation cap: {exec}"
        );
    }
}

//! A per-packet discrete-event network simulator.
//!
//! This is what Horse's fluid data plane *replaces*: every packet of every
//! flow is an explicit event chain — generation at the source, store-and-
//! forward transmission on each link (FIFO queueing on the output port,
//! serialization at link rate, propagation delay), delivery at the sink.
//! Tail-drop queues bound memory and model congestion loss.
//!
//! It exists for two jobs:
//!
//! * the **fluid-vs-packet ablation** (DESIGN.md A3): same workload, count
//!   events and wall time under both data planes;
//! * the **Mininet execution model**: the per-packet-hop count it produces
//!   is the work a software emulator must do in real time.

use horse_net::fluid::DirLink;
use horse_net::topology::{LinkId, NodeId, Topology};
use horse_sim::{EventQueue, SimDuration, SimTime};
use std::collections::HashMap;

/// Configuration for a packet-level run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketSimConfig {
    /// Packet size (the demo's UDP flows; default 1500-byte MTU frames).
    pub packet_size_bytes: u32,
    /// Output-queue capacity per link direction, in packets (tail drop).
    pub queue_capacity: u32,
    /// End of simulation.
    pub horizon: SimTime,
}

impl Default for PacketSimConfig {
    fn default() -> Self {
        PacketSimConfig {
            packet_size_bytes: 1500,
            queue_capacity: 100,
            horizon: SimTime::from_secs(1),
        }
    }
}

/// One CBR flow with a fixed path.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketFlow {
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Links traversed, in order from `src`.
    pub path: Vec<LinkId>,
    /// Constant bit rate, bits/s.
    pub rate_bps: f64,
    /// First packet time.
    pub start: SimTime,
}

/// Results of a packet-level run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketSimReport {
    /// Packets generated at sources.
    pub generated: u64,
    /// Packets delivered to sinks.
    pub delivered: u64,
    /// Packets dropped at full queues.
    pub dropped: u64,
    /// Total events processed (generation + per-hop + delivery).
    pub events: u64,
    /// Total packet-hops (each transmission of a packet on a link).
    pub packet_hops: u64,
    /// Aggregate goodput over the run, bits/s.
    pub goodput_bps: f64,
    /// Wall-clock seconds the run took.
    pub wall_secs: f64,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Source of flow `f` emits its next packet.
    Generate { f: usize },
    /// A packet of flow `f` finished arriving at hop `hop` (0-based index
    /// into the path; `hop == path.len()` means delivered).
    Arrive { f: usize, hop: usize },
}

/// The per-packet simulator.
pub struct PacketLevelSim {
    topo: Topology,
    flows: Vec<PacketFlow>,
    dlinks: Vec<Vec<DirLink>>,
    cfg: PacketSimConfig,
}

impl PacketLevelSim {
    /// Builds a simulator; panics if a flow's path does not connect its
    /// endpoints (caller resolves paths via `horse-dataplane`).
    pub fn new(topo: Topology, flows: Vec<PacketFlow>, cfg: PacketSimConfig) -> PacketLevelSim {
        let dlinks = flows
            .iter()
            .map(|f| {
                let mut cur = f.src;
                f.path
                    .iter()
                    .map(|lid| {
                        let link = topo.link(*lid);
                        let forward = link.a.node == cur;
                        assert!(
                            forward || link.b.node == cur,
                            "flow path disconnected at {cur}"
                        );
                        cur = link.other(cur);
                        DirLink {
                            link: *lid,
                            forward,
                        }
                    })
                    .collect()
            })
            .collect();
        PacketLevelSim {
            topo,
            flows,
            dlinks,
            cfg,
        }
    }

    /// Runs to the horizon.
    pub fn run(&mut self) -> PacketSimReport {
        let wall = std::time::Instant::now();
        let mut queue: EventQueue<Ev> = EventQueue::new();
        // Per directed link: when the transmitter is next free, and the
        // number of packets queued (including the one in transmission).
        let mut free_at: HashMap<DirLink, SimTime> = HashMap::new();
        let mut queued: HashMap<DirLink, u32> = HashMap::new();
        let mut generated = 0u64;
        let mut delivered = 0u64;
        let mut dropped = 0u64;
        let mut events = 0u64;
        let mut packet_hops = 0u64;
        let mut delivered_bytes = 0u64;
        let pkt_bits = f64::from(self.cfg.packet_size_bytes) * 8.0;

        for (f, flow) in self.flows.iter().enumerate() {
            if flow.rate_bps > 0.0 {
                queue.push(flow.start, Ev::Generate { f });
            }
        }

        while let Some((now, ev)) = queue.pop() {
            if now > self.cfg.horizon {
                break;
            }
            events += 1;
            match ev {
                Ev::Generate { f } => {
                    generated += 1;
                    let interval = SimDuration::from_secs_f64(pkt_bits / self.flows[f].rate_bps);
                    queue.push(now + interval, Ev::Generate { f });
                    // The packet starts its journey at hop 0.
                    self.transmit(
                        f,
                        0,
                        now,
                        &mut queue,
                        &mut free_at,
                        &mut queued,
                        &mut dropped,
                        &mut packet_hops,
                    );
                }
                Ev::Arrive { f, hop } => {
                    // Transmission on link (hop-1) done: free one queue slot.
                    let d = self.dlinks[f][hop - 1];
                    if let Some(q) = queued.get_mut(&d) {
                        *q = q.saturating_sub(1);
                    }
                    if hop == self.dlinks[f].len() {
                        delivered += 1;
                        delivered_bytes += u64::from(self.cfg.packet_size_bytes);
                    } else {
                        self.transmit(
                            f,
                            hop,
                            now,
                            &mut queue,
                            &mut free_at,
                            &mut queued,
                            &mut dropped,
                            &mut packet_hops,
                        );
                    }
                }
            }
        }

        let span = self.cfg.horizon.as_secs_f64().max(1e-9);
        PacketSimReport {
            generated,
            delivered,
            dropped,
            events,
            packet_hops,
            goodput_bps: delivered_bytes as f64 * 8.0 / span,
            wall_secs: wall.elapsed().as_secs_f64(),
        }
    }

    /// Enqueues a packet of flow `f` for transmission on path hop `hop`.
    #[allow(clippy::too_many_arguments)]
    fn transmit(
        &self,
        f: usize,
        hop: usize,
        now: SimTime,
        queue: &mut EventQueue<Ev>,
        free_at: &mut HashMap<DirLink, SimTime>,
        queued: &mut HashMap<DirLink, u32>,
        dropped: &mut u64,
        packet_hops: &mut u64,
    ) {
        let d = self.dlinks[f][hop];
        let q = queued.entry(d).or_insert(0);
        if *q >= self.cfg.queue_capacity {
            *dropped += 1;
            return;
        }
        *q += 1;
        *packet_hops += 1;
        let link = self.topo.link(d.link);
        let tx_time = SimDuration::from_secs_f64(
            f64::from(self.cfg.packet_size_bytes) * 8.0 / link.capacity_bps,
        );
        let start = (*free_at.get(&d).unwrap_or(&SimTime::ZERO)).max(now);
        let done = start + tx_time;
        free_at.insert(d, done);
        let arrival = done + SimDuration::from_nanos(link.delay_ns);
        queue.push(arrival, Ev::Arrive { f, hop: hop + 1 });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use horse_net::addr::Ipv4Prefix;
    use std::net::Ipv4Addr;

    const G: f64 = 1e9;

    fn line() -> (Topology, NodeId, NodeId, Vec<LinkId>) {
        let mut t = Topology::new();
        let sn: Ipv4Prefix = "10.0.0.0/24".parse().unwrap();
        let a = t.add_host("a", Ipv4Addr::new(10, 0, 0, 1), sn);
        let b = t.add_host("b", Ipv4Addr::new(10, 0, 0, 2), sn);
        let s = t.add_switch("s", Ipv4Addr::new(10, 255, 0, 1));
        let (l1, ..) = t.add_link(a, s, G, 1000);
        let (l2, ..) = t.add_link(s, b, G, 1000);
        (t, a, b, vec![l1, l2])
    }

    fn flow(a: NodeId, b: NodeId, path: Vec<LinkId>, rate: f64) -> PacketFlow {
        PacketFlow {
            src: a,
            dst: b,
            path,
            rate_bps: rate,
            start: SimTime::ZERO,
        }
    }

    #[test]
    fn cbr_flow_delivers_expected_packet_count() {
        let (t, a, b, path) = line();
        let mut sim = PacketLevelSim::new(
            t,
            vec![flow(a, b, path, 0.12e9)], // 10k pps at 1500B
            PacketSimConfig {
                horizon: SimTime::from_millis(100),
                ..PacketSimConfig::default()
            },
        );
        let r = sim.run();
        // 0.12 Gbps / (1500*8 bits) = 10_000 pps → ~1000 packets in 100 ms.
        assert!((990..=1010).contains(&r.generated), "{}", r.generated);
        assert!(r.delivered >= r.generated - 5, "in-flight tail only");
        assert_eq!(r.dropped, 0);
        // Two links per packet; undelivered tail packets may have crossed
        // only the first.
        assert!(
            r.packet_hops >= r.delivered * 2 && r.packet_hops <= r.generated * 2,
            "hops bookkeeping sane: {r:?}"
        );
    }

    #[test]
    fn goodput_matches_offered_load_when_uncongested() {
        let (t, a, b, path) = line();
        let mut sim = PacketLevelSim::new(
            t,
            vec![flow(a, b, path, 0.5e9)],
            PacketSimConfig {
                horizon: SimTime::from_millis(50),
                ..PacketSimConfig::default()
            },
        );
        let r = sim.run();
        assert!(
            (r.goodput_bps - 0.5e9).abs() / 0.5e9 < 0.02,
            "goodput {} ≈ 0.5 Gbps",
            r.goodput_bps
        );
    }

    #[test]
    fn overload_drops_packets() {
        // Two 0.8 Gbps flows into one 1 Gbps link → 60% overload.
        let mut t = Topology::new();
        let sn: Ipv4Prefix = "10.0.0.0/24".parse().unwrap();
        let a = t.add_host("a", Ipv4Addr::new(10, 0, 0, 1), sn);
        let c = t.add_host("c", Ipv4Addr::new(10, 0, 0, 3), sn);
        let b = t.add_host("b", Ipv4Addr::new(10, 0, 0, 2), sn);
        let s = t.add_switch("s", Ipv4Addr::new(10, 255, 0, 1));
        let (l1, ..) = t.add_link(a, s, G, 1000);
        let (l2, ..) = t.add_link(c, s, G, 1000);
        let (l3, ..) = t.add_link(s, b, G, 1000);
        let flows = vec![
            flow(a, b, vec![l1, l3], 0.8e9),
            flow(c, b, vec![l2, l3], 0.8e9),
        ];
        let mut sim = PacketLevelSim::new(
            t,
            flows,
            PacketSimConfig {
                horizon: SimTime::from_millis(50),
                ..PacketSimConfig::default()
            },
        );
        let r = sim.run();
        assert!(r.dropped > 0, "bottleneck must drop: {r:?}");
        // Delivered goodput ≈ link capacity.
        assert!(
            r.goodput_bps < 1.05e9,
            "cannot exceed bottleneck: {}",
            r.goodput_bps
        );
        assert!(
            r.goodput_bps > 0.9e9,
            "bottleneck saturated: {}",
            r.goodput_bps
        );
    }

    #[test]
    fn event_count_scales_with_packets_and_hops() {
        let (t, a, b, path) = line();
        let mut sim = PacketLevelSim::new(
            t,
            vec![flow(a, b, path, 0.12e9)],
            PacketSimConfig {
                horizon: SimTime::from_millis(10),
                ..PacketSimConfig::default()
            },
        );
        let r = sim.run();
        // Each packet: 1 generate + 2 arrivals ⇒ ≈ 3 events.
        assert!(
            r.events >= r.generated * 2,
            "events {} vs generated {}",
            r.events,
            r.generated
        );
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_path_rejected() {
        let (t, a, b, path) = line();
        let bad = vec![path[1], path[0]];
        PacketLevelSim::new(t, vec![flow(a, b, bad, G)], PacketSimConfig::default());
    }

    #[test]
    fn zero_rate_flow_is_silent() {
        let (t, a, b, path) = line();
        let mut sim =
            PacketLevelSim::new(t, vec![flow(a, b, path, 0.0)], PacketSimConfig::default());
        let r = sim.run();
        assert_eq!(r.generated, 0);
        assert_eq!(r.events, 0);
    }
}

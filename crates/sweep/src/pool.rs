//! The work-stealing worker pool (re-exported from `horse-pool`).
//!
//! The pool implementation moved to its own crate so the intra-run
//! parallel pump in `horse-core` can schedule through the same scheduler
//! without a `sweep → core → sweep` dependency cycle. Everything the
//! sweep layer used from here — [`run_indexed`], [`run_selected`],
//! [`run_selected_with`], [`RunOutcome`], [`RunResult`] — is re-exported
//! unchanged; see `horse-pool`'s docs for scheduling, determinism, and
//! panic-containment details. Only [`threads_from_env`] is native to this
//! module: it needs `horse_core::RunConfig`, which the pool crate (below
//! `horse-core` in the dependency graph) cannot see.

pub use horse_pool::{
    lock_unpoisoned, run_indexed, run_selected, run_selected_with, RunOutcome, RunResult,
};

/// Worker count from the `HORSE_THREADS` environment variable, falling
/// back to the machine's available parallelism. `HORSE_THREADS=1` forces
/// the serial path.
///
/// Panics on an unparsable or zero value — a typo'd override silently
/// changing the thread count is worse than a crash. This is a thin shim
/// over [`horse_core::RunConfig`], the single `HORSE_*` parse point;
/// callers holding a config should use [`horse_core::RunConfig::threads`]
/// directly, and tests should inject values via
/// [`horse_core::RunConfig::from_lookup`] rather than mutating the
/// process environment.
pub fn threads_from_env() -> usize {
    horse_core::RunConfig::from_env().threads()
}

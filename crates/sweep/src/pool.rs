//! The work-stealing worker pool.
//!
//! Runs `n` independent, index-identified tasks on `threads` workers.
//! Tasks are dealt round-robin into per-worker deques; a worker drains
//! its own deque from the front and, when empty, steals from siblings'
//! backs. Results flow through an MPMC channel and are re-ordered by
//! index ([`horse_stats::OrderedCollector`]), so the returned vector is
//! identical for every thread count — the scheduling shows up only in
//! the [`SweepStats`] counters.
//!
//! With `threads == 1` the pool spawns nothing and runs the tasks inline
//! in index order — byte-for-byte the serial loop the bench bins used to
//! write by hand.

use crossbeam::channel;
use horse_stats::{OrderedCollector, SweepStats, WorkerStats};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// One task's result, tagged with where and how long it ran.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult<T> {
    /// The task's index in `0..n` (plan order).
    pub index: usize,
    /// Worker that executed it (0 on the serial path).
    pub worker: usize,
    /// Wall time inside the task closure, in milliseconds.
    pub wall_ms: f64,
    /// The closure's return value.
    pub value: T,
}

/// Worker count from the `HORSE_THREADS` environment variable, falling
/// back to the machine's available parallelism. `HORSE_THREADS=1` forces
/// the serial path.
///
/// Panics on an unparsable or zero value — a typo'd override silently
/// changing the thread count is worse than a crash. This is a thin shim
/// over [`horse_core::RunConfig`], the single `HORSE_*` parse point;
/// callers holding a config should use [`horse_core::RunConfig::threads`]
/// directly.
pub fn threads_from_env() -> usize {
    horse_core::RunConfig::from_env().threads()
}

/// Executes `f(0..n)` on `threads` workers and returns the results in
/// index order plus the pool's counters.
///
/// `f` must be a pure function of its index (up to shared read-only
/// state): the determinism contract is that the returned vector does not
/// depend on `threads`. Wall times and worker ids in [`RunResult`] *do*
/// vary run to run; callers comparing results across thread counts must
/// compare only the values (for experiments, their semantic JSON).
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> (Vec<RunResult<T>>, SweepStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let start = Instant::now();
    if threads <= 1 || n <= 1 {
        let mut worker = WorkerStats::default();
        let mut out = Vec::with_capacity(n);
        for index in 0..n {
            let t0 = Instant::now();
            let value = f(index);
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            worker.runs += 1;
            worker.busy_ms += wall_ms;
            out.push(RunResult {
                index,
                worker: 0,
                wall_ms,
                value,
            });
        }
        let stats = SweepStats {
            threads: 1,
            runs: n,
            elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
            workers: vec![worker],
        };
        return (out, stats);
    }

    // No point spawning more workers than tasks.
    let nw = threads.min(n);
    // Deal tasks round-robin: worker w owns indices w, w+nw, w+2nw, …
    // ascending, so its own pop_front walks the plan in order while
    // thieves take pop_back (the victim's farthest-out work).
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..nw)
        .map(|w| Mutex::new((w..n).step_by(nw).collect()))
        .collect();
    let per_worker: Vec<Mutex<WorkerStats>> = (0..nw)
        .map(|_| Mutex::new(WorkerStats::default()))
        .collect();
    let (tx, rx) = channel::unbounded::<RunResult<T>>();

    std::thread::scope(|s| {
        for w in 0..nw {
            let tx = tx.clone();
            let queues = &queues;
            let per_worker = &per_worker;
            let f = &f;
            s.spawn(move || {
                let mut local = WorkerStats::default();
                loop {
                    let mut stolen = false;
                    let index = match queues[w].lock().unwrap().pop_front() {
                        Some(i) => Some(i),
                        None => {
                            // Scan siblings starting after ourselves so
                            // thieves spread instead of mobbing worker 0.
                            let mut found = None;
                            for off in 1..nw {
                                let victim = (w + off) % nw;
                                if let Some(i) = queues[victim].lock().unwrap().pop_back() {
                                    found = Some(i);
                                    break;
                                }
                            }
                            stolen = found.is_some();
                            found
                        }
                    };
                    // Every task was dealt up front, so empty queues all
                    // around mean the sweep is drained (tasks already
                    // popped are owned by the worker running them).
                    let Some(index) = index else { break };
                    if stolen {
                        local.steals += 1;
                    }
                    let t0 = Instant::now();
                    let value = f(index);
                    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
                    local.runs += 1;
                    local.busy_ms += wall_ms;
                    let _ = tx.send(RunResult {
                        index,
                        worker: w,
                        wall_ms,
                        value,
                    });
                }
                *per_worker[w].lock().unwrap() = local;
            });
        }
    });

    // The scope joined every worker, so all n results are queued.
    let mut collector = OrderedCollector::new(n);
    while let Ok(r) = rx.try_recv() {
        collector.insert(r.index, r);
    }
    let results = collector.into_ordered();
    let stats = SweepStats {
        threads: nw,
        runs: n,
        elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
        workers: per_worker
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect(),
    };
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values<T: Clone>(rs: &[RunResult<T>]) -> Vec<T> {
        rs.iter().map(|r| r.value.clone()).collect()
    }

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| (i as u64) * (i as u64) + 7;
        let (serial, s1) = run_indexed(37, 1, f);
        assert_eq!(s1.threads, 1);
        for t in [2, 3, 8] {
            let (par, st) = run_indexed(37, t, f);
            assert_eq!(values(&serial), values(&par), "threads={t}");
            assert_eq!(st.runs, 37);
            assert_eq!(st.workers.iter().map(|w| w.runs).sum::<u64>(), 37);
        }
    }

    #[test]
    fn results_are_index_ordered() {
        let (rs, _) = run_indexed(16, 4, |i| i);
        for (pos, r) in rs.iter().enumerate() {
            assert_eq!(r.index, pos);
            assert_eq!(r.value, pos);
            assert!(r.worker < 4);
        }
    }

    #[test]
    fn workers_capped_at_task_count() {
        let (rs, st) = run_indexed(2, 8, |i| i);
        assert_eq!(st.threads, 2);
        assert_eq!(st.workers.len(), 2);
        assert_eq!(values(&rs), vec![0, 1]);
    }

    #[test]
    fn zero_tasks() {
        let (rs, st) = run_indexed(8, 4, |i| i);
        assert_eq!(rs.len(), 8);
        let (rs, st0) = {
            let (rs, st0) = run_indexed(0, 4, |i| i);
            (rs, st0)
        };
        assert!(rs.is_empty());
        assert_eq!(st0.runs, 0);
        assert_eq!(st.runs, 8);
    }

    #[test]
    fn uneven_work_gets_stolen() {
        // Worker 0's own tasks are heavy; with 4 workers the others go
        // idle and must steal to finish. We can't assert steals > 0 on a
        // single-core box (worker 0 may drain everything before others
        // are scheduled), but accounting must balance regardless.
        let f = |i: usize| {
            if i % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        };
        let (rs, st) = run_indexed(24, 4, f);
        assert_eq!(values(&rs), (0..24).collect::<Vec<_>>());
        let total_runs: u64 = st.workers.iter().map(|w| w.runs).sum();
        let total_steals: u64 = st.workers.iter().map(|w| w.steals).sum();
        assert_eq!(total_runs, 24);
        assert!(total_steals <= 24);
        assert!(st.total_busy_ms() > 0.0);
    }

    #[test]
    #[should_panic(expected = "HORSE_THREADS")]
    fn bad_env_panics() {
        // Env vars are process-global; use a child-free check by setting
        // and restoring around the call. Tests in this crate run
        // single-process, and no other test reads HORSE_THREADS.
        std::env::set_var("HORSE_THREADS", "zero");
        let _guard = RestoreEnv;
        let _ = threads_from_env();
    }

    struct RestoreEnv;
    impl Drop for RestoreEnv {
        fn drop(&mut self) {
            std::env::remove_var("HORSE_THREADS");
        }
    }
}

//! Per-run seed derivation.
//!
//! A sweep executes runs in whatever order the pool's schedule produces,
//! so per-run randomness must depend only on the run's *position in the
//! plan*, never on execution order. [`derive_seed`] maps
//! `(base_seed, run_index)` through SplitMix64 — the same finalizer the
//! vendored `rand` uses to expand seeds — giving every run an
//! independent, well-mixed stream while keeping the whole sweep
//! reproducible from one base seed.

/// One SplitMix64 output step (Steele et al., the standard constants).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed for run `run_index` of a sweep with `base_seed`.
///
/// Two mixing rounds give full avalanche between nearby indices (a plain
/// `base + index` would hand consecutive runs correlated hash seeds).
/// Never returns 0, so downstream generators that dislike all-zero state
/// are safe.
pub fn derive_seed(base_seed: u64, run_index: u64) -> u64 {
    let s = splitmix64(base_seed ^ splitmix64(run_index));
    if s == 0 {
        0x9E37_79B9_7F4A_7C15
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn deterministic() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
    }

    #[test]
    fn distinct_across_indices_and_bases() {
        let mut seen = BTreeSet::new();
        for base in [0u64, 1, 42, u64::MAX] {
            for idx in 0..256u64 {
                seen.insert(derive_seed(base, idx));
            }
        }
        assert_eq!(seen.len(), 4 * 256, "collision in derived seeds");
    }

    #[test]
    fn never_zero() {
        for idx in 0..1024u64 {
            assert_ne!(derive_seed(0, idx), 0);
        }
    }
}
